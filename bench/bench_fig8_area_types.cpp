// Figure 8: coverage maps and interferer counts of the three area types.
//
// Renders the best-server map of one market per morphology and reports the
// study-area interfering-sector counts (paper: ~26 rural, ~55 suburban,
// ~178 urban at full scale), checking the rural < suburban < urban ordering.
#include "bench_common.h"
#include "data/render.h"
#include "model/coverage_map.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 8: rural / suburban / urban area types"};
  bench::add_scale_flags(args);
  args.add_flag("render", "false", "write service-map PPM images");
  args.add_flag("out-dir", ".", "directory for rendered maps");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "Figure 8 reproduction: " << scale.region_km
            << " km regions, " << scale.study_km << " km study areas\n\n";

  util::TablePrinter table({"area type", "sites", "sectors",
                            "study interferers", "grid coverage",
                            "mean SINR (dB)"});
  std::vector<int> interferers;
  for (const data::Morphology morphology : bench::kAllMorphologies) {
    data::Experiment experiment{
        bench::market_params(morphology, 0, scale, seed)};
    model::AnalysisModel& model = experiment.model();
    model.freeze_uniform_ue_density();
    const auto stats = model::coverage_stats(model);
    const int count = experiment.study_interferer_count();
    interferers.push_back(count);
    table.add_row({std::string(data::morphology_name(morphology)),
                   std::to_string(experiment.network().sites().size()),
                   std::to_string(experiment.network().sector_count()),
                   std::to_string(count),
                   util::TablePrinter::percent(stats.covered_grid_fraction),
                   util::TablePrinter::num(stats.mean_sinr_db, 1)});
    if (args.get_bool("render")) {
      const std::string path =
          args.get_string("out-dir") + "/fig8_service_" +
          std::string(data::morphology_name(morphology)) + ".ppm";
      data::render_service_ppm(model, path);
      std::cout << "wrote " << path << '\n';
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper (30 km regions): ~26 rural, ~55 suburban, ~178 urban "
               "interferers.\n"
            << "Ordering check: "
            << (interferers[0] < interferers[1] &&
                        interferers[1] < interferers[2]
                    ? "rural < suburban < urban  [MATCHES paper]"
                    : "ordering differs from the paper")
            << '\n';
  return 0;
}
