// Figure 11: benefits of gradual tuning. One detailed suburban trace
// (utility per step + handovers per step, gradual vs one-shot proactive)
// plus the all-scenario sweep behind the paper's aggregate claims
// (8x fewer simultaneous handovers on average, ~96% seamless).
#include "bench_common.h"
#include "core/gradual.h"
#include "sim/migration_sim.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 11: gradual tuning vs one-shot switch"};
  bench::add_scale_flags(args);
  args.add_flag("csv", "", "optional CSV output path");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // --- Detailed trace: suburban market, scenario (a). ---
  {
    data::Experiment experiment{bench::market_params(
        data::Morphology::kSuburban, 0, scale, seed)};
    const auto outcome = bench::run_scenario(
        experiment, data::UpgradeScenario::kSingleSector,
        core::TuningMode::kJoint, core::Utility::performance());
    const auto& gradual = outcome.plan.gradual;

    core::Evaluator evaluator{&experiment.model(),
                              core::Utility::performance()};
    experiment.model().set_configuration(outcome.plan.c_before);
    const auto direct = core::direct_switch_plan(
        evaluator, outcome.plan.targets, outcome.plan.search.config);

    std::cout << "Figure 11 trace (suburban, scenario (a)); floor utility "
              << util::TablePrinter::num(gradual.floor_utility, 2) << "\n\n";
    util::TablePrinter table({"step", "utility", "HO UEs", "hard UEs",
                              "compensations"});
    for (std::size_t i = 0; i < gradual.steps.size(); ++i) {
      const auto& step = gradual.steps[i];
      table.add_row(
          {std::to_string(i) + (step.is_final ? " (upgrade)" : ""),
           util::TablePrinter::num(step.utility, 2),
           util::TablePrinter::num(step.handover_ues, 0),
           util::TablePrinter::num(step.hard_handover_ues, 0),
           step.compensations > 0 ? "^ x" + std::to_string(step.compensations)
                                  : ""});
    }
    table.print(std::cout);

    const double peak_ratio =
        gradual.max_simultaneous_handover_ues() > 0.0
            ? direct.max_simultaneous_handover_ues() /
                  gradual.max_simultaneous_handover_ues()
            : 0.0;
    std::cout << "\n  peak simultaneous HOs: gradual "
              << util::TablePrinter::num(
                     gradual.max_simultaneous_handover_ues(), 0)
              << " vs one-shot "
              << util::TablePrinter::num(
                     direct.max_simultaneous_handover_ues(), 0)
              << " UEs  ->  " << util::TablePrinter::num(peak_ratio, 1)
              << "x reduction (paper example: 3x)\n"
              << "  seamless: gradual "
              << util::TablePrinter::percent(gradual.seamless_fraction())
              << " vs one-shot "
              << util::TablePrinter::percent(direct.seamless_fraction())
              << " (paper example: 99.7%)\n\n";
  }

  // --- Aggregate sweep across all markets / areas / scenarios. ---
  util::RunningStats reduction;
  util::RunningStats seamless;
  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"market", "morphology", "scenario", "gradual_peak_ues",
                    "direct_peak_ues", "reduction", "seamless_fraction"});
  }
  std::cout << "Sweeping all scenarios for the aggregate claims...\n";
  for (int market = 0; market < scale.markets; ++market) {
    for (const data::Morphology morphology : bench::kAllMorphologies) {
      data::Experiment experiment{
          bench::market_params(morphology, market, scale, seed)};
      for (const auto scenario : data::all_scenarios()) {
        const auto outcome = bench::run_scenario(
            experiment, scenario, core::TuningMode::kJoint,
            core::Utility::performance());
        const auto& gradual = outcome.plan.gradual;

        core::Evaluator evaluator{&experiment.model(),
                                  core::Utility::performance()};
        experiment.model().set_configuration(outcome.plan.c_before);
        const auto direct = core::direct_switch_plan(
            evaluator, outcome.plan.targets, outcome.plan.search.config);

        if (gradual.max_simultaneous_handover_ues() > 0.0 &&
            direct.max_simultaneous_handover_ues() > 0.0) {
          const double ratio = direct.max_simultaneous_handover_ues() /
                               gradual.max_simultaneous_handover_ues();
          reduction.add(ratio);
          seamless.add(gradual.seamless_fraction());
          if (csv) {
            csv->write_row(
                {std::to_string(market),
                 std::string(data::morphology_name(morphology)),
                 std::string(data::scenario_name(scenario)),
                 util::CsvWriter::cell(
                     gradual.max_simultaneous_handover_ues()),
                 util::CsvWriter::cell(
                     direct.max_simultaneous_handover_ues()),
                 util::CsvWriter::cell(ratio),
                 util::CsvWriter::cell(gradual.seamless_fraction())});
          }
        }
      }
    }
  }

  std::cout << "\nAcross " << reduction.count() << " scenarios:\n"
            << "  simultaneous-handover reduction: mean "
            << util::TablePrinter::num(reduction.mean(), 1) << "x (min "
            << util::TablePrinter::num(reduction.min(), 1) << "x, max "
            << util::TablePrinter::num(reduction.max(), 1)
            << "x); paper: 8x average\n"
            << "  seamless handovers: mean "
            << util::TablePrinter::percent(seamless.mean())
            << "; paper: 96.1%\n";
  return 0;
}
