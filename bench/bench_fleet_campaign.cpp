// Fleet campaign bench: metro-scale planning through the fleet stack
// (MarketStore + WavePlanner) at 100+ markets / 3000+ sectors.
//
// Three passes over the same fleet:
//
//   A  unconstrained store (byte_budget = 0): every market stays resident.
//      Yields the fleet's peak resident bytes, per-market fingerprints and
//      planning throughput (markets per second).
//   B  budget-capped store (default: a quarter of pass A's peak): the LRU
//      must evict; a re-planning round over the first --replan markets
//      then forces evicted markets to rematerialize from their on-disk
//      databases. The bench asserts the reloaded markets plan to the exact
//      fingerprints pass A produced (plans_identical_under_eviction) —
//      eviction is a memory knob, never a results knob.
//   C  standalone cross-check: --samples markets re-planned through a
//      plain data::Experiment + core::MagusPlanner, no store, no database
//      (lazy path-loss construction). Their fingerprints must match the
//      store path bit for bit (plans_match_single_market) — the fleet
//      stack is a cache around the single-market pipeline, not a different
//      model.
//
// --json writes the committed BENCH_fleet.json baseline.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "fleet/wave_planner.h"
#include "obs/profiler.h"
#include "util/checksum.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace magus;

/// Standalone single-market fingerprint for one fleet market: the same
/// upgrade targets planned through a fresh Experiment (lazy footprints,
/// own planner) — no fleet code in the loop.
[[nodiscard]] std::uint64_t standalone_fingerprint(
    const data::MarketParams& params, std::size_t max_sites,
    const fleet::WavePlannerOptions& options) {
  data::Experiment experiment{params};
  core::Evaluator evaluator{&experiment.model(), options.utility};
  core::PlannerOptions popts = options.planner;
  popts.shared_pool = nullptr;
  popts.threads = options.threads;
  const core::MagusPlanner planner{&evaluator, popts};
  std::uint64_t hash = util::kFnv1aOffsetBasis;
  for (const auto& targets :
       fleet::upgrade_targets_for(experiment.network(), max_sites)) {
    const core::MitigationPlan plan = planner.plan_upgrade(targets);
    hash = fleet::plan_fingerprint(plan.search.config, plan.recovery, hash);
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  util::ArgParser args{
      "Fleet campaign: byte-budgeted multi-market planning via the fleet "
      "stack"};
  args.add_flag("markets", "100", "fleet size");
  args.add_flag("sites", "1", "upgrade sites planned per market");
  args.add_flag("region-km", "5", "per-market analysis region edge (km)");
  args.add_flag("study-km", "3", "per-market study area edge (km)");
  args.add_flag("seed", "1", "fleet seed");
  args.add_flag("crew-cap", "4", "markets staffable per shared window");
  args.add_flag("budget-mb", "0",
                "store byte budget for pass B (0 = peak/4 from pass A)");
  args.add_flag("replan", "8",
                "markets re-planned in pass B's eviction/reload round");
  args.add_flag("samples", "3",
                "markets cross-checked against the standalone planner");
  args.add_flag("db-dir", "bench_fleet_db", "per-market database directory");
  args.add_flag("json", "", "optional JSON summary path (BENCH_fleet.json)");
  util::add_threads_flag(args);
  util::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const obs::ObsSession obs_session{args};
  const auto markets = static_cast<std::size_t>(args.get_int("markets"));
  const auto sites = static_cast<std::size_t>(args.get_int("sites"));
  const auto threads = static_cast<std::size_t>(args.get_int("threads"));
  const auto replan_count =
      std::min(static_cast<std::size_t>(args.get_int("replan")), markets);
  const auto sample_count =
      std::min(static_cast<std::size_t>(args.get_int("samples")), markets);

  data::FleetParams fleet_params;
  fleet_params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  fleet_params.markets = markets;
  fleet_params.base.region_size_m = args.get_double("region-km") * 1000.0;
  fleet_params.base.study_size_m = args.get_double("study-km") * 1000.0;
  const std::vector<fleet::MarketSpec> specs =
      fleet::specs_from_fleet(fleet_params);

  std::size_t sectors_total = 0;
  for (const fleet::MarketSpec& spec : specs) {
    sectors_total += data::generate_market(spec.params).network.sectors().size();
  }

  fleet::StoreOptions store_options;
  store_options.db_dir = args.get_string("db-dir");
  store_options.threads = threads;

  fleet::WavePlannerOptions planner_options;
  planner_options.planner.mode = core::TuningMode::kPower;
  planner_options.crew_cap =
      static_cast<std::size_t>(args.get_int("crew-cap"));
  planner_options.threads = threads;

  std::vector<fleet::MarketUpgradeRequest> requests;
  requests.reserve(specs.size());
  for (const fleet::MarketSpec& spec : specs) {
    requests.push_back({spec.id, sites});
  }

  // ---- Pass A: unconstrained ----
  fleet::MarketStore store_a{specs, store_options};
  fleet::WavePlanner planner_a{&store_a, planner_options};
  const auto a_start = Clock::now();
  const fleet::FleetWavePlan plan_a = planner_a.plan(requests);
  const double a_seconds =
      std::chrono::duration<double>(Clock::now() - a_start).count();
  const std::size_t peak_bytes = store_a.peak_resident_bytes();

  // Re-planning round while everything is resident: all hits.
  std::vector<std::uint64_t> replan_a;
  for (std::size_t i = 0; i < replan_count; ++i) {
    const fleet::FleetWavePlan one =
        planner_a.plan(std::span{&requests[i], 1});
    replan_a.push_back(one.markets.front().fingerprint);
  }

  // ---- Pass B: budget-capped (databases already on disk from pass A) ----
  const std::size_t budget_mb =
      static_cast<std::size_t>(args.get_int("budget-mb"));
  fleet::StoreOptions capped = store_options;
  capped.byte_budget =
      budget_mb > 0 ? budget_mb * (1u << 20) : std::max<std::size_t>(
                                                   peak_bytes / 4, 1);
  fleet::MarketStore store_b{specs, capped};
  fleet::WavePlanner planner_b{&store_b, planner_options};
  const auto b_start = Clock::now();
  const fleet::FleetWavePlan plan_b = planner_b.plan(requests);
  const double b_seconds =
      std::chrono::duration<double>(Clock::now() - b_start).count();

  // Eviction/reload round: the first markets were evicted long ago, so
  // these acquires rematerialize from disk.
  std::vector<std::uint64_t> replan_b;
  for (std::size_t i = 0; i < replan_count; ++i) {
    const fleet::FleetWavePlan one =
        planner_b.plan(std::span{&requests[i], 1});
    replan_b.push_back(one.markets.front().fingerprint);
  }

  bool plans_identical = plan_a.fleet_fingerprint() == plan_b.fleet_fingerprint();
  for (std::size_t i = 0; i < replan_count; ++i) {
    plans_identical = plans_identical && replan_a[i] == replan_b[i] &&
                      replan_a[i] == plan_a.markets[i].fingerprint;
  }

  // ---- Pass C: standalone single-market cross-check ----
  bool plans_match_single = true;
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t pick = i * (markets / std::max<std::size_t>(
                                                 sample_count, 1));
    const std::uint64_t solo = standalone_fingerprint(
        specs[pick].params, sites, planner_options);
    plans_match_single =
        plans_match_single && solo == plan_a.markets[pick].fingerprint;
  }

  util::TablePrinter table{{"pass", "seconds", "markets/s", "hits", "misses",
                            "evictions", "resident_mb"}};
  const auto row = [&](const char* name, double seconds,
                       const fleet::MarketStore& store) {
    table.add_row({name, util::TablePrinter::num(seconds, 2),
                   util::TablePrinter::num(markets / seconds, 2),
                   std::to_string(store.hits()),
                   std::to_string(store.misses()),
                   std::to_string(store.evictions()),
                   util::TablePrinter::num(
                       static_cast<double>(store.resident_bytes()) /
                           (1 << 20),
                       1)});
  };
  row("A:unbounded", a_seconds, store_a);
  row("B:capped", b_seconds, store_b);
  table.print(std::cout);
  std::cout << "fleet: " << markets << " markets, " << sectors_total
            << " sectors, " << plan_a.upgrades_total() << " upgrades, wave "
            << plan_a.wave.makespan() << " windows @ crew cap "
            << planner_options.crew_cap << '\n'
            << "peak resident: " << peak_bytes / (1 << 20) << " MiB, budget: "
            << capped.byte_budget / (1 << 20) << " MiB\n"
            << "plans identical under eviction: "
            << (plans_identical ? "yes" : "NO") << '\n'
            << "plans match single-market path: "
            << (plans_match_single ? "yes" : "NO") << '\n';

  if (const std::string json_path = args.get_string("json");
      !json_path.empty()) {
    util::JsonObject out;
    out.set("meta", obs::run_metadata_json());
    out.set("bench", "fleet_campaign");
    out.set("markets", static_cast<std::int64_t>(markets));
    out.set("sectors_total", static_cast<std::int64_t>(sectors_total));
    out.set("sites_per_market", static_cast<std::int64_t>(sites));
    out.set("upgrades_planned",
            static_cast<std::int64_t>(plan_a.upgrades_total()));
    out.set("wave_windows", static_cast<std::int64_t>(plan_a.wave.makespan()));
    out.set("crew_cap", static_cast<std::int64_t>(planner_options.crew_cap));
    out.set("threads", static_cast<std::int64_t>(
                           util::resolve_thread_count(threads)));
    out.set("plan_seconds_unbounded", a_seconds);
    out.set("plan_seconds_capped", b_seconds);
    out.set("markets_per_second", markets / a_seconds);
    out.set("peak_resident_bytes", static_cast<std::int64_t>(peak_bytes));
    out.set("byte_budget", static_cast<std::int64_t>(capped.byte_budget));
    util::JsonObject store_stats;
    store_stats.set("hits", static_cast<std::int64_t>(store_b.hits()));
    store_stats.set("misses", static_cast<std::int64_t>(store_b.misses()));
    store_stats.set("evictions",
                    static_cast<std::int64_t>(store_b.evictions()));
    store_stats.set("resident_bytes",
                    static_cast<std::int64_t>(store_b.resident_bytes()));
    out.set("store_capped", std::move(store_stats));
    out.set("fleet_fingerprint",
            static_cast<std::int64_t>(plan_a.fleet_fingerprint()));
    out.set("plans_identical_under_eviction", plans_identical);
    out.set("plans_match_single_market", plans_match_single);
    out.write_file(json_path);
  }
  return (plans_identical && plans_match_single) ? 0 : 1;
}
