// Figure 13: CDF of the improvement ratio of Magus's Algorithm 1 over the
// naive power-tuning baseline across all markets / areas / scenarios.
// Paper: Magus >= naive in ~81% of 27 scenarios, ratio never below 0.9,
// max 3.87, average ~1.21.
#include "bench_common.h"
#include "core/naive_search.h"
#include "core/power_search.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 13: Magus vs naive improvement-ratio CDF"};
  bench::add_scale_flags(args);
  args.add_flag("csv", "", "optional CSV output path");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::vector<double> ratios;
  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"market", "morphology", "scenario", "magus_recovery",
                    "naive_recovery", "improvement_ratio"});
  }

  std::cout << "Figure 13 reproduction: sweeping "
            << scale.markets * 9 << " scenarios...\n\n";
  for (int market = 0; market < scale.markets; ++market) {
    for (const data::Morphology morphology : bench::kAllMorphologies) {
      data::Experiment experiment{
          bench::market_params(morphology, market, scale, seed)};
      for (const auto scenario : data::all_scenarios()) {
        const auto magus_outcome = bench::run_scenario(
            experiment, scenario, core::TuningMode::kPower,
            core::Utility::performance());
        const auto naive_outcome = bench::run_scenario(
            experiment, scenario, core::TuningMode::kNaive,
            core::Utility::performance());
        // Improvement ratio = Magus recovery / naive recovery (paper
        // Formula in §6). Skip degenerate scenarios where naive found
        // nothing at all.
        if (naive_outcome.recovery > 1e-6) {
          const double ratio = magus_outcome.recovery /
                               naive_outcome.recovery;
          ratios.push_back(ratio);
          if (csv) {
            csv->write_row(
                {std::to_string(market),
                 std::string(data::morphology_name(morphology)),
                 std::string(data::scenario_name(scenario)),
                 util::CsvWriter::cell(magus_outcome.recovery),
                 util::CsvWriter::cell(naive_outcome.recovery),
                 util::CsvWriter::cell(ratio)});
          }
        }
      }
    }
  }

  if (ratios.empty()) {
    std::cout << "No comparable scenarios (naive recovered nothing).\n";
    return 0;
  }

  util::TablePrinter table({"improvement ratio", "CDF"});
  for (const auto& point : util::empirical_cdf(ratios)) {
    table.add_row({util::TablePrinter::num(point.value, 2),
                   util::TablePrinter::percent(point.fraction)});
  }
  table.print(std::cout);

  util::RunningStats stats;
  for (const double r : ratios) stats.add(r);
  std::cout << "\nSummary over " << ratios.size() << " scenarios:\n"
            << "  Magus >= naive in "
            << util::TablePrinter::percent(
                   util::fraction_at_least(ratios, 1.0))
            << " of scenarios (paper: 81%)\n"
            << "  mean ratio " << util::TablePrinter::num(stats.mean(), 2)
            << " (paper: 1.21), max "
            << util::TablePrinter::num(stats.max(), 2)
            << " (paper: 3.87), min "
            << util::TablePrinter::num(stats.min(), 2)
            << " (paper: never below 0.9)\n";
  return 0;
}
