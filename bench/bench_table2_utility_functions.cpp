// Table 2: cross-utility recovery. Optimize the search under one utility
// (performance or coverage), then measure the resulting configuration under
// both. The paper's shape: each utility recovers well under itself, poorly
// (possibly negatively) under the other.
#include "bench_common.h"
#include "core/recovery.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Table 2: recovery under different utility functions"};
  bench::add_scale_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // Paper setting: a suburban area with upgrade scenario (a).
  data::Experiment experiment{bench::market_params(
      data::Morphology::kSuburban, 0, scale, seed)};
  const auto targets = data::upgrade_targets(
      experiment.market(), data::UpgradeScenario::kSingleSector);

  const std::vector<core::Utility> utilities = {
      core::Utility::performance(), core::Utility::coverage()};

  // For each optimization utility, find C_after; then measure the recovery
  // of that C_after under every measurement utility.
  std::vector<std::vector<double>> recovery(
      utilities.size(), std::vector<double>(utilities.size(), 0.0));

  for (std::size_t opt = 0; opt < utilities.size(); ++opt) {
    core::Evaluator evaluator{&experiment.model(), utilities[opt]};
    core::PlannerOptions options;
    options.mode = core::TuningMode::kJoint;
    core::MagusPlanner planner{&evaluator, options};
    const core::MitigationPlan plan = planner.plan_upgrade(targets);

    for (std::size_t measured = 0; measured < utilities.size(); ++measured) {
      core::Evaluator meter{&experiment.model(), utilities[measured]};
      model::AnalysisModel& model = experiment.model();
      // Measure f_before / f_upgrade / f_after under the measurement
      // utility with the same frozen UE density the planner used.
      model.set_configuration(plan.c_before);
      const double f_before = meter.evaluate();
      net::Configuration upgrade = model.configuration();
      for (const net::SectorId t : targets) {
        upgrade = upgrade.with_sector_off(t);
      }
      const double f_upgrade = meter.evaluate_configuration(upgrade);
      const double f_after =
          meter.evaluate_configuration(plan.search.config);
      recovery[opt][measured] =
          core::recovery_ratio({f_before, f_upgrade, f_after});
    }
  }

  std::cout << "Table 2 reproduction (suburban market, scenario (a))\n\n";
  util::TablePrinter table({"Optimization \\ Measured", "u_performance",
                            "u_coverage"});
  table.add_row({"u_performance",
                 util::TablePrinter::percent(recovery[0][0]),
                 util::TablePrinter::percent(recovery[0][1])});
  table.add_row({"u_coverage",
                 util::TablePrinter::percent(recovery[1][0]),
                 util::TablePrinter::percent(recovery[1][1])});
  table.print(std::cout);

  std::cout << "\nPaper: optimizing u_performance recovered 66.3% performance "
               "but only 2.6% coverage;\noptimizing u_coverage recovered "
               "14.4% coverage at the cost of performance (-29.3%).\n"
            << "Shape check: diagonal dominates its column -> "
            << ((recovery[0][0] >= recovery[1][0] &&
                 recovery[1][1] >= recovery[0][1])
                    ? "MATCHES paper"
                    : "differs from paper")
            << '\n';
  return 0;
}
