// Cold-open streaming bench: what the v3 mmap path buys at market
// acquisition time, and what footprint-granular residency buys a
// budget-capped fleet.
//
// Part 1 — one market's database, three cold-open paths:
//   v2 eager:   PathLossDatabase::load of the v2 stream format — every
//               gain byte read, checksummed and twinned up front,
//   v3 eager:   the same eager load over the v3 page-aligned file,
//   v3 mapped:  MappedPathLossDatabase — header + directory only; gain
//               planes stay on disk until first touch.
// The headline is speedup_cold_open = v2-eager / v3-mapped-open (gated
// >= 5x). First-touch materialization of *every* entry is timed
// separately — that is the amortized cost ceiling a lazy open defers,
// and in a fleet sweep most of it is never paid. Bitwise identity of the
// mapped windows against the eager load — including across a
// release_residency()/re-touch cycle — is asserted, not assumed.
//
// Part 2 — a small fleet planned through the MarketStore three times:
// unbounded, at a 1-byte "floor probe" budget (maximal enforcement — its
// enforced peak is the store's floor: the one kept market after every
// other market is stripped and evicted), and at a real budget of
// max(peak/2, floor * 5/4). Every pass must plan to the exact same fleet
// fingerprint, the floor must sit well under the unbounded peak, and the
// real budget's *enforced* peak (the charge after each enforce_budget()
// settle) must stay at or under the budget line — streaming residency is
// a memory knob, never a results knob.
//
// --json writes the committed BENCH_streaming.json baseline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fleet/wave_planner.h"
#include "obs/profiler.h"
#include "pathloss/builder.h"
#include "pathloss/database.h"
#include "pathloss/mapped_database.h"
#include "pathloss/parallel_builder.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] std::size_t file_size(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<std::size_t>(size) : 0;
}

/// memcmp of every (sector, tilt) dB window in `mapped` against `eager`.
[[nodiscard]] bool windows_identical(
    magus::pathloss::MappedPathLossDatabase& mapped,
    magus::pathloss::PathLossDatabase& eager,
    const std::vector<magus::net::SectorId>& sectors,
    const std::vector<magus::radio::TiltIndex>& tilts) {
  for (const magus::net::SectorId s : sectors) {
    for (const magus::radio::TiltIndex t : tilts) {
      const auto& a = mapped.footprint(s, t);
      const auto& b = eager.footprint(s, t);
      if (a.window().size() != b.window().size()) return false;
      if (std::memcmp(a.window().data(), b.window().data(),
                      a.window().size() * sizeof(float)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{
      "Cold-open streaming: v2 eager load vs v3 mapped open, plus a "
      "byte-budget sweep through the fleet store"};
  bench::add_scale_flags(args);
  args.add_flag("tilts", "5",
                "tilt matrix size per sector (tilts centered on 0)");
  args.add_flag("range-km", "12", "per-sector footprint range cutoff (km)");
  args.add_flag("reps", "3", "cold-open timing repetitions (mean reported)");
  args.add_flag("fleet-markets", "4", "markets in the budget-sweep fleet");
  args.add_flag("fleet-region-km", "5", "per-market region edge (km)");
  args.add_flag("fleet-study-km", "3", "per-market study area edge (km)");
  args.add_flag("db-dir", "bench_streaming_db",
                "fleet per-market database directory");
  args.add_flag("json", "", "optional JSON summary path");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::size_t threads = util::threads_from(args);
  const int reps = std::max(1, static_cast<int>(args.get_int("reps")));

  // ---- Part 1: one market, three cold-open paths ----
  data::Experiment experiment{
      bench::market_params(data::Morphology::kSuburban, 0, scale, seed)};
  const pathloss::FootprintBuilder builder{
      &experiment.propagation(), &experiment.terrain_cache(),
      args.get_double("range-km") * 1000.0};

  std::vector<net::SectorId> sectors;
  for (const auto& sector : experiment.network().sectors()) {
    sectors.push_back(sector.id);
  }
  std::vector<radio::TiltIndex> tilts;
  const int tilt_count = std::max(1, static_cast<int>(args.get_int("tilts")));
  for (int i = 0; i < tilt_count; ++i) {
    tilts.push_back(static_cast<radio::TiltIndex>(i - tilt_count / 2));
  }
  const std::size_t matrices = sectors.size() * tilts.size();

  pathloss::ParallelFootprintBuilder parallel_builder{builder, threads};
  pathloss::PathLossDatabase db =
      parallel_builder.build_database(experiment.network(), sectors, tilts);

  const std::string v2_path = "bench_open_v2.bin";
  const std::string v3_path = "bench_open_v3.bin";
  db.save(v2_path, threads);
  db.save_v3(v3_path, threads);
  const std::size_t v2_bytes = file_size(v2_path);
  const std::size_t v3_bytes = file_size(v3_path);

  std::cout << "Cold open: " << sectors.size() << " sectors x "
            << tilts.size() << " tilts = " << matrices << " matrices, v2 "
            << v2_bytes / 1024 << " KiB, v3 " << v3_bytes / 1024
            << " KiB, threads=" << threads << ", reps=" << reps << "\n\n";

  const auto mean_of = [&](auto&& body) {
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r) body();
    return seconds_since(start) / reps;
  };
  const double wall_load_v2 = mean_of([&] {
    const pathloss::PathLossDatabase loaded =
        pathloss::PathLossDatabase::load(v2_path, threads);
    if (loaded.entry_count() != matrices) std::abort();
  });
  const double wall_load_v3_eager = mean_of([&] {
    const pathloss::PathLossDatabase loaded =
        pathloss::PathLossDatabase::load(v3_path, threads);
    if (loaded.entry_count() != matrices) std::abort();
  });
  const double wall_open_mapped = mean_of([&] {
    const pathloss::MappedPathLossDatabase mapped{v3_path};
    if (mapped.entry_count() != matrices) std::abort();
  });

  // First-touch cost: materialize every entry of a freshly opened mapping.
  // This is the total the lazy open defers; a fleet sweep touching one
  // tilt per sector pays ~1/tilts of it.
  pathloss::MappedPathLossDatabase mapped{v3_path};
  const auto touch_start = Clock::now();
  for (const net::SectorId s : sectors) {
    for (const radio::TiltIndex t : tilts) {
      (void)mapped.footprint(s, t);
    }
  }
  const double wall_first_touch = seconds_since(touch_start);
  const std::size_t heap_bytes_full = mapped.resident_bytes();
  const std::size_t mapped_bytes = mapped.mapped_bytes();

  pathloss::PathLossDatabase eager = pathloss::PathLossDatabase::load(v2_path);
  const bool mapped_equals_eager =
      windows_identical(mapped, eager, sectors, tilts);
  const std::size_t released = mapped.release_residency();
  const bool identical_after_release =
      released > 0 && mapped.resident_bytes() == 0 &&
      windows_identical(mapped, eager, sectors, tilts);

  const double speedup_cold_open = wall_load_v2 / wall_open_mapped;
  const bool cold_open_ge_5x = speedup_cold_open >= 5.0;

  util::TablePrinter open_table({"path", "wall (s)", "speedup vs v2"});
  open_table.add_row({"v2 eager load", util::TablePrinter::num(wall_load_v2, 5),
                      "1.00"});
  open_table.add_row(
      {"v3 eager load", util::TablePrinter::num(wall_load_v3_eager, 5),
       util::TablePrinter::num(wall_load_v2 / wall_load_v3_eager, 2)});
  open_table.add_row(
      {"v3 mapped open", util::TablePrinter::num(wall_open_mapped, 6),
       util::TablePrinter::num(speedup_cold_open, 2)});
  open_table.add_row(
      {"  + touch all", util::TablePrinter::num(wall_first_touch, 5),
       util::TablePrinter::num(
           wall_load_v2 / (wall_open_mapped + wall_first_touch), 2)});
  open_table.print(std::cout);
  std::cout << "\nresidency at full touch: " << heap_bytes_full / 1024
            << " KiB heap (linear twins) + " << mapped_bytes / 1024
            << " KiB file-backed (dB planes, using_mmap="
            << (mapped.using_mmap() ? "yes" : "no") << ")\n"
            << "mapped == eager bitwise: "
            << (mapped_equals_eager ? "yes" : "NO")
            << "; after release+retouch: "
            << (identical_after_release ? "yes" : "NO") << '\n'
            << "cold-open speedup " << util::TablePrinter::num(
                   speedup_cold_open, 1)
            << "x (gate >= 5x): " << (cold_open_ge_5x ? "PASS" : "FAIL")
            << "\n\n";
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());

  // ---- Part 2: fleet budget sweep ----
  const auto fleet_markets =
      static_cast<std::size_t>(args.get_int("fleet-markets"));
  data::FleetParams fleet_params;
  fleet_params.seed = seed;
  fleet_params.markets = fleet_markets;
  fleet_params.base.region_size_m = args.get_double("fleet-region-km") * 1000.0;
  fleet_params.base.study_size_m = args.get_double("fleet-study-km") * 1000.0;
  const std::vector<fleet::MarketSpec> specs =
      fleet::specs_from_fleet(fleet_params);

  fleet::StoreOptions store_options;
  store_options.db_dir = args.get_string("db-dir");
  store_options.threads = threads;

  fleet::WavePlannerOptions planner_options;
  planner_options.planner.mode = core::TuningMode::kPower;
  planner_options.threads = threads;

  std::vector<fleet::MarketUpgradeRequest> requests;
  requests.reserve(specs.size());
  for (const fleet::MarketSpec& spec : specs) requests.push_back({spec.id, 1});

  struct SweepRow {
    std::string label;
    std::size_t budget = 0;  ///< 0 = unbounded
    double seconds = 0.0;
    std::uint64_t fingerprint = 0;
    std::size_t peak = 0;           ///< pre-enforcement peak charge
    std::size_t enforced_peak = 0;  ///< peak charge after each settle
    std::size_t releases = 0;
    std::size_t evictions = 0;
  };
  std::vector<SweepRow> sweep;
  const auto run_sweep = [&](const std::string& label, std::size_t budget) {
    fleet::StoreOptions options = store_options;
    options.byte_budget = budget;
    fleet::MarketStore store{specs, options};
    fleet::WavePlanner planner{&store, planner_options};
    const auto start = Clock::now();
    const fleet::FleetWavePlan plan = planner.plan(requests);
    SweepRow row;
    row.label = label;
    row.budget = budget;
    row.seconds = seconds_since(start);
    row.fingerprint = plan.fleet_fingerprint();
    row.peak = store.peak_resident_bytes();
    row.enforced_peak = store.enforced_peak_bytes();
    row.releases = store.releases();
    row.evictions = store.evictions();
    sweep.push_back(row);
  };
  // The unbounded pass also builds + v3-saves every market database on
  // disk; the budgeted passes then stream from those files. The 1-byte
  // floor probe measures the smallest charge enforcement can reach (the
  // one kept market, everything else stripped and evicted); the real
  // budget then sits at half the unbounded peak, floored just above the
  // probe so the under-budget gate is about enforcement, not geometry.
  run_sweep("unbounded", 0);
  const std::size_t peak = sweep[0].peak;
  run_sweep("floor probe", 1);
  const std::size_t floor_bytes = sweep[1].enforced_peak;
  const std::size_t budget_bytes =
      std::max(peak / 2, floor_bytes + floor_bytes / 4);
  run_sweep("1/2 peak", budget_bytes);

  bool plans_identical = true;
  std::size_t releases_total = 0;
  for (const SweepRow& row : sweep) {
    plans_identical =
        plans_identical && row.fingerprint == sweep.front().fingerprint;
    releases_total += row.releases;
  }
  const bool under_budget = sweep[2].enforced_peak <= budget_bytes;
  const bool floor_below_peak = floor_bytes < peak;

  util::TablePrinter sweep_table({"pass", "budget MiB", "seconds", "peak MiB",
                                  "enforced MiB", "releases", "evictions",
                                  "identical"});
  const auto mib = [](std::size_t bytes) {
    return util::TablePrinter::num(static_cast<double>(bytes) / (1 << 20), 1);
  };
  for (const SweepRow& row : sweep) {
    sweep_table.add_row(
        {row.label, row.budget == 0 ? "-" : mib(row.budget),
         util::TablePrinter::num(row.seconds, 2), mib(row.peak),
         mib(row.enforced_peak), std::to_string(row.releases),
         std::to_string(row.evictions),
         row.fingerprint == sweep.front().fingerprint ? "yes" : "NO"});
  }
  sweep_table.print(std::cout);
  std::cout << "\nfleet: " << fleet_markets << " markets; plans identical "
            << "across budgets: " << (plans_identical ? "yes" : "NO")
            << "; enforcement floor " << mib(floor_bytes) << " MiB vs peak "
            << mib(peak) << " MiB; enforced peak <= budget: "
            << (under_budget ? "yes" : "NO") << "; footprint releases: "
            << releases_total << '\n';

  if (const std::string json_path = args.get_string("json");
      !json_path.empty()) {
    util::JsonObject summary;
    summary.set("meta", obs::run_metadata_json());
    summary.set("bench", "pathloss_open");
    summary.set("threads", static_cast<std::int64_t>(threads));
    summary.set("sectors", static_cast<std::int64_t>(sectors.size()));
    summary.set("tilts", static_cast<std::int64_t>(tilts.size()));
    summary.set("matrices", static_cast<std::int64_t>(matrices));
    summary.set("file_bytes_v2", static_cast<std::int64_t>(v2_bytes));
    summary.set("file_bytes_v3", static_cast<std::int64_t>(v3_bytes));
    summary.set("wall_s_load_v2", wall_load_v2);
    summary.set("wall_s_load_v3_eager", wall_load_v3_eager);
    summary.set("wall_s_open_mapped", wall_open_mapped);
    summary.set("wall_s_first_touch_all", wall_first_touch);
    summary.set("speedup_cold_open", speedup_cold_open);
    summary.set("cold_open_speedup_ge_5x", cold_open_ge_5x);
    summary.set("using_mmap", mapped.using_mmap());
    summary.set("heap_bytes_full", static_cast<std::int64_t>(heap_bytes_full));
    summary.set("mapped_bytes", static_cast<std::int64_t>(mapped_bytes));
    summary.set("mapped_equals_eager", mapped_equals_eager);
    summary.set("identical_after_release", identical_after_release);
    summary.set("fleet_markets", static_cast<std::int64_t>(fleet_markets));
    summary.set("fleet_fingerprint",
                static_cast<std::int64_t>(sweep.front().fingerprint));
    summary.set("fleet_peak_bytes", static_cast<std::int64_t>(peak));
    summary.set("enforcement_floor_bytes",
                static_cast<std::int64_t>(floor_bytes));
    summary.set("budget_bytes", static_cast<std::int64_t>(budget_bytes));
    summary.set("plan_seconds_unbounded", sweep[0].seconds);
    summary.set("plan_seconds_floor", sweep[1].seconds);
    summary.set("plan_seconds_budgeted", sweep[2].seconds);
    summary.set("enforced_peak_budgeted",
                static_cast<std::int64_t>(sweep[2].enforced_peak));
    summary.set("releases_total", static_cast<std::int64_t>(releases_total));
    summary.set("evictions_floor",
                static_cast<std::int64_t>(sweep[1].evictions));
    summary.set("plans_identical_across_budgets", plans_identical);
    summary.set("under_budget", under_budget);
    summary.set("floor_below_peak", floor_below_peak);
    summary.write_file(json_path);
    std::cout << "JSON summary written to " << json_path << '\n';
  }

  return (cold_open_ge_5x && mapped_equals_eager && identical_after_release &&
          plans_identical && under_budget && floor_below_peak)
             ? 0
             : 1;
}
