// Google-benchmark micro benchmarks of the hot paths: footprint
// construction, full model rebuild, incremental power/tilt updates,
// snapshot/restore, utility evaluation, and one Algorithm-1 probe.
#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/power_search.h"
#include "data/experiment.h"
#include "data/upgrade_scenarios.h"

namespace {

using namespace magus;

[[nodiscard]] data::MarketParams bench_params(std::uint64_t seed = 3) {
  data::MarketParams params;
  params.morphology = data::Morphology::kSuburban;
  params.seed = seed;
  params.region_size_m = 10'000.0;
  params.study_size_m = 4'000.0;
  return params;
}

/// Shared experiment so construction cost is paid once per binary run.
data::Experiment& shared_experiment() {
  static data::Experiment experiment{bench_params()};
  return experiment;
}

void BM_FootprintBuild(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  const terrain::TerrainGridCache cache{experiment.terrain(),
                                        experiment.grid()};
  const radio::PropagationModel propagation{&experiment.terrain(),
                                            radio::SpmParams{}};
  const pathloss::FootprintBuilder builder{&propagation, &cache, 12'000.0};
  const net::Sector& sector = experiment.network().sector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(sector, 0));
  }
}
BENCHMARK(BM_FootprintBuild)->Unit(benchmark::kMillisecond);

void BM_FullRebuild(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  const net::Configuration config = model.network().default_configuration();
  for (auto _ : state) {
    model.set_configuration(config);
  }
}
BENCHMARK(BM_FullRebuild)->Unit(benchmark::kMillisecond);

void BM_IncrementalPowerUp(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  model.set_configuration(model.network().default_configuration());
  double power = 46.0;
  for (auto _ : state) {
    power = power >= 48.0 ? 40.0 : power + 1.0;
    model.set_power(0, power);
  }
}
BENCHMARK(BM_IncrementalPowerUp)->Unit(benchmark::kMillisecond);

void BM_TiltSwap(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  model.set_configuration(model.network().default_configuration());
  int tilt = 0;
  for (auto _ : state) {
    tilt = tilt == 0 ? -1 : 0;
    model.set_tilt(0, tilt);
  }
}
BENCHMARK(BM_TiltSwap)->Unit(benchmark::kMillisecond);

void BM_SnapshotRestore(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  model.set_configuration(model.network().default_configuration());
  const auto snapshot = model.snapshot();
  for (auto _ : state) {
    model.restore(snapshot);
  }
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMillisecond);

void BM_UtilityEvaluation(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  model.set_configuration(model.network().default_configuration());
  model.freeze_uniform_ue_density();
  core::Evaluator evaluator{&model, core::Utility::performance()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate());
  }
}
BENCHMARK(BM_UtilityEvaluation)->Unit(benchmark::kMillisecond);

void BM_ImprovesRateProbe(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  model.set_configuration(model.network().default_configuration());
  geo::GridIndex g = 0;
  for (auto _ : state) {
    g = (g + 17) % model.cell_count();
    benchmark::DoNotOptimize(model.power_delta_improves_rate(0, 2.0, g));
  }
}
BENCHMARK(BM_ImprovesRateProbe);

void BM_PowerSearchFull(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = experiment.model();
  core::Evaluator evaluator{&model, core::Utility::performance()};
  const auto targets = data::upgrade_targets(
      experiment.market(), data::UpgradeScenario::kSingleSector);
  for (auto _ : state) {
    state.PauseTiming();
    model.set_configuration(model.network().default_configuration());
    model.freeze_uniform_ue_density();
    const auto baseline = core::capture_rates(model);
    for (const net::SectorId t : targets) model.set_active(t, false);
    const auto involved =
        experiment.network().neighbors_of(targets, 5'000.0);
    state.ResumeTiming();
    const core::PowerSearch search{};
    benchmark::DoNotOptimize(search.run(evaluator, involved, baseline));
  }
}
BENCHMARK(BM_PowerSearchFull)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
