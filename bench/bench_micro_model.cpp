// Google-benchmark micro benchmarks of the hot paths: footprint
// construction, full model rebuild, incremental power/tilt updates,
// snapshot/restore, utility evaluation, batch candidate scoring, and one
// Algorithm-1 probe.
//
// Beyond the google-benchmark flags, the binary accepts:
//   --threads N   worker threads for the parallel-scoring benchmarks
//                 (0 = hardware concurrency; peeled before benchmark init)
//   --no-index    run the model benchmarks on the legacy all-sectors scan
//                 instead of the grid-major coverage index (baselines)
//   --json PATH   write a machine-readable summary of the batch-scoring
//                 throughput (evaluations/sec, wall time, speedup vs 1
//                 thread) plus the index-vs-legacy speedups on the
//                 demotion/rebuild workload to PATH
//   --scaling     add a thread-scaling sweep to the --json artifact: the
//                 batch-scoring pass at 1/2/4/8 workers, one keyed row
//                 each under "scaling" (t1/t2/t4/t8)
//   --metrics PATH  write the metrics-registry snapshot (JSON) to PATH
//   --trace PATH    record spans and write a Chrome trace-event file
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/parallel_evaluator.h"
#include "core/power_search.h"
#include "data/experiment.h"
#include "data/upgrade_scenarios.h"
#include "obs/profiler.h"
#include "obs/session.h"
#include "util/json.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace {

using namespace magus;

std::size_t g_threads = 1;  ///< --threads (resolved)
bool g_use_index = true;    ///< --no-index flips this off
bool g_scaling = false;     ///< --scaling adds the thread sweep to --json

[[nodiscard]] std::size_t micro_threads() { return g_threads; }

[[nodiscard]] data::MarketParams bench_params(std::uint64_t seed = 3) {
  data::MarketParams params;
  params.morphology = data::Morphology::kSuburban;
  params.seed = seed;
  params.region_size_m = 10'000.0;
  params.study_size_m = 4'000.0;
  return params;
}

/// Shared experiment so construction cost is paid once per binary run.
data::Experiment& shared_experiment() {
  static data::Experiment experiment{bench_params()};
  return experiment;
}

/// The shared model, bound to the coverage index unless --no-index.
model::AnalysisModel& shared_model() {
  model::AnalysisModel& model = shared_experiment().model();
  if (g_use_index) {
    model.market_context().ensure_coverage_index();
    model.set_use_coverage_index(true);
  } else {
    model.set_use_coverage_index(false);
  }
  return model;
}

void BM_FootprintBuild(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  const terrain::TerrainGridCache cache{experiment.terrain(),
                                        experiment.grid()};
  const radio::PropagationModel propagation{&experiment.terrain(),
                                            radio::SpmParams{}};
  const pathloss::FootprintBuilder builder{&propagation, &cache, 12'000.0};
  const net::Sector& sector = experiment.network().sector(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(sector, 0));
  }
}
BENCHMARK(BM_FootprintBuild)->Unit(benchmark::kMillisecond);

void BM_FullRebuild(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  const net::Configuration config = model.network().default_configuration();
  for (auto _ : state) {
    model.set_configuration(config);
  }
}
BENCHMARK(BM_FullRebuild)->Unit(benchmark::kMillisecond);

void BM_IncrementalPowerUp(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  double power = 46.0;
  for (auto _ : state) {
    power = power >= 48.0 ? 40.0 : power + 1.0;
    model.set_power(0, power);
  }
}
BENCHMARK(BM_IncrementalPowerUp)->Unit(benchmark::kMillisecond);

void BM_TiltSwap(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  int tilt = 0;
  for (auto _ : state) {
    tilt = tilt == 0 ? -1 : 0;
    model.set_tilt(0, tilt);
  }
}
BENCHMARK(BM_TiltSwap)->Unit(benchmark::kMillisecond);

void BM_SnapshotRestore(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  const auto snapshot = model.snapshot();
  for (auto _ : state) {
    model.restore(snapshot);
  }
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMillisecond);

void BM_UtilityEvaluation(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  model.freeze_uniform_ue_density();
  core::Evaluator evaluator{&model, core::Utility::performance()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate());
  }
}
BENCHMARK(BM_UtilityEvaluation)->Unit(benchmark::kMillisecond);

void BM_ImprovesRateProbe(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  geo::GridIndex g = 0;
  for (auto _ : state) {
    g = (g + 17) % model.cell_count();
    benchmark::DoNotOptimize(model.power_delta_improves_rate(0, 2.0, g));
  }
}
BENCHMARK(BM_ImprovesRateProbe);

void BM_PowerSearchFull(benchmark::State& state) {
  data::Experiment& experiment = shared_experiment();
  model::AnalysisModel& model = shared_model();
  core::ParallelEvaluator evaluator{&model, core::Utility::performance(),
                                    micro_threads(), g_use_index};
  const auto targets = data::upgrade_targets(
      experiment.market(), data::UpgradeScenario::kSingleSector);
  for (auto _ : state) {
    state.PauseTiming();
    model.set_configuration(model.network().default_configuration());
    model.freeze_uniform_ue_density();
    const auto baseline = core::capture_rates(model);
    for (const net::SectorId t : targets) model.set_active(t, false);
    const auto involved =
        experiment.network().neighbors_of(targets, 5'000.0);
    state.ResumeTiming();
    const core::PowerSearch search{};
    benchmark::DoNotOptimize(search.run(evaluator, involved, baseline));
  }
}
BENCHMARK(BM_PowerSearchFull)->Unit(benchmark::kMillisecond);

void BM_BatchScore(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  model.freeze_uniform_ue_density();
  core::ParallelEvaluator evaluator{
      &model, core::Utility::performance(),
      static_cast<std::size_t>(state.range(0)), g_use_index};
  core::CandidateBatch batch;
  for (std::size_t s = 0; s < model.network().sector_count(); ++s) {
    batch.push_back(core::Candidate::single(core::Mutation::power(
        static_cast<net::SectorId>(s),
        model.configuration()[static_cast<net::SectorId>(s)].power_dbm +
            2.0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.score(batch));
  }
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(evaluator.evaluation_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchScore)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// The sector whose outage demotes the most cells: the market's busiest
/// server. Upgrades target loaded sectors, and demoting one forces a
/// top-2 recompute in every cell it served or backed up — the
/// recompute_top2-dominated workload the coverage index exists for
/// (an edge sector that serves almost nothing would measure only the
/// unavoidable mW sweep, which the index shares with the legacy path).
net::SectorId busiest_sector(const model::AnalysisModel& model) {
  std::vector<int> served(
      static_cast<std::size_t>(model.network().sector_count()), 0);
  for (geo::GridIndex g = 0; g < model.cell_count(); ++g) {
    const net::SectorId s = model.serving_sector(g);
    if (s != net::kInvalidSector) ++served[static_cast<std::size_t>(s)];
  }
  net::SectorId best = 0;
  for (std::size_t s = 1; s < served.size(); ++s) {
    if (served[s] > served[static_cast<std::size_t>(best)]) {
      best = static_cast<net::SectorId>(s);
    }
  }
  return best;
}

/// The recompute_top2-dominated workload: taking the busiest sector
/// off-air demotes every cell it served (or backed up), forcing a top-2
/// recompute per affected cell; the reactivation restores the base state.
void BM_DemotionRebuild(benchmark::State& state) {
  model::AnalysisModel& model = shared_model();
  model.set_configuration(model.network().default_configuration());
  const net::SectorId target = busiest_sector(model);
  for (auto _ : state) {
    model.set_active(target, false);
    model.set_active(target, true);
  }
}
BENCHMARK(BM_DemotionRebuild)->Unit(benchmark::kMillisecond);

/// Timed batch-scoring sweep for the --json artifact: same work at 1 thread
/// and at --threads, reporting throughput and the measured speedup, plus
/// the index-vs-legacy comparison on the demotion/rebuild workload (both
/// paths measured in this run, whatever --no-index says, so one artifact
/// carries the whole story).
void write_json_summary(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  model::AnalysisModel& model = shared_experiment().model();
  model.market_context().ensure_coverage_index();
  const net::Configuration defaults = model.network().default_configuration();

  // Index-vs-legacy on the demotion (set_active off/on of the busiest
  // sector) and full-rebuild workloads. Identical mutation sequences;
  // only the scan paths differ.
  constexpr int kModelRounds = 40;
  model.set_configuration(defaults);
  const net::SectorId demotion_target = busiest_sector(model);
  const auto timed_demotion = [&](bool use_index) {
    model.set_use_coverage_index(use_index);
    model.set_configuration(defaults);
    model.set_active(demotion_target, false);  // warm up
    model.set_active(demotion_target, true);
    const auto start = Clock::now();
    for (int round = 0; round < kModelRounds; ++round) {
      model.set_active(demotion_target, false);
      model.set_active(demotion_target, true);
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  const auto timed_rebuild = [&](bool use_index) {
    model.set_use_coverage_index(use_index);
    model.set_configuration(defaults);  // warm up
    const auto start = Clock::now();
    for (int round = 0; round < kModelRounds; ++round) {
      model.set_configuration(defaults);
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  const double demotion_legacy_s = timed_demotion(false);
  const double demotion_index_s = timed_demotion(true);
  const double rebuild_legacy_s = timed_rebuild(false);
  const double rebuild_index_s = timed_rebuild(true);

  model.set_use_coverage_index(g_use_index);
  model.set_configuration(defaults);
  model.freeze_uniform_ue_density();

  core::CandidateBatch batch;
  for (std::size_t s = 0; s < model.network().sector_count(); ++s) {
    batch.push_back(core::Candidate::single(core::Mutation::power(
        static_cast<net::SectorId>(s),
        model.configuration()[static_cast<net::SectorId>(s)].power_dbm +
            2.0)));
  }
  constexpr int kRounds = 20;
  // Report the worker count each pass *actually* ran with (the evaluator's
  // pool size), not the requested flag value — they differ when --threads
  // is 0 (hardware concurrency) or absent.
  std::size_t serial_workers = 0;
  std::size_t parallel_workers = 0;
  const auto timed_run = [&](std::size_t threads, std::size_t& workers) {
    core::ParallelEvaluator evaluator{&model, core::Utility::performance(),
                                      threads, g_use_index};
    workers = evaluator.thread_count();
    (void)evaluator.score(batch);  // warm up worker clones
    const auto start = Clock::now();
    for (int round = 0; round < kRounds; ++round) {
      benchmark::DoNotOptimize(evaluator.score(batch));
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  const double serial_s = timed_run(1, serial_workers);
  const double parallel_s = timed_run(g_threads, parallel_workers);
  const auto evals = static_cast<double>(batch.size()) * kRounds;

  util::JsonObject summary;
  summary.set("meta", obs::run_metadata_json())
      .set("simd", util::simd::kBackendName)
      .set("bench", "bench_micro_model")
      .set("batch_size", static_cast<std::int64_t>(batch.size()))
      .set("rounds", static_cast<std::int64_t>(kRounds))
      .set("threads", static_cast<std::int64_t>(parallel_workers))
      .set("threads_serial_pass", static_cast<std::int64_t>(serial_workers))
      .set("use_coverage_index", g_use_index)
      .set("wall_s_1_thread", serial_s)
      .set("wall_s", parallel_s)
      .set("evals_per_sec_1_thread", evals / serial_s)
      .set("evals_per_sec", evals / parallel_s)
      .set("speedup_vs_1_thread", serial_s / parallel_s)
      .set("index_bytes",
           static_cast<std::int64_t>(model.market_context().index_bytes()))
      .set("demotion_ms_legacy", 1e3 * demotion_legacy_s / kModelRounds)
      .set("demotion_ms_index", 1e3 * demotion_index_s / kModelRounds)
      .set("demotion_speedup", demotion_legacy_s / demotion_index_s)
      .set("rebuild_ms_legacy", 1e3 * rebuild_legacy_s / kModelRounds)
      .set("rebuild_ms_index", 1e3 * rebuild_index_s / kModelRounds)
      .set("rebuild_speedup", rebuild_legacy_s / rebuild_index_s);

  if (g_scaling) {
    // Thread-scaling sweep: the same batch-scoring pass at 1/2/4/8
    // requested workers, keyed "t<requested>" (the regression gate
    // addresses nested keys by path, so rows are an object, not an
    // array). Each row reports the worker count the evaluator actually
    // resolved — on small machines t8 may run with fewer.
    util::JsonObject scaling;
    double base_s = 0.0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      std::size_t workers = 0;
      const double wall = timed_run(threads, workers);
      if (threads == 1) base_s = wall;
      util::JsonObject row;
      row.set("threads", static_cast<std::int64_t>(workers))
          .set("wall_s", wall)
          .set("evals_per_sec", evals / wall)
          .set("speedup_vs_1_thread", base_s / wall);
      scaling.set("t" + std::to_string(threads), std::move(row));
    }
    summary.set("scaling", std::move(scaling));
  }

  summary.write_file(path);
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  // Peel our flags; everything else goes to google-benchmark.
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  std::string profile_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto take_value = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
      if (argv[i][len] == '=') return argv[i] + len + 1;
      if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (std::strcmp(argv[i], "--no-index") == 0) {
      g_use_index = false;
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      g_scaling = true;
    } else if (const char* v = take_value("--threads")) {
      g_threads = util::resolve_thread_count(
          static_cast<std::size_t>(std::max(0L, std::strtol(v, nullptr, 10))));
    } else if (const char* v = take_value("--json")) {
      json_path = v;
    } else if (const char* v = take_value("--metrics")) {
      metrics_path = v;
    } else if (const char* v = take_value("--trace")) {
      trace_path = v;
    } else if (const char* v = take_value("--profile")) {
      profile_path = v;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  obs::ObsSession obs_session{metrics_path, trace_path, profile_path};
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_json_summary(json_path);
  return 0;
}
