// Path-loss generation pipeline bench: times a full-market path-loss
// database build three ways —
//   legacy:   the pre-batching per-cell kernel (FootprintBuilder::
//             build_reference), one sector x tilt matrix at a time,
//   serial:   the batched row pipeline on one thread
//             (ParallelFootprintBuilder{builder, 1}),
//   parallel: the batched pipeline fanned across --threads workers —
// then verifies the serial and parallel databases are bitwise identical
// (entry-for-entry and as saved bytes), times parallel save/load against
// their serial counterparts, and reports batched-vs-legacy fidelity stats.
// --json emits the committed BENCH_pathloss.json baseline.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pathloss/builder.h"
#include "pathloss/database.h"
#include "pathloss/parallel_builder.h"
#include "obs/profiler.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[nodiscard]] std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{
      "Path-loss build pipeline: legacy kernel vs batched serial vs "
      "batched parallel, with bitwise-identity checks"};
  bench::add_scale_flags(args);
  args.add_flag("tilts", "5",
                "tilt matrix size per sector (tilts centered on 0)");
  args.add_flag("range-km", "12", "per-sector footprint range cutoff (km)");
  args.add_flag("json", "", "optional JSON summary path");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::size_t threads = util::threads_from(args);

  // One suburban market; the builder is wired straight to the experiment's
  // terrain cache + propagation model so all three paths share the exact
  // same inputs.
  data::Experiment experiment{
      bench::market_params(data::Morphology::kSuburban, 0, scale, seed)};
  const pathloss::FootprintBuilder builder{
      &experiment.propagation(), &experiment.terrain_cache(),
      args.get_double("range-km") * 1000.0};

  std::vector<net::SectorId> sectors;
  for (const auto& sector : experiment.network().sectors()) {
    sectors.push_back(sector.id);
  }
  std::vector<radio::TiltIndex> tilts;
  const int tilt_count = std::max(1, static_cast<int>(args.get_int("tilts")));
  for (int i = 0; i < tilt_count; ++i) {
    tilts.push_back(static_cast<radio::TiltIndex>(i - tilt_count / 2));
  }
  const std::size_t matrices = sectors.size() * tilts.size();
  std::cout << "Path-loss build: " << sectors.size() << " sectors x "
            << tilts.size() << " tilts = " << matrices << " matrices, "
            << experiment.grid().cell_count() << " grid cells, threads="
            << threads << "\n\n";

  // Legacy serial baseline: the pre-batching per-cell kernel.
  const auto legacy_start = Clock::now();
  pathloss::PathLossDatabase legacy_db{experiment.grid()};
  for (const net::SectorId s : sectors) {
    for (const radio::TiltIndex t : tilts) {
      legacy_db.insert(s, t,
                       builder.build_reference(experiment.network().sector(s),
                                               t));
    }
  }
  const double wall_legacy = seconds_since(legacy_start);

  // Batched pipeline, serial then parallel.
  pathloss::ParallelFootprintBuilder serial_builder{builder, 1};
  const auto serial_start = Clock::now();
  pathloss::PathLossDatabase serial_db =
      serial_builder.build_database(experiment.network(), sectors, tilts);
  const double wall_serial = seconds_since(serial_start);

  pathloss::ParallelFootprintBuilder parallel_builder{builder, threads};
  const auto parallel_start = Clock::now();
  pathloss::PathLossDatabase parallel_db =
      parallel_builder.build_database(experiment.network(), sectors, tilts);
  const double wall_parallel = seconds_since(parallel_start);

  // Bitwise identity: every serial entry must equal its parallel twin.
  bool entries_identical = serial_db.entry_count() == parallel_db.entry_count();
  for (const net::SectorId s : sectors) {
    for (const radio::TiltIndex t : tilts) {
      const pathloss::SectorFootprint& a = serial_db.footprint(s, t);
      const pathloss::SectorFootprint& b = parallel_db.footprint(s, t);
      entries_identical =
          entries_identical && a.window().size() == b.window().size() &&
          std::memcmp(a.window().data(), b.window().data(),
                      a.window().size() * sizeof(float)) == 0;
    }
  }

  // Serialization: serial and parallel saves of the same database must be
  // byte-identical; parallel load must round-trip.
  const std::string serial_path = "bench_pathloss_serial.bin";
  const std::string parallel_path = "bench_pathloss_parallel.bin";
  const auto save1_start = Clock::now();
  serial_db.save(serial_path, 1);
  const double wall_save_serial = seconds_since(save1_start);
  const auto saven_start = Clock::now();
  parallel_db.save(parallel_path, threads);
  const double wall_save_parallel = seconds_since(saven_start);
  const bool files_identical = read_all(serial_path) == read_all(parallel_path);

  const auto load1_start = Clock::now();
  pathloss::PathLossDatabase loaded_serial =
      pathloss::PathLossDatabase::load(serial_path, 1);
  const double wall_load_serial = seconds_since(load1_start);
  const auto loadn_start = Clock::now();
  pathloss::PathLossDatabase loaded_parallel =
      pathloss::PathLossDatabase::load(parallel_path, threads);
  const double wall_load_parallel = seconds_since(loadn_start);
  const bool load_identical =
      loaded_serial.entry_count() == loaded_parallel.entry_count() &&
      loaded_parallel.entry_count() == matrices;
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());

  // Fidelity of the batched kernel against the legacy reference: the
  // batched path trades exact per-cell profile resampling for ray-quantized
  // radial profiles, so values differ by design — report by how much.
  const std::int32_t cells = experiment.grid().cell_count();
  std::size_t both = 0, disagree = 0;
  double abs_sum = 0.0, abs_max = 0.0;
  for (const net::SectorId s : sectors) {
    for (const radio::TiltIndex t : tilts) {
      const pathloss::SectorFootprint& ref = legacy_db.footprint(s, t);
      const pathloss::SectorFootprint& got = serial_db.footprint(s, t);
      for (std::int32_t g = 0; g < cells; ++g) {
        const bool a = ref.covers(g);
        const bool b = got.covers(g);
        if (a != b) {
          ++disagree;
        } else if (a) {
          ++both;
          const double delta = std::abs(static_cast<double>(ref.gain_db(g)) -
                                        static_cast<double>(got.gain_db(g)));
          abs_sum += delta;
          abs_max = std::max(abs_max, delta);
        }
      }
    }
  }
  const double mean_abs = both != 0 ? abs_sum / static_cast<double>(both) : 0.0;
  const double coverage_disagree_frac =
      disagree / static_cast<double>(static_cast<std::size_t>(cells) *
                                     matrices);

  util::TablePrinter table({"path", "wall (s)", "matrices/s", "speedup"});
  const auto rate = [&](double wall) {
    return util::TablePrinter::num(static_cast<double>(matrices) / wall, 1);
  };
  table.add_row({"legacy per-cell kernel", util::TablePrinter::num(wall_legacy, 3),
                 rate(wall_legacy), "1.00"});
  table.add_row({"batched, 1 thread", util::TablePrinter::num(wall_serial, 3),
                 rate(wall_serial),
                 util::TablePrinter::num(wall_legacy / wall_serial, 2)});
  table.add_row({"batched, " + std::to_string(threads) + " threads",
                 util::TablePrinter::num(wall_parallel, 3), rate(wall_parallel),
                 util::TablePrinter::num(wall_legacy / wall_parallel, 2)});
  table.print(std::cout);

  std::cout << "\nidentity: serial-vs-parallel entries "
            << (entries_identical ? "bitwise identical" : "DIFFER")
            << ", saved files "
            << (files_identical ? "byte identical" : "DIFFER") << '\n'
            << "save: " << wall_save_serial << " s serial, "
            << wall_save_parallel << " s parallel; load: " << wall_load_serial
            << " s serial, " << wall_load_parallel << " s parallel\n"
            << "fidelity vs legacy kernel: mean |d| " << mean_abs
            << " dB, max |d| " << abs_max << " dB, coverage disagreement "
            << coverage_disagree_frac * 100.0 << "%\n";

  if (const std::string json_path = args.get_string("json");
      !json_path.empty()) {
    util::JsonObject summary;
    summary.set("meta", obs::run_metadata_json());
    summary.set("bench", "pathloss_build");
    summary.set("threads", static_cast<std::int64_t>(threads));
    summary.set("sectors", static_cast<std::int64_t>(sectors.size()));
    summary.set("tilts", static_cast<std::int64_t>(tilts.size()));
    summary.set("matrices", static_cast<std::int64_t>(matrices));
    summary.set("grid_cells", static_cast<std::int64_t>(cells));
    summary.set("wall_s_legacy", wall_legacy);
    summary.set("wall_s_serial", wall_serial);
    summary.set("wall_s_parallel", wall_parallel);
    summary.set("matrices_per_sec_parallel",
                static_cast<double>(matrices) / wall_parallel);
    summary.set("speedup_serial_vs_legacy", wall_legacy / wall_serial);
    summary.set("speedup_parallel_vs_legacy", wall_legacy / wall_parallel);
    summary.set("speedup_parallel_vs_serial", wall_serial / wall_parallel);
    summary.set("wall_s_save_serial", wall_save_serial);
    summary.set("wall_s_save_parallel", wall_save_parallel);
    summary.set("wall_s_load_serial", wall_load_serial);
    summary.set("wall_s_load_parallel", wall_load_parallel);
    summary.set("entries_identical", entries_identical);
    summary.set("files_identical", files_identical);
    summary.set("load_round_trip_ok", load_identical);
    summary.set("fidelity_mean_abs_db", mean_abs);
    summary.set("fidelity_max_abs_db", abs_max);
    summary.set("coverage_disagree_frac", coverage_disagree_frac);
    summary.write_file(json_path);
    std::cout << "JSON summary written to " << json_path << '\n';
  }

  return entries_identical && files_identical && load_identical ? 0 : 1;
}
