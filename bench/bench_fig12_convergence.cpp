// Figure 12: speed of convergence of the four strategies. Prints the
// utility-vs-step series for proactive model-based, reactive model-based,
// reactive feedback-based, and no tuning, plus the idealized / realistic
// feedback step counts (paper: 27 idealized, ~310 realistic, vs 1 step for
// model-based approaches).
#include <chrono>

#include "bench_common.h"
#include "core/strategies.h"
#include "obs/profiler.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 12: convergence speed of tuning strategies"};
  bench::add_scale_flags(args);
  args.add_flag("post-steps", "40", "steps plotted after the upgrade");
  args.add_flag("no-index", "false",
                "plan on the legacy all-sectors scan instead of the "
                "coverage index (identical plan; baseline timing)");
  args.add_flag("csv", "", "optional CSV output path");
  args.add_flag("json", "", "optional JSON summary path (timing + speedup)");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::size_t threads = util::threads_from(args);

  data::Experiment experiment{bench::market_params(
      data::Morphology::kSuburban, 0, scale, seed)};

  // Find C_after first (joint tuning), then build the strategy timelines.
  // The planning run is timed so --json can report evaluation throughput;
  // every run starts from the same initial configuration, so the plan is
  // identical for any thread count.
  const bool use_index = !args.get_bool("no-index");
  const net::Configuration initial = experiment.model().configuration();
  const auto timed_scenario = [&](std::size_t run_threads) {
    experiment.model().set_configuration(initial);
    const auto start = std::chrono::steady_clock::now();
    bench::ScenarioOutcome run = bench::run_scenario(
        experiment, data::UpgradeScenario::kSingleSector,
        core::TuningMode::kJoint, core::Utility::performance(), run_threads,
        use_index);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    return std::pair{run, wall.count()};
  };
  const auto [outcome, wall_s] = timed_scenario(threads);

  if (const std::string json_path = args.get_string("json");
      !json_path.empty()) {
    // Reference run at one thread for the speedup + identical-result check.
    const auto [reference, wall_1] =
        threads == 1 ? std::pair{outcome, wall_s} : timed_scenario(1);
    const bool identical =
        reference.plan.search.config == outcome.plan.search.config &&
        reference.plan.search.utility == outcome.plan.search.utility &&
        reference.candidate_evaluations == outcome.candidate_evaluations;
    util::JsonObject summary;
    summary.set("meta", obs::run_metadata_json());
    summary.set("bench", "fig12_convergence");
    summary.set("threads", static_cast<std::int64_t>(threads));
    summary.set("use_coverage_index", use_index);
    summary.set("candidate_evaluations",
                static_cast<std::int64_t>(outcome.candidate_evaluations));
    summary.set("wall_s_1_thread", wall_1);
    summary.set("wall_s", wall_s);
    summary.set("evals_per_sec_1_thread",
                static_cast<double>(reference.candidate_evaluations) / wall_1);
    summary.set("evals_per_sec",
                static_cast<double>(outcome.candidate_evaluations) / wall_s);
    summary.set("speedup_vs_1_thread", wall_1 / wall_s);
    summary.set("identical_result", identical);
    summary.write_file(json_path);
    std::cout << "JSON summary written to " << json_path << '\n';
  }

  core::Evaluator evaluator{&experiment.model(),
                            core::Utility::performance()};
  experiment.model().set_configuration(outcome.plan.c_before);
  core::TimelineOptions options;
  options.post_steps = static_cast<int>(args.get_int("post-steps"));
  options.feedback.max_steps = options.post_steps * 4;
  const auto timelines = core::build_strategy_timelines(
      evaluator, outcome.plan.targets, outcome.plan.involved,
      outcome.plan.search.config, options);

  std::cout << "Figure 12 reproduction (suburban, scenario (a))\n\n";
  util::TablePrinter table({"step", "proactive-model", "reactive-model",
                            "reactive-feedback", "no-tuning"});
  const auto series_of = [&](core::StrategyKind kind) {
    for (const auto& t : timelines) {
      if (t.kind == kind) return &t;
    }
    return static_cast<const core::StrategyTimeline*>(nullptr);
  };
  const auto* proactive = series_of(core::StrategyKind::kProactiveModel);
  const auto* reactive = series_of(core::StrategyKind::kReactiveModel);
  const auto* feedback = series_of(core::StrategyKind::kReactiveFeedback);
  const auto* none = series_of(core::StrategyKind::kNoTuning);

  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"step", "proactive_model", "reactive_model",
                    "reactive_feedback", "no_tuning"});
  }
  for (std::size_t i = 0; i < proactive->series.size(); ++i) {
    table.add_row({std::to_string(proactive->series[i].step),
                   util::TablePrinter::num(proactive->series[i].utility, 2),
                   util::TablePrinter::num(reactive->series[i].utility, 2),
                   util::TablePrinter::num(feedback->series[i].utility, 2),
                   util::TablePrinter::num(none->series[i].utility, 2)});
    if (csv) {
      csv->write_row({std::to_string(proactive->series[i].step),
                      util::CsvWriter::cell(proactive->series[i].utility),
                      util::CsvWriter::cell(reactive->series[i].utility),
                      util::CsvWriter::cell(feedback->series[i].utility),
                      util::CsvWriter::cell(none->series[i].utility)});
    }
  }
  table.print(std::cout);

  std::cout << "\nConvergence cost:\n"
            << "  proactive model-based:  0 steps after the upgrade "
               "(pre-tuned; utility never dips below f(C_after))\n"
            << "  reactive model-based:   " << reactive->convergence_steps
            << " step (one configuration push)\n"
            << "  reactive feedback:      " << feedback->convergence_steps
            << " idealized steps, " << feedback->probe_count
            << " on-air measurement probes (realistic)\n"
            << "Paper: 27 idealized / ~310 realistic feedback steps vs 1 for "
               "model-based; at minutes per feedback step that is hours of "
               "degraded service.\n";
  return 0;
}
