// Figure 12: speed of convergence of the four strategies. Prints the
// utility-vs-step series for proactive model-based, reactive model-based,
// reactive feedback-based, and no tuning, plus the idealized / realistic
// feedback step counts (paper: 27 idealized, ~310 realistic, vs 1 step for
// model-based approaches).
#include "bench_common.h"
#include "core/strategies.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 12: convergence speed of tuning strategies"};
  bench::add_scale_flags(args);
  args.add_flag("post-steps", "40", "steps plotted after the upgrade");
  args.add_flag("csv", "", "optional CSV output path");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  data::Experiment experiment{bench::market_params(
      data::Morphology::kSuburban, 0, scale, seed)};

  // Find C_after first (joint tuning), then build the strategy timelines.
  const auto outcome = bench::run_scenario(
      experiment, data::UpgradeScenario::kSingleSector,
      core::TuningMode::kJoint, core::Utility::performance());

  core::Evaluator evaluator{&experiment.model(),
                            core::Utility::performance()};
  experiment.model().set_configuration(outcome.plan.c_before);
  core::TimelineOptions options;
  options.post_steps = static_cast<int>(args.get_int("post-steps"));
  options.feedback.max_steps = options.post_steps * 4;
  const auto timelines = core::build_strategy_timelines(
      evaluator, outcome.plan.targets, outcome.plan.involved,
      outcome.plan.search.config, options);

  std::cout << "Figure 12 reproduction (suburban, scenario (a))\n\n";
  util::TablePrinter table({"step", "proactive-model", "reactive-model",
                            "reactive-feedback", "no-tuning"});
  const auto series_of = [&](core::StrategyKind kind) {
    for (const auto& t : timelines) {
      if (t.kind == kind) return &t;
    }
    return static_cast<const core::StrategyTimeline*>(nullptr);
  };
  const auto* proactive = series_of(core::StrategyKind::kProactiveModel);
  const auto* reactive = series_of(core::StrategyKind::kReactiveModel);
  const auto* feedback = series_of(core::StrategyKind::kReactiveFeedback);
  const auto* none = series_of(core::StrategyKind::kNoTuning);

  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"step", "proactive_model", "reactive_model",
                    "reactive_feedback", "no_tuning"});
  }
  for (std::size_t i = 0; i < proactive->series.size(); ++i) {
    table.add_row({std::to_string(proactive->series[i].step),
                   util::TablePrinter::num(proactive->series[i].utility, 2),
                   util::TablePrinter::num(reactive->series[i].utility, 2),
                   util::TablePrinter::num(feedback->series[i].utility, 2),
                   util::TablePrinter::num(none->series[i].utility, 2)});
    if (csv) {
      csv->write_row({std::to_string(proactive->series[i].step),
                      util::CsvWriter::cell(proactive->series[i].utility),
                      util::CsvWriter::cell(reactive->series[i].utility),
                      util::CsvWriter::cell(feedback->series[i].utility),
                      util::CsvWriter::cell(none->series[i].utility)});
    }
  }
  table.print(std::cout);

  std::cout << "\nConvergence cost:\n"
            << "  proactive model-based:  0 steps after the upgrade "
               "(pre-tuned; utility never dips below f(C_after))\n"
            << "  reactive model-based:   " << reactive->convergence_steps
            << " step (one configuration push)\n"
            << "  reactive feedback:      " << feedback->convergence_steps
            << " idealized steps, " << feedback->probe_count
            << " on-air measurement probes (realistic)\n"
            << "Paper: 27 idealized / ~310 realistic feedback steps vs 1 for "
               "model-based; at minutes per feedback step that is hours of "
               "degraded service.\n";
  return 0;
}
