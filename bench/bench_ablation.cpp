// Ablations of Magus's design choices (DESIGN.md §3):
//   1. tilt model: the paper's single-delta-matrix approximation vs the
//      faithful per-(sector, tilt) rebuild — recovery and build cost;
//   2. search pruning: Algorithm 1's degraded-grid candidate filter vs
//      evaluating every neighbor at every step (effect on probe count);
//   3. grid resolution: recovery estimate stability at 100 m vs 200 m.
#include <chrono>

#include "bench_common.h"
#include "core/power_search.h"
#include "core/tilt_search.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Ablations: tilt approximation, pruning, resolution"};
  bench::add_scale_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const std::size_t threads = util::threads_from(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const data::MarketParams params = bench::market_params(
      data::Morphology::kSuburban, 0, scale, seed);

  // --- Ablation 1: tilt-delta approximation vs faithful rebuild. ---
  {
    std::cout << "[1] Tilt model: paper's global delta matrix vs faithful "
                 "per-tilt rebuild\n";
    util::TablePrinter table(
        {"tilt model", "tilt recovery", "wall-clock (s)"});

    // Faithful: the experiment's BuildingProvider rebuilds per tilt.
    {
      const auto start = Clock::now();
      data::Experiment experiment{params};
      const auto outcome = bench::run_scenario(
          experiment, data::UpgradeScenario::kSingleSector,
          core::TuningMode::kTilt, core::Utility::performance(), threads);
      table.add_row({"faithful rebuild",
                     util::TablePrinter::percent(outcome.recovery),
                     util::TablePrinter::num(seconds_since(start), 1)});
    }
    // Paper mode: ApproxTiltProvider wraps the tilt-0 matrices.
    {
      const auto start = Clock::now();
      data::Experiment experiment{params};
      pathloss::ApproxTiltProvider approx{
          &experiment.provider(), &experiment.network(),
          pathloss::TiltDeltaModel{
              experiment.network().sector(0).antenna,
              experiment.network().sector(0).height_m}};
      model::AnalysisModel model{&experiment.network(), &approx};
      core::Evaluator evaluator{&model, core::Utility::performance()};
      core::PlannerOptions options;
      options.mode = core::TuningMode::kTilt;
      options.threads = threads;
      core::MagusPlanner planner{&evaluator, options};
      const auto targets = data::upgrade_targets(
          experiment.market(), data::UpgradeScenario::kSingleSector);
      const auto plan = planner.plan_upgrade(targets);
      table.add_row({"paper delta-matrix",
                     util::TablePrinter::percent(plan.recovery),
                     util::TablePrinter::num(seconds_since(start), 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // --- Ablation 2: degraded-grid pruning in Algorithm 1. ---
  {
    std::cout << "[2] Search pruning: Algorithm 1's candidate filter\n";
    data::Experiment experiment{params};
    const auto targets = data::upgrade_targets(
        experiment.market(), data::UpgradeScenario::kSingleSector);

    core::Evaluator evaluator{&experiment.model(),
                              core::Utility::performance()};
    core::ParallelEvaluator parallel{&experiment.model(),
                                     core::Utility::performance(), threads};
    core::MagusPlanner planner{&evaluator, core::PlannerOptions{}};
    const auto involved = planner.involved_sectors(targets);

    model::AnalysisModel& model = experiment.model();
    model.set_configuration(model.network().default_configuration());
    model.freeze_uniform_ue_density();
    const auto baseline = core::capture_rates(model);
    for (const net::SectorId t : targets) model.set_active(t, false);
    const auto upgrade_snapshot = model.snapshot();

    // Pruned (Algorithm 1 as in the paper).
    const core::PowerSearch pruned{};
    const auto with_pruning = pruned.run(parallel, involved, baseline);

    // Unpruned: an unreachable baseline rate everywhere makes every grid
    // look degraded, so the candidate filter never removes anyone.
    model.restore(upgrade_snapshot);
    const std::vector<double> all_degraded(
        static_cast<std::size_t>(model.cell_count()), 1e18);
    const auto without_pruning =
        pruned.run(parallel, involved, all_degraded);

    util::TablePrinter table({"variant", "utility", "accepted steps",
                              "model evaluations"});
    table.add_row({"with degraded-grid filter",
                   util::TablePrinter::num(with_pruning.utility, 2),
                   std::to_string(with_pruning.accepted_steps),
                   std::to_string(with_pruning.candidate_evaluations)});
    table.add_row({"without filter (all grids)",
                   util::TablePrinter::num(without_pruning.utility, 2),
                   std::to_string(without_pruning.accepted_steps),
                   std::to_string(without_pruning.candidate_evaluations)});
    table.print(std::cout);
    std::cout << '\n';
  }

  // --- Ablation 3: grid resolution. ---
  {
    std::cout << "[3] Grid resolution: recovery stability\n";
    util::TablePrinter table({"cell size", "grids", "power recovery"});
    for (const double cell_m : {100.0, 200.0}) {
      data::MarketParams p = params;
      p.cell_size_m = cell_m;
      data::Experiment experiment{p};
      const auto outcome = bench::run_scenario(
          experiment, data::UpgradeScenario::kSingleSector,
          core::TuningMode::kPower, core::Utility::performance(), threads);
      table.add_row({util::TablePrinter::num(cell_m, 0) + " m",
                     std::to_string(experiment.grid().cell_count()),
                     util::TablePrinter::percent(outcome.recovery)});
    }
    table.print(std::cout);
  }
  return 0;
}
