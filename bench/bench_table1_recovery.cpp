// Table 1: recovery ratio by area type (rural / suburban / urban), upgrade
// scenario ((a) single sector, (b) full site, (c) four corners) and tuning
// type (power / tilt / joint), averaged over the markets.
//
// Paper shapes to check: suburban gains dominate (noise-limited rural and
// interference-limited urban both recover less); joint tuning beats both
// power-only and tilt-only, roughly doubling power-only on average.
#include <map>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;
  using bench::kAllMorphologies;

  util::ArgParser args{"Table 1: recovery ratios across areas and tunings"};
  bench::add_scale_flags(args);
  args.add_flag("csv", "", "optional CSV output path");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const std::vector<core::TuningMode> tunings = {
      core::TuningMode::kPower, core::TuningMode::kTilt,
      core::TuningMode::kJoint};

  // (tuning, morphology, scenario) -> recovery samples across markets.
  std::map<std::tuple<int, int, int>, util::RunningStats> cells;

  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"market", "morphology", "scenario", "tuning", "f_before",
                    "f_upgrade", "f_after", "recovery"});
  }

  std::cout << "Table 1 reproduction: " << scale.markets << " market(s), "
            << scale.region_km << " km regions, " << scale.study_km
            << " km study areas (seed " << seed << ")\n"
            << "Running " << scale.markets * 3 * 3 * tunings.size()
            << " mitigation plans...\n\n";

  for (int market = 0; market < scale.markets; ++market) {
    for (std::size_t m = 0; m < kAllMorphologies.size(); ++m) {
      const data::Morphology morphology = kAllMorphologies[m];
      data::Experiment experiment{
          bench::market_params(morphology, market, scale, seed)};
      const auto scenarios = data::all_scenarios();
      for (std::size_t s = 0; s < scenarios.size(); ++s) {
        for (std::size_t t = 0; t < tunings.size(); ++t) {
          const auto outcome =
              bench::run_scenario(experiment, scenarios[s], tunings[t],
                                  core::Utility::performance());
          cells[{static_cast<int>(t), static_cast<int>(m),
                 static_cast<int>(s)}]
              .add(outcome.recovery);
          if (csv) {
            csv->write_row(
                {std::to_string(market),
                 std::string(data::morphology_name(morphology)),
                 std::string(data::scenario_name(scenarios[s])),
                 core::tuning_mode_name(tunings[t]),
                 util::CsvWriter::cell(outcome.f_before),
                 util::CsvWriter::cell(outcome.f_upgrade),
                 util::CsvWriter::cell(outcome.f_after),
                 util::CsvWriter::cell(outcome.recovery)});
          }
        }
      }
    }
  }

  // Paper-style table: one row per tuning type, columns = area x scenario.
  util::TablePrinter table({"Types of Tuning", "Rural (a)", "Rural (b)",
                            "Rural (c)", "Suburban (a)", "Suburban (b)",
                            "Suburban (c)", "Urban (a)", "Urban (b)",
                            "Urban (c)"});
  const std::vector<std::string> tuning_names = {"Power-Tuning",
                                                 "Tilt-Tuning", "Joint"};
  for (std::size_t t = 0; t < tunings.size(); ++t) {
    std::vector<std::string> row = {tuning_names[t]};
    for (int m = 0; m < 3; ++m) {
      for (int s = 0; s < 3; ++s) {
        row.push_back(util::TablePrinter::percent(
            cells[{static_cast<int>(t), m, s}].mean()));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Shape summary vs the paper.
  const auto area_mean = [&](int tuning, int morphology) {
    util::RunningStats stats;
    for (int s = 0; s < 3; ++s) {
      stats.add(cells[{tuning, morphology, s}].mean());
    }
    return stats.mean();
  };
  std::cout << "\nShape checks (paper expectations):\n";
  const double power_rural = area_mean(0, 0);
  const double power_suburban = area_mean(0, 1);
  const double power_urban = area_mean(0, 2);
  std::cout << "  power-tuning by area: rural "
            << util::TablePrinter::percent(power_rural) << ", suburban "
            << util::TablePrinter::percent(power_suburban) << ", urban "
            << util::TablePrinter::percent(power_urban)
            << (power_suburban > power_rural && power_suburban > power_urban
                    ? "  [suburban highest: MATCHES paper]"
                    : "  [paper: suburban highest]")
            << '\n';
  double joint_total = 0.0;
  double power_total = 0.0;
  double tilt_total = 0.0;
  for (int m = 0; m < 3; ++m) {
    joint_total += area_mean(2, m);
    power_total += area_mean(0, m);
    tilt_total += area_mean(1, m);
  }
  std::cout << "  joint vs power average: "
            << util::TablePrinter::num(joint_total / std::max(1e-9, power_total), 2)
            << "x (paper: ~2x)\n"
            << "  tilt-only vs power-only: "
            << (tilt_total < power_total
                    ? "tilt weaker [MATCHES paper]"
                    : "tilt stronger [paper: tilt weaker on average]")
            << '\n';
  return 0;
}
