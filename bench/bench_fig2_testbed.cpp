// Figure 2: LTE-testbed demonstration of reconfiguration benefits.
//
// Reproduces both §3 scenarios: finds the optimal attenuations before and
// after the target eNodeB goes down (exhaustive search, like the paper's
// methodology), and prints the no-tuning / reactive / proactive utility
// timelines around the upgrade.
#include <iostream>
#include <memory>

#include "obs/session.h"
#include "testbed/scenarios.h"
#include "util/args.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

void print_scenario(const magus::testbed::ScenarioTimelines& result,
                    magus::util::CsvWriter* csv) {
  using magus::util::TablePrinter;
  std::cout << "=== " << result.name << " ===\n";
  std::cout << "optimal attenuations before upgrade: [";
  for (std::size_t i = 0; i < result.attenuation_before.size(); ++i) {
    std::cout << (i ? ", " : "") << "L=" << result.attenuation_before[i];
  }
  std::cout << "]\noptimal attenuations after upgrade:  [";
  for (std::size_t i = 0; i < result.attenuation_after.size(); ++i) {
    std::cout << (i ? ", " : "") << "L=" << result.attenuation_after[i];
  }
  std::cout << "]\n";
  std::cout << "f(C_before) = " << TablePrinter::num(result.f_before, 2)
            << ", f(C_upgrade) = " << TablePrinter::num(result.f_upgrade, 2)
            << ", f(C_after) = " << TablePrinter::num(result.f_after, 2)
            << "\n\n";

  TablePrinter table({"time", "no tuning", "reactive", "proactive"});
  for (std::size_t i = 0; i < result.time_steps.size(); ++i) {
    table.add_row({std::to_string(result.time_steps[i]),
                   TablePrinter::num(result.no_tuning[i], 2),
                   TablePrinter::num(result.reactive[i], 2),
                   TablePrinter::num(result.proactive[i], 2)});
    if (csv) {
      csv->write_row({result.name, std::to_string(result.time_steps[i]),
                      magus::util::CsvWriter::cell(result.no_tuning[i]),
                      magus::util::CsvWriter::cell(result.reactive[i]),
                      magus::util::CsvWriter::cell(result.proactive[i])});
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 2: testbed reconfiguration timelines"};
  args.add_flag("seed", "7", "testbed emulation seed");
  args.add_flag("csv", "", "optional CSV output path");
  util::add_obs_flags(args);
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"scenario", "time", "no_tuning", "reactive",
                    "proactive"});
  }

  std::cout << "Figure 2 reproduction (seed " << seed << ")\n"
            << "Utility: sum of log10(TCP rate in Mb/s) over UEs\n\n";

  testbed::ScenarioOptions options;
  {
    int target = -1;
    testbed::Testbed bed = testbed::make_scenario1(seed, &target);
    print_scenario(testbed::run_scenario(std::move(bed), target,
                                         "Scenario 1 (2 eNodeBs)", options),
                   csv.get());
  }
  {
    int target = -1;
    testbed::Testbed bed = testbed::make_scenario2(seed, &target);
    print_scenario(testbed::run_scenario(std::move(bed), target,
                                         "Scenario 2 (3 eNodeBs)", options),
                   csv.get());
  }

  std::cout << "Paper shape check: proactive reaches f(C_after) at the\n"
            << "upgrade instant, reactive converges over several steps, and\n"
            << "no-tuning stays at f(C_upgrade). In Scenario 2, interference\n"
            << "keeps at least one survivor below maximum power.\n";
  return 0;
}
