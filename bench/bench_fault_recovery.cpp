// Fault recovery: reactive-feedback vs contingency-table vs re-plan when an
// unplanned neighbor outage strikes in the middle of a migration window.
//
// Extends the Table 1 / §8 story to faults *during* the upgrade: the
// paper's precomputed-contingency idea ("pre-computing configurations for
// different outages") recovers with zero computation delay, a local re-plan
// pays the model-search cost but needs no contingency storage, and pure
// reactive feedback pays a live trial-and-measure window per probe while
// the coverage hole persists. Reported per strategy: recovery time,
// lost-service UE-seconds, and the final utility of the window.
// With --json, additionally runs a campaign-level crash/resume scenario
// (write-ahead journal, mid-campaign kill, resume, quarantine breaker,
// deadline watchdog) and writes the CampaignResult summary — the committed
// BENCH_recovery.json baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/contingency.h"
#include "core/strategies.h"
#include "exec/campaign_runner.h"
#include "exec/executor.h"
#include "exec/fault_injector.h"
#include "exec/journal.h"
#include "obs/profiler.h"
#include "traffic/campaign.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/table.h"

namespace {

/// The involved sector whose solo outage hurts C_before utility the most —
/// the interesting neighbor to lose mid-migration.
magus::net::SectorId worst_neighbor(
    magus::core::Evaluator& evaluator,
    std::span<const magus::net::SectorId> involved) {
  using namespace magus;
  model::AnalysisModel& model = evaluator.model();
  net::SectorId worst = involved.front();
  double worst_utility = std::numeric_limits<double>::infinity();
  for (const net::SectorId s : involved) {
    const auto snapshot = model.snapshot();
    model.set_active(s, false);
    const double utility = evaluator.evaluate();
    model.restore(snapshot);
    if (utility < worst_utility) {
      worst_utility = utility;
      worst = s;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace magus;
  using Clock = std::chrono::steady_clock;

  util::ArgParser args{
      "Fault recovery: feedback vs contingency vs re-plan mid-migration"};
  bench::add_scale_flags(args);
  args.add_flag("window-s", "60", "live measurement window per feedback probe");
  args.add_flag("csv", "", "optional CSV output path");
  args.add_flag("exec-json", "",
                "optional path for the structured ExecutionTrace JSON");
  args.add_flag("json", "",
                "optional path for the campaign-level crash/resume summary");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const double window_s = args.get_double("window-s");

  std::unique_ptr<util::CsvWriter> csv;
  if (const std::string path = args.get_string("csv"); !path.empty()) {
    csv = std::make_unique<util::CsvWriter>(path);
    csv->write_row({"market", "strategy", "recovery_time_s",
                    "lost_ue_seconds", "final_utility", "completed",
                    "recovery_actions"});
  }

  util::TablePrinter table{{"market", "strategy", "recovery_s", "lost_ue_s",
                            "final_utility", "completed", "actions"}};

  // Full per-run ExecutionTrace export (--exec-json): one record per
  // (market, strategy) with the complete step-by-step recovery story.
  const std::string exec_json_path = args.get_string("exec-json");
  util::JsonArray exec_runs;
  const auto record_trace = [&](int market, const char* strategy,
                                const exec::ExecutionTrace& trace) {
    if (exec_json_path.empty()) return;
    util::JsonObject entry;
    entry.set("market", static_cast<std::int64_t>(market));
    entry.set("strategy", strategy);
    entry.set("trace", trace.to_json());
    exec_runs.push_back(std::move(entry));
  };

  for (int market = 0; market < scale.markets; ++market) {
    data::Experiment experiment{bench::market_params(
        data::Morphology::kSuburban, market, scale, seed)};
    core::Evaluator evaluator{&experiment.model(),
                              core::Utility::performance()};
    core::PlannerOptions popts;
    popts.mode = core::TuningMode::kPower;
    const core::MagusPlanner planner{&evaluator, popts};
    const auto targets = data::upgrade_targets(
        experiment.market(), data::UpgradeScenario::kSingleSector);
    const auto involved = planner.involved_sectors(targets);
    if (involved.empty()) continue;

    // Pick the most damaging neighbor and precompute its contingency
    // BEFORE the main plan, so the plan's frozen UE density is the one the
    // executor replays against.
    experiment.model().freeze_uniform_ue_density();
    const net::SectorId failed = worst_neighbor(evaluator, involved);
    const std::vector<std::vector<net::SectorId>> outages = {{failed}};
    const auto contingencies = core::ContingencyTable::build(planner, outages);
    const core::MitigationPlan plan = planner.plan_upgrade(targets);
    const int fault_step =
        std::max(1, static_cast<int>(plan.gradual.steps.size() / 2));

    exec::ExecutorOptions options;
    // Clean pushes land exactly on the plan's predicted per-step utility
    // (same deterministic evaluator), so the divergence tolerance only has
    // to clear floating-point noise. At market scale the log-sum utility is
    // O(1e5) and a single-sector outage moves it by O(1e-3) relative — a
    // percent-level tolerance would swallow the fault entirely.
    options.utility_tolerance = 1e-6;
    const exec::MigrationExecutor executor{&evaluator, options};
    const auto run = [&](const core::ContingencyTable* tab,
                         const core::MagusPlanner* replanner) {
      exec::ScriptedFaultInjector injector;
      injector.add(exec::FaultEvent{exec::FaultKind::kSectorOutage,
                                    fault_step, failed});
      return executor.execute(plan.gradual, targets, seed + 77, &injector,
                              tab, replanner);
    };

    struct Row {
      std::string strategy;
      double recovery_s = 0.0;
      double lost_ue_s = 0.0;
      double final_utility = 0.0;
      bool completed = false;
      int actions = 0;
    };
    std::vector<Row> rows;

    // Contingency table: the precomputed configuration is pushed with zero
    // computation delay; recovery costs one configuration push.
    {
      const exec::ExecutionTrace trace = run(&contingencies, nullptr);
      record_trace(market, "contingency", trace);
      rows.push_back({"contingency", options.push_backoff.initial_delay_s,
                      trace.total_lost_service_ue_seconds,
                      trace.final_utility, trace.completed,
                      trace.recovery_action_count()});
    }

    // Bounded local re-plan: no stored contingency, the model search runs
    // at fault time — recovery costs the (measured) search plus one push.
    {
      const auto start = Clock::now();
      const exec::ExecutionTrace trace = run(nullptr, &planner);
      const double compute_s =
          std::chrono::duration<double>(Clock::now() - start).count();
      record_trace(market, "replan", trace);
      rows.push_back({"replan", compute_s,
                      trace.total_lost_service_ue_seconds,
                      trace.final_utility, trace.completed,
                      trace.recovery_action_count()});
    }

    // Reactive feedback: the window aborts (rollback), then SON-style
    // trial-and-measure tuning crawls out of the hole — every probe costs
    // a live measurement window during which the outage cells stay dark.
    {
      const exec::ExecutionTrace trace = run(nullptr, nullptr);
      record_trace(market, "feedback", trace);
      const auto service = experiment.model().service_map();
      const auto density = experiment.model().ue_density();
      double dark_ues = 0.0;
      for (std::size_t i = 0; i < service.size(); ++i) {
        if (service[i] == net::kInvalidSector && !density.empty()) {
          dark_ues += density[i];
        }
      }
      core::FeedbackOptions fopts;
      fopts.max_steps = 60;
      const core::FeedbackRun feedback =
          core::run_feedback_search(evaluator, involved, fopts);
      const double recovery_s =
          static_cast<double>(feedback.probe_count) * window_s;
      rows.push_back({"feedback", recovery_s,
                      trace.total_lost_service_ue_seconds +
                          dark_ues * recovery_s,
                      feedback.utility_per_step.empty()
                          ? trace.final_utility
                          : feedback.utility_per_step.back(),
                      trace.completed, trace.recovery_action_count()});
    }

    for (const Row& row : rows) {
      table.add_row({std::to_string(market), row.strategy,
                     util::CsvWriter::cell(row.recovery_s),
                     util::CsvWriter::cell(row.lost_ue_s),
                     util::CsvWriter::cell(row.final_utility),
                     row.completed ? "yes" : "no",
                     std::to_string(row.actions)});
      if (csv) {
        csv->write_row({std::to_string(market), row.strategy,
                        util::CsvWriter::cell(row.recovery_s),
                        util::CsvWriter::cell(row.lost_ue_s),
                        util::CsvWriter::cell(row.final_utility),
                        row.completed ? "1" : "0",
                        std::to_string(row.actions)});
      }
    }
  }

  if (!exec_json_path.empty()) {
    util::JsonObject exec_json;
    exec_json.set("meta", obs::run_metadata_json());
    exec_json.set("bench", "fault_recovery");
    exec_json.set("runs", std::move(exec_runs));
    exec_json.write_file(exec_json_path);
    std::cout << "ExecutionTrace JSON written to " << exec_json_path << "\n\n";
  }

  // ---- Campaign-level crash/resume summary (--json) ----------------------
  // A three-upgrade campaign on market 0 with a flapping neighbor: the
  // same sector drops during the first two upgrades, tripping the
  // quarantine breaker; an expensive retry rung plus a tight window budget
  // forces a deadline skip; and the whole campaign is killed at its
  // journal midpoint and resumed — the summary reports windows completed,
  // resumes, quarantine events, deadline skips, and whether the resumed
  // traces match the uninterrupted baseline bit for bit.
  if (const std::string json_path = args.get_string("json");
      !json_path.empty()) {
    data::Experiment experiment{bench::market_params(
        data::Morphology::kSuburban, 0, scale, seed)};
    core::Evaluator evaluator{&experiment.model(),
                              core::Utility::performance()};
    core::PlannerOptions popts;
    popts.mode = core::TuningMode::kPower;
    const core::MagusPlanner planner{&evaluator, popts};
    experiment.model().freeze_uniform_ue_density();

    const auto primary_targets = data::upgrade_targets(
        experiment.market(), data::UpgradeScenario::kSingleSector);
    const auto primary_involved = planner.involved_sectors(primary_targets);
    if (primary_involved.size() < 3) {
      std::cerr << "campaign summary skipped: market too small\n";
      return 0;
    }
    const net::SectorId flapping =
        worst_neighbor(evaluator, primary_involved);

    std::vector<traffic::PlannedUpgrade> upgrades;
    {
      traffic::PlannedUpgrade first;
      first.targets.assign(primary_targets.begin(), primary_targets.end());
      first.involved = primary_involved;
      upgrades.push_back(std::move(first));
    }
    for (const net::SectorId s : primary_involved) {
      if (upgrades.size() >= 3) break;
      if (s == flapping ||
          std::find(primary_targets.begin(), primary_targets.end(), s) !=
              primary_targets.end()) {
        continue;
      }
      traffic::PlannedUpgrade next;
      next.targets = {s};
      const net::SectorId one[] = {s};
      next.involved = planner.involved_sectors(one);
      upgrades.push_back(std::move(next));
    }
    const traffic::CampaignSchedule schedule =
        traffic::schedule_campaign(upgrades);

    const std::vector<std::vector<net::SectorId>> outages = {{flapping}};
    const auto contingencies =
        core::ContingencyTable::build(planner, outages);

    exec::CampaignOptions copts;
    copts.executor.utility_tolerance = 1e-6;
    // Retry is deliberately unaffordable (worst case 6000 s vs a 1800 s
    // usable window) so the watchdog records a skip and the ladder falls
    // through to the contingency push.
    copts.executor.push_backoff.initial_delay_s = 2'000.0;
    copts.executor.push_backoff.max_delay_s = 2'000.0;
    copts.quarantine.fault_threshold = 2;
    copts.window_utilization = 0.1;
    copts.seed = seed;
    const exec::CampaignRunner runner{&evaluator, &planner, copts};

    const auto make_env = [&](exec::Journal* journal) {
      exec::CampaignEnv env;
      env.contingencies = &contingencies;
      env.journal = journal;
      env.injector_factory =
          [flapping](std::size_t upgrade) -> std::unique_ptr<exec::FaultInjector> {
        auto injector = std::make_unique<exec::ScriptedFaultInjector>();
        if (upgrade < 2) {
          injector->add(exec::FaultEvent{exec::FaultKind::kSectorOutage,
                                         /*step=*/2, flapping});
        }
        return injector;
      };
      return env;
    };

    const std::string wal_path = json_path + ".wal";
    exec::CampaignResult baseline;
    std::uint64_t records_written = 0;
    {
      exec::Journal journal{wal_path, exec::Journal::Mode::kTruncate};
      baseline = runner.run(upgrades, schedule, make_env(&journal));
      records_written = journal.records_written();
    }
    const std::uint64_t crash_record = records_written / 2;
    {
      exec::Journal journal{wal_path, exec::Journal::Mode::kTruncate};
      journal.set_crash_after(crash_record);
      try {
        (void)runner.run(upgrades, schedule, make_env(&journal));
        std::cerr << "campaign crash point never fired\n";
        return 1;
      } catch (const exec::JournalCrash&) {
      }
    }
    exec::Journal journal{wal_path, exec::Journal::Mode::kContinue};
    const exec::Journal::Replay replay = exec::Journal::replay(wal_path);
    exec::CampaignEnv env = make_env(&journal);
    env.recovered = replay.records;
    const exec::CampaignResult resumed =
        runner.run(upgrades, schedule, env);

    bool resume_matches = resumed.upgrades.size() == baseline.upgrades.size();
    for (std::size_t i = 0; resume_matches && i < resumed.upgrades.size();
         ++i) {
      resume_matches =
          resumed.upgrades[i].outcome == baseline.upgrades[i].outcome &&
          resumed.upgrades[i].trace.to_json().dump() ==
              baseline.upgrades[i].trace.to_json().dump();
    }

    util::JsonObject out;
    out.set("meta", obs::run_metadata_json());
    out.set("bench", "fault_recovery_campaign");
    out.set("upgrades", static_cast<std::int64_t>(upgrades.size()));
    out.set("records_written", static_cast<std::int64_t>(records_written));
    out.set("crash_record", static_cast<std::int64_t>(crash_record));
    out.set("resume_matches_baseline", resume_matches);
    out.set("campaign", resumed.to_json());
    out.write_file(json_path);
    std::remove(wal_path.c_str());
    std::cout << "Campaign crash/resume summary written to " << json_path
              << "\n  windows " << resumed.windows_completed << "/"
              << resumed.windows_total << ", resumes " << resumed.resumes
              << ", quarantine events " << resumed.quarantine_events
              << ", deadline skips " << resumed.deadline_skips
              << ", resume matches baseline: "
              << (resume_matches ? "yes" : "no") << "\n\n";
    if (!resume_matches) return 1;
  }

  std::cout << "Mid-migration neighbor outage: recovery by strategy\n"
            << "(window " << window_s << " s per live feedback probe)\n\n";
  table.print(std::cout);
  std::cout << "\nShapes to check: contingency recovers with zero computation"
               " delay;\nre-plan pays seconds of model search; feedback pays"
               " minutes-to-hours of\nlive probing while the hole persists"
               " (paper §2, §8).\n";
  return 0;
}
