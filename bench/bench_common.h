// Shared helpers for the figure/table bench harnesses.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "data/experiment.h"
#include "data/upgrade_scenarios.h"
#include "obs/session.h"
#include "util/args.h"

namespace magus::bench {

/// Scale knobs shared by the market-driven benches. The defaults trade a
/// little fidelity for wall-clock (regions smaller than the paper's
/// 30 km x 30 km); pass --paper-scale for the full geometry.
struct Scale {
  double region_km = 14.0;
  double study_km = 6.0;
  int markets = 3;  ///< paper: three US markets
};

inline void add_scale_flags(util::ArgParser& args) {
  args.add_flag("region-km", "14", "analysis region edge (km)");
  args.add_flag("study-km", "6", "study area edge (km)");
  args.add_flag("markets", "3", "number of synthetic markets");
  args.add_flag("paper-scale", "false",
                "use the paper's 30 km region / 10 km study area");
  args.add_flag("seed", "1", "base seed for market generation");
  util::add_threads_flag(args);
  util::add_obs_flags(args);
}

[[nodiscard]] inline Scale scale_from(const util::ArgParser& args) {
  Scale scale;
  scale.region_km = args.get_double("region-km");
  scale.study_km = args.get_double("study-km");
  scale.markets = static_cast<int>(args.get_int("markets"));
  if (args.get_bool("paper-scale")) {
    scale.region_km = 30.0;
    scale.study_km = 10.0;
  }
  return scale;
}

[[nodiscard]] inline data::MarketParams market_params(
    data::Morphology morphology, int market_index, const Scale& scale,
    std::uint64_t base_seed) {
  data::MarketParams params;
  params.morphology = morphology;
  params.seed = base_seed + 1000ULL * static_cast<std::uint64_t>(market_index) +
                static_cast<std::uint64_t>(morphology);
  params.region_size_m = scale.region_km * 1000.0;
  params.study_size_m = scale.study_km * 1000.0;
  return params;
}

/// The per-scenario measurement every table/figure bench shares: plan the
/// mitigation and report Formula 7's inputs.
struct ScenarioOutcome {
  double f_before = 0.0;
  double f_upgrade = 0.0;
  double f_after = 0.0;
  double recovery = 0.0;
  long candidate_evaluations = 0;
  int accepted_steps = 0;
  core::MitigationPlan plan;
};

[[nodiscard]] inline ScenarioOutcome run_scenario(
    data::Experiment& experiment, data::UpgradeScenario scenario,
    core::TuningMode mode, const core::Utility& utility,
    std::size_t threads = 0, bool use_coverage_index = true) {
  core::Evaluator evaluator{&experiment.model(), utility};
  core::PlannerOptions options;
  options.mode = mode;
  options.threads = threads;
  options.use_coverage_index = use_coverage_index;
  core::MagusPlanner planner{&evaluator, options};
  const auto targets = data::upgrade_targets(experiment.market(), scenario);

  ScenarioOutcome outcome;
  outcome.plan = planner.plan_upgrade(targets);
  outcome.f_before = outcome.plan.f_before;
  outcome.f_upgrade = outcome.plan.f_upgrade;
  outcome.f_after = outcome.plan.f_after;
  outcome.recovery = outcome.plan.recovery;
  outcome.candidate_evaluations = outcome.plan.search.candidate_evaluations;
  outcome.accepted_steps = outcome.plan.search.accepted_steps;
  return outcome;
}

[[nodiscard]] inline const char* morphology_label(data::Morphology m) {
  return data::morphology_name(m).data();
}

inline const std::vector<data::Morphology> kAllMorphologies = {
    data::Morphology::kRural, data::Morphology::kSuburban,
    data::Morphology::kUrban};

}  // namespace magus::bench
