// Figure 10: why rural recovery is limited — after the central sector goes
// down, even a +10 dB boost on the nearest neighbor cannot restore
// coverage (the neighbors are noise-limited and already near their power
// caps).
#include "bench_common.h"
#include "data/render.h"
#include "model/coverage_map.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figure 10: rural noise-limited coverage"};
  bench::add_scale_flags(args);
  args.add_flag("boost-db", "10", "power boost applied to the neighbor");
  args.add_flag("render", "false", "write before/after SINR maps");
  args.add_flag("out-dir", ".", "directory for rendered maps");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  data::MarketParams params =
      bench::market_params(data::Morphology::kRural, 0, scale, seed);
  // Let the boosted neighbor exceed its normal cap: the point of the figure
  // is that even an *unrealistic* +10 dB does not recover the hole.
  params.max_power_dbm = 60.0;
  data::Experiment experiment{params};
  model::AnalysisModel& model = experiment.model();
  model.freeze_uniform_ue_density();

  const auto targets = data::upgrade_targets(
      experiment.market(), data::UpgradeScenario::kSingleSector);
  const net::SectorId target = targets[0];
  const auto study_cells =
      experiment.grid().cells_in(experiment.study_area());

  // Count grids with *good* service. The paper's maps use a deliberately
  // high SINR threshold to make the coverage hole visible (§4.3); at the
  // bare attach threshold a dying cell degrades to CQI 1 long before it
  // reads as "uncovered".
  constexpr double kGoodSinrDb = 3.0;
  const auto covered_in_study = [&] {
    long covered = 0;
    for (const geo::GridIndex g : study_cells) {
      if (model.sinr_db(g) >= kGoodSinrDb) ++covered;
    }
    return covered;
  };

  const long before = covered_in_study();
  const auto sinr_before = model::sinr_map(model);

  // (b) Take the central sector down.
  model.set_active(target, false);
  const long down = covered_in_study();

  // (c) Boost the nearest neighbor by --boost-db.
  const std::vector<net::SectorId> target_span = {target};
  auto neighbors = experiment.network().neighbors_of(target_span, 30'000.0);
  net::SectorId nearest = net::kInvalidSector;
  double best_distance = 1e300;
  const net::SiteId target_site = experiment.network().sector(target).site;
  for (const net::SectorId n : neighbors) {
    if (experiment.network().sector(n).site == target_site) continue;
    const double d =
        geo::distance_m(experiment.network().sector(n).position,
                        experiment.network().sector(target).position);
    if (d < best_distance) {
      best_distance = d;
      nearest = n;
    }
  }
  const double boost = args.get_double("boost-db");
  model.set_power(nearest,
                  model.configuration()[nearest].power_dbm + boost);
  const long boosted = covered_in_study();
  const auto sinr_after = model::sinr_map(model);

  util::TablePrinter table({"state", "covered study grids", "coverage"});
  const auto pct = [&](long n) {
    return util::TablePrinter::percent(static_cast<double>(n) /
                                       study_cells.size());
  };
  table.add_row({"(a) before upgrade", std::to_string(before), pct(before)});
  table.add_row({"(b) target sector down", std::to_string(down), pct(down)});
  // "coverage" here means grids at or above the good-service threshold.
  table.add_row({"(c) neighbor +" + util::TablePrinter::num(boost, 0) + " dB",
                 std::to_string(boosted), pct(boosted)});
  std::cout << "Figure 10 reproduction (rural market, nearest neighbor "
            << best_distance / 1000.0 << " km away)\n\n";
  table.print(std::cout);

  const long lost = before - down;
  const long regained = boosted - down;
  std::cout << "\nOf the " << lost << " grids lost, a +"
            << util::TablePrinter::num(boost, 0)
            << " dB (10x power) boost regains only " << regained << " ("
            << util::TablePrinter::percent(
                   lost > 0 ? static_cast<double>(regained) / lost : 0.0)
            << ").\nPaper: rural neighbors are noise-limited; coverage "
               "cannot be recovered even at 10x power.\n";

  if (args.get_bool("render")) {
    const std::string path =
        args.get_string("out-dir") + "/fig10_sinr_delta.pgm";
    data::render_sinr_delta_pgm(sinr_before, sinr_after, experiment.grid(),
                                path);
    std::cout << "wrote " << path << '\n';
  }
  return 0;
}
