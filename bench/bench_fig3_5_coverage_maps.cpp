// Figures 3-5: the data visualizations behind the model section —
//   Fig. 3: one sector's path-loss matrix (irregular, directional contours),
//   Fig. 4: the predicted best-server service map with SINR holes,
//   Fig. 5: the service map restricted to grids with good receive power.
//
// Writes PGM/PPM images and prints the quantitative properties the paper
// calls out: the path-loss value range, directionality, and the coverage-
// hole fraction.
#include <cmath>

#include "bench_common.h"
#include "data/render.h"
#include "model/coverage_map.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace magus;

  util::ArgParser args{"Figures 3-5: path-loss and service maps"};
  bench::add_scale_flags(args);
  args.add_flag("out-dir", ".", "directory for rendered maps");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << '\n';
    return 1;
  }
  const bench::Scale scale = bench::scale_from(args);
  const obs::ObsSession obs_session{args};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::string dir = args.get_string("out-dir");

  data::Experiment experiment{bench::market_params(
      data::Morphology::kSuburban, 0, scale, seed)};
  model::AnalysisModel& model = experiment.model();
  model.freeze_uniform_ue_density();

  // --- Figure 3: one sector's path-loss matrix. ---
  const net::SectorId sample = experiment.network().nearest_sectors(
      experiment.study_area().center(), 1)[0];
  const auto& footprint = experiment.provider().footprint(sample, 0);
  data::render_pathloss_pgm(footprint, experiment.grid(),
                            dir + "/fig3_pathloss.pgm");

  double peak = -1e300;
  double weakest = 1e300;
  footprint.for_each_covered([&](geo::GridIndex, float gain) {
    peak = std::max(peak, static_cast<double>(gain));
    weakest = std::min(weakest, static_cast<double>(gain));
  });
  // Directionality: compare mean gain ahead of vs behind the antenna.
  const auto& sector = experiment.network().sector(sample);
  double ahead_sum = 0.0;
  double behind_sum = 0.0;
  long ahead_n = 0;
  long behind_n = 0;
  footprint.for_each_covered([&](geo::GridIndex g, float gain) {
    const double bearing =
        geo::bearing_deg(sector.position, experiment.grid().center_of(g));
    const double off = std::abs(geo::wrap_angle_deg(bearing -
                                                    sector.azimuth_deg));
    if (off < 60.0) {
      ahead_sum += gain;
      ++ahead_n;
    } else if (off > 120.0) {
      behind_sum += gain;
      ++behind_n;
    }
  });

  std::cout << "Figure 3 (sector " << sector.name << "): gains from "
            << util::TablePrinter::num(weakest, 1) << " dB to "
            << util::TablePrinter::num(peak, 1)
            << " dB (paper: -200 to -20 dB)\n"
            << "  boresight-vs-back mean gain gap: "
            << util::TablePrinter::num(
                   ahead_sum / std::max(1L, ahead_n) -
                       behind_sum / std::max(1L, behind_n),
                   1)
            << " dB (directional antenna visible in the map)\n"
            << "  wrote " << dir << "/fig3_pathloss.pgm\n\n";

  // --- Figure 4: best-server service map. ---
  data::render_service_ppm(model, dir + "/fig4_service.ppm");
  const auto stats = model::coverage_stats(model);
  std::cout << "Figure 4: service map with "
            << stats.serving_sector_count << " serving sectors, "
            << util::TablePrinter::percent(1.0 - stats.covered_grid_fraction)
            << " of grids below SINRmin (black pixels)\n"
            << "  wrote " << dir << "/fig4_service.ppm\n\n";

  // --- Figure 5: grids with good receive power highlighted. ---
  data::render_sinr_pgm(model, dir + "/fig5_good_rp.pgm", 3.0, 25.0);
  long good = 0;
  for (geo::GridIndex g = 0; g < model.cell_count(); ++g) {
    if (model.sinr_db(g) >= 3.0) ++good;
  }
  std::cout << "Figure 5: "
            << util::TablePrinter::percent(
                   static_cast<double>(good) / model.cell_count())
            << " of grids exceed the 'good service' SINR threshold\n"
            << "  wrote " << dir << "/fig5_good_rp.pgm\n";
  return 0;
}
