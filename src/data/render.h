// Map renderers for the paper's visualization figures (3, 4, 5, 8, 10):
// PGM (grayscale) and PPM (color) images of path loss, SINR, and
// best-server maps.
#pragma once

#include <span>
#include <string>

#include "model/analysis_model.h"
#include "pathloss/footprint.h"

namespace magus::data {

/// Writes a grayscale map of one sector's path-loss matrix (Figure 3 style:
/// brighter = lower loss). Uncovered cells are black.
void render_pathloss_pgm(const pathloss::SectorFootprint& footprint,
                         const geo::GridMap& grid, const std::string& path);

/// Writes a grayscale SINR map: black below `min_sinr_db`, brighter =
/// higher SINR, saturating at `max_sinr_db`.
void render_sinr_pgm(const model::AnalysisModel& model,
                     const std::string& path, double min_sinr_db = -6.7,
                     double max_sinr_db = 25.0);

/// Writes a color best-server map (Figure 4 style): each sector gets a
/// stable pseudo-random color; out-of-service cells are black.
void render_service_ppm(const model::AnalysisModel& model,
                        const std::string& path);

/// Writes a grayscale per-grid difference map of two SINR snapshots
/// (Figure 10 style): mid-gray = unchanged, brighter = improved.
void render_sinr_delta_pgm(std::span<const double> before,
                           std::span<const double> after,
                           const geo::GridMap& grid, const std::string& path,
                           double full_scale_db = 15.0);

}  // namespace magus::data
