// Synthetic market generation — the stand-in for the paper's operational
// data (base-station locations, powers, tilts, subscriber estimates) from
// three US markets.
//
// A market is a 30 km x 30 km analysis region with a central 10 km x 10 km
// study area (the paper tunes inside the study area but models the larger
// region "to avoid boundary effects", §6). Sites sit on a jittered
// hexagonal lattice whose inter-site distance is calibrated per morphology
// so the study-area interferer counts land near the paper's (~26 rural,
// ~55 suburban, ~178 urban).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "geo/grid_map.h"
#include "net/network.h"
#include "terrain/terrain.h"

namespace magus::data {

enum class Morphology { kRural, kSuburban, kUrban };

[[nodiscard]] std::string_view morphology_name(Morphology m);

struct MarketParams {
  Morphology morphology = Morphology::kSuburban;
  std::uint64_t seed = 1;

  double region_size_m = 30'000.0;  ///< square analysis region edge
  double study_size_m = 10'000.0;   ///< central study area edge
  double cell_size_m = 100.0;       ///< analysis grid resolution

  // Deployment; zeros mean "use the morphology default".
  double inter_site_distance_m = 0.0;
  double site_jitter_fraction = 0.25;  ///< of the inter-site distance
  int sectors_per_site = 3;
  double antenna_height_m = 0.0;
  /// Planned electrical downtilt at tilt index 0; 0 = morphology default
  /// (urban small cells run much deeper downtilts to confine interference).
  double base_downtilt_deg = 0.0;
  /// Planned per-sector transmit power. 0 = plan automatically: pick the
  /// power that lands `target_edge_rp_dbm` at the nominal cell edge
  /// (ISD / sqrt(3)) under the mean SPM loss — what a radio planner does.
  /// An unplanned (uniformly max) network would leave "free" utility that
  /// any tuner could harvest even without an outage, which distorts the
  /// recovery comparisons.
  double default_power_dbm = 0.0;
  double target_edge_rp_dbm = -80.0;
  /// 0 = morphology default: rural macros run near the regulatory cap,
  /// urban small cells are capped much lower to contain interference.
  double max_power_dbm = 0.0;
  /// Sectors can be attenuated deeply during migration (software
  /// attenuators reach far below planned powers).
  double min_power_dbm = 15.0;
  double subscribers_per_sector_mean = 0.0;

  /// Fills morphology-dependent zero fields with calibrated defaults.
  [[nodiscard]] MarketParams resolved() const;
};

struct Market {
  MarketParams params;
  net::Network network;
  geo::Rect region;      ///< the full analysis region
  geo::Rect study_area;  ///< centered inside the region
};

/// Generates the deployment (deterministic in params.seed). Terrain is
/// generated separately by make_market_terrain so the caller controls its
/// lifetime relative to the propagation model.
[[nodiscard]] Market generate_market(const MarketParams& params);

/// Terrain matching the market's morphology (urban core in the study
/// center for urban/suburban markets).
[[nodiscard]] terrain::Terrain make_market_terrain(const MarketParams& params);

/// Seeded multi-market generation: the fleet-scale stand-in for a
/// carrier's national footprint. Every market derives its own generation
/// seed from the fleet seed and its index, and draws a morphology from the
/// configured mix — so a fleet is fully reproducible from (seed, markets,
/// mix, base) and any single market can be regenerated in isolation
/// (which is what lets the fleet MarketStore evict and rematerialize
/// markets bit-identically).
struct FleetParams {
  std::uint64_t seed = 1;
  std::size_t markets = 100;
  /// Morphology mix; fractions in [0, 1] with urban + suburban <= 1, the
  /// remainder is rural. The draw is seeded, not a fixed split, so small
  /// fleets still look like samples of a footprint.
  double urban_fraction = 0.4;
  double suburban_fraction = 0.4;
  /// Template for every market: region/study/cell sizes and deployment
  /// overrides. `morphology` and `seed` are overwritten per market.
  MarketParams base;
};

/// Per-market generation parameters for the fleet (deterministic in
/// params.seed). Market i of a fleet is identical regardless of how many
/// markets the fleet has.
[[nodiscard]] std::vector<MarketParams> generate_fleet(
    const FleetParams& params);

/// The planner's power rule used when default_power_dbm is 0: transmit
/// power (dBm, clamped to [min, max]) that reaches `target_edge_rp_dbm`
/// at the nominal cell edge under the mean Standard-Propagation-Model loss
/// for this morphology. Exposed for tests and for custom deployments.
[[nodiscard]] double planned_power_dbm(const MarketParams& params);

}  // namespace magus::data
