#include "data/upgrade_scenarios.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace magus::data {

std::string_view scenario_name(UpgradeScenario s) {
  switch (s) {
    case UpgradeScenario::kSingleSector:
      return "(a) single sector";
    case UpgradeScenario::kFullSite:
      return "(b) full site";
    case UpgradeScenario::kFourCorners:
      return "(c) four corners";
  }
  return "?";
}

std::vector<UpgradeScenario> all_scenarios() {
  return {UpgradeScenario::kSingleSector, UpgradeScenario::kFullSite,
          UpgradeScenario::kFourCorners};
}

namespace {
/// Nearest sector to a point; used as the seed of site-based selections.
[[nodiscard]] net::SectorId nearest_sector(const net::Network& network,
                                           geo::Point p) {
  const auto ids = network.nearest_sectors(p, 1);
  if (ids.empty()) {
    throw std::invalid_argument("upgrade_targets: empty network");
  }
  return ids.front();
}
}  // namespace

std::vector<net::SectorId> upgrade_targets(const Market& market,
                                           UpgradeScenario scenario) {
  const net::Network& network = market.network;
  const geo::Point center = market.study_area.center();

  switch (scenario) {
    case UpgradeScenario::kSingleSector: {
      return {nearest_sector(network, center)};
    }
    case UpgradeScenario::kFullSite: {
      const net::SectorId seed = nearest_sector(network, center);
      return network.sectors_at_site(network.sector(seed).site);
    }
    case UpgradeScenario::kFourCorners: {
      const geo::Rect& area = market.study_area;
      const geo::Point corners[4] = {
          area.min,
          {area.max.x_m, area.min.y_m},
          area.max,
          {area.min.x_m, area.max.y_m}};
      std::set<net::SectorId> unique;
      for (const geo::Point corner : corners) {
        unique.insert(nearest_sector(network, corner));
      }
      return {unique.begin(), unique.end()};
    }
  }
  throw std::invalid_argument("upgrade_targets: unknown scenario");
}

}  // namespace magus::data
