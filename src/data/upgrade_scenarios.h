// The three planned-upgrade scenarios of Figure 9:
//   (a) one sector at a centrally located base station,
//   (b) all sectors of that central base station,
//   (c) one sector at each of the four corners of the study area
//       (a multi-sector concurrent upgrade).
#pragma once

#include <string_view>
#include <vector>

#include "data/market_generator.h"

namespace magus::data {

enum class UpgradeScenario { kSingleSector, kFullSite, kFourCorners };

[[nodiscard]] std::string_view scenario_name(UpgradeScenario s);

/// All three scenarios, in (a), (b), (c) order.
[[nodiscard]] std::vector<UpgradeScenario> all_scenarios();

/// Target sectors for a scenario on this market. Deterministic: (a)/(b)
/// use the site nearest the study-area center; (c) picks, for each study
/// corner, one sector of the nearest site (deduplicated).
[[nodiscard]] std::vector<net::SectorId> upgrade_targets(
    const Market& market, UpgradeScenario scenario);

}  // namespace magus::data
