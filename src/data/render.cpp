#include "data/render.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/rng.h"

namespace magus::data {

namespace {

void open_or_throw(std::ofstream& out, const std::string& path) {
  if (!out) throw std::runtime_error("render: cannot open " + path);
}

/// Maps a value in [lo, hi] to a byte, clamping.
[[nodiscard]] unsigned char to_byte(double value, double lo, double hi) {
  const double t = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
  return static_cast<unsigned char>(std::lround(t * 255.0));
}

void write_pgm(const geo::GridMap& grid, std::span<const unsigned char> pixels,
               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  open_or_throw(out, path);
  out << "P5\n" << grid.cols() << ' ' << grid.rows() << "\n255\n";
  // Image rows top-to-bottom = grid rows north-to-south.
  for (std::int32_t row = grid.rows() - 1; row >= 0; --row) {
    out.write(reinterpret_cast<const char*>(
                  pixels.data() + static_cast<std::size_t>(row) * grid.cols()),
              grid.cols());
  }
}

void write_ppm(const geo::GridMap& grid, std::span<const unsigned char> rgb,
               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  open_or_throw(out, path);
  out << "P6\n" << grid.cols() << ' ' << grid.rows() << "\n255\n";
  for (std::int32_t row = grid.rows() - 1; row >= 0; --row) {
    out.write(reinterpret_cast<const char*>(
                  rgb.data() +
                  static_cast<std::size_t>(row) * grid.cols() * 3),
              static_cast<std::streamsize>(grid.cols()) * 3);
  }
}

}  // namespace

void render_pathloss_pgm(const pathloss::SectorFootprint& footprint,
                         const geo::GridMap& grid, const std::string& path) {
  std::vector<unsigned char> pixels(
      static_cast<std::size_t>(grid.cell_count()), 0);
  footprint.for_each_covered([&](geo::GridIndex g, float gain) {
    // Paper range: about -200 dB (edge) to -20 dB (close-in).
    pixels[static_cast<std::size_t>(g)] = to_byte(gain, -170.0, -50.0);
  });
  write_pgm(grid, pixels, path);
}

void render_sinr_pgm(const model::AnalysisModel& model,
                     const std::string& path, double min_sinr_db,
                     double max_sinr_db) {
  const auto& grid = model.grid();
  std::vector<unsigned char> pixels(
      static_cast<std::size_t>(grid.cell_count()), 0);
  for (geo::GridIndex g = 0; g < grid.cell_count(); ++g) {
    const double sinr = model.sinr_db(g);
    if (sinr < min_sinr_db) continue;  // black: out of service
    pixels[static_cast<std::size_t>(g)] =
        std::max<unsigned char>(32, to_byte(sinr, min_sinr_db, max_sinr_db));
  }
  write_pgm(grid, pixels, path);
}

void render_service_ppm(const model::AnalysisModel& model,
                        const std::string& path) {
  const auto& grid = model.grid();
  std::vector<unsigned char> rgb(
      static_cast<std::size_t>(grid.cell_count()) * 3, 0);
  for (geo::GridIndex g = 0; g < grid.cell_count(); ++g) {
    if (!model.in_service(g)) continue;  // black
    const auto s = static_cast<std::uint64_t>(model.serving_sector(g));
    // Stable bright color per sector.
    const std::uint64_t h = util::mix64(s * 0x9E3779B97F4A7C15ULL + 1);
    const auto base = static_cast<std::size_t>(g) * 3;
    rgb[base + 0] = static_cast<unsigned char>(64 + (h & 0xBF));
    rgb[base + 1] = static_cast<unsigned char>(64 + ((h >> 8) & 0xBF));
    rgb[base + 2] = static_cast<unsigned char>(64 + ((h >> 16) & 0xBF));
  }
  write_ppm(grid, rgb, path);
}

void render_sinr_delta_pgm(std::span<const double> before,
                           std::span<const double> after,
                           const geo::GridMap& grid, const std::string& path,
                           double full_scale_db) {
  if (before.size() != after.size() ||
      before.size() != static_cast<std::size_t>(grid.cell_count())) {
    throw std::invalid_argument("render_sinr_delta_pgm: size mismatch");
  }
  std::vector<unsigned char> pixels(before.size(), 128);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const bool had = std::isfinite(before[i]);
    const bool has = std::isfinite(after[i]);
    double delta = 0.0;
    if (had && has) {
      delta = after[i] - before[i];
    } else if (!had && has) {
      delta = full_scale_db;  // gained coverage
    } else if (had && !has) {
      delta = -full_scale_db;  // lost coverage
    }
    pixels[i] = to_byte(delta, -full_scale_db, full_scale_db);
  }
  write_pgm(grid, pixels, path);
}

}  // namespace magus::data
