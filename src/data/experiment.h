// Experiment: the RAII bundle that wires a generated market to a live
// analysis model (terrain -> propagation -> path-loss provider -> model),
// owning every piece in dependency order. This is what the benches,
// examples and integration tests instantiate.
#pragma once

#include <span>

#include "data/market_generator.h"
#include "model/analysis_model.h"
#include "pathloss/database.h"
#include "radio/propagation.h"

namespace magus::data {

struct ExperimentOptions {
  model::ModelOptions model;
  radio::SpmParams spm;
  /// Per-sector footprint range cutoff; 0 = morphology default (rural
  /// sectors reach far, urban sectors are interference-limited long before
  /// their signal fades).
  double max_range_m = 0.0;
};

class Experiment {
 public:
  explicit Experiment(const MarketParams& params,
                      const ExperimentOptions& options = {});

  [[nodiscard]] const Market& market() const { return market_; }
  [[nodiscard]] const net::Network& network() const {
    return market_.network;
  }
  [[nodiscard]] const geo::Rect& study_area() const {
    return market_.study_area;
  }
  [[nodiscard]] const geo::GridMap& grid() const {
    return terrain_cache_.grid();
  }
  [[nodiscard]] const terrain::Terrain& terrain() const { return terrain_; }
  [[nodiscard]] const terrain::TerrainGridCache& terrain_cache() const {
    return terrain_cache_;
  }
  [[nodiscard]] const radio::PropagationModel& propagation() const {
    return propagation_;
  }
  [[nodiscard]] pathloss::PathLossProvider& provider() { return provider_; }
  [[nodiscard]] pathloss::BuildingProvider& building_provider() {
    return provider_;
  }
  [[nodiscard]] model::AnalysisModel& model() { return model_; }

  /// Warms the path-loss cache: builds every sector's footprint for the
  /// given tilts across `threads` workers (0 = hardware concurrency), so
  /// later provider lookups — e.g. the model's lazy configuration apply —
  /// are pure reads. The matrices are bitwise identical to the ones lazy
  /// construction would have built.
  void prebuild_footprints(std::span<const radio::TiltIndex> tilts,
                           std::size_t threads = 0);

  /// Sectors whose signal reaches the study area above the noise floor at
  /// the default configuration (the paper's Figure 8 statistic).
  [[nodiscard]] int study_interferer_count();

  /// Opens this market's on-disk path-loss database: loads `path` when it
  /// is a valid database for this grid, otherwise builds every
  /// (sector × tilt) matrix from this experiment's propagation stack
  /// across `threads` workers and best-effort re-saves it. Either way the
  /// returned database is bitwise identical to what lazy construction
  /// would serve (PR-5 guarantee), which is what lets the fleet
  /// MarketStore evict a market and reload it bit-identically later
  /// without keeping the terrain/propagation stack alive. `report`, when
  /// non-null, says whether a rebuild happened.
  [[nodiscard]] pathloss::PathLossDatabase open_footprint_db(
      const std::string& path, std::span<const radio::TiltIndex> tilts,
      std::size_t threads = 0,
      pathloss::PathLossDatabase::LoadReport* report = nullptr);

 private:
  [[nodiscard]] static double resolve_range(const MarketParams& params,
                                            const ExperimentOptions& options);

  Market market_;
  terrain::Terrain terrain_;
  terrain::TerrainGridCache terrain_cache_;
  radio::PropagationModel propagation_;
  pathloss::BuildingProvider provider_;
  model::AnalysisModel model_;
};

}  // namespace magus::data
