#include "data/experiment.h"

#include <vector>

#include "model/coverage_map.h"

namespace magus::data {

double Experiment::resolve_range(const MarketParams& params,
                                 const ExperimentOptions& options) {
  if (options.max_range_m > 0.0) return options.max_range_m;
  switch (params.resolved().morphology) {
    case Morphology::kRural:
      return 25'000.0;
    case Morphology::kSuburban:
      return 12'000.0;
    case Morphology::kUrban:
      return 6'000.0;
  }
  return 12'000.0;
}

Experiment::Experiment(const MarketParams& params,
                       const ExperimentOptions& options)
    : market_(generate_market(params)),
      terrain_(make_market_terrain(params)),
      terrain_cache_(terrain_,
                     geo::GridMap{market_.region, market_.params.cell_size_m}),
      propagation_(&terrain_, options.spm),
      provider_(&market_.network,
                pathloss::FootprintBuilder{&propagation_, &terrain_cache_,
                                           resolve_range(params, options)}),
      model_(&market_.network, &provider_, options.model) {}

void Experiment::prebuild_footprints(std::span<const radio::TiltIndex> tilts,
                                     std::size_t threads) {
  std::vector<net::SectorId> sectors;
  sectors.reserve(market_.network.sectors().size());
  for (const auto& sector : market_.network.sectors()) {
    sectors.push_back(sector.id);
  }
  provider_.prebuild(sectors, tilts, threads);
}

pathloss::PathLossDatabase Experiment::open_footprint_db(
    const std::string& path, std::span<const radio::TiltIndex> tilts,
    std::size_t threads, pathloss::PathLossDatabase::LoadReport* report) {
  std::vector<net::SectorId> sectors;
  sectors.reserve(market_.network.sectors().size());
  for (const auto& sector : market_.network.sectors()) {
    sectors.push_back(sector.id);
  }
  return pathloss::PathLossDatabase::load_or_rebuild(path, provider_, sectors,
                                                     tilts, report, threads);
}

int Experiment::study_interferer_count() {
  return model::interfering_sector_count(provider_, market_.network,
                                         market_.network.default_configuration(),
                                         market_.study_area);
}

}  // namespace magus::data
