// Operator-facing export of mitigation plans.
//
// A MitigationPlan is what an operations team pushes through their
// configuration-management pipeline; this module serializes it to JSON
// (self-contained, no external library): the targets, the per-sector
// configuration changes, the gradual migration schedule, and the predicted
// recovery — everything a change-request ticket needs.
#pragma once

#include <string>

#include "core/planner.h"
#include "net/network.h"

namespace magus::data {

/// JSON document describing the plan. Sector names come from the network.
[[nodiscard]] std::string plan_to_json(const core::MitigationPlan& plan,
                                       const net::Network& network);

/// Writes plan_to_json to a file; throws std::runtime_error on I/O errors.
void write_plan_json(const core::MitigationPlan& plan,
                     const net::Network& network, const std::string& path);

}  // namespace magus::data
