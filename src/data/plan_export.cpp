#include "data/plan_export.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace magus::data {

namespace {

/// Minimal JSON string escaping (names are ASCII identifiers, but be safe).
[[nodiscard]] std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string number(double value) {
  std::ostringstream s;
  s.precision(10);
  s << value;
  return s.str();
}

void append_setting(std::ostringstream& out, const net::SectorSetting& s) {
  out << "{\"power_dbm\":" << number(s.power_dbm)
      << ",\"tilt\":" << static_cast<int>(s.tilt)
      << ",\"active\":" << (s.active ? "true" : "false") << "}";
}

}  // namespace

std::string plan_to_json(const core::MitigationPlan& plan,
                         const net::Network& network) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"targets\": [";
  for (std::size_t i = 0; i < plan.targets.size(); ++i) {
    out << (i ? "," : "") << "\""
        << escape(network.sector(plan.targets[i]).name) << "\"";
  }
  out << "],\n";

  out << "  \"utility\": {\"before\": " << number(plan.f_before)
      << ", \"upgrade\": " << number(plan.f_upgrade)
      << ", \"after\": " << number(plan.f_after)
      << ", \"recovery\": " << number(plan.recovery) << "},\n";

  // Per-sector changes from C_before to C_after.
  out << "  \"changes\": [\n";
  const auto changed = plan.c_before.diff(plan.search.config);
  for (std::size_t i = 0; i < changed.size(); ++i) {
    const net::SectorId id = changed[i];
    out << "    {\"sector\": \"" << escape(network.sector(id).name)
        << "\", \"from\": ";
    append_setting(out, plan.c_before[id]);
    out << ", \"to\": ";
    append_setting(out, plan.search.config[id]);
    out << "}" << (i + 1 < changed.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  // The gradual migration schedule.
  out << "  \"gradual\": {\"floor_utility\": "
      << number(plan.gradual.floor_utility) << ", \"steps\": [\n";
  for (std::size_t i = 0; i < plan.gradual.steps.size(); ++i) {
    const auto& step = plan.gradual.steps[i];
    out << "    {\"utility\": " << number(step.utility)
        << ", \"handover_ues\": " << number(step.handover_ues)
        << ", \"hard_handover_ues\": " << number(step.hard_handover_ues)
        << ", \"compensations\": " << step.compensations
        << ", \"final\": " << (step.is_final ? "true" : "false") << "}"
        << (i + 1 < plan.gradual.steps.size() ? "," : "") << "\n";
  }
  out << "  ]},\n";

  out << "  \"search\": {\"accepted_steps\": " << plan.search.accepted_steps
      << ", \"model_evaluations\": " << plan.search.candidate_evaluations
      << "}\n";
  out << "}\n";
  return out.str();
}

void write_plan_json(const core::MitigationPlan& plan,
                     const net::Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_plan_json: cannot open " + path);
  out << plan_to_json(plan, network);
  if (!out) throw std::runtime_error("write_plan_json: write failed");
}

}  // namespace magus::data
