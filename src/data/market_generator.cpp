#include "data/market_generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "radio/antenna.h"
#include "radio/propagation.h"
#include "terrain/terrain.h"
#include "util/rng.h"

namespace magus::data {

namespace {
/// Mean clutter correction (dB) a planner would assume per morphology.
[[nodiscard]] double mean_clutter_db(Morphology m) {
  switch (m) {
    case Morphology::kRural:
      return 4.0;
    case Morphology::kSuburban:
      return 8.0;
    case Morphology::kUrban:
      return 14.0;
  }
  return 8.0;
}
}  // namespace

double planned_power_dbm(const MarketParams& raw_params) {
  const MarketParams params = raw_params.resolved();
  const radio::SpmParams spm;
  // Nominal cell radius of a hexagonal 3-sector layout.
  const double edge_km =
      params.inter_site_distance_m / std::sqrt(3.0) / 1000.0;
  const double log_d = std::log10(edge_km);
  const double log_h = std::log10(std::max(5.0, params.antenna_height_m));
  const double mean_loss = spm.k1 + spm.k2 * log_d + spm.k3 * log_h +
                           spm.k5 * log_d * log_h +
                           spm.k6 * spm.rx_height_m +
                           mean_clutter_db(params.morphology);
  const radio::AntennaParams antenna;  // planners count the boresight gain
  const double power = params.target_edge_rp_dbm + mean_loss -
                       antenna.boresight_gain_dbi;
  return std::clamp(power, params.min_power_dbm, params.max_power_dbm);
}

std::string_view morphology_name(Morphology m) {
  switch (m) {
    case Morphology::kRural:
      return "rural";
    case Morphology::kSuburban:
      return "suburban";
    case Morphology::kUrban:
      return "urban";
  }
  return "?";
}

MarketParams MarketParams::resolved() const {
  MarketParams p = *this;
  switch (p.morphology) {
    case Morphology::kRural:
      if (p.inter_site_distance_m == 0.0) p.inter_site_distance_m = 7000.0;
      if (p.antenna_height_m == 0.0) p.antenna_height_m = 45.0;
      if (p.base_downtilt_deg == 0.0) p.base_downtilt_deg = 2.5;
      if (p.max_power_dbm == 0.0) p.max_power_dbm = 49.0;
      if (p.subscribers_per_sector_mean == 0.0) {
        p.subscribers_per_sector_mean = 250.0;
      }
      break;
    case Morphology::kSuburban:
      if (p.inter_site_distance_m == 0.0) p.inter_site_distance_m = 3400.0;
      if (p.antenna_height_m == 0.0) p.antenna_height_m = 30.0;
      if (p.base_downtilt_deg == 0.0) p.base_downtilt_deg = 5.0;
      if (p.max_power_dbm == 0.0) p.max_power_dbm = 49.0;
      if (p.subscribers_per_sector_mean == 0.0) {
        p.subscribers_per_sector_mean = 450.0;
      }
      break;
    case Morphology::kUrban:
      if (p.inter_site_distance_m == 0.0) p.inter_site_distance_m = 1400.0;
      if (p.antenna_height_m == 0.0) p.antenna_height_m = 25.0;
      if (p.base_downtilt_deg == 0.0) p.base_downtilt_deg = 6.0;
      if (p.max_power_dbm == 0.0) p.max_power_dbm = 46.0;
      if (p.subscribers_per_sector_mean == 0.0) {
        p.subscribers_per_sector_mean = 700.0;
      }
      break;
  }
  return p;
}

Market generate_market(const MarketParams& raw_params) {
  const MarketParams params = raw_params.resolved();
  if (params.region_size_m < params.study_size_m) {
    throw std::invalid_argument(
        "generate_market: region smaller than study area");
  }

  Market market;
  market.params = params;
  market.region = geo::Rect{{0.0, 0.0},
                            {params.region_size_m, params.region_size_m}};
  const double margin = (params.region_size_m - params.study_size_m) / 2.0;
  market.study_area =
      geo::Rect{{margin, margin},
                {margin + params.study_size_m, margin + params.study_size_m}};

  util::Xoshiro256ss rng{params.seed};
  auto placement_rng = rng.fork(0x504C4143);   // placement
  auto subscriber_rng = rng.fork(0x53554253);  // subscriber draws

  const double power_dbm = params.default_power_dbm != 0.0
                               ? params.default_power_dbm
                               : planned_power_dbm(params);

  net::Network& network = market.network;

  // Jittered hexagonal lattice covering the region (plus half an ISD of
  // margin so edge coverage is realistic).
  const double isd = params.inter_site_distance_m;
  const double row_height = isd * std::sqrt(3.0) / 2.0;
  const double jitter = params.site_jitter_fraction * isd;
  net::SiteId site_id = 0;
  for (double y = -isd / 2.0; y < params.region_size_m + isd / 2.0;
       y += row_height) {
    const bool odd_row =
        static_cast<long>(std::floor((y + isd) / row_height)) % 2 == 1;
    const double x0 = odd_row ? isd / 2.0 : 0.0;
    for (double x = x0 - isd / 2.0; x < params.region_size_m + isd / 2.0;
         x += isd) {
      const geo::Point site{
          x + placement_rng.uniform(-jitter, jitter),
          y + placement_rng.uniform(-jitter, jitter)};
      const double rotation = placement_rng.uniform(0.0, 360.0);
      for (int s = 0; s < params.sectors_per_site; ++s) {
        net::Sector sector;
        sector.site = site_id;
        sector.name = "S" + std::to_string(site_id) + "/" + std::to_string(s);
        sector.position = site;
        sector.azimuth_deg = std::fmod(
            rotation + 360.0 * s / params.sectors_per_site, 360.0);
        sector.height_m = params.antenna_height_m;
        sector.antenna.base_downtilt_deg = params.base_downtilt_deg;
        sector.default_power_dbm = power_dbm;
        sector.max_power_dbm = params.max_power_dbm;
        sector.min_power_dbm = params.min_power_dbm;
        const net::SectorId id = network.add_sector(sector);
        network.set_subscribers(
            id, subscriber_rng.poisson(params.subscribers_per_sector_mean));
      }
      ++site_id;
    }
  }
  return market;
}

std::vector<MarketParams> generate_fleet(const FleetParams& params) {
  if (params.urban_fraction < 0.0 || params.suburban_fraction < 0.0 ||
      params.urban_fraction + params.suburban_fraction > 1.0 + 1e-12) {
    throw std::invalid_argument(
        "generate_fleet: morphology fractions must be non-negative and sum "
        "to at most 1");
  }
  std::vector<MarketParams> fleet;
  fleet.reserve(params.markets);
  for (std::size_t i = 0; i < params.markets; ++i) {
    MarketParams market = params.base;
    // Per-market streams depend only on (fleet seed, index): market i is
    // the same whether the fleet has 10 markets or 10'000.
    market.seed = util::mix64(params.seed ^ (0x464C4545544D4Bull + i));
    util::Xoshiro256ss rng{util::mix64(market.seed ^ 0x4D4F525048ull)};
    const double draw = rng.uniform();
    market.morphology = draw < params.urban_fraction ? Morphology::kUrban
                        : draw < params.urban_fraction +
                                     params.suburban_fraction
                            ? Morphology::kSuburban
                            : Morphology::kRural;
    fleet.push_back(market);
  }
  return fleet;
}

terrain::Terrain make_market_terrain(const MarketParams& raw_params) {
  const MarketParams params = raw_params.resolved();
  terrain::TerrainParams tp;
  const geo::Point center{params.region_size_m / 2.0,
                          params.region_size_m / 2.0};
  switch (params.morphology) {
    case Morphology::kRural:
      tp.elevation_range_m = 180.0;
      tp.urban_core_radius_m = 0.0;  // countryside only
      break;
    case Morphology::kSuburban:
      tp.elevation_range_m = 100.0;
      tp.urban_core = center;
      tp.urban_core_radius_m = 2500.0;  // a small town core
      break;
    case Morphology::kUrban:
      tp.elevation_range_m = 60.0;
      tp.urban_core = center;
      tp.urban_core_radius_m = 9000.0;  // downtown dominates
      break;
  }
  return terrain::Terrain{util::mix64(params.seed ^ 0x5445524EULL), tp};
}

}  // namespace magus::data
