// Algorithm 1: Magus's heuristic power-tuning search.
//
// Starting from the current configuration (C_upgrade: targets already
// off-air), the search repeatedly:
//   1. computes the candidate set β — involved sectors whose power raised
//      by T units would improve the max rate of at least one still-degraded
//      grid (lines 2-8; the rate test is the O(1)
//      EvalContext::power_delta_improves_rate probe),
//   2. evaluates f(C ⊕ P_b(T)) for every b in β — the candidates are
//      independent, so the batch is scored by the ParallelEvaluator across
//      its workers — and applies the best (line 9-10),
//   3. shrinks the degraded-grid set G and repeats, incrementing T when β
//      is empty or no candidate improves the overall utility (line 12).
//
// Termination: G empties (all degraded grids recovered), no candidate
// improves f at any allowed T, or the iteration cap is hit. Results are
// bit-identical for any evaluator thread count: candidate utilities depend
// only on the iteration's base state, and the winner is picked by a serial
// scan in candidate order.
#pragma once

#include <span>

#include "core/parallel_evaluator.h"
#include "core/search_types.h"

namespace magus::core {

struct PowerSearchOptions {
  double unit_db = 1.0;        ///< one power-tuning unit (paper: 1 dB)
  int max_unit_multiplier = 6; ///< largest T tried before giving up
  int max_iterations = 500;
  double min_improvement = 1e-9;  ///< accept threshold on f
};

class PowerSearch {
 public:
  explicit PowerSearch(PowerSearchOptions options = {});

  /// Runs Algorithm 1. The evaluator's model must already be at C_upgrade
  /// with the UE density frozen at C_before. `involved` is the paper's B
  /// (the neighbors of the upgraded sectors); `baseline_rates` the per-grid
  /// actual rates at C_before (capture_rates before the targets go down).
  /// The model is left at the returned configuration.
  [[nodiscard]] SearchResult run(ParallelEvaluator& evaluator,
                                 std::span<const net::SectorId> involved,
                                 std::span<const double> baseline_rates) const;

 private:
  PowerSearchOptions options_;
};

}  // namespace magus::core
