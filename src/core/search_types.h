// Shared types for the configuration-search algorithms (§5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/analysis_model.h"
#include "net/configuration.h"

namespace magus::core {

/// One accepted tuning action.
struct TuningStep {
  net::SectorId sector = net::kInvalidSector;
  double power_delta_db = 0.0;  ///< 0 for tilt-only steps
  int tilt_delta = 0;           ///< 0 for power-only steps
  double utility_after = 0.0;   ///< f(C) after applying this step
};

struct SearchResult {
  net::Configuration config;  ///< the C_after found
  double utility = 0.0;       ///< f(C_after)
  int accepted_steps = 0;
  /// Model evaluations performed — the cost a feedback-based approach
  /// would pay in on-air measurement iterations (Figure 12's "realistic"
  /// step count).
  long candidate_evaluations = 0;
  std::vector<TuningStep> trace;
};

/// Captures the per-grid *actual* rates r(g) (Formula 4, load included) of
/// the model's current state; used as the baseline ("before") rates when
/// computing the affected-grid set G. The paper's G is defined on actual
/// rate, so grids suffering only from post-outage load imbalance count as
/// degraded too.
[[nodiscard]] std::vector<double> capture_rates(
    const model::AnalysisModel& model);

/// Grids of `universe` whose current actual rate is below `baseline` —
/// the paper's degraded-grid set. Pass all grids as the universe initially.
[[nodiscard]] std::vector<geo::GridIndex> degraded_grids(
    const model::AnalysisModel& model, std::span<const double> baseline,
    std::span<const geo::GridIndex> universe);

/// All grid indices of the model (initial universe).
[[nodiscard]] std::vector<geo::GridIndex> all_grids(
    const model::AnalysisModel& model);

}  // namespace magus::core
