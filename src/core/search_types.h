// Shared types for the configuration-search algorithms (§5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/analysis_model.h"
#include "net/configuration.h"
#include "obs/metrics.h"

namespace magus::core {

/// Per-driver instrumentation bundle: "search.<driver>.*" counters plus the
/// batch-size and ladder-prefix histograms (DESIGN.md §9). Constructed once
/// per run() call (registry lookups are mutex-guarded); recording is
/// lock-free.
class SearchMetrics {
 public:
  explicit SearchMetrics(const char* driver);

  /// One candidate batch submitted for scoring.
  void batch(std::size_t size);
  void accept(std::uint64_t candidates = 1);
  void reject(std::uint64_t candidates);
  /// Accepted-prefix length of one speculative ladder (tilt/naive).
  void ladder_prefix(std::size_t accepted_rungs);

 private:
  obs::Counter& batches_;
  obs::Counter& candidates_;
  obs::Counter& accepted_;
  obs::Counter& rejected_;
  obs::Histogram& batch_size_;
  obs::Histogram& ladder_prefix_;
};

/// One accepted tuning action.
struct TuningStep {
  net::SectorId sector = net::kInvalidSector;
  double power_delta_db = 0.0;  ///< 0 for tilt-only steps
  int tilt_delta = 0;           ///< 0 for power-only steps
  double utility_after = 0.0;   ///< f(C) after applying this step
};

struct SearchResult {
  net::Configuration config;  ///< the C_after found
  double utility = 0.0;       ///< f(C_after)
  int accepted_steps = 0;
  /// Model evaluations performed — the cost a feedback-based approach
  /// would pay in on-air measurement iterations (Figure 12's "realistic"
  /// step count).
  long candidate_evaluations = 0;
  std::vector<TuningStep> trace;
};

/// One absolute setting change within a candidate. Values are absolute
/// (not deltas) so a mutation applies identically to any context at the
/// batch's base state, regardless of which worker scores it.
struct Mutation {
  enum class Kind : std::uint8_t { kPower, kTilt, kActive };

  net::SectorId sector = net::kInvalidSector;
  Kind kind = Kind::kPower;
  double power_dbm = 0.0;  ///< target power, for kPower
  int tilt = 0;            ///< target tilt index, for kTilt
  bool active = true;      ///< target on/off state, for kActive

  [[nodiscard]] static Mutation power(net::SectorId s, double dbm) {
    Mutation m;
    m.sector = s;
    m.kind = Kind::kPower;
    m.power_dbm = dbm;
    return m;
  }
  [[nodiscard]] static Mutation tilt_to(net::SectorId s, int tilt_index) {
    Mutation m;
    m.sector = s;
    m.kind = Kind::kTilt;
    m.tilt = tilt_index;
    return m;
  }
  [[nodiscard]] static Mutation active_state(net::SectorId s, bool on) {
    Mutation m;
    m.sector = s;
    m.kind = Kind::kActive;
    m.active = on;
    return m;
  }
};

/// An independent configuration to score: a set of mutations applied on top
/// of the batch's base state. Candidates within a batch never depend on each
/// other, which is what lets ParallelEvaluator score them on any number of
/// worker threads with bit-identical results.
struct Candidate {
  std::vector<Mutation> mutations;

  [[nodiscard]] static Candidate single(Mutation m) {
    Candidate c;
    c.mutations.push_back(m);
    return c;
  }
};

/// A batch of independent candidates (one search iteration's frontier).
using CandidateBatch = std::vector<Candidate>;

/// Applies every mutation of `candidate` to `context` (incrementally; the
/// context must be at the batch's base state).
void apply_candidate(model::EvalContext& context, const Candidate& candidate);

/// Captures the per-grid *actual* rates r(g) (Formula 4, load included) of
/// the context's current state; used as the baseline ("before") rates when
/// computing the affected-grid set G. The paper's G is defined on actual
/// rate, so grids suffering only from post-outage load imbalance count as
/// degraded too.
[[nodiscard]] std::vector<double> capture_rates(
    const model::EvalContext& context);

/// Grids of `universe` whose current actual rate is below `baseline` —
/// the paper's degraded-grid set. Pass all grids as the universe initially.
[[nodiscard]] std::vector<geo::GridIndex> degraded_grids(
    const model::EvalContext& context, std::span<const double> baseline,
    std::span<const geo::GridIndex> universe);

/// All grid indices of the context (initial universe).
[[nodiscard]] std::vector<geo::GridIndex> all_grids(
    const model::EvalContext& context);

}  // namespace magus::core
