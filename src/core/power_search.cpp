#include "core/power_search.h"

#include <stdexcept>

#include "util/logging.h"

namespace magus::core {

PowerSearch::PowerSearch(PowerSearchOptions options) : options_(options) {
  if (options_.unit_db <= 0.0) {
    throw std::invalid_argument("PowerSearch: unit must be positive");
  }
}

SearchResult PowerSearch::run(
    Evaluator& evaluator, std::span<const net::SectorId> involved,
    std::span<const double> baseline_rates) const {
  model::AnalysisModel& model = evaluator.model();
  if (baseline_rates.size() != static_cast<std::size_t>(model.cell_count())) {
    throw std::invalid_argument("PowerSearch: baseline size mismatch");
  }

  SearchResult result;
  double current_utility = evaluator.evaluate();
  ++result.candidate_evaluations;

  // G: grids degraded relative to C_before (shrinks as tuning recovers
  // them; per the paper it is never re-grown).
  std::vector<geo::GridIndex> degraded =
      degraded_grids(model, baseline_rates, all_grids(model));

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    if (degraded.empty()) break;  // all affected grids recovered

    bool accepted = false;
    for (int multiplier = 1;
         multiplier <= options_.max_unit_multiplier && !accepted;
         ++multiplier) {
      const double delta_db = options_.unit_db * multiplier;

      // Lines 2-8: β = sectors that can improve some degraded grid.
      std::vector<net::SectorId> beta;
      for (const net::SectorId b : involved) {
        if (!model.configuration()[b].active) continue;
        for (const geo::GridIndex g : degraded) {
          if (model.power_delta_improves_rate(b, delta_db, g)) {
            beta.push_back(b);
            break;
          }
        }
      }
      if (beta.empty()) continue;  // increment T

      // Line 9: pick the candidate with the best overall utility.
      const auto snapshot = model.snapshot();
      net::SectorId best_sector = net::kInvalidSector;
      double best_utility = current_utility;
      for (const net::SectorId b : beta) {
        const double power = model.configuration()[b].power_dbm;
        model.set_power(b, power + delta_db);
        const double utility = evaluator.evaluate();
        ++result.candidate_evaluations;
        model.restore(snapshot);
        if (utility > best_utility + options_.min_improvement) {
          best_utility = utility;
          best_sector = b;
        }
      }
      if (best_sector == net::kInvalidSector) continue;  // increment T

      // Line 10: apply the winning change.
      const double power = model.configuration()[best_sector].power_dbm;
      model.set_power(best_sector, power + delta_db);
      current_utility = best_utility;
      ++result.accepted_steps;
      result.trace.push_back(
          TuningStep{best_sector, delta_db, 0, current_utility});
      accepted = true;

      // Line 11: update G.
      degraded = degraded_grids(model, baseline_rates, degraded);
    }
    if (!accepted) break;  // no sector improves f at any allowed T
  }

  result.config = model.configuration();
  result.utility = current_utility;
  util::log_debug() << "PowerSearch: " << result.accepted_steps
                    << " steps, utility " << result.utility;
  return result;
}

}  // namespace magus::core
