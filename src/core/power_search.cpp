#include "core/power_search.h"

#include <stdexcept>

#include "obs/trace.h"
#include "util/logging.h"

namespace magus::core {

PowerSearch::PowerSearch(PowerSearchOptions options) : options_(options) {
  if (options_.unit_db <= 0.0) {
    throw std::invalid_argument("PowerSearch: unit must be positive");
  }
}

SearchResult PowerSearch::run(
    ParallelEvaluator& evaluator, std::span<const net::SectorId> involved,
    std::span<const double> baseline_rates) const {
  model::AnalysisModel& model = evaluator.model();
  if (baseline_rates.size() != static_cast<std::size_t>(model.cell_count())) {
    throw std::invalid_argument("PowerSearch: baseline size mismatch");
  }
  MAGUS_TRACE_SPAN("search.power", "planner");
  SearchMetrics metrics{"power"};

  SearchResult result;
  double current_utility = evaluator.evaluate();
  ++result.candidate_evaluations;

  // G: grids degraded relative to C_before (shrinks as tuning recovers
  // them; per the paper it is never re-grown).
  std::vector<geo::GridIndex> degraded =
      degraded_grids(model, baseline_rates, all_grids(model));

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    if (degraded.empty()) break;  // all affected grids recovered

    bool accepted = false;
    for (int multiplier = 1;
         multiplier <= options_.max_unit_multiplier && !accepted;
         ++multiplier) {
      const double delta_db = options_.unit_db * multiplier;

      // Lines 2-8: β = sectors that can improve some degraded grid.
      std::vector<net::SectorId> beta;
      for (const net::SectorId b : involved) {
        if (!model.configuration()[b].active) continue;
        for (const geo::GridIndex g : degraded) {
          if (model.power_delta_improves_rate(b, delta_db, g)) {
            beta.push_back(b);
            break;
          }
        }
      }
      if (beta.empty()) continue;  // increment T

      // Line 9: score f(C ⊕ P_b(T)) for every b in β as one batch.
      CandidateBatch batch;
      batch.reserve(beta.size());
      for (const net::SectorId b : beta) {
        batch.push_back(Candidate::single(Mutation::power(
            b, model.configuration()[b].power_dbm + delta_db)));
      }
      const std::vector<double> utilities = evaluator.score(batch);
      result.candidate_evaluations += static_cast<long>(batch.size());
      metrics.batch(batch.size());

      // Serial scan in candidate order: same winner as evaluating the
      // candidates one by one (earlier sector wins a near-tie).
      net::SectorId best_sector = net::kInvalidSector;
      double best_utility = current_utility;
      for (std::size_t i = 0; i < beta.size(); ++i) {
        if (utilities[i] > best_utility + options_.min_improvement) {
          best_utility = utilities[i];
          best_sector = beta[i];
        }
      }
      if (best_sector == net::kInvalidSector) {
        metrics.reject(batch.size());
        continue;  // increment T
      }
      metrics.accept(1);
      metrics.reject(batch.size() - 1);

      // Line 10: apply the winning change.
      const double power = model.configuration()[best_sector].power_dbm;
      model.set_power(best_sector, power + delta_db);
      current_utility = best_utility;
      ++result.accepted_steps;
      result.trace.push_back(
          TuningStep{best_sector, delta_db, 0, current_utility});
      accepted = true;

      // Line 11: update G.
      degraded = degraded_grids(model, baseline_rates, degraded);
    }
    if (!accepted) break;  // no sector improves f at any allowed T
  }

  result.config = model.configuration();
  result.utility = current_utility;
  util::log_debug() << "PowerSearch: " << result.accepted_steps
                    << " steps, utility " << result.utility;
  return result;
}

}  // namespace magus::core
