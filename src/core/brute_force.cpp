#include "core/brute_force.h"

#include <limits>
#include <stdexcept>

#include "obs/trace.h"

namespace magus::core {

BruteForceSearch::BruteForceSearch(long max_combinations)
    : max_combinations_(max_combinations) {}

SearchResult BruteForceSearch::run(
    ParallelEvaluator& evaluator, std::span<const BruteForceAxis> axes) const {
  long combinations = 1;
  for (const auto& axis : axes) {
    if (axis.power_levels_dbm.empty() || axis.tilt_indices.empty()) {
      throw std::invalid_argument("BruteForceSearch: empty axis");
    }
    combinations *= static_cast<long>(axis.power_levels_dbm.size()) *
                    static_cast<long>(axis.tilt_indices.size());
    if (combinations > max_combinations_) {
      throw std::invalid_argument("BruteForceSearch: search space too large");
    }
  }

  model::AnalysisModel& model = evaluator.model();
  MAGUS_TRACE_SPAN("search.brute_force", "planner");
  SearchMetrics metrics{"brute_force"};
  const auto base_snapshot = model.snapshot();

  SearchResult result;
  result.utility = -std::numeric_limits<double>::infinity();
  Candidate best;

  // Odometer over the axes, materialized and scored chunk by chunk (the
  // full product would not fit in memory for the larger testbed sweeps).
  std::vector<std::size_t> counter(axes.size() * 2, 0);  // power, tilt pairs
  const auto advance = [&]() -> bool {
    for (std::size_t d = 0; d < counter.size(); ++d) {
      const auto& axis = axes[d / 2];
      const std::size_t limit = (d % 2 == 0) ? axis.power_levels_dbm.size()
                                             : axis.tilt_indices.size();
      if (++counter[d] < limit) return true;
      counter[d] = 0;
    }
    return false;
  };
  const auto current_candidate = [&]() {
    Candidate c;
    c.mutations.reserve(axes.size() * 2);
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const auto& axis = axes[a];
      c.mutations.push_back(Mutation::power(
          axis.sector, axis.power_levels_dbm[counter[a * 2]]));
      c.mutations.push_back(Mutation::tilt_to(
          axis.sector, axis.tilt_indices[counter[a * 2 + 1]]));
    }
    return c;
  };

  constexpr std::size_t kChunk = 1024;
  bool more = true;
  CandidateBatch chunk;
  while (more) {
    chunk.clear();
    do {
      chunk.push_back(current_candidate());
      more = advance();
    } while (more && chunk.size() < kChunk);

    const std::vector<double> utilities = evaluator.score(chunk);
    result.candidate_evaluations += static_cast<long>(chunk.size());
    metrics.batch(chunk.size());
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      if (utilities[i] > result.utility) {  // strict: earliest optimum wins
        result.utility = utilities[i];
        best = chunk[i];
      }
    }
  }

  // Exhaustive sweep: exactly one winner out of everything scored.
  metrics.accept(1);
  metrics.reject(
      static_cast<std::uint64_t>(result.candidate_evaluations) - 1);

  model.restore(base_snapshot);
  apply_candidate(model, best);
  result.config = model.configuration();
  return result;
}

}  // namespace magus::core
