#include "core/brute_force.h"

#include <limits>
#include <stdexcept>

namespace magus::core {

BruteForceSearch::BruteForceSearch(long max_combinations)
    : max_combinations_(max_combinations) {}

SearchResult BruteForceSearch::run(
    Evaluator& evaluator, std::span<const BruteForceAxis> axes) const {
  long combinations = 1;
  for (const auto& axis : axes) {
    if (axis.power_levels_dbm.empty() || axis.tilt_indices.empty()) {
      throw std::invalid_argument("BruteForceSearch: empty axis");
    }
    combinations *= static_cast<long>(axis.power_levels_dbm.size()) *
                    static_cast<long>(axis.tilt_indices.size());
    if (combinations > max_combinations_) {
      throw std::invalid_argument("BruteForceSearch: search space too large");
    }
  }

  model::AnalysisModel& model = evaluator.model();
  const auto base_snapshot = model.snapshot();

  SearchResult result;
  result.utility = -std::numeric_limits<double>::infinity();
  net::Configuration best_config = model.configuration();

  // Odometer over the axes.
  std::vector<std::size_t> counter(axes.size() * 2, 0);  // power, tilt pairs
  const auto advance = [&]() -> bool {
    for (std::size_t d = 0; d < counter.size(); ++d) {
      const auto& axis = axes[d / 2];
      const std::size_t limit = (d % 2 == 0) ? axis.power_levels_dbm.size()
                                             : axis.tilt_indices.size();
      if (++counter[d] < limit) return true;
      counter[d] = 0;
    }
    return false;
  };

  do {
    model.restore(base_snapshot);
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const auto& axis = axes[a];
      model.set_power(axis.sector, axis.power_levels_dbm[counter[a * 2]]);
      model.set_tilt(axis.sector, axis.tilt_indices[counter[a * 2 + 1]]);
    }
    const double utility = evaluator.evaluate();
    ++result.candidate_evaluations;
    if (utility > result.utility) {
      result.utility = utility;
      best_config = model.configuration();
    }
  } while (advance());

  model.set_configuration(best_config);
  result.config = best_config;
  return result;
}

}  // namespace magus::core
