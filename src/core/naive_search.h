// The naive power-tuning baseline of Figure 13.
//
// "It increases transmission power by 1 dB for the first neighbor at each
// step until utility worsens, then does the same for the second neighbor
// and so on" — i.e. the tilt-style greedy applied to power, with no
// degraded-grid guidance and no candidate comparison. Parallelized the
// same way as TiltSearch: each sector's walk becomes a speculative ladder
// of absolute power jumps, and the longest improving prefix is accepted.
#pragma once

#include <span>

#include "core/parallel_evaluator.h"
#include "core/search_types.h"

namespace magus::core {

struct NaiveSearchOptions {
  double step_db = 1.0;
  int max_steps_per_sector = 20;
  double min_improvement = 1e-9;
};

class NaiveSearch {
 public:
  explicit NaiveSearch(NaiveSearchOptions options = {});

  /// `involved` ordered by priority (nearest neighbor first). The model is
  /// left at the returned configuration.
  [[nodiscard]] SearchResult run(ParallelEvaluator& evaluator,
                                 std::span<const net::SectorId> involved) const;

 private:
  NaiveSearchOptions options_;
};

}  // namespace magus::core
