#include "core/joint_search.h"

#include <utility>

#include "obs/trace.h"

namespace magus::core {

JointSearch::JointSearch(JointSearchOptions options)
    : options_(std::move(options)) {}

SearchResult JointSearch::run(
    ParallelEvaluator& evaluator, std::span<const net::SectorId> involved,
    std::span<const double> baseline_rates) const {
  MAGUS_TRACE_SPAN("search.joint", "planner");
  const TiltSearch tilt{options_.tilt};
  SearchResult tilt_result = tilt.run(evaluator, involved);

  const PowerSearch power{options_.power};
  SearchResult power_result = power.run(evaluator, involved, baseline_rates);

  SearchResult combined;
  combined.config = power_result.config;
  combined.utility = power_result.utility;
  combined.accepted_steps =
      tilt_result.accepted_steps + power_result.accepted_steps;
  combined.candidate_evaluations =
      tilt_result.candidate_evaluations + power_result.candidate_evaluations;
  combined.trace = std::move(tilt_result.trace);
  combined.trace.insert(combined.trace.end(), power_result.trace.begin(),
                        power_result.trace.end());
  return combined;
}

}  // namespace magus::core
