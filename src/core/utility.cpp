#include "core/utility.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace magus::core {

Utility::Utility(std::string name, std::function<double(double)> u)
    : name_(std::move(name)), u_(std::move(u)) {
  if (!u_) throw std::invalid_argument("Utility: empty function");
}

Utility Utility::performance() {
  return Utility{"performance", [](double rate_bps) {
                   return std::log(rate_bps);
                 }};
}

Utility Utility::coverage() {
  return Utility{"coverage", [](double) { return 1.0; }};
}

Utility Utility::rate_threshold(double min_rate_bps) {
  return Utility{"rate>=" + std::to_string(min_rate_bps),
                 [min_rate_bps](double rate_bps) {
                   return rate_bps >= min_rate_bps ? 1.0 : 0.0;
                 }};
}

}  // namespace magus::core
