#include "core/naive_search.h"

namespace magus::core {

NaiveSearch::NaiveSearch(NaiveSearchOptions options) : options_(options) {}

SearchResult NaiveSearch::run(Evaluator& evaluator,
                              std::span<const net::SectorId> involved) const {
  model::AnalysisModel& model = evaluator.model();
  SearchResult result;
  double current_utility = evaluator.evaluate();
  ++result.candidate_evaluations;

  for (const net::SectorId b : involved) {
    if (!model.configuration()[b].active) continue;
    for (int step = 0; step < options_.max_steps_per_sector; ++step) {
      const double before_power = model.configuration()[b].power_dbm;
      const auto snapshot = model.snapshot();
      model.set_power(b, before_power + options_.step_db);
      if (model.configuration()[b].power_dbm == before_power) break;  // cap
      const double utility = evaluator.evaluate();
      ++result.candidate_evaluations;
      if (utility > current_utility + options_.min_improvement) {
        current_utility = utility;
        ++result.accepted_steps;
        result.trace.push_back(
            TuningStep{b, options_.step_db, 0, utility});
      } else {
        model.restore(snapshot);
        break;
      }
    }
  }

  result.config = model.configuration();
  result.utility = current_utility;
  return result;
}

}  // namespace magus::core
