#include "core/naive_search.h"

#include "obs/trace.h"

namespace magus::core {

NaiveSearch::NaiveSearch(NaiveSearchOptions options) : options_(options) {}

SearchResult NaiveSearch::run(ParallelEvaluator& evaluator,
                              std::span<const net::SectorId> involved) const {
  model::AnalysisModel& model = evaluator.model();
  MAGUS_TRACE_SPAN("search.naive", "planner");
  SearchMetrics metrics{"naive"};
  SearchResult result;
  double current_utility = evaluator.evaluate();
  ++result.candidate_evaluations;

  for (const net::SectorId b : involved) {
    if (!model.configuration()[b].active) continue;

    // Speculative ladder of absolute power jumps, truncated at the
    // sector's power cap (the serial walk stops at the first capped step
    // without evaluating).
    const net::Sector& meta = model.network().sector(b);
    const double base_power = model.configuration()[b].power_dbm;
    CandidateBatch ladder;
    double previous = base_power;
    for (int step = 1; step <= options_.max_steps_per_sector; ++step) {
      const double target = base_power + step * options_.step_db;
      if (meta.clamp_power(target) == previous) break;  // capped
      previous = meta.clamp_power(target);
      ladder.push_back(Candidate::single(Mutation::power(b, target)));
    }
    if (ladder.empty()) continue;

    const std::vector<double> utilities = evaluator.score(ladder);
    result.candidate_evaluations += static_cast<long>(ladder.size());
    metrics.batch(ladder.size());

    // Longest improving prefix == the serial accept-or-stop rule.
    int steps = 0;
    double utility = current_utility;
    for (std::size_t i = 0; i < utilities.size(); ++i) {
      if (utilities[i] <= utility + options_.min_improvement) break;
      utility = utilities[i];
      ++steps;
      result.trace.push_back(
          TuningStep{b, options_.step_db, 0, utility});
    }
    metrics.ladder_prefix(static_cast<std::size_t>(steps));
    metrics.accept(static_cast<std::uint64_t>(steps));
    metrics.reject(ladder.size() - static_cast<std::size_t>(steps));
    if (steps == 0) continue;
    model.set_power(b, base_power + steps * options_.step_db);
    current_utility = utility;
    result.accepted_steps += steps;
  }

  result.config = model.configuration();
  result.utility = current_utility;
  return result;
}

}  // namespace magus::core
