#include "core/strategies.h"

#include <algorithm>
#include <limits>

namespace magus::core {

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNoTuning:
      return "no-tuning";
    case StrategyKind::kReactiveFeedback:
      return "reactive-feedback";
    case StrategyKind::kReactiveModel:
      return "reactive-model";
    case StrategyKind::kProactiveModel:
      return "proactive-model";
  }
  return "?";
}

FeedbackRun run_feedback_search(Evaluator& evaluator,
                                std::span<const net::SectorId> involved,
                                const FeedbackOptions& options) {
  model::AnalysisModel& model = evaluator.model();
  FeedbackRun run;
  double current_utility = evaluator.evaluate();
  ++run.probe_count;

  for (int step = 0; step < options.max_steps; ++step) {
    const auto snapshot = model.snapshot();
    double best_utility = current_utility + options.min_improvement;
    net::SectorId best_sector = net::kInvalidSector;
    double best_power_delta = 0.0;
    int best_tilt_delta = 0;

    const auto probe = [&](net::SectorId b, double power_delta,
                           int tilt_delta) {
      if (power_delta != 0.0) {
        const double before = model.configuration()[b].power_dbm;
        model.set_power(b, before + power_delta);
        if (model.configuration()[b].power_dbm == before) return;  // clamped
      } else {
        const auto before = model.configuration()[b].tilt;
        model.set_tilt(b, before + tilt_delta);
        if (model.configuration()[b].tilt == before) return;  // clamped
      }
      const double utility = evaluator.evaluate();
      ++run.probe_count;
      model.restore(snapshot);
      if (utility > best_utility) {
        best_utility = utility;
        best_sector = b;
        best_power_delta = power_delta;
        best_tilt_delta = tilt_delta;
      }
    };

    for (const net::SectorId b : involved) {
      if (!model.configuration()[b].active) continue;
      if (options.allow_power) {
        probe(b, options.unit_db, 0);
        probe(b, -options.unit_db, 0);
      }
      if (options.allow_tilt) {
        probe(b, 0.0, -1);
        probe(b, 0.0, +1);
      }
    }

    if (best_sector == net::kInvalidSector) break;  // converged
    if (best_power_delta != 0.0) {
      model.set_power(best_sector, model.configuration()[best_sector].power_dbm +
                                       best_power_delta);
    } else {
      model.set_tilt(best_sector,
                     model.configuration()[best_sector].tilt + best_tilt_delta);
    }
    current_utility = best_utility;
    run.utility_per_step.push_back(current_utility);
  }

  run.final_config = model.configuration();
  return run;
}

std::vector<StrategyTimeline> build_strategy_timelines(
    Evaluator& evaluator, std::span<const net::SectorId> targets,
    std::span<const net::SectorId> involved, const net::Configuration& c_after,
    const TimelineOptions& options) {
  model::AnalysisModel& model = evaluator.model();
  const net::Configuration c_before = model.configuration();

  const double f_before = evaluator.evaluate();
  net::Configuration c_upgrade = c_before;
  for (const net::SectorId t : targets) {
    c_upgrade = c_upgrade.with_sector_off(t);
  }
  const double f_upgrade = evaluator.evaluate_configuration(c_upgrade);
  const double f_after = evaluator.evaluate_configuration(c_after);

  std::vector<StrategyTimeline> timelines;

  const auto make_series = [&](StrategyKind kind) {
    StrategyTimeline timeline;
    timeline.kind = kind;
    for (int s = -options.pre_steps; s < 0; ++s) {
      timeline.series.push_back({s, f_before});
    }
    return timeline;
  };

  // No tuning: the utility stays at f(C_upgrade) for the whole window.
  {
    StrategyTimeline t = make_series(StrategyKind::kNoTuning);
    for (int s = 0; s <= options.post_steps; ++s) {
      t.series.push_back({s, f_upgrade});
    }
    t.final_utility = f_upgrade;
    timelines.push_back(std::move(t));
  }

  // Reactive model-based: one step at f_upgrade (computing + pushing the
  // configuration), then f_after.
  {
    StrategyTimeline t = make_series(StrategyKind::kReactiveModel);
    t.series.push_back({0, f_upgrade});
    for (int s = 1; s <= options.post_steps; ++s) {
      t.series.push_back({s, f_after});
    }
    t.convergence_steps = 1;
    t.probe_count = 1;
    t.final_utility = f_after;
    timelines.push_back(std::move(t));
  }

  // Proactive model-based: neighbors pre-tuned, so the utility lands at
  // f_after the moment the targets go down and never dips below it.
  {
    StrategyTimeline t = make_series(StrategyKind::kProactiveModel);
    for (int s = 0; s <= options.post_steps; ++s) {
      t.series.push_back({s, f_after});
    }
    t.convergence_steps = 0;
    t.probe_count = 0;
    t.final_utility = f_after;
    timelines.push_back(std::move(t));
  }

  // Reactive feedback-based: starts at f_upgrade and climbs one accepted
  // unit-change per step; each step costs |candidates| on-air probes.
  {
    model.set_configuration(c_upgrade);
    FeedbackRun run = run_feedback_search(evaluator, involved,
                                          options.feedback);
    StrategyTimeline t = make_series(StrategyKind::kReactiveFeedback);
    t.series.push_back({0, f_upgrade});
    double last = f_upgrade;
    for (std::size_t i = 0; i < run.utility_per_step.size(); ++i) {
      last = run.utility_per_step[i];
      t.series.push_back({static_cast<int>(i) + 1, last});
    }
    for (int s = static_cast<int>(run.utility_per_step.size()) + 1;
         s <= options.post_steps; ++s) {
      t.series.push_back({s, last});
    }
    t.convergence_steps = static_cast<int>(run.utility_per_step.size());
    t.probe_count = run.probe_count;
    t.final_utility = last;
    timelines.push_back(std::move(t));
  }

  model.set_configuration(c_before);
  return timelines;
}

}  // namespace magus::core
