// Precomputed outage contingencies (paper §8, future work: "using Magus's
// predictive model for unplanned outages ... pre-computing configurations
// for different outages").
//
// For unplanned outages the proactive window doesn't exist, but the model
// still beats pure feedback: precompute the mitigation plan for every
// plausible outage (e.g., each sector, or each site) ahead of time, and on
// failure push the stored C_after in one step — the reactive model-based
// strategy of §2 with zero computation delay, and a warm start for any
// subsequent feedback correction.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/planner.h"

namespace magus::core {

class ContingencyTable {
 public:
  /// Plans mitigation for every outage set in `outages` using `planner`.
  /// Each entry is the set of sectors assumed to fail together. The
  /// evaluator's model is left at the network default configuration.
  [[nodiscard]] static ContingencyTable build(
      const MagusPlanner& planner,
      std::span<const std::vector<net::SectorId>> outages);

  /// Convenience: one contingency per sector of the network.
  [[nodiscard]] static ContingencyTable build_per_sector(
      const MagusPlanner& planner, const net::Network& network);

  [[nodiscard]] std::size_t size() const { return plans_.size(); }

  /// The stored plan for exactly this outage set (order-insensitive), or
  /// nullptr if none was precomputed.
  [[nodiscard]] const MitigationPlan* lookup(
      std::span<const net::SectorId> failed) const;

  /// Nearest-match result: the chosen stored plan plus which failed
  /// sectors it does and does not account for.
  struct NearestMatch {
    const MitigationPlan* plan = nullptr;
    std::vector<net::SectorId> covered;    ///< failed sectors the plan handles
    std::vector<net::SectorId> uncovered;  ///< failed sectors it does not
    [[nodiscard]] bool exact() const {
      return plan != nullptr && uncovered.empty();
    }
  };

  /// Graceful-degradation lookup: exact match when available; otherwise
  /// the *largest* precomputed outage set that is a subset of `failed`
  /// (ties broken by higher predicted recovery, then by key order, so the
  /// result is deterministic). A multi-sector failure thus degrades to the
  /// best partial contingency instead of returning nothing; the caller
  /// must still take the `uncovered` sectors off-air itself (apply() with
  /// allow_nearest does exactly that). plan == nullptr only when no stored
  /// outage set is a subset of `failed`.
  ///
  /// `excluded` (typically the executor's quarantined-sector set) vetoes
  /// any stored entry that *references* an excluded sector — in its outage
  /// key or in its tuned `involved` set — so a contingency never leans on
  /// fenced-off equipment; the next-best subset is chosen instead (the
  /// exact match is vetoed the same way).
  [[nodiscard]] NearestMatch lookup_nearest(
      std::span<const net::SectorId> failed,
      std::span<const net::SectorId> excluded = {}) const;

  /// Applies a stored contingency: takes the failed sectors off-air and
  /// pushes the precomputed C_after onto the model. With `allow_nearest`,
  /// falls back to lookup_nearest() and additionally forces the uncovered
  /// failed sectors off-air on top of the stored configuration. Sectors in
  /// `excluded` are never reconfigured: their current settings are pinned
  /// through the push (and entries relying on them are vetoed, as in
  /// lookup_nearest). Returns false (model untouched) when nothing
  /// matches.
  bool apply(model::AnalysisModel& model,
             std::span<const net::SectorId> failed,
             bool allow_nearest = false,
             std::span<const net::SectorId> excluded = {}) const;

  /// Worst/average predicted recovery over all stored contingencies —
  /// planning-time risk metrics for the operator.
  [[nodiscard]] double worst_recovery() const;
  [[nodiscard]] double mean_recovery() const;

 private:
  using Key = std::vector<net::SectorId>;  // sorted

  [[nodiscard]] static Key key_of(std::span<const net::SectorId> sectors);

  std::map<Key, MitigationPlan> plans_;
};

}  // namespace magus::core
