// ParallelEvaluator: scores candidate batches across worker threads.
//
// Owns one EvalContext clone (plus scratch buffers) per worker. score()
// snapshots the driver model's current state once, then every candidate is
// evaluated from that identical base: the worker restores its clone to the
// base, applies the candidate's mutations incrementally, and runs the same
// fused utility pass the serial Evaluator uses. A candidate's utility
// therefore depends only on (base state, candidate) — never on which worker
// scored it, in what order, or how many threads exist — so search drivers
// built on batches return bit-identical results for any thread count,
// including 1 (where the pool runs inline with zero synchronization).
//
// Thread-safety: the driver model is read (snapshot/clone) but never
// mutated during score(); worker clones are single-owner per worker; the
// shared MarketContext is immutable during evaluation (see
// model/market_context.h). The evaluation counter aggregates across
// workers atomically.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/evaluator.h"
#include "core/search_types.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace magus::core {

class ParallelEvaluator {
 public:
  /// `model` must outlive the evaluator. `threads == 0` resolves to the
  /// hardware concurrency; 1 gives the exact serial path.
  ///
  /// `use_coverage_index` (the default) builds the market's grid-major
  /// coverage index if absent and binds the driver model to it before any
  /// worker clone exists, so every evaluation runs the CSR fast paths
  /// (bit-identical results — see model/coverage_index.h). Pass false to
  /// stay on the legacy all-sectors scan (benchmark baselines).
  ParallelEvaluator(model::AnalysisModel* model, Utility utility,
                    std::size_t threads = 1, bool use_coverage_index = true);

  /// Shares an externally owned worker pool instead of spawning one. The
  /// fleet WavePlanner plans hundreds of markets with one pool: a fresh
  /// per-market pool would pay thread spawn/join per market and oversubscribe
  /// nothing in return. `pool` must outlive the evaluator; batches still run
  /// one at a time (ThreadPool::run is not reentrant), which the sequential
  /// per-market planning loop guarantees.
  ParallelEvaluator(model::AnalysisModel* model, Utility utility,
                    util::ThreadPool* pool, bool use_coverage_index = true);

  [[nodiscard]] model::AnalysisModel& model() const { return *model_; }
  [[nodiscard]] const Utility& utility() const { return utility_; }
  [[nodiscard]] std::size_t thread_count() const { return pool_->size(); }

  /// f of the driver model's current state (serial, on the calling
  /// thread). Counts as one evaluation.
  [[nodiscard]] double evaluate();

  /// Scores every candidate applied on top of the model's *current* state;
  /// returns the utilities in candidate order. The model itself is left
  /// untouched. Counts batch.size() evaluations.
  [[nodiscard]] std::vector<double> score(std::span<const Candidate> batch);

  /// Evaluations performed so far, aggregated across all workers. Replaces
  /// Evaluator::evaluation_count() as the search-cost metric on the
  /// parallel path; the total is deterministic (it counts candidates, not
  /// per-thread work shares).
  [[nodiscard]] long evaluation_count() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::unique_ptr<model::EvalContext> context;  ///< lazily cloned
    EvalScratch scratch;
    /// "evaluator.worker.<i>.evals" in the global registry; the per-worker
    /// counts always sum to evaluation_count() (the serial-equivalent
    /// total), which is the invariant the metrics artifact exposes.
    obs::Counter* evals = nullptr;
    bool measured_wait = false;  ///< first-task queue wait taken this batch
  };

  /// Shared tail of both constructors: index binding + worker slots.
  void init(bool use_coverage_index);

  model::AnalysisModel* model_;
  Utility utility_;
  std::unique_ptr<util::ThreadPool> owned_pool_;  ///< null when shared
  util::ThreadPool* pool_;
  std::vector<Worker> workers_;
  EvalScratch scratch_;  ///< for the serial evaluate()
  std::atomic<long> evaluations_{0};
};

}  // namespace magus::core
