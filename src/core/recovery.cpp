#include "core/recovery.h"

#include <cmath>

namespace magus::core {

double recovery_ratio(const RecoveryInputs& inputs) {
  const double degradation = inputs.f_before - inputs.f_upgrade;
  if (std::abs(degradation) < 1e-12) return 0.0;
  return (inputs.f_after - inputs.f_upgrade) / degradation;
}

}  // namespace magus::core
