// The Evaluation component of Figure 6: computes f(U(C)) for an eval
// context's current configuration with a single fused pass over the grid.
//
// The pass itself is the free function evaluate_utility(), which scores any
// model::EvalContext — the driver's model or a worker thread's clone — with
// caller-owned scratch buffers, so the parallel evaluator can run it
// concurrently on per-worker contexts. Evaluator is the serial wrapper that
// binds a model, a utility and its own scratch/counter.
#pragma once

#include <cstdint>
#include <vector>

#include "core/utility.h"
#include "model/analysis_model.h"

namespace magus::core {

/// Reusable buffers for evaluate_utility (avoids per-call allocation).
/// One instance per thread; never share across concurrent evaluations.
struct EvalScratch {
  std::vector<std::int8_t> cqi;
  std::vector<double> load;
};

/// Overall utility of the context's *current* state: the UE-weighted sum
/// of per-UE utility over in-service grids (out-of-service UEs contribute
/// 0, the paper's r <= 0 branch). Thread-safe as long as `context` and
/// `scratch` are owned by the calling thread.
[[nodiscard]] double evaluate_utility(const model::EvalContext& context,
                                      const Utility& utility,
                                      EvalScratch& scratch);

class Evaluator {
 public:
  /// `model` must outlive the evaluator.
  Evaluator(model::AnalysisModel* model, Utility utility);

  [[nodiscard]] const Utility& utility() const { return utility_; }
  [[nodiscard]] model::AnalysisModel& model() const { return *model_; }

  /// f of the model's current state (see evaluate_utility).
  [[nodiscard]] double evaluate() const;

  /// Convenience: utility of an arbitrary configuration. Applies it,
  /// evaluates, and restores the previous state via snapshot.
  [[nodiscard]] double evaluate_configuration(const net::Configuration& c) const;

  /// Number of evaluate() calls so far — the search-cost metric reported
  /// by the convergence benches. Counts only *this* evaluator's serial
  /// calls; ParallelEvaluator::evaluation_count() aggregates across its
  /// workers.
  [[nodiscard]] long evaluation_count() const { return evaluations_; }

 private:
  model::AnalysisModel* model_;
  Utility utility_;
  mutable long evaluations_ = 0;
  mutable EvalScratch scratch_;
};

}  // namespace magus::core
