// The Evaluation component of Figure 6: computes f(U(C)) for the analysis
// model's current configuration with a single fused pass over the grid.
#pragma once

#include <cstdint>
#include <vector>

#include "core/utility.h"
#include "model/analysis_model.h"

namespace magus::core {

class Evaluator {
 public:
  /// `model` must outlive the evaluator.
  Evaluator(model::AnalysisModel* model, Utility utility);

  [[nodiscard]] const Utility& utility() const { return utility_; }
  [[nodiscard]] model::AnalysisModel& model() const { return *model_; }

  /// Overall utility of the model's *current* state: the UE-weighted sum
  /// of per-UE utility over in-service grids (out-of-service UEs
  /// contribute 0, the paper's r <= 0 branch).
  [[nodiscard]] double evaluate() const;

  /// Convenience: utility of an arbitrary configuration. Applies it,
  /// evaluates, and restores the previous state via snapshot.
  [[nodiscard]] double evaluate_configuration(const net::Configuration& c) const;

  /// Number of evaluate() calls so far — the search-cost metric reported
  /// by the convergence benches.
  [[nodiscard]] long evaluation_count() const { return evaluations_; }

 private:
  model::AnalysisModel* model_;
  Utility utility_;
  mutable long evaluations_ = 0;
  // Scratch buffers reused across evaluations to avoid per-call allocation.
  mutable std::vector<std::int8_t> cqi_scratch_;
  mutable std::vector<double> load_scratch_;
};

}  // namespace magus::core
