// Utility functions (paper §5, "The Evaluation Component").
//
// A per-UE utility u(r) maps a UE's actual downlink rate to a goodness
// value; the overall utility f is the UE-density-weighted sum of u over all
// grids. Two standard utilities from the paper:
//
//   - performance (Formula 6): u(r) = log r for r > 0, else 0 — the
//     proportional-fair log-rate objective of §3 (Kelly),
//   - coverage (Formula 5):    u(r) = 1 for r > 0, else 0 — count of UEs
//     with qualified service.
//
// plus a hook for custom utilities (e.g. rate-threshold QoS targets).
#pragma once

#include <functional>
#include <string>

namespace magus::core {

class Utility {
 public:
  /// Formula 6: sum of log rates. Rates are in bit/s; the log is natural.
  [[nodiscard]] static Utility performance();

  /// Formula 5: number of UEs with service.
  [[nodiscard]] static Utility coverage();

  /// UEs whose rate meets a minimum target count 1, others 0.
  [[nodiscard]] static Utility rate_threshold(double min_rate_bps);

  /// Custom per-UE utility. `u` receives the actual rate in bit/s and is
  /// only called with positive rates; out-of-service UEs contribute 0.
  Utility(std::string name, std::function<double(double)> u);

  /// Per-UE utility of a positive rate. Requires rate_bps > 0 (callers
  /// handle the out-of-service case as a 0 contribution).
  [[nodiscard]] double per_ue(double rate_bps) const { return u_(rate_bps); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::function<double(double)> u_;
};

}  // namespace magus::core
