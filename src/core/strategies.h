// The four strategies of the solution space (paper §2, Figure 1) as
// utility-vs-time timelines, plus the reactive-feedback convergence
// simulation behind Figure 12.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/search_types.h"

namespace magus::core {

enum class StrategyKind {
  kNoTuning,
  kReactiveFeedback,
  kReactiveModel,
  kProactiveModel,
};

[[nodiscard]] std::string strategy_name(StrategyKind kind);

struct TimelinePoint {
  int step = 0;  ///< 0 = the moment the targets go off-air
  double utility = 0.0;
};

struct StrategyTimeline {
  StrategyKind kind = StrategyKind::kNoTuning;
  std::vector<TimelinePoint> series;
  /// Tuning steps needed after the upgrade to reach the final utility
  /// (0 for proactive strategies; the paper's idealized feedback count).
  int convergence_steps = 0;
  /// Model/measurement probes consumed. For the feedback strategy this is
  /// the paper's "realistic" estimate: each probe is an on-air
  /// trial-and-measure iteration.
  long probe_count = 0;
  double final_utility = 0.0;
};

/// Iterative feedback optimizer: at each step, tries every single-unit
/// change (±1 power unit, ±1 tilt step) on every involved sector, measures
/// each (a probe), and keeps the best. This idealizes SON-style reactive
/// adaptation with a perfect oracle per step.
struct FeedbackOptions {
  double unit_db = 1.0;
  bool allow_power = true;
  bool allow_tilt = true;
  int max_steps = 400;
  double min_improvement = 1e-9;
};

struct FeedbackRun {
  std::vector<double> utility_per_step;  ///< utility after each accepted step
  long probe_count = 0;
  net::Configuration final_config;
};

[[nodiscard]] FeedbackRun run_feedback_search(
    Evaluator& evaluator, std::span<const net::SectorId> involved,
    const FeedbackOptions& options);

struct TimelineOptions {
  int pre_steps = 5;   ///< steps shown before the upgrade
  int post_steps = 30; ///< steps shown after (feedback may need them all)
  FeedbackOptions feedback;
};

/// Builds the four timelines. The evaluator's model must be at C_before
/// with UE density frozen; `c_after` is the tuned configuration (targets
/// off). The model is restored to C_before on return.
[[nodiscard]] std::vector<StrategyTimeline> build_strategy_timelines(
    Evaluator& evaluator, std::span<const net::SectorId> targets,
    std::span<const net::SectorId> involved, const net::Configuration& c_after,
    const TimelineOptions& options = {});

}  // namespace magus::core
