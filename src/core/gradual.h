// Gradual tuning (paper §6, "Benefits of Gradual Tuning").
//
// Switching from C_before straight to C_after forces every migrating UE to
// hand over simultaneously at upgrade time, and UEs still attached to the
// target when it goes dark suffer hard (source-offline) handovers. Magus
// instead walks the target's power down in small steps ahead of the
// upgrade, spreading the handovers out — and because it knows f(C_after)
// a priori (only the model-based approach does), it guarantees the utility
// never dips below that floor: whenever a step would sink under it, Magus
// compensates by tuning the neighbors a bit toward C_after first.
#pragma once

#include <span>
#include <vector>

#include "core/evaluator.h"
#include "core/search_types.h"
#include "sim/migration_sim.h"

namespace magus::core {

struct GradualOptions {
  double target_step_db = 2.0;  ///< per-step power-down on the targets
  double compensation_step_db = 1.0;  ///< neighbor power move per compensation
  int max_steps = 64;
  /// Neighbor moves toward C_after applied every step regardless of the
  /// utility floor. Spreading the neighbor tuning across the ramp-down
  /// (instead of one bulk change at the upgrade instant) is what smears
  /// the inter-neighbor handovers over time; the floor guard then only
  /// needs to fire when the target's shrinkage outruns it.
  int proactive_moves_per_step = 2;
};

struct GradualStepInfo {
  net::Configuration config;
  double utility = 0.0;
  /// UEs forced to hand over by this step (vs the previous one).
  double handover_ues = 0.0;
  double hard_handover_ues = 0.0;
  /// Number of neighbor compensation tweaks applied within this step (the
  /// "∧" marks in Figure 11).
  int compensations = 0;
  bool is_final = false;  ///< the step that takes the targets off-air
};

struct GradualPlan {
  /// steps[0] is the C_before state (no handovers); the last step has the
  /// targets off-air at C_after.
  std::vector<GradualStepInfo> steps;
  /// Aligned snapshots (service map + on-air flags + utility) consumable
  /// by sim::MigrationSimulator.
  std::vector<sim::ServiceSnapshot> snapshots;
  double floor_utility = 0.0;  ///< f(C_after), the guaranteed floor
  /// True when compensation ran out and the plan had to jump directly to
  /// C_after before fully draining the targets.
  bool jumped_to_final = false;

  [[nodiscard]] double max_simultaneous_handover_ues() const;
  [[nodiscard]] double total_handover_ues() const;
  /// Fraction of handover UEs whose source was still on-air.
  [[nodiscard]] double seamless_fraction() const;
};

class GradualTuner {
 public:
  explicit GradualTuner(GradualOptions options = {});

  /// Builds the migration schedule. The evaluator's model must be at
  /// C_before with the UE density frozen; `c_after` is the tuned final
  /// configuration (targets off) found by a search. The model is left at
  /// the final configuration.
  [[nodiscard]] GradualPlan plan(Evaluator& evaluator,
                                 std::span<const net::SectorId> targets,
                                 const net::Configuration& c_after) const;

 private:
  GradualOptions options_;
};

/// The one-shot alternative for comparison: a two-snapshot "plan" that
/// jumps from the model's current state (C_before) straight to c_after.
/// Leaves the model at c_after.
[[nodiscard]] GradualPlan direct_switch_plan(
    Evaluator& evaluator, std::span<const net::SectorId> targets,
    const net::Configuration& c_after);

}  // namespace magus::core
