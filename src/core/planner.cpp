#include "core/planner.h"

#include <algorithm>
#include <stdexcept>

#include "core/strategies.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace magus::core {

namespace {

struct PlannerMetrics {
  obs::Counter& plans;
  obs::Counter& replans;
  obs::Counter& pre_plan_steps;
  obs::Counter& polish_steps;
  obs::Histogram& plan_latency_us;

  [[nodiscard]] static PlannerMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static PlannerMetrics metrics{
        registry.counter("planner.plans"),
        registry.counter("planner.replans"),
        registry.counter("planner.pre_plan_steps"),
        registry.counter("planner.polish_steps"),
        registry.histogram("planner.plan_latency_us",
                           obs::exponential_bounds(1'000.0, 4.0, 12)),
    };
    return metrics;
  }
};

}  // namespace

std::string tuning_mode_name(TuningMode mode) {
  switch (mode) {
    case TuningMode::kPower:
      return "power";
    case TuningMode::kTilt:
      return "tilt";
    case TuningMode::kJoint:
      return "joint";
    case TuningMode::kNaive:
      return "naive";
  }
  return "?";
}

MagusPlanner::MagusPlanner(Evaluator* evaluator, PlannerOptions options)
    : evaluator_(evaluator), options_(options) {
  if (evaluator_ == nullptr) {
    throw std::invalid_argument("MagusPlanner: evaluator must not be null");
  }
  parallel_ =
      options_.shared_pool != nullptr
          ? std::make_unique<ParallelEvaluator>(
                &evaluator_->model(), evaluator_->utility(),
                options_.shared_pool, options_.use_coverage_index)
          : std::make_unique<ParallelEvaluator>(
                &evaluator_->model(), evaluator_->utility(), options_.threads,
                options_.use_coverage_index);
}

SearchResult MagusPlanner::run_search(
    std::span<const net::SectorId> involved,
    std::span<const double> baseline_rates) const {
  switch (options_.mode) {
    case TuningMode::kPower: {
      const PowerSearch search{options_.power};
      return search.run(*parallel_, involved, baseline_rates);
    }
    case TuningMode::kTilt: {
      const TiltSearch search{options_.tilt};
      return search.run(*parallel_, involved);
    }
    case TuningMode::kJoint: {
      const JointSearch search{JointSearchOptions{options_.tilt,
                                                  options_.power}};
      return search.run(*parallel_, involved, baseline_rates);
    }
    case TuningMode::kNaive: {
      const NaiveSearch search{};
      return search.run(*parallel_, involved);
    }
  }
  throw std::logic_error("MagusPlanner: unknown tuning mode");
}

void MagusPlanner::polish(MitigationPlan& plan) const {
  if (!options_.hybrid_polish || options_.mode == TuningMode::kNaive) return;
  MAGUS_TRACE_SPAN("planner.polish", "planner");
  FeedbackOptions polish_options;
  polish_options.unit_db = options_.power.unit_db;
  polish_options.allow_power = options_.mode != TuningMode::kTilt;
  polish_options.allow_tilt = options_.mode != TuningMode::kPower;
  polish_options.max_steps = options_.polish_max_steps;
  const FeedbackRun result =
      run_feedback_search(*evaluator_, plan.involved, polish_options);
  if (!result.utility_per_step.empty()) {
    plan.search.utility = result.utility_per_step.back();
    plan.search.config = result.final_config;
    plan.search.accepted_steps +=
        static_cast<int>(result.utility_per_step.size());
    PlannerMetrics::get().polish_steps.add(result.utility_per_step.size());
  }
  plan.search.candidate_evaluations += result.probe_count;
}

std::vector<net::SectorId> MagusPlanner::involved_sectors(
    std::span<const net::SectorId> targets,
    std::span<const net::SectorId> excluded) const {
  const net::Network& network = evaluator_->model().network();
  std::vector<net::SectorId> involved =
      network.neighbors_of(targets, options_.neighbor_radius_m);
  if (!excluded.empty()) {
    std::vector<net::SectorId> vetoed(excluded.begin(), excluded.end());
    std::sort(vetoed.begin(), vetoed.end());
    std::erase_if(involved, [&](net::SectorId s) {
      return std::binary_search(vetoed.begin(), vetoed.end(), s);
    });
  }

  // Order nearest-first (minimum distance to any target's site); the tilt
  // and naive greedy passes visit sectors in this order.
  const auto distance_to_targets = [&](net::SectorId s) {
    double best = std::numeric_limits<double>::infinity();
    for (const net::SectorId t : targets) {
      best = std::min(best, geo::distance_m(network.sector(s).position,
                                            network.sector(t).position));
    }
    return best;
  };
  std::sort(involved.begin(), involved.end(),
            [&](net::SectorId a, net::SectorId b) {
              return distance_to_targets(a) < distance_to_targets(b);
            });
  if (involved.size() > options_.max_neighbors) {
    involved.resize(options_.max_neighbors);
  }
  return involved;
}

MitigationPlan MagusPlanner::plan_upgrade(
    std::span<const net::SectorId> targets,
    std::span<const net::SectorId> excluded) const {
  if (targets.empty()) {
    throw std::invalid_argument("MagusPlanner: no target sectors");
  }
  for (const net::SectorId t : targets) {
    if (std::find(excluded.begin(), excluded.end(), t) != excluded.end()) {
      throw std::invalid_argument(
          "MagusPlanner: target sector is excluded (quarantined)");
    }
  }
  MAGUS_TRACE_SPAN("planner.plan_upgrade", "planner");
  PlannerMetrics& metrics = PlannerMetrics::get();
  metrics.plans.add(1);
  const obs::ScopedTimerUs plan_timer{metrics.plan_latency_us};
  model::AnalysisModel& model = evaluator_->model();

  MitigationPlan plan;
  plan.targets.assign(targets.begin(), targets.end());
  plan.involved = involved_sectors(targets, excluded);

  // C_before: the *planned* configuration. Starting from the deployment
  // defaults, locally optimize the neighborhood (targets included — the
  // planners tuned it with everything on-air), then freeze the UE density
  // there.
  model.set_configuration(model.network().default_configuration());
  if (options_.pre_plan) {
    MAGUS_TRACE_SPAN("planner.pre_plan", "planner");
    std::vector<net::SectorId> neighborhood = plan.involved;
    neighborhood.insert(neighborhood.end(), plan.targets.begin(),
                        plan.targets.end());
    model.freeze_uniform_ue_density();
    metrics.pre_plan_steps.add(static_cast<std::uint64_t>(
        pre_plan_power(*evaluator_, neighborhood, options_.pre_plan_step_db,
                       options_.pre_plan_sweeps)));
  }
  plan.c_before = model.configuration();
  model.freeze_uniform_ue_density();
  plan.f_before = evaluator_->evaluate();
  const std::vector<double> baseline_rates = capture_rates(model);

  // C_upgrade: targets off-air, nothing tuned.
  for (const net::SectorId t : targets) model.set_active(t, false);
  plan.f_upgrade = evaluator_->evaluate();

  // Search for C_after (candidate batches scored across the worker pool).
  {
    MAGUS_TRACE_SPAN("planner.search", "planner");
    plan.search = run_search(plan.involved, baseline_rates);
  }
  // The hybrid phase's move set matches the tuning mode so the Table-1
  // rows stay comparable.
  polish(plan);
  plan.f_after = plan.search.utility;
  plan.recovery =
      recovery_ratio({plan.f_before, plan.f_upgrade, plan.f_after});

  // Gradual migration schedule, starting again from C_before.
  MAGUS_TRACE_SPAN("planner.gradual", "planner");
  model.set_configuration(plan.c_before);
  const GradualTuner tuner{options_.gradual};
  plan.gradual = tuner.plan(*evaluator_, targets, plan.search.config);

  return plan;
}

MitigationPlan MagusPlanner::replan_from_current(
    std::span<const net::SectorId> targets,
    std::span<const double> baseline_rates,
    std::span<const net::SectorId> excluded) const {
  if (targets.empty()) {
    throw std::invalid_argument("MagusPlanner: no target sectors");
  }
  MAGUS_TRACE_SPAN("planner.replan_from_current", "planner");
  PlannerMetrics::get().replans.add(1);
  model::AnalysisModel& model = evaluator_->model();

  MitigationPlan plan;
  plan.targets.assign(targets.begin(), targets.end());
  plan.involved = involved_sectors(targets, excluded);
  plan.c_before = model.configuration();
  plan.f_before = evaluator_->evaluate();

  const std::vector<double> baseline =
      baseline_rates.empty()
          ? capture_rates(model)
          : std::vector<double>(baseline_rates.begin(), baseline_rates.end());

  for (const net::SectorId t : targets) model.set_active(t, false);
  plan.f_upgrade = evaluator_->evaluate();

  plan.search = run_search(plan.involved, baseline);
  polish(plan);
  plan.f_after = plan.search.utility;
  plan.recovery =
      recovery_ratio({plan.f_before, plan.f_upgrade, plan.f_after});
  return plan;
}

int pre_plan_power(Evaluator& evaluator,
                   std::span<const net::SectorId> sectors, double step_db,
                   int sweeps) {
  model::AnalysisModel& model = evaluator.model();
  int accepted = 0;
  double current_utility = evaluator.evaluate();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (const net::SectorId s : sectors) {
      if (!model.configuration()[s].active) continue;
      for (const double direction : {step_db, -step_db}) {
        bool improved_any = false;
        while (true) {
          const double before = model.configuration()[s].power_dbm;
          const auto snapshot = model.snapshot();
          model.set_power(s, before + direction);
          if (model.configuration()[s].power_dbm == before) break;  // cap
          const double utility = evaluator.evaluate();
          if (utility > current_utility + 1e-9) {
            current_utility = utility;
            ++accepted;
            improved_any = true;
          } else {
            model.restore(snapshot);
            break;
          }
        }
        // If the first direction helped, don't immediately undo it by
        // probing the other direction this sweep.
        if (improved_any) break;
      }
    }
  }
  return accepted;
}

}  // namespace magus::core
