#include "core/evaluator.h"

#include <array>
#include <stdexcept>

#include "lte/amc.h"
#include "model/kernels.h"

namespace magus::core {

double evaluate_utility(const model::EvalContext& context,
                        const Utility& utility, EvalScratch& scratch) {
  const auto cells = static_cast<std::size_t>(context.cell_count());
  const auto ue = context.ue_density();
  const auto sectors = context.network().sector_count();
  const auto bandwidth = context.network().carrier().bandwidth;
  const auto& scheduler = context.options().scheduler;

  scratch.cqi.resize(cells);
  scratch.load.resize(sectors);

  // Pass 1: per-grid CQI and per-sector attached-UE loads (Formula 3),
  // fused into one kernel sweep over the GridState SoA spans.
  model::cqi_and_loads_kernel(context.state(), ue, context.noise_mw(),
                              context.options().min_service_sinr_db,
                              scratch.cqi, scratch.load);

  // Pass 2: UE-weighted utility with shared rates (Formula 4). The
  // CQI -> peak-rate mapping only has 16 values, so it is hoisted into a
  // table and the per-cell work is a lookup plus the scheduler share.
  std::array<double, lte::kCqiLevels + 1> rate_for_cqi{};
  for (lte::Cqi cqi = 1; cqi <= lte::kCqiLevels; ++cqi) {
    rate_for_cqi[static_cast<std::size_t>(cqi)] =
        lte::max_rate_bps_for_cqi(cqi, bandwidth);
  }
  const model::GridState& state = context.state();
  double total = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    if (scratch.cqi[i] <= 0 || ue[i] <= 0.0) continue;
    const net::SectorId s = state.best[i];
    const double max_rate =
        rate_for_cqi[static_cast<std::size_t>(scratch.cqi[i])];
    const double rate = scheduler.shared_rate_bps(
        max_rate, scratch.load[static_cast<std::size_t>(s)]);
    if (rate > 0.0) total += ue[i] * utility.per_ue(rate);
  }
  return total;
}

Evaluator::Evaluator(model::AnalysisModel* model, Utility utility)
    : model_(model), utility_(std::move(utility)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("Evaluator: model must not be null");
  }
}

double Evaluator::evaluate() const {
  ++evaluations_;
  return evaluate_utility(*model_, utility_, scratch_);
}

double Evaluator::evaluate_configuration(const net::Configuration& c) const {
  const auto snapshot = model_->snapshot();
  model_->set_configuration(c);
  const double value = evaluate();
  model_->restore(snapshot);
  return value;
}

}  // namespace magus::core
