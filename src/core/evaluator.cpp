#include "core/evaluator.h"

#include <stdexcept>

#include "lte/amc.h"

namespace magus::core {

Evaluator::Evaluator(model::AnalysisModel* model, Utility utility)
    : model_(model), utility_(std::move(utility)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("Evaluator: model must not be null");
  }
}

double Evaluator::evaluate() const {
  ++evaluations_;
  const auto& model = *model_;
  const auto cells = static_cast<std::size_t>(model.cell_count());
  const auto ue = model.ue_density();
  const auto sectors = model.network().sector_count();
  const auto bandwidth = model.network().carrier().bandwidth;
  const auto& scheduler = model.options().scheduler;

  cqi_scratch_.assign(cells, 0);
  load_scratch_.assign(sectors, 0.0);

  // Pass 1: per-grid CQI and per-sector attached-UE loads (Formula 3).
  for (std::size_t i = 0; i < cells; ++i) {
    const auto g = static_cast<geo::GridIndex>(i);
    const lte::Cqi cqi = model.cqi(g);
    cqi_scratch_[i] = static_cast<std::int8_t>(cqi);
    if (cqi > 0 && ue[i] > 0.0) {
      const net::SectorId s = model.serving_sector(g);
      load_scratch_[static_cast<std::size_t>(s)] += ue[i];
    }
  }

  // Pass 2: UE-weighted utility with shared rates (Formula 4).
  double total = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    if (cqi_scratch_[i] <= 0 || ue[i] <= 0.0) continue;
    const auto g = static_cast<geo::GridIndex>(i);
    const net::SectorId s = model.serving_sector(g);
    const double max_rate =
        lte::max_rate_bps_for_cqi(cqi_scratch_[i], bandwidth);
    const double rate = scheduler.shared_rate_bps(
        max_rate, load_scratch_[static_cast<std::size_t>(s)]);
    if (rate > 0.0) total += ue[i] * utility_.per_ue(rate);
  }
  return total;
}

double Evaluator::evaluate_configuration(const net::Configuration& c) const {
  const auto snapshot = model_->snapshot();
  model_->set_configuration(c);
  const double value = evaluate();
  model_->restore(snapshot);
  return value;
}

}  // namespace magus::core
