#include "core/evaluator.h"

#include <stdexcept>

#include "lte/amc.h"

namespace magus::core {

double evaluate_utility(const model::EvalContext& context,
                        const Utility& utility, EvalScratch& scratch) {
  const auto cells = static_cast<std::size_t>(context.cell_count());
  const auto ue = context.ue_density();
  const auto sectors = context.network().sector_count();
  const auto bandwidth = context.network().carrier().bandwidth;
  const auto& scheduler = context.options().scheduler;

  scratch.cqi.assign(cells, 0);
  scratch.load.assign(sectors, 0.0);

  // Pass 1: per-grid CQI and per-sector attached-UE loads (Formula 3).
  for (std::size_t i = 0; i < cells; ++i) {
    const auto g = static_cast<geo::GridIndex>(i);
    const lte::Cqi cqi = context.cqi(g);
    scratch.cqi[i] = static_cast<std::int8_t>(cqi);
    if (cqi > 0 && ue[i] > 0.0) {
      const net::SectorId s = context.serving_sector(g);
      scratch.load[static_cast<std::size_t>(s)] += ue[i];
    }
  }

  // Pass 2: UE-weighted utility with shared rates (Formula 4).
  double total = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    if (scratch.cqi[i] <= 0 || ue[i] <= 0.0) continue;
    const auto g = static_cast<geo::GridIndex>(i);
    const net::SectorId s = context.serving_sector(g);
    const double max_rate =
        lte::max_rate_bps_for_cqi(scratch.cqi[i], bandwidth);
    const double rate = scheduler.shared_rate_bps(
        max_rate, scratch.load[static_cast<std::size_t>(s)]);
    if (rate > 0.0) total += ue[i] * utility.per_ue(rate);
  }
  return total;
}

Evaluator::Evaluator(model::AnalysisModel* model, Utility utility)
    : model_(model), utility_(std::move(utility)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("Evaluator: model must not be null");
  }
}

double Evaluator::evaluate() const {
  ++evaluations_;
  return evaluate_utility(*model_, utility_, scratch_);
}

double Evaluator::evaluate_configuration(const net::Configuration& c) const {
  const auto snapshot = model_->snapshot();
  model_->set_configuration(c);
  const double value = evaluate();
  model_->restore(snapshot);
  return value;
}

}  // namespace magus::core
