#include "core/gradual.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "model/handover_delta.h"

namespace magus::core {

namespace {

[[nodiscard]] std::vector<bool> on_air_flags(const net::Configuration& c) {
  std::vector<bool> flags(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    flags[i] = c[static_cast<net::SectorId>(i)].active;
  }
  return flags;
}

/// Appends the model's current state as a plan step, computing handover
/// counts against the previous snapshot.
void record_step(GradualPlan& plan, Evaluator& evaluator, double utility,
                 int compensations, bool is_final) {
  const auto& model = evaluator.model();
  sim::ServiceSnapshot snapshot;
  snapshot.service_map = model.service_map();
  snapshot.on_air = on_air_flags(model.configuration());
  snapshot.utility = utility;

  GradualStepInfo info;
  info.config = model.configuration();
  info.utility = utility;
  info.compensations = compensations;
  info.is_final = is_final;
  if (!plan.snapshots.empty()) {
    const auto& prev = plan.snapshots.back();
    const auto delta = model::handover_delta(
        prev.service_map, snapshot.service_map, model.ue_density(),
        snapshot.on_air);
    info.handover_ues = delta.total_ues();
    info.hard_handover_ues = delta.hard_ues;
  }
  plan.snapshots.push_back(std::move(snapshot));
  plan.steps.push_back(std::move(info));
}

/// One move toward c_after: the single-unit neighbor change (power or
/// tilt) with the best resulting utility. When `require_improvement` is
/// set, only applies if it beats `current_utility` (the floor-guard mode);
/// otherwise applies the best available move as long as the result stays
/// at or above `floor_utility` (the proactive-spreading mode). Returns the
/// achieved utility; `*moved` reports whether anything was applied.
[[nodiscard]] double compensate_once(Evaluator& evaluator,
                                     std::span<const net::SectorId> targets,
                                     const net::Configuration& c_after,
                                     double step_db, double current_utility,
                                     bool require_improvement,
                                     double floor_utility, bool* moved) {
  model::AnalysisModel& model = evaluator.model();
  const net::Configuration& current = model.configuration();
  const auto is_target = [&](net::SectorId s) {
    return std::find(targets.begin(), targets.end(), s) != targets.end();
  };

  struct Move {
    net::SectorId sector;
    double power_delta = 0.0;
    int tilt_delta = 0;
  };
  std::vector<Move> moves;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const auto s = static_cast<net::SectorId>(i);
    if (is_target(s)) continue;
    const auto& now = current[s];
    const auto& goal = c_after[s];
    if (goal.power_dbm > now.power_dbm) {
      moves.push_back(
          {s, std::min(step_db, goal.power_dbm - now.power_dbm), 0});
    }
    if (goal.tilt != now.tilt) {
      moves.push_back({s, 0.0, goal.tilt > now.tilt ? 1 : -1});
    }
  }
  *moved = false;
  if (moves.empty()) return current_utility;

  const auto snapshot = model.snapshot();
  double best_utility = -std::numeric_limits<double>::infinity();
  Move best_move{};
  for (const auto& move : moves) {
    if (move.power_delta != 0.0) {
      model.set_power(move.sector,
                      current[move.sector].power_dbm + move.power_delta);
    } else {
      model.set_tilt(move.sector, current[move.sector].tilt + move.tilt_delta);
    }
    const double utility = evaluator.evaluate();
    model.restore(snapshot);
    if (utility > best_utility) {
      best_utility = utility;
      best_move = move;
    }
  }
  if (require_improvement && best_utility <= current_utility) {
    return current_utility;  // no gain
  }
  if (!require_improvement && best_utility < floor_utility) {
    return current_utility;  // would sink under the guaranteed floor
  }
  if (best_move.power_delta != 0.0) {
    model.set_power(best_move.sector,
                    current[best_move.sector].power_dbm +
                        best_move.power_delta);
  } else {
    model.set_tilt(best_move.sector,
                   current[best_move.sector].tilt + best_move.tilt_delta);
  }
  *moved = true;
  return best_utility;
}

}  // namespace

double GradualPlan::max_simultaneous_handover_ues() const {
  double peak = 0.0;
  for (const auto& step : steps) peak = std::max(peak, step.handover_ues);
  return peak;
}

double GradualPlan::total_handover_ues() const {
  double total = 0.0;
  for (const auto& step : steps) total += step.handover_ues;
  return total;
}

double GradualPlan::seamless_fraction() const {
  double total = 0.0;
  double hard = 0.0;
  for (const auto& step : steps) {
    total += step.handover_ues;
    hard += step.hard_handover_ues;
  }
  return total > 0.0 ? (total - hard) / total : 1.0;
}

GradualTuner::GradualTuner(GradualOptions options) : options_(options) {
  if (options_.target_step_db <= 0.0) {
    throw std::invalid_argument("GradualTuner: step must be positive");
  }
}

GradualPlan GradualTuner::plan(Evaluator& evaluator,
                               std::span<const net::SectorId> targets,
                               const net::Configuration& c_after) const {
  model::AnalysisModel& model = evaluator.model();
  GradualPlan plan;
  plan.floor_utility = evaluator.evaluate_configuration(c_after);

  // Step 0: the C_before state.
  record_step(plan, evaluator, evaluator.evaluate(), 0, false);

  for (int step = 0; step < options_.max_steps; ++step) {
    // Stop lowering once no UEs remain on the targets or the targets have
    // bottomed out.
    double target_load = 0.0;
    bool can_lower = false;
    for (const net::SectorId t : targets) {
      target_load += model.sector_loads()[static_cast<std::size_t>(t)];
      if (model.configuration()[t].power_dbm >
          model.network().sector(t).min_power_dbm) {
        can_lower = true;
      }
    }
    if (target_load <= 0.0 || !can_lower) break;

    // Lower the targets one notch.
    for (const net::SectorId t : targets) {
      model.set_power(t,
                      model.configuration()[t].power_dbm -
                          options_.target_step_db);
    }
    double utility = evaluator.evaluate();

    // Spread the neighbor tuning across the ramp: advance a few moves
    // toward C_after every step (they need not improve the utility, only
    // respect the floor).
    int compensations = 0;
    for (int k = 0; k < options_.proactive_moves_per_step; ++k) {
      bool moved = false;
      utility = compensate_once(evaluator, targets, c_after,
                                options_.compensation_step_db, utility,
                                /*require_improvement=*/false,
                                plan.floor_utility, &moved);
      if (!moved) break;
      ++compensations;
    }

    // Keep the utility at or above the floor by tuning toward C_after.
    bool exhausted = false;
    while (utility < plan.floor_utility) {
      bool moved = false;
      utility = compensate_once(evaluator, targets, c_after,
                                options_.compensation_step_db, utility,
                                /*require_improvement=*/true,
                                plan.floor_utility, &moved);
      if (!moved) {
        exhausted = true;
        break;
      }
      ++compensations;
    }
    if (exhausted) {
      plan.jumped_to_final = true;
      break;  // jump directly to C_after below
    }
    record_step(plan, evaluator, utility, compensations, false);
  }

  // Final step: targets off-air, full C_after.
  model.set_configuration(c_after);
  record_step(plan, evaluator, evaluator.evaluate(), 0, true);
  return plan;
}

GradualPlan direct_switch_plan(Evaluator& evaluator,
                               std::span<const net::SectorId> targets,
                               const net::Configuration& c_after) {
  (void)targets;  // the jump makes every migration happen at once
  model::AnalysisModel& model = evaluator.model();
  GradualPlan plan;
  plan.floor_utility = evaluator.evaluate_configuration(c_after);
  record_step(plan, evaluator, evaluator.evaluate(), 0, false);
  model.set_configuration(c_after);
  record_step(plan, evaluator, evaluator.evaluate(), 0, true);
  return plan;
}

}  // namespace magus::core
