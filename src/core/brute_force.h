// Exhaustive configuration search over explicit candidate grids.
//
// Only viable for small instances (the paper notes the full space is
// astronomically large), but exact: tests use it as ground truth for the
// heuristics, and the testbed harness uses it to find the optimal
// attenuation settings of §3's 2- and 3-eNodeB scenarios.
//
// Combinations are enumerated in odometer order and scored in fixed-size
// chunks through the ParallelEvaluator; the running best uses strict
// greater-than in enumeration order, so the earliest optimum wins exactly
// as in a serial sweep, for any thread count.
#pragma once

#include <span>
#include <vector>

#include "core/parallel_evaluator.h"
#include "core/search_types.h"

namespace magus::core {

struct BruteForceAxis {
  net::SectorId sector = net::kInvalidSector;
  /// Absolute power levels to try for this sector.
  std::vector<double> power_levels_dbm;
  /// Tilt indices to try (defaults to just the current tilt).
  std::vector<int> tilt_indices{0};
};

class BruteForceSearch {
 public:
  /// Caps the Cartesian-product size; run() throws std::invalid_argument
  /// beyond it.
  explicit BruteForceSearch(long max_combinations = 2'000'000);

  /// Evaluates every combination of the axes applied on top of the model's
  /// current configuration; returns the best and leaves the model there.
  [[nodiscard]] SearchResult run(ParallelEvaluator& evaluator,
                                 std::span<const BruteForceAxis> axes) const;

 private:
  long max_combinations_;
};

}  // namespace magus::core
