// Joint power + tilt tuning (paper §5, "Joint Tuning"): tilt-tuning first,
// then power-tuning on top, which the paper reports roughly doubles the
// recovery of power-tuning alone.
#pragma once

#include <span>

#include "core/power_search.h"
#include "core/tilt_search.h"

namespace magus::core {

struct JointSearchOptions {
  TiltSearchOptions tilt;
  PowerSearchOptions power;
};

class JointSearch {
 public:
  explicit JointSearch(JointSearchOptions options = {});

  /// Runs the tilt pass, then the power pass. Inputs as in the individual
  /// searches; the model is left at the returned configuration and the
  /// trace concatenates both phases.
  [[nodiscard]] SearchResult run(ParallelEvaluator& evaluator,
                                 std::span<const net::SectorId> involved,
                                 std::span<const double> baseline_rates) const;

 private:
  JointSearchOptions options_;
};

}  // namespace magus::core
