// Greedy antenna-tilt tuning (paper §5, "Antenna Tilt Tuning").
//
// The paper's simple greedy: uptilt the first neighboring sector step by
// step until the utility gets worse, then move to the second neighbor, and
// so on. Uptilt (negative TiltIndex in our convention) extends a sector's
// reach toward the grids the upgraded sector used to serve.
//
// Parallelization: the per-sector walk is inherently sequential, so each
// (sector, direction) walk is speculated as a ladder batch — candidate i
// jumps straight to `base tilt ± i` — scored in parallel, after which the
// longest strictly-improving prefix is accepted (u_i must beat u_{i-1} by
// min_improvement, exactly the serial walk's accept rule). Accepted steps,
// trace and final configuration match the step-by-step walk; the ladder
// also evaluates the speculative tail the serial walk would have skipped,
// which is the price of scoring the whole ladder at once.
#pragma once

#include <span>

#include "core/parallel_evaluator.h"
#include "core/search_types.h"

namespace magus::core {

struct TiltSearchOptions {
  int max_steps_per_sector = 8;   ///< bounded by the antenna's tilt range
  bool allow_downtilt = false;    ///< extension: also try downtilt steps
  double min_improvement = 1e-9;
};

class TiltSearch {
 public:
  explicit TiltSearch(TiltSearchOptions options = {});

  /// Runs the greedy tilt pass. `involved` should be ordered by priority
  /// (the planner orders by distance to the upgraded sectors, nearest
  /// first). The evaluator's model must be at C_upgrade; it is left at the
  /// returned configuration.
  [[nodiscard]] SearchResult run(ParallelEvaluator& evaluator,
                                 std::span<const net::SectorId> involved) const;

 private:
  TiltSearchOptions options_;
};

}  // namespace magus::core
