#include "core/contingency.h"

#include <algorithm>
#include <limits>

namespace magus::core {

ContingencyTable::Key ContingencyTable::key_of(
    std::span<const net::SectorId> sectors) {
  Key key(sectors.begin(), sectors.end());
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

ContingencyTable ContingencyTable::build(
    const MagusPlanner& planner,
    std::span<const std::vector<net::SectorId>> outages) {
  ContingencyTable table;
  for (const auto& outage : outages) {
    if (outage.empty()) continue;
    table.plans_.insert_or_assign(key_of(outage),
                                  planner.plan_upgrade(outage));
  }
  return table;
}

ContingencyTable ContingencyTable::build_per_sector(
    const MagusPlanner& planner, const net::Network& network) {
  std::vector<std::vector<net::SectorId>> outages;
  outages.reserve(network.sector_count());
  for (const auto& sector : network.sectors()) {
    outages.push_back({sector.id});
  }
  return build(planner, outages);
}

const MitigationPlan* ContingencyTable::lookup(
    std::span<const net::SectorId> failed) const {
  const auto it = plans_.find(key_of(failed));
  return it == plans_.end() ? nullptr : &it->second;
}

bool ContingencyTable::apply(model::AnalysisModel& model,
                             std::span<const net::SectorId> failed) const {
  const MitigationPlan* plan = lookup(failed);
  if (plan == nullptr) return false;
  model.set_configuration(plan->search.config);
  return true;
}

double ContingencyTable::worst_recovery() const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& [key, plan] : plans_) {
    worst = std::min(worst, plan.recovery);
  }
  return plans_.empty() ? 0.0 : worst;
}

double ContingencyTable::mean_recovery() const {
  if (plans_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [key, plan] : plans_) total += plan.recovery;
  return total / static_cast<double>(plans_.size());
}

}  // namespace magus::core
