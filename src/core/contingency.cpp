#include "core/contingency.h"

#include <algorithm>
#include <iterator>
#include <limits>

namespace magus::core {

ContingencyTable::Key ContingencyTable::key_of(
    std::span<const net::SectorId> sectors) {
  Key key(sectors.begin(), sectors.end());
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

ContingencyTable ContingencyTable::build(
    const MagusPlanner& planner,
    std::span<const std::vector<net::SectorId>> outages) {
  ContingencyTable table;
  for (const auto& outage : outages) {
    if (outage.empty()) continue;
    table.plans_.insert_or_assign(key_of(outage),
                                  planner.plan_upgrade(outage));
  }
  return table;
}

ContingencyTable ContingencyTable::build_per_sector(
    const MagusPlanner& planner, const net::Network& network) {
  std::vector<std::vector<net::SectorId>> outages;
  outages.reserve(network.sector_count());
  for (const auto& sector : network.sectors()) {
    outages.push_back({sector.id});
  }
  return build(planner, outages);
}

const MitigationPlan* ContingencyTable::lookup(
    std::span<const net::SectorId> failed) const {
  const auto it = plans_.find(key_of(failed));
  return it == plans_.end() ? nullptr : &it->second;
}

ContingencyTable::NearestMatch ContingencyTable::lookup_nearest(
    std::span<const net::SectorId> failed,
    std::span<const net::SectorId> excluded) const {
  const Key wanted = key_of(failed);
  const Key vetoed = key_of(excluded);
  // An entry "references" an excluded sector when its outage key names one
  // (the plan was built for that sector's failure) or its tuned involved
  // set leans on one (the stored C_after reconfigures fenced equipment).
  const auto references_excluded = [&](const Key& key,
                                       const MitigationPlan& plan) {
    if (vetoed.empty()) return false;
    const auto hit = [&](net::SectorId s) {
      return std::binary_search(vetoed.begin(), vetoed.end(), s);
    };
    return std::any_of(key.begin(), key.end(), hit) ||
           std::any_of(plan.involved.begin(), plan.involved.end(), hit);
  };

  NearestMatch match;
  if (const auto it = plans_.find(wanted);
      it != plans_.end() && !references_excluded(it->first, it->second)) {
    match.plan = &it->second;
    match.covered = wanted;
    return match;
  }
  // Largest stored subset of the failed set; ties go to the plan with the
  // better predicted recovery, then to map (key) order for determinism.
  const Key* best_key = nullptr;
  for (const auto& [key, plan] : plans_) {
    if (!std::includes(wanted.begin(), wanted.end(), key.begin(), key.end())) {
      continue;
    }
    if (references_excluded(key, plan)) continue;
    if (match.plan == nullptr || key.size() > best_key->size() ||
        (key.size() == best_key->size() &&
         plan.recovery > match.plan->recovery)) {
      match.plan = &plan;
      best_key = &key;
    }
  }
  if (match.plan == nullptr) {
    match.uncovered = wanted;
    return match;
  }
  match.covered = *best_key;
  std::set_difference(wanted.begin(), wanted.end(), best_key->begin(),
                      best_key->end(), std::back_inserter(match.uncovered));
  return match;
}

bool ContingencyTable::apply(model::AnalysisModel& model,
                             std::span<const net::SectorId> failed,
                             bool allow_nearest,
                             std::span<const net::SectorId> excluded) const {
  const auto push = [&](const MitigationPlan& plan,
                        std::span<const net::SectorId> uncovered) {
    net::Configuration config = plan.search.config;
    // Quarantined sectors are pinned: the push must not reconfigure them.
    const net::Configuration& live = model.configuration();
    for (const net::SectorId q : excluded) config[q] = live[q];
    // The stored plan only knows about its own outage set; the rest of the
    // failure still has to come off-air.
    for (const net::SectorId s : uncovered) config[s].active = false;
    model.set_configuration(config);
  };
  if (!allow_nearest) {
    const NearestMatch match = lookup_nearest(failed, excluded);
    if (!match.exact()) return false;
    push(*match.plan, {});
    return true;
  }
  const NearestMatch match = lookup_nearest(failed, excluded);
  if (match.plan == nullptr) return false;
  push(*match.plan, match.uncovered);
  return true;
}

double ContingencyTable::worst_recovery() const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& [key, plan] : plans_) {
    worst = std::min(worst, plan.recovery);
  }
  return plans_.empty() ? 0.0 : worst;
}

double ContingencyTable::mean_recovery() const {
  if (plans_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [key, plan] : plans_) total += plan.recovery;
  return total / static_cast<double>(plans_.size());
}

}  // namespace magus::core
