#include "core/contingency.h"

#include <algorithm>
#include <iterator>
#include <limits>

namespace magus::core {

ContingencyTable::Key ContingencyTable::key_of(
    std::span<const net::SectorId> sectors) {
  Key key(sectors.begin(), sectors.end());
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

ContingencyTable ContingencyTable::build(
    const MagusPlanner& planner,
    std::span<const std::vector<net::SectorId>> outages) {
  ContingencyTable table;
  for (const auto& outage : outages) {
    if (outage.empty()) continue;
    table.plans_.insert_or_assign(key_of(outage),
                                  planner.plan_upgrade(outage));
  }
  return table;
}

ContingencyTable ContingencyTable::build_per_sector(
    const MagusPlanner& planner, const net::Network& network) {
  std::vector<std::vector<net::SectorId>> outages;
  outages.reserve(network.sector_count());
  for (const auto& sector : network.sectors()) {
    outages.push_back({sector.id});
  }
  return build(planner, outages);
}

const MitigationPlan* ContingencyTable::lookup(
    std::span<const net::SectorId> failed) const {
  const auto it = plans_.find(key_of(failed));
  return it == plans_.end() ? nullptr : &it->second;
}

ContingencyTable::NearestMatch ContingencyTable::lookup_nearest(
    std::span<const net::SectorId> failed) const {
  const Key wanted = key_of(failed);
  NearestMatch match;
  if (const auto it = plans_.find(wanted); it != plans_.end()) {
    match.plan = &it->second;
    match.covered = wanted;
    return match;
  }
  // Largest stored subset of the failed set; ties go to the plan with the
  // better predicted recovery, then to map (key) order for determinism.
  const Key* best_key = nullptr;
  for (const auto& [key, plan] : plans_) {
    if (!std::includes(wanted.begin(), wanted.end(), key.begin(), key.end())) {
      continue;
    }
    if (match.plan == nullptr || key.size() > best_key->size() ||
        (key.size() == best_key->size() &&
         plan.recovery > match.plan->recovery)) {
      match.plan = &plan;
      best_key = &key;
    }
  }
  if (match.plan == nullptr) {
    match.uncovered = wanted;
    return match;
  }
  match.covered = *best_key;
  std::set_difference(wanted.begin(), wanted.end(), best_key->begin(),
                      best_key->end(), std::back_inserter(match.uncovered));
  return match;
}

bool ContingencyTable::apply(model::AnalysisModel& model,
                             std::span<const net::SectorId> failed,
                             bool allow_nearest) const {
  if (!allow_nearest) {
    const MitigationPlan* plan = lookup(failed);
    if (plan == nullptr) return false;
    model.set_configuration(plan->search.config);
    return true;
  }
  const NearestMatch match = lookup_nearest(failed);
  if (match.plan == nullptr) return false;
  model.set_configuration(match.plan->search.config);
  // The stored plan only knows about its own outage set; the rest of the
  // failure still has to come off-air.
  for (const net::SectorId s : match.uncovered) model.set_active(s, false);
  return true;
}

double ContingencyTable::worst_recovery() const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& [key, plan] : plans_) {
    worst = std::min(worst, plan.recovery);
  }
  return plans_.empty() ? 0.0 : worst;
}

double ContingencyTable::mean_recovery() const {
  if (plans_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [key, plan] : plans_) total += plan.recovery;
  return total / static_cast<double>(plans_.size());
}

}  // namespace magus::core
