#include "core/tilt_search.h"

#include "obs/trace.h"
#include "util/logging.h"

namespace magus::core {

TiltSearch::TiltSearch(TiltSearchOptions options) : options_(options) {}

SearchResult TiltSearch::run(ParallelEvaluator& evaluator,
                             std::span<const net::SectorId> involved) const {
  model::AnalysisModel& model = evaluator.model();
  MAGUS_TRACE_SPAN("search.tilt", "planner");
  SearchMetrics metrics{"tilt"};
  SearchResult result;
  double current_utility = evaluator.evaluate();
  ++result.candidate_evaluations;

  const auto try_direction = [&](net::SectorId b, int direction) {
    // Speculative ladder: candidate i is the absolute jump to
    // base_tilt + i * direction, truncated where the antenna range clamps
    // (the serial walk stops at the first clamped step without evaluating).
    const net::Sector& meta = model.network().sector(b);
    const int base_tilt = model.configuration()[b].tilt;
    CandidateBatch ladder;
    int previous = base_tilt;
    for (int step = 1; step <= options_.max_steps_per_sector; ++step) {
      const int target = base_tilt + step * direction;
      if (meta.clamp_tilt(target) == previous) break;  // clamped
      previous = meta.clamp_tilt(target);
      ladder.push_back(Candidate::single(Mutation::tilt_to(b, target)));
    }
    if (ladder.empty()) return;

    const std::vector<double> utilities = evaluator.score(ladder);
    result.candidate_evaluations += static_cast<long>(ladder.size());
    metrics.batch(ladder.size());

    // Accept the longest prefix in which every rung beats its predecessor
    // (the serial walk's accept-or-stop rule).
    int steps = 0;
    double utility = current_utility;
    for (std::size_t i = 0; i < utilities.size(); ++i) {
      if (utilities[i] <= utility + options_.min_improvement) break;
      utility = utilities[i];
      ++steps;
      result.trace.push_back(TuningStep{b, 0.0, direction, utility});
    }
    metrics.ladder_prefix(static_cast<std::size_t>(steps));
    metrics.accept(static_cast<std::uint64_t>(steps));
    metrics.reject(ladder.size() - static_cast<std::size_t>(steps));
    if (steps == 0) return;
    model.set_tilt(b, base_tilt + steps * direction);
    current_utility = utility;
    result.accepted_steps += steps;
  };

  for (const net::SectorId b : involved) {
    if (!model.configuration()[b].active) continue;
    // Paper behaviour: uptilt only (tilt index decreases).
    try_direction(b, -1);
    if (options_.allow_downtilt) try_direction(b, +1);
  }

  result.config = model.configuration();
  result.utility = current_utility;
  util::log_debug() << "TiltSearch: " << result.accepted_steps
                    << " steps, utility " << result.utility;
  return result;
}

}  // namespace magus::core
