#include "core/tilt_search.h"

#include "util/logging.h"

namespace magus::core {

TiltSearch::TiltSearch(TiltSearchOptions options) : options_(options) {}

SearchResult TiltSearch::run(Evaluator& evaluator,
                             std::span<const net::SectorId> involved) const {
  model::AnalysisModel& model = evaluator.model();
  SearchResult result;
  double current_utility = evaluator.evaluate();
  ++result.candidate_evaluations;

  const auto try_direction = [&](net::SectorId b, int direction) {
    // Step the sector's tilt in `direction` while the utility improves.
    for (int step = 0; step < options_.max_steps_per_sector; ++step) {
      const auto before_tilt = model.configuration()[b].tilt;
      const auto snapshot = model.snapshot();
      model.set_tilt(b, before_tilt + direction);
      if (model.configuration()[b].tilt == before_tilt) break;  // clamped
      const double utility = evaluator.evaluate();
      ++result.candidate_evaluations;
      if (utility > current_utility + options_.min_improvement) {
        current_utility = utility;
        ++result.accepted_steps;
        result.trace.push_back(TuningStep{b, 0.0, direction, utility});
      } else {
        model.restore(snapshot);
        break;
      }
    }
  };

  for (const net::SectorId b : involved) {
    if (!model.configuration()[b].active) continue;
    // Paper behaviour: uptilt only (tilt index decreases).
    try_direction(b, -1);
    if (options_.allow_downtilt) try_direction(b, +1);
  }

  result.config = model.configuration();
  result.utility = current_utility;
  util::log_debug() << "TiltSearch: " << result.accepted_steps
                    << " steps, utility " << result.utility;
  return result;
}

}  // namespace magus::core
