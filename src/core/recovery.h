// Recovery-ratio metric (paper Formula 7).
#pragma once

namespace magus::core {

struct RecoveryInputs {
  double f_before = 0.0;   ///< f(C_before): utility with everything on-air
  double f_upgrade = 0.0;  ///< f(C_upgrade): targets off, no tuning
  double f_after = 0.0;    ///< f(C_after): targets off, neighbors tuned
};

/// (f_after - f_upgrade) / (f_before - f_upgrade): 1 = full recovery,
/// 0 = no improvement; can be negative when tuning for one objective hurts
/// another (Table 2). Returns 0 when the upgrade causes no degradation
/// (denominator ~ 0), since there is nothing to recover.
[[nodiscard]] double recovery_ratio(const RecoveryInputs& inputs);

}  // namespace magus::core
