#include "core/search_types.h"

namespace magus::core {

void apply_candidate(model::EvalContext& context, const Candidate& candidate) {
  for (const Mutation& m : candidate.mutations) {
    switch (m.kind) {
      case Mutation::Kind::kPower:
        context.set_power(m.sector, m.power_dbm);
        break;
      case Mutation::Kind::kTilt:
        context.set_tilt(m.sector, m.tilt);
        break;
      case Mutation::Kind::kActive:
        context.set_active(m.sector, m.active);
        break;
    }
  }
}

std::vector<double> capture_rates(const model::EvalContext& context) {
  std::vector<double> rates(static_cast<std::size_t>(context.cell_count()));
  for (geo::GridIndex g = 0; g < context.cell_count(); ++g) {
    rates[static_cast<std::size_t>(g)] = context.rate_bps(g);
  }
  return rates;
}

std::vector<geo::GridIndex> degraded_grids(
    const model::EvalContext& context, std::span<const double> baseline,
    std::span<const geo::GridIndex> universe) {
  std::vector<geo::GridIndex> degraded;
  for (const geo::GridIndex g : universe) {
    const double before = baseline[static_cast<std::size_t>(g)];
    if (context.rate_bps(g) < before * (1.0 - 1e-9)) {
      degraded.push_back(g);
    }
  }
  return degraded;
}

std::vector<geo::GridIndex> all_grids(const model::EvalContext& context) {
  std::vector<geo::GridIndex> grids(
      static_cast<std::size_t>(context.cell_count()));
  for (geo::GridIndex g = 0; g < context.cell_count(); ++g) {
    grids[static_cast<std::size_t>(g)] = g;
  }
  return grids;
}

}  // namespace magus::core
