#include "core/search_types.h"

#include <string>

namespace magus::core {

SearchMetrics::SearchMetrics(const char* driver)
    : batches_(obs::MetricsRegistry::global().counter(
          std::string("search.") + driver + ".batches")),
      candidates_(obs::MetricsRegistry::global().counter(
          std::string("search.") + driver + ".candidates")),
      accepted_(obs::MetricsRegistry::global().counter(
          std::string("search.") + driver + ".accepted")),
      rejected_(obs::MetricsRegistry::global().counter(
          std::string("search.") + driver + ".rejected")),
      batch_size_(obs::MetricsRegistry::global().histogram(
          "search.batch_size", obs::exponential_bounds(1.0, 2.0, 14))),
      ladder_prefix_(obs::MetricsRegistry::global().histogram(
          "search.ladder_prefix", obs::exponential_bounds(1.0, 2.0, 8))) {}

void SearchMetrics::batch(std::size_t size) {
  batches_.add(1);
  candidates_.add(size);
  batch_size_.observe(static_cast<double>(size));
}

void SearchMetrics::accept(std::uint64_t candidates) {
  accepted_.add(candidates);
}

void SearchMetrics::reject(std::uint64_t candidates) {
  rejected_.add(candidates);
}

void SearchMetrics::ladder_prefix(std::size_t accepted_rungs) {
  ladder_prefix_.observe(static_cast<double>(accepted_rungs));
}

void apply_candidate(model::EvalContext& context, const Candidate& candidate) {
  for (const Mutation& m : candidate.mutations) {
    switch (m.kind) {
      case Mutation::Kind::kPower:
        context.set_power(m.sector, m.power_dbm);
        break;
      case Mutation::Kind::kTilt:
        context.set_tilt(m.sector, m.tilt);
        break;
      case Mutation::Kind::kActive:
        context.set_active(m.sector, m.active);
        break;
    }
  }
}

std::vector<double> capture_rates(const model::EvalContext& context) {
  std::vector<double> rates(static_cast<std::size_t>(context.cell_count()));
  for (geo::GridIndex g = 0; g < context.cell_count(); ++g) {
    rates[static_cast<std::size_t>(g)] = context.rate_bps(g);
  }
  return rates;
}

std::vector<geo::GridIndex> degraded_grids(
    const model::EvalContext& context, std::span<const double> baseline,
    std::span<const geo::GridIndex> universe) {
  std::vector<geo::GridIndex> degraded;
  for (const geo::GridIndex g : universe) {
    const double before = baseline[static_cast<std::size_t>(g)];
    if (context.rate_bps(g) < before * (1.0 - 1e-9)) {
      degraded.push_back(g);
    }
  }
  return degraded;
}

std::vector<geo::GridIndex> all_grids(const model::EvalContext& context) {
  std::vector<geo::GridIndex> grids(
      static_cast<std::size_t>(context.cell_count()));
  for (geo::GridIndex g = 0; g < context.cell_count(); ++g) {
    grids[static_cast<std::size_t>(g)] = g;
  }
  return grids;
}

}  // namespace magus::core
