#include "core/search_types.h"

namespace magus::core {

std::vector<double> capture_rates(const model::AnalysisModel& model) {
  std::vector<double> rates(static_cast<std::size_t>(model.cell_count()));
  for (geo::GridIndex g = 0; g < model.cell_count(); ++g) {
    rates[static_cast<std::size_t>(g)] = model.rate_bps(g);
  }
  return rates;
}

std::vector<geo::GridIndex> degraded_grids(
    const model::AnalysisModel& model, std::span<const double> baseline,
    std::span<const geo::GridIndex> universe) {
  std::vector<geo::GridIndex> degraded;
  for (const geo::GridIndex g : universe) {
    const double before = baseline[static_cast<std::size_t>(g)];
    if (model.rate_bps(g) < before * (1.0 - 1e-9)) {
      degraded.push_back(g);
    }
  }
  return degraded;
}

std::vector<geo::GridIndex> all_grids(const model::AnalysisModel& model) {
  std::vector<geo::GridIndex> grids(
      static_cast<std::size_t>(model.cell_count()));
  for (geo::GridIndex g = 0; g < model.cell_count(); ++g) {
    grids[static_cast<std::size_t>(g)] = g;
  }
  return grids;
}

}  // namespace magus::core
