// MagusPlanner: the end-to-end facade tying Figure 6 together.
//
// Given an analysis model (network + path-loss provider) and a utility, the
// planner takes a set of sectors scheduled for upgrade and produces the
// full mitigation plan: the involved-neighbor set, C_after (via the chosen
// search), the predicted recovery ratio, and the gradual migration
// schedule. This is the public entry point the examples use.
#pragma once

#include <span>
#include <vector>

#include <memory>

#include "core/evaluator.h"
#include "core/gradual.h"
#include "core/joint_search.h"
#include "core/naive_search.h"
#include "core/parallel_evaluator.h"
#include "core/recovery.h"

namespace magus::core {

enum class TuningMode { kPower, kTilt, kJoint, kNaive };

[[nodiscard]] std::string tuning_mode_name(TuningMode mode);

struct PlannerOptions {
  TuningMode mode = TuningMode::kJoint;
  /// Worker threads for candidate-batch scoring (0 = hardware
  /// concurrency). The search results are bit-identical for any value —
  /// see core/parallel_evaluator.h — so this is purely a speed knob.
  std::size_t threads = 0;
  /// When non-null, candidate batches are scored on this externally owned
  /// pool instead of a per-planner one and `threads` is ignored. The pool
  /// must outlive the planner. This is how the fleet WavePlanner shares
  /// one worker pool across hundreds of per-market planners.
  util::ThreadPool* shared_pool = nullptr;
  /// Run the model's CSR coverage-index fast paths (bit-identical; see
  /// model/coverage_index.h). Off is only interesting for benchmarking
  /// the legacy scan.
  bool use_coverage_index = true;
  /// Locally optimize the neighborhood's powers *before* planning (the
  /// paper's premise: "radio network planners attempt to maximize coverage
  /// and minimize interference" — C_before is a planned configuration, not
  /// an arbitrary one). Without this, any tuner can harvest generic
  /// utility unrelated to the outage and recovery comparisons lose
  /// meaning.
  bool pre_plan = true;
  int pre_plan_sweeps = 2;
  double pre_plan_step_db = 1.0;
  /// §2's hybrid: after the model-based search reaches C_so, a short
  /// feedback phase (k << K steps) corrects residual model error and
  /// captures gains outside Algorithm 1's degraded-grid focus. Disabled
  /// for the naive baseline, which is already pure feedback.
  bool hybrid_polish = true;
  int polish_max_steps = 30;
  /// Neighbor selection: sectors whose site is within this radius of any
  /// target's site form the involved set B...
  double neighbor_radius_m = 10'000.0;
  /// ...capped to the closest `max_neighbors` (urban areas would otherwise
  /// pull in hundreds).
  std::size_t max_neighbors = 24;
  PowerSearchOptions power;
  TiltSearchOptions tilt;
  GradualOptions gradual;
};

struct MitigationPlan {
  std::vector<net::SectorId> targets;
  std::vector<net::SectorId> involved;  ///< ordered nearest-first
  /// The (pre-planned) configuration the network runs before the upgrade.
  net::Configuration c_before;
  double f_before = 0.0;
  double f_upgrade = 0.0;
  double f_after = 0.0;
  double recovery = 0.0;  ///< Formula 7
  SearchResult search;
  GradualPlan gradual;
};

class MagusPlanner {
 public:
  /// `evaluator` must outlive the planner.
  MagusPlanner(Evaluator* evaluator, PlannerOptions options = {});

  /// Plans mitigation for taking `targets` off-air. On entry the model may
  /// be in any configuration; the planner resets it to the network default
  /// (C_before), freezes the UE density there, and leaves the model at the
  /// final (C_after) state with the plan's gradual schedule computed.
  ///
  /// `excluded` is the reduced-set entry point for degraded campaigns:
  /// sectors in it (typically the executor's quarantine list) are removed
  /// from the involved-neighbor tuning set before the search runs, so the
  /// plan never leans on fenced-off equipment. Targets may not be
  /// excluded.
  [[nodiscard]] MitigationPlan plan_upgrade(
      std::span<const net::SectorId> targets,
      std::span<const net::SectorId> excluded = {}) const;

  /// Emergency re-plan from the model's *current* (possibly faulted)
  /// state, the entry point the fault-aware executor escalates to when an
  /// unplanned outage invalidates a precomputed schedule mid-migration.
  /// Unlike plan_upgrade it does NOT reset to the network default, does
  /// not re-run pre-planning and does not re-freeze the UE density: the
  /// configuration as found *is* C_before, `targets` are taken off-air
  /// (no-ops for sectors already down), and the search tunes their
  /// neighbors from there. `baseline_rates`, when non-empty, supplies the
  /// healthy per-grid rates that define the degraded set (capture them
  /// before the fault); when empty the current rates are captured, which
  /// makes the power search see no degradation of its own — pass real
  /// baselines for meaningful recovery. No gradual schedule is computed:
  /// the result is a single emergency push. The model is left at the
  /// re-planned configuration.
  [[nodiscard]] MitigationPlan replan_from_current(
      std::span<const net::SectorId> targets,
      std::span<const double> baseline_rates = {},
      std::span<const net::SectorId> excluded = {}) const;

  /// Neighbor selection used by plan_upgrade, exposed for benches that
  /// drive the searches directly. Sectors in `excluded` never enter the
  /// involved set (they also don't count against max_neighbors).
  [[nodiscard]] std::vector<net::SectorId> involved_sectors(
      std::span<const net::SectorId> targets,
      std::span<const net::SectorId> excluded = {}) const;

  /// The batch evaluator the search drivers run on; exposed so callers
  /// (benches) can read the aggregated evaluation count.
  [[nodiscard]] ParallelEvaluator& parallel_evaluator() const {
    return *parallel_;
  }

 private:
  /// Runs the configured tuning mode on the parallel evaluator.
  [[nodiscard]] SearchResult run_search(
      std::span<const net::SectorId> involved,
      std::span<const double> baseline_rates) const;
  /// §2's hybrid phase: a short feedback pass from C_so toward C_after
  /// (serial; skipped for the naive baseline, which is already pure
  /// feedback).
  void polish(MitigationPlan& plan) const;

  Evaluator* evaluator_;
  PlannerOptions options_;
  /// Owns the worker pool + per-worker eval contexts for the drivers. The
  /// serial phases (pre-planning, feedback polish, gradual scheduling)
  /// stay on evaluator_.
  std::unique_ptr<ParallelEvaluator> parallel_;
};

/// Local power planning: per-sector hill climbing (±step, best direction,
/// until the utility stops improving), swept `sweeps` times over `sectors`
/// in order. Models what the operator's planning process has already done
/// to the neighborhood; also usable to "plan" custom networks. Returns the
/// number of accepted steps; the model is left at the planned configuration.
int pre_plan_power(Evaluator& evaluator,
                   std::span<const net::SectorId> sectors,
                   double step_db = 1.0, int sweeps = 2);

}  // namespace magus::core
