#include "core/parallel_evaluator.h"

#include <stdexcept>
#include <utility>

namespace magus::core {

ParallelEvaluator::ParallelEvaluator(model::AnalysisModel* model,
                                     Utility utility, std::size_t threads)
    : model_(model), utility_(std::move(utility)), pool_(threads) {
  if (model_ == nullptr) {
    throw std::invalid_argument("ParallelEvaluator: model must not be null");
  }
  workers_.resize(pool_.size());
}

double ParallelEvaluator::evaluate() {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  return evaluate_utility(*model_, utility_, scratch_);
}

std::vector<double> ParallelEvaluator::score(std::span<const Candidate> batch) {
  std::vector<double> utilities(batch.size());
  if (batch.empty()) return utilities;

  const model::EvalContext::Snapshot base = model_->snapshot();
  pool_.run(batch.size(), [&](std::size_t worker, std::size_t task) {
    Worker& w = workers_[worker];
    if (!w.context) {
      // First use: clone the driver model's context. The model is not
      // mutated while score() runs, so concurrent clones only read it.
      w.context = std::make_unique<model::EvalContext>(*model_);
    }
    w.context->restore(base);
    apply_candidate(*w.context, batch[task]);
    utilities[task] = evaluate_utility(*w.context, utility_, w.scratch);
  });
  evaluations_.fetch_add(static_cast<long>(batch.size()),
                         std::memory_order_relaxed);
  return utilities;
}

}  // namespace magus::core
