#include "core/parallel_evaluator.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace magus::core {

namespace {

/// Registry handles resolved once; after that the hot path pays only the
/// relaxed atomic update per event.
struct EvaluatorMetrics {
  obs::Counter& evals;
  obs::Counter& batches;
  obs::Histogram& batch_size;
  obs::Histogram& batch_latency_us;
  obs::Histogram& queue_wait_us;

  [[nodiscard]] static EvaluatorMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static EvaluatorMetrics metrics{
        registry.counter("evaluator.evals"),
        registry.counter("evaluator.batches"),
        registry.histogram("evaluator.batch_size",
                           obs::exponential_bounds(1.0, 2.0, 16)),
        registry.histogram("evaluator.batch_latency_us",
                           obs::exponential_bounds(1.0, 4.0, 16)),
        registry.histogram("evaluator.queue_wait_us",
                           obs::exponential_bounds(1.0, 4.0, 12)),
    };
    return metrics;
  }
};

}  // namespace

ParallelEvaluator::ParallelEvaluator(model::AnalysisModel* model,
                                     Utility utility, std::size_t threads,
                                     bool use_coverage_index)
    : model_(model),
      utility_(std::move(utility)),
      owned_pool_(std::make_unique<util::ThreadPool>(threads)),
      pool_(owned_pool_.get()) {
  init(use_coverage_index);
}

ParallelEvaluator::ParallelEvaluator(model::AnalysisModel* model,
                                     Utility utility, util::ThreadPool* pool,
                                     bool use_coverage_index)
    : model_(model), utility_(std::move(utility)), pool_(pool) {
  if (pool_ == nullptr) {
    throw std::invalid_argument("ParallelEvaluator: pool must not be null");
  }
  init(use_coverage_index);
}

void ParallelEvaluator::init(bool use_coverage_index) {
  if (model_ == nullptr) {
    throw std::invalid_argument("ParallelEvaluator: model must not be null");
  }
  if (use_coverage_index) {
    // Build + bind on the driver thread, before any worker clone is made:
    // clones copy the binding, and the index itself is immutable from here
    // on, so the workers share it without synchronization.
    model_->market_context().ensure_coverage_index();
    model_->set_use_coverage_index(true);
  }
  workers_.resize(pool_->size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i].evals = &obs::MetricsRegistry::global().counter(
        "evaluator.worker." + std::to_string(i) + ".evals");
  }
}

double ParallelEvaluator::evaluate() {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  EvaluatorMetrics::get().evals.add(1);
  workers_[0].evals->add(1);  // serial evaluations run on the caller
  return evaluate_utility(*model_, utility_, scratch_);
}

std::vector<double> ParallelEvaluator::score(std::span<const Candidate> batch) {
  std::vector<double> utilities(batch.size());
  if (batch.empty()) return utilities;
  MAGUS_TRACE_SPAN("evaluator.score_batch", "evaluator");

  EvaluatorMetrics& metrics = EvaluatorMetrics::get();
  metrics.batches.add(1);
  metrics.batch_size.observe(static_cast<double>(batch.size()));
  for (Worker& w : workers_) w.measured_wait = false;
  const std::uint64_t batch_start_ns = obs::monotonic_now_ns();

  const model::EvalContext::Snapshot base = model_->snapshot();
  pool_->run(batch.size(), [&](std::size_t worker, std::size_t task) {
    // Profile-mode only (one span per candidate): the per-worker compute
    // time the profiler attributes against the pool's wait spans.
    MAGUS_TRACE_SPAN_FINE("evaluator.task", "evaluator");
    Worker& w = workers_[worker];
    if (!w.measured_wait) {
      // First task of this worker in the batch: how long the worker slot
      // sat idle between batch submission and its first evaluation.
      w.measured_wait = true;
      metrics.queue_wait_us.observe(
          static_cast<double>(obs::monotonic_now_ns() - batch_start_ns) /
          1000.0);
    }
    if (!w.context) {
      // First use: clone the driver model's context. The model is not
      // mutated while score() runs, so concurrent clones only read it.
      w.context = std::make_unique<model::EvalContext>(*model_);
    }
    w.context->restore(base);
    apply_candidate(*w.context, batch[task]);
    utilities[task] = evaluate_utility(*w.context, utility_, w.scratch);
    w.evals->add(1);
  });
  evaluations_.fetch_add(static_cast<long>(batch.size()),
                         std::memory_order_relaxed);
  metrics.evals.add(batch.size());
  metrics.batch_latency_us.observe(
      static_cast<double>(obs::monotonic_now_ns() - batch_start_ns) / 1000.0);
  return utilities;
}

}  // namespace magus::core
