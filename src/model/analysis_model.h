// The Analysis Model of Figure 6, now split into its two halves:
//
//   - MarketContext (market_context.h): the immutable, shareable inputs —
//     topology, path-loss provider, AMC/scheduler tables, frozen UE
//     density. Shared read-only by every evaluation thread.
//   - EvalContext (eval_context.h): the mutable per-evaluation state —
//     GridState + Configuration — cheap to clone per worker thread, with
//     the incremental-mutation and snapshot API.
//
// AnalysisModel is the convenience bundle that owns one MarketContext and
// *is* the driver thread's EvalContext (public inheritance), so the whole
// pre-split API keeps working: construction from (network, provider),
// incremental mutations, snapshots, per-grid queries, and the UE-density
// freezing that writes to the shared market half. Parallel evaluators
// clone additional EvalContexts from it (slicing off exactly the mutable
// half) and share its market.
#pragma once

#include <memory>
#include <vector>

#include "model/eval_context.h"
#include "model/market_context.h"

namespace magus::model {

namespace internal {
/// Base-from-member holder: the MarketContext must be constructed before
/// the EvalContext base class that points at it.
struct MarketHolder {
  explicit MarketHolder(std::unique_ptr<MarketContext> m)
      : owned_market(std::move(m)) {}
  std::unique_ptr<MarketContext> owned_market;
};
}  // namespace internal

class AnalysisModel : private internal::MarketHolder, public EvalContext {
 public:
  /// `network` and `provider` must outlive the model. Builds the state for
  /// the network's default configuration.
  AnalysisModel(const net::Network* network,
                pathloss::PathLossProvider* provider, ModelOptions options = {});

  // Owns the market half; clones of the *eval* half are made by copying
  // the EvalContext base (see ParallelEvaluator), not the model itself.
  AnalysisModel(const AnalysisModel&) = delete;
  AnalysisModel& operator=(const AnalysisModel&) = delete;

  /// The shared, read-only half (mutable only for UE-density freezing).
  [[nodiscard]] MarketContext& market_context() { return *owned_market; }
  [[nodiscard]] const MarketContext& market_context() const {
    return *owned_market;
  }

  // ---- UE density (writes the shared market half; driver thread only,
  //      never while a parallel evaluation is in flight) ----

  /// Explicit per-grid UE density (size must equal cell_count()).
  void set_ue_density(std::vector<double> density);
  /// The paper's default: freezes a uniform-per-sector density from the
  /// *current* serving map (call at C_before).
  void freeze_uniform_ue_density();
};

}  // namespace magus::model
