#include "model/market_context.h"

#include <stdexcept>

#include "util/units.h"

namespace magus::model {

MarketContext::MarketContext(const net::Network* network,
                             pathloss::PathLossProvider* provider,
                             ModelOptions options)
    : network_(network), provider_(provider), options_(options) {
  if (network_ == nullptr || provider_ == nullptr) {
    throw std::invalid_argument(
        "MarketContext: network and provider must not be null");
  }
  noise_mw_ = util::dbm_to_mw(network_->noise_floor_dbm());
  ue_density_.assign(static_cast<std::size_t>(cell_count()), 0.0);
}

void MarketContext::set_ue_density(std::vector<double> density) {
  if (density.size() != static_cast<std::size_t>(cell_count())) {
    throw std::invalid_argument("MarketContext::set_ue_density: size");
  }
  ue_density_ = std::move(density);
}

void MarketContext::build_coverage_index(
    const CoverageIndexOptions& options) {
  index_ = std::make_unique<CoverageIndex>(
      CoverageIndex::build(*network_, *provider_, options));
}

void MarketContext::ensure_coverage_index() {
  if (!index_) build_coverage_index();
}

}  // namespace magus::model
