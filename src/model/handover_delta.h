// Handover accounting between two service maps.
//
// When tuning moves the network from one configuration to another, every UE
// whose serving sector changes must perform a handover. The gradual-tuning
// analysis (paper §6, Figure 11) counts how many of those happen
// simultaneously at each step and whether each is seamless (source sector
// still on-air) or hard (source already off-air, forcing reattachment).
#pragma once

#include <span>
#include <vector>

#include "geo/grid_map.h"
#include "net/sector.h"

namespace magus::model {

struct HandoverDelta {
  /// UEs that changed serving sector with the source still on-air.
  double seamless_ues = 0.0;
  /// UEs that reattached to a new sector after their source went dark
  /// (radio-link failure first, then reattach).
  double hard_ues = 0.0;
  /// UEs that lost service entirely (no new server). Not handovers — this
  /// is the service denial the utility function accounts for.
  double lost_service_ues = 0.0;
  /// Grid cells whose server changed (including losses).
  long changed_cells = 0;

  /// Handover count (lost-service UEs excluded, as in the paper's
  /// seamless-percentage accounting).
  [[nodiscard]] double total_ues() const { return seamless_ues + hard_ues; }
};

/// Compares service maps `before` and `after` (kInvalidSector = no service),
/// weighting each changed cell by its UE density. `source_on_air[s]` tells
/// whether sector s is still transmitting when the change happens; a UE is
/// seamless iff its *previous* server is on-air and it has a new server.
/// Cells gaining service from none are attaches, not handovers.
[[nodiscard]] HandoverDelta handover_delta(
    std::span<const net::SectorId> before, std::span<const net::SectorId> after,
    std::span<const double> ue_density, const std::vector<bool>& source_on_air);

}  // namespace magus::model
