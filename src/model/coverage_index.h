// Grid-major inverted coverage index: "which sectors cover this cell, and
// at what gain?" answered with one contiguous scan.
//
// The per-sector footprints (pathloss::SectorFootprint) are sector-major:
// ideal for applying one sector's contribution to every cell it covers, but
// the model's demotion path (EvalContext::recompute_top2) asks the inverse
// question per cell and previously had to probe every sector's window. This
// index inverts the footprints once into a CSR layout over grid cells:
//
//   row_start_[g] .. row_start_[g+1]   the cell's cover span
//   entry_sector_[e]                   covering sector ids, ascending per row
//   plane_gain_[p][e]                  gain_db at tilt plane p (NaN where the
//                                      sector does not cover the cell at
//                                      that tilt), parallel to entry_sector_
//
// One gain plane per tilt setting keeps tilt changes O(1) per entry: the
// span membership is the union of coverage over every indexed tilt, so a
// tilt swap only changes which plane a scan reads, never the span itself.
// Sectors whose current tilt is not indexed (a plane that was never built)
// are detected via a per-sector plane bitmask and handled by the caller
// with the legacy footprint probe.
//
// The ascending-sector-id entry order reproduces the legacy all-sector scan
// order exactly, so both the top-2 tie-break rules (beats(): stronger
// signal, then lower id) and the floating-point accumulation order of a
// grid-major rebuild are bit-identical to the sector-major code paths.
//
// Thread-safety: build on the driver thread before parallel evaluation
// begins; afterwards the index is immutable and shared read-only by every
// EvalContext clone (the same contract as the rest of MarketContext).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/grid_map.h"
#include "net/network.h"
#include "pathloss/database.h"
#include "radio/antenna.h"

namespace magus::model {

struct CoverageIndexOptions {
  /// Tilt planes to materialize per sector: every tilt within this many
  /// steps of the sector's default-configuration tilt, clamped to the
  /// antenna range. 0 (the default) indexes only the default tilt, which
  /// costs no extra footprint builds — those matrices are materialized by
  /// the model's first rebuild anyway. Larger radii pre-build the extra
  /// footprints eagerly, which pays off for long tilt-heavy searches.
  int tilt_radius = 0;
};

class CoverageIndex {
 public:
  /// Builds the index from the provider's footprints (driver thread only).
  /// `network` and `provider` must outlive nothing here — all gains are
  /// copied into the index.
  [[nodiscard]] static CoverageIndex build(
      const net::Network& network, pathloss::PathLossProvider& provider,
      const CoverageIndexOptions& options = {});

  [[nodiscard]] std::int32_t cell_count() const {
    return static_cast<std::int32_t>(row_start_.size()) - 1;
  }
  [[nodiscard]] std::size_t entry_count() const {
    return entry_sector_.size();
  }
  /// Number of tilt planes spanned (built or not); plane p holds tilt
  /// tilt_lo() + p.
  [[nodiscard]] int plane_count() const {
    return static_cast<int>(plane_ptr_.size());
  }
  [[nodiscard]] int tilt_lo() const { return tilt_lo_; }
  [[nodiscard]] int tilt_hi() const {
    return tilt_lo_ + plane_count() - 1;
  }

  /// The cover span of one cell. `first` is the global entry offset of the
  /// row, so gain lookups are plane[first + k] for the k-th sector.
  struct Row {
    const std::int32_t* sectors = nullptr;
    std::uint32_t first = 0;
    std::uint32_t size = 0;
  };
  [[nodiscard]] Row row(geo::GridIndex g) const {
    const auto i = static_cast<std::size_t>(g);
    const std::uint32_t first = row_start_[i];
    return {entry_sector_.data() + first, first, row_start_[i + 1] - first};
  }

  /// True when (sector, tilt) was materialized into a plane. A false
  /// return means the index knows nothing about that combination and the
  /// caller must fall back to probing the footprint directly.
  [[nodiscard]] bool sector_tilt_indexed(net::SectorId sector,
                                         int tilt) const {
    const int p = tilt - tilt_lo_;
    if (p < 0 || p >= plane_count()) return false;
    return ((sector_planes_[static_cast<std::size_t>(sector)] >> p) & 1u) !=
           0;
  }

  /// Gain plane for (sector, tilt): a pointer indexable by global entry
  /// offset, or nullptr when that combination is not indexed. NaN entries
  /// mean "covered at some indexed tilt, but not this one".
  [[nodiscard]] const float* plane_gains(net::SectorId sector,
                                         int tilt) const {
    const int p = tilt - tilt_lo_;
    if (p < 0 || p >= plane_count() ||
        ((sector_planes_[static_cast<std::size_t>(sector)] >> p) & 1u) ==
            0) {
      return nullptr;
    }
    return plane_ptr_[static_cast<std::size_t>(p)];
  }

  /// Linear twin of plane_gains: 10^(gain/10) per entry (0 where the dB
  /// plane is NaN), copied bit-for-bit from the footprints' precomputed
  /// linear windows so grid-major mW accumulation multiplies instead of
  /// calling pow — and matches the sector-major sweeps exactly.
  [[nodiscard]] const float* plane_linear(net::SectorId sector,
                                          int tilt) const {
    const int p = tilt - tilt_lo_;
    if (p < 0 || p >= plane_count() ||
        ((sector_planes_[static_cast<std::size_t>(sector)] >> p) & 1u) ==
            0) {
      return nullptr;
    }
    return plane_mw_ptr_[static_cast<std::size_t>(p)];
  }

  /// The gain planes as one contiguous slab: plane p occupies
  /// [p * plane_stride(), (p+1) * plane_stride()), indexed by global entry
  /// offset within the plane. The SIMD sweeps gather from these with a
  /// single int32 index (plane_slab_offset(sector, tilt) + entry), which is
  /// why the planes are flattened instead of separately allocated.
  [[nodiscard]] const float* slab_gains() const { return slab_gain_.data(); }
  /// Linear twin of slab_gains (same layout, 10^(gain/10), 0 where NaN).
  [[nodiscard]] const float* slab_linear() const { return slab_mw_.data(); }
  [[nodiscard]] std::size_t plane_stride() const { return plane_stride_; }

  /// Offset of (sector, tilt)'s plane into the slabs — add the global entry
  /// offset to index slab_gains()/slab_linear() — or -1 when that
  /// combination is not indexed. Fits int32 by construction (build()
  /// rejects slabs past 2^31 entries).
  [[nodiscard]] std::int32_t plane_slab_offset(net::SectorId sector,
                                               int tilt) const {
    const int p = tilt - tilt_lo_;
    if (p < 0 || p >= plane_count() ||
        ((sector_planes_[static_cast<std::size_t>(sector)] >> p) & 1u) ==
            0) {
      return -1;
    }
    return static_cast<std::int32_t>(static_cast<std::size_t>(p) *
                                     plane_stride_);
  }

  /// The cover span of one cell reordered by descending gain bound: entry
  /// k's bound is the sector's strongest gain at this cell across its
  /// built planes, so power_cap + bounds[k] bounds every received power
  /// from entry k onward. A top-2 scan may stop at the first k whose
  /// bound falls strictly below the current runner-up — top-2 under a
  /// strict total order is enumeration-order independent, so the early
  /// exit returns exactly the full scan's result. cols[k] is the global
  /// entry offset for plane lookups (ties in the bound order by ascending
  /// sector id, keeping the layout deterministic).
  struct RankedRow {
    const std::int32_t* sectors = nullptr;
    const std::uint32_t* cols = nullptr;
    const float* bounds = nullptr;
    std::uint32_t size = 0;
  };
  [[nodiscard]] RankedRow ranked_row(geo::GridIndex g) const {
    const auto i = static_cast<std::size_t>(g);
    const std::uint32_t first = row_start_[i];
    return {ranked_sector_.data() + first, ranked_col_.data() + first,
            ranked_bound_.data() + first, row_start_[i + 1] - first};
  }

  /// Raw CSR / ranked arrays for the SIMD sweeps' gathers. All row offsets
  /// and entry counts fit int32 (the slab guard bounds total entries), so
  /// the uint32 arrays may be reinterpreted as int32 lanes.
  [[nodiscard]] const std::uint32_t* row_starts() const {
    return row_start_.data();
  }
  [[nodiscard]] const std::int32_t* entry_sectors() const {
    return entry_sector_.data();
  }
  [[nodiscard]] const std::int32_t* ranked_sectors() const {
    return ranked_sector_.data();
  }
  [[nodiscard]] const std::uint32_t* ranked_cols() const {
    return ranked_col_.data();
  }
  [[nodiscard]] const float* ranked_bounds() const {
    return ranked_bound_.data();
  }

  /// Heap bytes held by the index (reported as the model.index.bytes
  /// gauge and by MarketContext::index_bytes()).
  [[nodiscard]] std::size_t index_bytes() const { return bytes_; }

 private:
  CoverageIndex() = default;

  std::vector<std::uint32_t> row_start_;    ///< cells + 1
  std::vector<std::int32_t> entry_sector_;  ///< ascending per row
  std::vector<float> slab_gain_;  ///< [plane * stride + entry], dB
  std::vector<float> slab_mw_;    ///< [plane * stride + entry], linear
  std::size_t plane_stride_ = 0;  ///< entries per plane (== entry_count())
  std::vector<const float*> plane_ptr_;     ///< dB plane data (into slab)
  std::vector<const float*> plane_mw_ptr_;  ///< linear plane data (into slab)
  std::vector<std::uint64_t> sector_planes_;  ///< built-plane bitmask
  // Ranked layout (see ranked_row): per-row permutation of the CSR span by
  // descending max-plane gain, sector id ascending on ties.
  std::vector<std::int32_t> ranked_sector_;
  std::vector<std::uint32_t> ranked_col_;
  std::vector<float> ranked_bound_;
  int tilt_lo_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace magus::model
