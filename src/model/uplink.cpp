#include "model/uplink.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lte/amc.h"
#include "util/units.h"

namespace magus::model {

UplinkModel::UplinkModel(const AnalysisModel* downlink, UplinkParams params)
    : downlink_(downlink), params_(params) {
  if (downlink_ == nullptr) {
    throw std::invalid_argument("UplinkModel: downlink model must not be null");
  }
  if (params_.alpha < 0.0 || params_.alpha > 1.0) {
    throw std::invalid_argument("UplinkModel: alpha must be in [0, 1]");
  }
}

double UplinkModel::path_loss_db(geo::GridIndex g) const {
  const net::SectorId s = downlink_->serving_sector(g);
  if (s == net::kInvalidSector) {
    return std::numeric_limits<double>::infinity();
  }
  // RP = P_tx + L  =>  PL = P_tx - RP (positive; uplink reciprocity).
  const double tx = downlink_->configuration()[s].power_dbm;
  return tx - downlink_->best_rp_dbm(g);
}

double UplinkModel::ue_tx_power_dbm(geo::GridIndex g) const {
  const double pl = path_loss_db(g);
  if (!std::isfinite(pl)) return params_.ue_max_power_dbm;
  return std::min(params_.ue_max_power_dbm,
                  params_.p0_dbm + params_.alpha * pl);
}

bool UplinkModel::power_limited(geo::GridIndex g) const {
  const double pl = path_loss_db(g);
  if (!std::isfinite(pl)) return true;
  return params_.p0_dbm + params_.alpha * pl >= params_.ue_max_power_dbm;
}

double UplinkModel::interference_plus_noise_mw(net::SectorId sector) const {
  const double noise_mw = downlink_->noise_mw();
  const auto& loads = downlink_->sector_loads();
  double total_load = 0.0;
  int active = 0;
  for (const double load : loads) {
    if (load > 0.0) {
      total_load += load;
      ++active;
    }
  }
  if (active == 0) return noise_mw;
  const double mean_load = total_load / active;
  const double relative =
      mean_load > 0.0
          ? loads[static_cast<std::size_t>(sector)] > 0.0
                ? loads[static_cast<std::size_t>(sector)] / mean_load
                : 0.0
          : 0.0;
  // IoT scales linearly (in mW) with the sector's relative load; at the
  // mean load the rise equals iot_at_mean_load_db.
  const double iot_linear_at_mean =
      util::db_to_linear(params_.iot_at_mean_load_db) - 1.0;
  return noise_mw * (1.0 + iot_linear_at_mean * relative);
}

double UplinkModel::sinr_db(geo::GridIndex g) const {
  const net::SectorId s = downlink_->serving_sector(g);
  if (s == net::kInvalidSector) {
    return -std::numeric_limits<double>::infinity();
  }
  const double received_dbm = ue_tx_power_dbm(g) - path_loss_db(g);
  return received_dbm - util::mw_to_dbm(interference_plus_noise_mw(s));
}

double UplinkModel::max_rate_bps(geo::GridIndex g) const {
  const double sinr = sinr_db(g);
  if (sinr < downlink_->options().min_service_sinr_db) return 0.0;
  return lte::max_rate_bps(sinr, downlink_->network().carrier().bandwidth);
}

double UplinkModel::rate_bps(geo::GridIndex g) const {
  const net::SectorId s = downlink_->serving_sector(g);
  if (s == net::kInvalidSector) return 0.0;
  const double peak = max_rate_bps(g);
  if (peak <= 0.0) return 0.0;
  return downlink_->options().scheduler.shared_rate_bps(
      peak, downlink_->sector_loads()[static_cast<std::size_t>(s)]);
}

double UplinkModel::performance_utility() const {
  // Batched form of the per-cell chain rate_bps -> sinr_db ->
  // interference_plus_noise_mw: the interference-plus-noise term (and its
  // dBm form) depends only on the serving sector, so it is hoisted into
  // per-sector tables once instead of recomputing the O(#sectors) load
  // average for every cell. Per-cell math is unchanged — same operations
  // on the same hoisted values — so the result is bit-identical to the
  // accessor path.
  const auto ue = downlink_->ue_density();
  const auto& loads = downlink_->sector_loads();
  const std::size_t sector_count = loads.size();
  std::vector<double> ipn_dbm(sector_count);
  for (std::size_t s = 0; s < sector_count; ++s) {
    ipn_dbm[s] = util::mw_to_dbm(
        interference_plus_noise_mw(static_cast<net::SectorId>(s)));
  }
  const double min_sinr = downlink_->options().min_service_sinr_db;
  const auto bandwidth = downlink_->network().carrier().bandwidth;
  const auto& scheduler = downlink_->options().scheduler;
  const auto& config = downlink_->configuration();
  const model::GridState& state = downlink_->state();

  double total = 0.0;
  const auto cells = static_cast<std::size_t>(downlink_->cell_count());
  for (std::size_t i = 0; i < cells; ++i) {
    const double ues = ue[i];
    if (ues <= 0.0) continue;
    const net::SectorId s = state.best[i];
    if (s == net::kInvalidSector) continue;
    const double pl =
        config[s].power_dbm - static_cast<double>(state.best_rp_dbm[i]);
    const double tx =
        std::min(params_.ue_max_power_dbm, params_.p0_dbm + params_.alpha * pl);
    const double sinr =
        (tx - pl) - ipn_dbm[static_cast<std::size_t>(s)];
    if (sinr < min_sinr) continue;
    const double peak = lte::max_rate_bps(sinr, bandwidth);
    if (peak <= 0.0) continue;
    const double rate =
        scheduler.shared_rate_bps(peak, loads[static_cast<std::size_t>(s)]);
    if (rate > 0.0) total += ues * std::log(rate);
  }
  return total;
}

}  // namespace magus::model
