// Coverage statistics and map extraction from the analysis model
// (the data behind the paper's Figures 4, 5, 8 and 10).
#pragma once

#include <vector>

#include "model/analysis_model.h"

namespace magus::model {

struct CoverageStats {
  double covered_grid_fraction = 0.0;  ///< grids with SINR >= SINRmin
  double covered_ue_count = 0.0;       ///< UEs in covered grids
  double total_ue_count = 0.0;
  double mean_sinr_db = 0.0;           ///< over covered grids
  double mean_rate_bps = 0.0;          ///< UE-weighted actual rate
  int serving_sector_count = 0;        ///< sectors serving at least one grid
};

[[nodiscard]] CoverageStats coverage_stats(const AnalysisModel& model);

/// Per-grid SINR values (dB; -inf where no server). Row-major like GridMap.
[[nodiscard]] std::vector<double> sinr_map(const AnalysisModel& model);

/// Number of active sectors whose signal lands above the noise floor in at
/// least one grid of `study_area` — the paper's "interfering sectors" count
/// used to characterize rural/suburban/urban areas (§6: ~26 / ~55 / ~178).
[[nodiscard]] int interfering_sector_count(pathloss::PathLossProvider& provider,
                                           const net::Network& network,
                                           const net::Configuration& config,
                                           const geo::Rect& study_area);

}  // namespace magus::model
