#include "model/simd_sweeps.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/simd.h"

namespace magus::model::sweeps {

namespace vx = util::simd;

namespace {

/// One cell of the add sweep — the exact legacy per-cell body
/// (add_contribution + offer_candidate), shared by the reference loop and
/// the vector sweep's tail.
inline void add_cell(const StateView& v, std::size_t i, float gain,
                     float linear, net::SectorId sector, double power_dbm,
                     double p_lin) {
  if (std::isnan(gain)) return;
  const auto rp = static_cast<float>(power_dbm + gain);
  const double mw = p_lin * static_cast<double>(linear);
  v.total_mw[i] += mw;
  const float best_rp = v.best_rp_dbm[i];
  const net::SectorId best = v.best[i];
  const bool beats_best = rp != best_rp ? rp > best_rp : sector < best;
  if (beats_best) {
    v.second[i] = best;
    v.second_rp_dbm[i] = best_rp;
    v.best[i] = sector;
    v.best_rp_dbm[i] = rp;
    v.best_mw[i] = mw;
  } else {
    const float second_rp = v.second_rp_dbm[i];
    const bool beats_second =
        rp != second_rp ? rp > second_rp : sector < v.second[i];
    if (beats_second) {
      v.second[i] = sector;
      v.second_rp_dbm[i] = rp;
    }
  }
}

inline void remove_cell(const StateView& v, std::size_t i, float gain,
                        float linear, net::SectorId sector, double p_lin,
                        geo::GridIndex g,
                        std::vector<geo::GridIndex>& recompute) {
  if (std::isnan(gain)) return;
  v.total_mw[i] =
      std::max(0.0, v.total_mw[i] - p_lin * static_cast<double>(linear));
  if (v.best[i] == sector || v.second[i] == sector) recompute.push_back(g);
}

}  // namespace

void add_row_reference(const StateView& view, std::size_t base,
                       const float* gains, const float* linear,
                       std::int32_t n, net::SectorId sector, double power_dbm,
                       double p_lin) {
  for (std::int32_t c = 0; c < n; ++c) {
    add_cell(view, base + static_cast<std::size_t>(c), gains[c], linear[c],
             sector, power_dbm, p_lin);
  }
}

void add_row(const StateView& view, std::size_t base, const float* gains,
             const float* linear, std::int32_t n, net::SectorId sector,
             double power_dbm, double p_lin) {
  constexpr std::int32_t K = vx::kWidth;
  const vx::vdouble vpow = vx::set1_d(power_dbm);
  const vx::vdouble vplin = vx::set1_d(p_lin);
  const vx::vint vsec = vx::set1_i(sector);
  std::int32_t c = 0;
  for (; c + K <= n; c += K) {
    const std::size_t i = base + static_cast<std::size_t>(c);
    const vx::vfloat gain = vx::loadu_f(gains + c);
    // A fully uncovered block would add +0.0 everywhere and win no
    // compares — memory stays bit-identical — so skip it outright.
    // Footprint windows are sparse at the corners; this turns those cells
    // into one load + one mask test.
    if (!vx::any(vx::m_not(vx::isnan_f(gain)))) continue;
    // rp = float(power + gain): NaN for uncovered cells, so every ordered
    // compare below is false and those lanes keep their old top-2 state.
    const vx::vfloat rp =
        vx::to_float(vx::add_d(vpow, vx::to_double(gain)));
    // mw = p_lin * double(linear): exactly +0.0 for uncovered cells
    // (linear == 0), and total_mw >= +0.0, so += mw needs no mask.
    const vx::vdouble mw =
        vx::mul_d(vplin, vx::to_double(vx::loadu_f(linear + c)));
    vx::storeu_d(view.total_mw + i,
                 vx::add_d(vx::loadu_d(view.total_mw + i), mw));

    vx::vfloat srp = vx::loadu_f(view.second_rp_dbm + i);
    // Promotion screen: rp < second_rp <= best_rp makes both beats()
    // checks false in every lane (NaN rp included), so the block's top-2
    // state is provably untouched and the remaining loads/blends/stores
    // can be skipped. >= is conservative for the equal-rp tie-break.
    if (!vx::any(vx::cmp_ge_f(rp, srp))) continue;

    vx::vint bid = vx::loadu_i(view.best + i);
    vx::vfloat brp = vx::loadu_f(view.best_rp_dbm + i);
    vx::vint sid = vx::loadu_i(view.second + i);
    // beats(rp, sector, brp, bid): strictly stronger, or equal with the
    // lower sector id.
    const vx::fmask bb =
        vx::m_or(vx::cmp_gt_f(rp, brp),
                 vx::m_and(vx::cmp_eq_f(rp, brp), vx::cmp_gt_i(bid, vsec)));
    const vx::fmask bs = vx::m_and(
        vx::m_not(bb),
        vx::m_or(vx::cmp_gt_f(rp, srp),
                 vx::m_and(vx::cmp_eq_f(rp, srp), vx::cmp_gt_i(sid, vsec))));
    // Demote the old best into second where the new signal wins; otherwise
    // maybe replace second. Order matters: second reads the pre-update
    // best.
    sid = vx::blend_i(bb, bid, vx::blend_i(bs, vsec, sid));
    srp = vx::blend_f(bb, brp, vx::blend_f(bs, rp, srp));
    bid = vx::blend_i(bb, vsec, bid);
    brp = vx::blend_f(bb, rp, brp);
    const vx::vdouble bmw =
        vx::blend_d(vx::widen(bb), mw, vx::loadu_d(view.best_mw + i));

    vx::storeu_i(view.best + i, bid);
    vx::storeu_f(view.best_rp_dbm + i, brp);
    vx::storeu_d(view.best_mw + i, bmw);
    vx::storeu_i(view.second + i, sid);
    vx::storeu_f(view.second_rp_dbm + i, srp);
  }
  for (; c < n; ++c) {
    add_cell(view, base + static_cast<std::size_t>(c), gains[c], linear[c],
             sector, power_dbm, p_lin);
  }
}

void remove_row_reference(const StateView& view, std::size_t base,
                          const float* gains, const float* linear,
                          std::int32_t n, net::SectorId sector, double p_lin,
                          geo::GridIndex row_first,
                          std::vector<geo::GridIndex>& recompute) {
  for (std::int32_t c = 0; c < n; ++c) {
    remove_cell(view, base + static_cast<std::size_t>(c), gains[c], linear[c],
                sector, p_lin, row_first + c, recompute);
  }
}

void remove_row(const StateView& view, std::size_t base, const float* gains,
                const float* linear, std::int32_t n, net::SectorId sector,
                double p_lin, geo::GridIndex row_first,
                std::vector<geo::GridIndex>& recompute) {
  constexpr std::int32_t K = vx::kWidth;
  const vx::vdouble vplin = vx::set1_d(p_lin);
  const vx::vdouble vzero = vx::set1_d(0.0);
  const vx::vint vsec = vx::set1_i(sector);
  std::int32_t c = 0;
  for (; c + K <= n; c += K) {
    const std::size_t i = base + static_cast<std::size_t>(c);
    const vx::fmask covered = vx::m_not(vx::isnan_f(vx::loadu_f(gains + c)));
    // Fully uncovered block: total_mw would clamp back to itself
    // (max(0, t - 0) == t for t >= +0.0) and nothing can enqueue, so skip.
    if (!vx::any(covered)) continue;
    // Covered-or-not, cells subtract +0.0 when uncovered and clamp against
    // a value >= +0.0: bit-unchanged, so the arithmetic runs maskless.
    // max_d's "b wins on equality" rule reproduces std::max(0.0, x)
    // exactly (+0.0 out for x == ±0.0).
    const vx::vdouble mw =
        vx::mul_d(vplin, vx::to_double(vx::loadu_f(linear + c)));
    vx::storeu_d(
        view.total_mw + i,
        vx::max_d(vx::sub_d(vx::loadu_d(view.total_mw + i), mw), vzero));
    // Only *covered* cells may enqueue a recompute (the scalar loop never
    // visits uncovered ones), hence the NaN mask here.
    const vx::fmask hit = vx::m_and(
        covered,
        vx::m_or(vx::cmp_eq_i(vx::loadu_i(view.best + i), vsec),
                 vx::cmp_eq_i(vx::loadu_i(view.second + i), vsec)));
    unsigned bits = vx::to_bits(hit);
    while (bits != 0) {
      const int lane = std::countr_zero(bits);
      bits &= bits - 1;
      recompute.push_back(row_first + c + lane);
    }
  }
  for (; c < n; ++c) {
    remove_cell(view, base + static_cast<std::size_t>(c), gains[c], linear[c],
                sector, p_lin, row_first + c, recompute);
  }
}

}  // namespace magus::model::sweeps
