// MarketContext: the immutable, shareable half of the analysis model.
//
// Everything the evaluation of a candidate configuration *reads* but never
// *writes* lives here: the network topology, the path-loss provider, the
// AMC/scheduler options, the noise floor and the frozen UE density. One
// MarketContext is shared read-only by every per-thread EvalContext, which
// is what lets candidate evaluation fan out across cores without copying
// the market-scale inputs.
//
// Thread-safety contract: all accessors are safe to call concurrently once
// the context is constructed and the UE density is frozen. set_ue_density()
// is the one mutator; it must only be called from the driver thread while
// no parallel evaluation is in flight (the planner freezes the density at
// C_before, before any search runs). The path-loss provider is shared too:
// provider().footprint() is internally synchronized (see
// pathloss::PathLossProvider).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "lte/amc.h"
#include "lte/scheduler.h"
#include "model/coverage_index.h"
#include "net/network.h"
#include "pathloss/database.h"

namespace magus::model {

struct ModelOptions {
  lte::SchedulerModel scheduler;
  /// Minimum SINR for service; below it r_max = 0 (paper's SINRmin).
  /// Defaults to the CQI-1 switching threshold.
  double min_service_sinr_db = -6.7;
};

class MarketContext {
 public:
  /// `network` and `provider` must outlive the context.
  MarketContext(const net::Network* network,
                pathloss::PathLossProvider* provider, ModelOptions options);

  [[nodiscard]] const net::Network& network() const { return *network_; }
  /// Shared by all eval contexts; footprint() is internally synchronized.
  [[nodiscard]] pathloss::PathLossProvider& provider() const {
    return *provider_;
  }
  [[nodiscard]] const geo::GridMap& grid() const { return provider_->grid(); }
  [[nodiscard]] const ModelOptions& options() const { return options_; }
  [[nodiscard]] std::int32_t cell_count() const {
    return grid().cell_count();
  }
  [[nodiscard]] double noise_mw() const { return noise_mw_; }

  [[nodiscard]] std::span<const double> ue_density() const {
    return ue_density_;
  }
  /// Driver-thread only; must not race with parallel evaluation.
  void set_ue_density(std::vector<double> density);

  // ---- Grid-major inverted coverage index (see coverage_index.h) ----

  /// Builds (or rebuilds, e.g. with a wider tilt radius) the coverage
  /// index. Driver-thread only; must not race with parallel evaluation —
  /// EvalContexts hold raw pointers into the index, so rebuild only while
  /// no context has it bound (ParallelEvaluator builds it up front).
  void build_coverage_index(const CoverageIndexOptions& options = {});
  /// Builds the index with default options iff it does not exist yet.
  void ensure_coverage_index();
  /// The shared index, or nullptr before the first build.
  [[nodiscard]] const CoverageIndex* coverage_index() const {
    return index_.get();
  }
  /// Heap bytes held by the index (0 before the first build); surfaced in
  /// the model.index.bytes gauge of --metrics snapshots.
  [[nodiscard]] std::size_t index_bytes() const {
    return index_ ? index_->index_bytes() : 0;
  }

  /// Heap bytes held by the context itself (frozen UE density + coverage
  /// index). The path-loss provider's footprints are accounted separately
  /// by their owner; the fleet MarketStore adds both when charging a
  /// resident market against its byte budget.
  [[nodiscard]] std::size_t resident_bytes() const {
    return ue_density_.capacity() * sizeof(double) + index_bytes();
  }

 private:
  const net::Network* network_;
  pathloss::PathLossProvider* provider_;
  ModelOptions options_;
  std::vector<double> ue_density_;
  double noise_mw_ = 0.0;
  std::unique_ptr<CoverageIndex> index_;
};

}  // namespace magus::model
