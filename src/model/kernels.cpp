#include "model/kernels.h"

#include <algorithm>

#include "util/units.h"

namespace magus::model {

lte::Cqi cell_cqi(net::SectorId best, float best_rp_dbm, double best_mw,
                  double total_mw, double noise_mw,
                  double min_service_sinr_db) {
  // Mirrors EvalContext::sinr_db + ::cqi exactly: rp promoted to double,
  // interference floored at zero, and the no-server case flowing through
  // as -inf SINR (below every service threshold).
  const double rp_dbm = best_rp_dbm;
  double sinr = rp_dbm;
  if (best != net::kInvalidSector) {
    const double interference_mw = std::max(0.0, total_mw - best_mw);
    sinr = rp_dbm - util::mw_to_dbm(noise_mw + interference_mw);
  }
  if (sinr < min_service_sinr_db) return 0;
  return lte::sinr_to_cqi(sinr);
}

void cqi_and_loads_kernel(const GridState& state,
                          std::span<const double> ue_density, double noise_mw,
                          double min_service_sinr_db,
                          std::span<std::int8_t> cqi_out,
                          std::span<double> loads_out) {
  std::fill(loads_out.begin(), loads_out.end(), 0.0);
  const std::size_t cells = state.cells();
  const double* total_mw = state.total_mw.data();
  const net::SectorId* best = state.best.data();
  const float* best_rp = state.best_rp_dbm.data();
  const double* best_mw = state.best_mw.data();
  for (std::size_t i = 0; i < cells; ++i) {
    const lte::Cqi cqi = cell_cqi(best[i], best_rp[i], best_mw[i],
                                  total_mw[i], noise_mw,
                                  min_service_sinr_db);
    cqi_out[i] = static_cast<std::int8_t>(cqi);
    if (cqi > 0 && ue_density[i] > 0.0) {
      loads_out[static_cast<std::size_t>(best[i])] += ue_density[i];
    }
  }
}

void loads_kernel(const GridState& state, std::span<const double> ue_density,
                  double noise_mw, double min_service_sinr_db,
                  std::span<double> loads_out) {
  std::fill(loads_out.begin(), loads_out.end(), 0.0);
  const std::size_t cells = state.cells();
  const double* total_mw = state.total_mw.data();
  const net::SectorId* best = state.best.data();
  const float* best_rp = state.best_rp_dbm.data();
  const double* best_mw = state.best_mw.data();
  for (std::size_t i = 0; i < cells; ++i) {
    // Skipping no-UE cells first keeps the SINR math off empty territory;
    // the load sum is unaffected (those cells contribute nothing either
    // way), so this stays equivalent to the fused variant.
    if (ue_density[i] <= 0.0 || best[i] == net::kInvalidSector) continue;
    if (cell_cqi(best[i], best_rp[i], best_mw[i], total_mw[i], noise_mw,
                 min_service_sinr_db) > 0) {
      loads_out[static_cast<std::size_t>(best[i])] += ue_density[i];
    }
  }
}

}  // namespace magus::model
