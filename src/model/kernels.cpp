#include "model/kernels.h"

#include <algorithm>

#include "lte/amc.h"
#include "util/simd.h"
#include "util/units.h"

namespace magus::model {

namespace vx = util::simd;

lte::Cqi cell_cqi(net::SectorId best, float best_rp_dbm, double best_mw,
                  double total_mw, double noise_mw,
                  double min_service_sinr_db) {
  // Mirrors EvalContext::sinr_db + ::cqi exactly: rp promoted to double,
  // interference floored at zero, and the no-server case flowing through
  // as -inf SINR (below every service threshold).
  const double rp_dbm = best_rp_dbm;
  double sinr = rp_dbm;
  if (best != net::kInvalidSector) {
    const double interference_mw = std::max(0.0, total_mw - best_mw);
    sinr = rp_dbm - util::mw_to_dbm(noise_mw + interference_mw);
  }
  if (sinr < min_service_sinr_db) return 0;
  return lte::sinr_to_cqi(sinr);
}

namespace {

/// One K-lane chunk of per-cell CQI, bit-identical to cell_cqi per lane:
/// the interference floor and SINR subtraction run in vector lanes (exactly
/// rounded IEEE ops, so scalar-equal), the log10 inside mw_to_dbm stays in
/// scalar libm (transcendentals are not lane-reproducible), and
/// sinr_to_cqi's ascending-threshold loop becomes a count of thresholds
/// <= sinr. Lanes with no server use db == 0.0, making sinr = rp - 0.0
/// == rp bitwise (so -inf flows through below every threshold, like the
/// scalar early-out).
inline vx::vint cqi_chunk(const double* total_mw, const double* best_mw,
                          const net::SectorId* best, const float* best_rp,
                          std::size_t i, vx::vdouble vnoise,
                          vx::vdouble vzero, vx::vdouble vmin) {
  constexpr int K = vx::kWidth;
  // denom = noise + max(0, total - best_mw); max_d's "b wins on equal"
  // rule reproduces std::max(0.0, x) exactly (+0.0 for x == ±0.0).
  const vx::vdouble denom = vx::add_d(
      vnoise, vx::max_d(vx::sub_d(vx::loadu_d(total_mw + i),
                                  vx::loadu_d(best_mw + i)),
                        vzero));
  double db[static_cast<std::size_t>(K)];
  for (int j = 0; j < K; ++j) {
    db[j] = best[i + static_cast<std::size_t>(j)] != net::kInvalidSector
                ? util::mw_to_dbm(vx::extract_d(denom, j))
                : 0.0;
  }
  const vx::vdouble sinr = vx::sub_d(
      vx::to_double(vx::loadu_f(best_rp + i)), vx::loadu_d(db));
  const auto& thresholds = lte::cqi_sinr_thresholds_db();
  vx::vint cqi = vx::set1_i(0);
  for (const double thr : thresholds) {
    // Each satisfied (ascending) threshold contributes +1 — the count is
    // exactly sinr_to_cqi's "last threshold <= sinr" index.
    cqi = vx::sub_i(cqi, vx::mask_i(vx::narrow(
                             vx::cmp_ge_d(sinr, vx::set1_d(thr)))));
  }
  // Below the service floor the scalar path returns 0 before the table.
  return vx::blend_i(vx::narrow(vx::cmp_lt_d(sinr, vmin)), vx::set1_i(0),
                     cqi);
}

}  // namespace

void cqi_and_loads_kernel(const GridState& state,
                          std::span<const double> ue_density, double noise_mw,
                          double min_service_sinr_db,
                          std::span<std::int8_t> cqi_out,
                          std::span<double> loads_out) {
  std::fill(loads_out.begin(), loads_out.end(), 0.0);
  const std::size_t cells = state.cells();
  const double* total_mw = state.total_mw.data();
  const net::SectorId* best = state.best.data();
  const float* best_rp = state.best_rp_dbm.data();
  const double* best_mw = state.best_mw.data();
  constexpr std::size_t K = vx::kWidth;
  const vx::vdouble vnoise = vx::set1_d(noise_mw);
  const vx::vdouble vzero = vx::set1_d(0.0);
  const vx::vdouble vmin = vx::set1_d(min_service_sinr_db);
  std::size_t i = 0;
  for (; i + K <= cells; i += K) {
    const vx::vint cqi = cqi_chunk(total_mw, best_mw, best, best_rp, i,
                                   vnoise, vzero, vmin);
    for (int j = 0; j < static_cast<int>(K); ++j) {
      const std::size_t c = i + static_cast<std::size_t>(j);
      const std::int32_t q = vx::extract_i(cqi, j);
      cqi_out[c] = static_cast<std::int8_t>(q);
      // Scatter-add stays scalar: two loads may hit the same sector.
      if (q > 0 && ue_density[c] > 0.0) {
        loads_out[static_cast<std::size_t>(best[c])] += ue_density[c];
      }
    }
  }
  for (; i < cells; ++i) {
    const lte::Cqi cqi = cell_cqi(best[i], best_rp[i], best_mw[i],
                                  total_mw[i], noise_mw,
                                  min_service_sinr_db);
    cqi_out[i] = static_cast<std::int8_t>(cqi);
    if (cqi > 0 && ue_density[i] > 0.0) {
      loads_out[static_cast<std::size_t>(best[i])] += ue_density[i];
    }
  }
}

void loads_kernel(const GridState& state, std::span<const double> ue_density,
                  double noise_mw, double min_service_sinr_db,
                  std::span<double> loads_out) {
  std::fill(loads_out.begin(), loads_out.end(), 0.0);
  const std::size_t cells = state.cells();
  const double* total_mw = state.total_mw.data();
  const net::SectorId* best = state.best.data();
  const float* best_rp = state.best_rp_dbm.data();
  const double* best_mw = state.best_mw.data();
  constexpr std::size_t K = vx::kWidth;
  const vx::vdouble vnoise = vx::set1_d(noise_mw);
  const vx::vdouble vzero = vx::set1_d(0.0);
  const vx::vdouble vmin = vx::set1_d(min_service_sinr_db);
  std::size_t i = 0;
  for (; i + K <= cells; i += K) {
    // Skipping no-UE / no-server chunks keeps the SINR math off empty
    // territory; the load sum is unaffected (those cells contribute
    // nothing either way), so this stays equivalent to the fused variant.
    bool any = false;
    for (std::size_t j = 0; j < K; ++j) {
      any |= ue_density[i + j] > 0.0 && best[i + j] != net::kInvalidSector;
    }
    if (!any) continue;
    const vx::vint cqi = cqi_chunk(total_mw, best_mw, best, best_rp, i,
                                   vnoise, vzero, vmin);
    for (int j = 0; j < static_cast<int>(K); ++j) {
      const std::size_t c = i + static_cast<std::size_t>(j);
      if (ue_density[c] > 0.0 && best[c] != net::kInvalidSector &&
          vx::extract_i(cqi, j) > 0) {
        loads_out[static_cast<std::size_t>(best[c])] += ue_density[c];
      }
    }
  }
  for (; i < cells; ++i) {
    if (ue_density[i] <= 0.0 || best[i] == net::kInvalidSector) continue;
    if (cell_cqi(best[i], best_rp[i], best_mw[i], total_mw[i], noise_mw,
                 min_service_sinr_db) > 0) {
      loads_out[static_cast<std::size_t>(best[i])] += ue_density[i];
    }
  }
}

}  // namespace magus::model
