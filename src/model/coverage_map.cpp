#include "model/coverage_map.h"

#include <cmath>
#include <set>

namespace magus::model {

CoverageStats coverage_stats(const AnalysisModel& model) {
  CoverageStats stats;
  const auto cells = model.cell_count();
  const auto ue = model.ue_density();
  std::set<net::SectorId> servers;
  long covered = 0;
  double sinr_sum = 0.0;
  double rate_sum = 0.0;
  for (geo::GridIndex g = 0; g < cells; ++g) {
    const auto i = static_cast<std::size_t>(g);
    stats.total_ue_count += ue[i];
    if (!model.in_service(g)) continue;
    ++covered;
    servers.insert(model.serving_sector(g));
    sinr_sum += model.sinr_db(g);
    stats.covered_ue_count += ue[i];
    rate_sum += ue[i] * model.rate_bps(g);
  }
  stats.covered_grid_fraction =
      cells > 0 ? static_cast<double>(covered) / cells : 0.0;
  stats.mean_sinr_db = covered > 0 ? sinr_sum / covered : 0.0;
  stats.mean_rate_bps =
      stats.covered_ue_count > 0 ? rate_sum / stats.covered_ue_count : 0.0;
  stats.serving_sector_count = static_cast<int>(servers.size());
  return stats;
}

std::vector<double> sinr_map(const AnalysisModel& model) {
  std::vector<double> map(static_cast<std::size_t>(model.cell_count()));
  for (geo::GridIndex g = 0; g < model.cell_count(); ++g) {
    map[static_cast<std::size_t>(g)] = model.sinr_db(g);
  }
  return map;
}

int interfering_sector_count(pathloss::PathLossProvider& provider,
                             const net::Network& network,
                             const net::Configuration& config,
                             const geo::Rect& study_area) {
  const double noise_dbm = network.noise_floor_dbm();
  const auto study_cells = provider.grid().cells_in(study_area);
  int count = 0;
  for (const auto& sector : network.sectors()) {
    const auto& setting = config[sector.id];
    if (!setting.active) continue;
    const auto& fp = provider.footprint(sector.id, setting.tilt);
    for (const geo::GridIndex g : study_cells) {
      if (!fp.covers(g)) continue;
      if (setting.power_dbm + fp.gain_db(g) > noise_dbm) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace magus::model
