// Batched per-grid kernels over the GridState SoA spans.
//
// The per-grid SINR -> CQI -> load pipeline used to run through the
// EvalContext accessor chain one cell at a time (sinr_db -> cqi ->
// in_service), recomputing the same conversions at every call site. These
// kernels run the identical math as one pass over the contiguous arrays —
// span-at-a-time loops over total_mw / best / best_rp_dbm with the noise
// floor and service threshold hoisted into registers — which is both what
// the utility evaluator's hot pass and the lazy sector-load cache want.
//
// Bit-identity contract: every kernel performs exactly the floating-point
// operations of the accessor path it replaces, in the same order, so
// results are bit-identical to the unbatched code (model_equivalence_test
// compares against independently computed references; the thread-
// determinism suites compare across worker counts).
#pragma once

#include <cstdint>
#include <span>

#include "lte/amc.h"
#include "model/grid_state.h"

namespace magus::model {

/// CQI of one cell's SoA slice: the exact math of EvalContext::cqi()
/// (Formula 2 SINR, then the CQI switching thresholds; 0 = out of
/// service). `best_mw` is the serving sector's stored mW contribution
/// (GridState::best_mw) — subtracting it from total_mw cancels exactly,
/// and no per-cell dBm->mW conversion is needed. Exposed so callers that
/// already sit on the raw arrays can stay on them.
[[nodiscard]] lte::Cqi cell_cqi(net::SectorId best, float best_rp_dbm,
                                double best_mw, double total_mw,
                                double noise_mw, double min_service_sinr_db);

/// Fused pass 1 of the utility evaluation: per-cell CQI plus per-sector
/// attached-UE loads (Formula 3) in one sweep. `cqi_out` must have
/// state.cells() entries; `loads_out` one entry per sector (both are
/// overwritten). Cells with no UEs still get their CQI (the utility pass
/// skips them, but the value is cheap and keeps the kernel branch-light).
void cqi_and_loads_kernel(const GridState& state,
                          std::span<const double> ue_density, double noise_mw,
                          double min_service_sinr_db,
                          std::span<std::int8_t> cqi_out,
                          std::span<double> loads_out);

/// Loads-only variant for EvalContext::sector_loads() — the same sweep
/// without materializing the CQI array. `loads_out` is overwritten.
void loads_kernel(const GridState& state, std::span<const double> ue_density,
                  double noise_mw, double min_service_sinr_db,
                  std::span<double> loads_out);

}  // namespace magus::model
