#include "model/analysis_model.h"

#include "net/ue_distribution.h"

namespace magus::model {

AnalysisModel::AnalysisModel(const net::Network* network,
                             pathloss::PathLossProvider* provider,
                             ModelOptions options)
    : internal::MarketHolder(
          std::make_unique<MarketContext>(network, provider, options)),
      EvalContext(owned_market.get()) {}

void AnalysisModel::set_ue_density(std::vector<double> density) {
  owned_market->set_ue_density(std::move(density));
  invalidate_loads();
}

void AnalysisModel::freeze_uniform_ue_density() {
  set_ue_density(
      net::UeDistribution::uniform_per_sector(network(), service_map()));
}

}  // namespace magus::model
