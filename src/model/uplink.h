// Uplink coverage/capacity layer (paper §4: "we focus on downlink rates,
// although our methodology can also be used for uplink performance").
//
// The uplink rides on the downlink analysis model's geometry: each grid's
// path loss to its serving sector is recovered from the stored received
// power (L = RP - P_tx), and the UE transmit power follows LTE open-loop
// fractional power control,
//
//   P_ue = min(P_max, P0 + alpha * PL),
//
// so cell-edge UEs run out of power headroom exactly where the paper's
// rural story plays out. Uplink interference is modeled as a
// rise-over-thermal (IoT) proportional to the mean sector load — the
// standard system-level simplification when per-UE scheduling is not
// simulated. Rates reuse the TS 36.213 pipeline and the equal-share
// scheduler.
//
// The layer is read-only with respect to the downlink model: mitigation
// plans computed on the downlink utility can be *assessed* on the uplink
// (bench/ablation use), without perturbing the calibrated downlink paths.
#pragma once

#include "model/analysis_model.h"

namespace magus::model {

struct UplinkParams {
  double ue_max_power_dbm = 23.0;  ///< LTE power class 3
  /// Open-loop target (dBm): full-carrier-equivalent received power the
  /// UE aims to land at the sector when path loss is fully compensated
  /// (the per-PRB P0 of the spec, scaled to the carrier this model works
  /// in; must sit sufficiently above the full-band noise floor).
  double p0_dbm = -78.0;
  double alpha = 0.8;  ///< fractional path-loss compensation
  /// Rise-over-thermal at a sector carrying the network's mean load;
  /// scales linearly (in mW) with relative load.
  double iot_at_mean_load_db = 3.0;
};

class UplinkModel {
 public:
  /// `downlink` must outlive the uplink view.
  explicit UplinkModel(const AnalysisModel* downlink, UplinkParams params = {});

  [[nodiscard]] const UplinkParams& params() const { return params_; }

  /// Path loss (positive dB) from grid g to its serving sector, recovered
  /// from the downlink state. Returns +infinity when g has no server.
  [[nodiscard]] double path_loss_db(geo::GridIndex g) const;

  /// Open-loop UE transmit power; capped at the power class.
  [[nodiscard]] double ue_tx_power_dbm(geo::GridIndex g) const;

  /// True when the UE hit its power cap (no headroom left — the uplink
  /// analogue of the rural power limit).
  [[nodiscard]] bool power_limited(geo::GridIndex g) const;

  /// Uplink SINR at the serving sector; -inf when g has no server.
  [[nodiscard]] double sinr_db(geo::GridIndex g) const;

  /// Peak uplink rate (alone on the carrier), TS 36.213 pipeline.
  [[nodiscard]] double max_rate_bps(geo::GridIndex g) const;

  /// Shared uplink rate, dividing the serving sector among its attached
  /// UEs like the downlink does (Formula 4 applied uplink).
  [[nodiscard]] double rate_bps(geo::GridIndex g) const;

  /// Sum over grids of UE-weighted log uplink rate — the uplink
  /// counterpart of the performance utility, for assessing a downlink-
  /// optimized plan on the uplink.
  [[nodiscard]] double performance_utility() const;

 private:
  /// Interference-plus-noise at the serving sector, in mW.
  [[nodiscard]] double interference_plus_noise_mw(net::SectorId sector) const;

  const AnalysisModel* downlink_;
  UplinkParams params_;
};

}  // namespace magus::model
