// SIMD row sweeps for the EvalContext contribution paths.
//
// Each sweep vectorizes *across cells* of one contiguous footprint window
// row: lane j executes exactly the per-cell operation sequence of the
// scalar loop for cell base+j, and cells are independent, so the result is
// bitwise-identical to the scalar code at every lane width (DESIGN.md §15).
// Uncovered cells (NaN gain / zero linear gain) need no masking in the
// arithmetic: their mW contribution is +0.0 (total_mw >= +0.0 stays
// bit-unchanged under += 0.0) and their received power is NaN (every
// ordered compare is false, so the top-2 blend keeps the old state).
//
// The *_reference twins are the pre-SIMD per-cell loops, kept as the
// oracle for the identity tests (and as readable documentation of the
// semantics).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/grid_map.h"
#include "model/grid_state.h"
#include "net/sector.h"

namespace magus::model::sweeps {

/// Raw pointers into a GridState's SoA arrays (valid while the state's
/// vectors are not resized).
struct StateView {
  double* total_mw = nullptr;
  net::SectorId* best = nullptr;
  float* best_rp_dbm = nullptr;
  double* best_mw = nullptr;
  net::SectorId* second = nullptr;
  float* second_rp_dbm = nullptr;
};

[[nodiscard]] inline StateView view_of(GridState& state) {
  return {state.total_mw.data(),      state.best.data(),
          state.best_rp_dbm.data(),   state.best_mw.data(),
          state.second.data(),        state.second_rp_dbm.data()};
}

/// Adds sector's contribution over one window row: for each covered cell
/// base+c (gains[c] not NaN), rp = float(power_dbm + gains[c]),
/// mw = p_lin * double(linear[c]), total_mw += mw, then the beats() top-2
/// promotion. `n` is the row width in cells.
void add_row(const StateView& view, std::size_t base, const float* gains,
             const float* linear, std::int32_t n, net::SectorId sector,
             double power_dbm, double p_lin);
void add_row_reference(const StateView& view, std::size_t base,
                       const float* gains, const float* linear,
                       std::int32_t n, net::SectorId sector, double power_dbm,
                       double p_lin);

/// Removes sector's contribution over one window row:
/// total_mw = max(0.0, total_mw - p_lin * double(linear[c])) per covered
/// cell, and appends the grid index of every covered cell whose best or
/// second server is `sector` to `recompute` (the caller re-ranks them
/// afterwards — recompute_top2 touches only per-cell top-2 state, so
/// deferring it out of the sweep is order-equivalent to the interleaved
/// scalar loop). `row_first` is the grid index of cell base+0.
void remove_row(const StateView& view, std::size_t base, const float* gains,
                const float* linear, std::int32_t n, net::SectorId sector,
                double p_lin, geo::GridIndex row_first,
                std::vector<geo::GridIndex>& recompute);
void remove_row_reference(const StateView& view, std::size_t base,
                          const float* gains, const float* linear,
                          std::int32_t n, net::SectorId sector, double p_lin,
                          geo::GridIndex row_first,
                          std::vector<geo::GridIndex>& recompute);

}  // namespace magus::model::sweeps
