// Per-grid radio state maintained by the analysis model.
//
// For every grid cell we track the total received power from all active
// sectors plus the two strongest servers. Keeping the runner-up lets power
// *increases* and new-server promotions update in O(1) per cell; only
// demotions (a serving signal dropping) fall back to a scan over sectors.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geo/grid_map.h"
#include "net/sector.h"

namespace magus::model {

inline constexpr float kNoSignalDbm = -std::numeric_limits<float>::infinity();

struct GridState {
  /// Sum of received powers (mW) from all active covering sectors.
  std::vector<double> total_mw;
  /// Strongest server per cell (kInvalidSector = none).
  std::vector<net::SectorId> best;
  std::vector<float> best_rp_dbm;
  /// The best server's exact mW contribution to total_mw (0 = no server).
  /// Interference is total_mw - best_mw: subtracting the identical product
  /// that was accumulated cancels exactly, which matters because the
  /// difference sits near the noise floor where any conversion mismatch
  /// would swamp it.
  std::vector<double> best_mw;
  /// Runner-up per cell (kInvalidSector = none).
  std::vector<net::SectorId> second;
  std::vector<float> second_rp_dbm;

  GridState() = default;
  explicit GridState(std::size_t cells) { reset(cells); }

  /// Pre-allocates exact capacity for `cells` without initializing. Called
  /// once at context construction so the reset() in every subsequent full
  /// rebuild reuses the same allocations (no churn on large markets).
  void reserve(std::size_t cells) {
    total_mw.reserve(cells);
    best.reserve(cells);
    best_rp_dbm.reserve(cells);
    best_mw.reserve(cells);
    second.reserve(cells);
    second_rp_dbm.reserve(cells);
  }

  void reset(std::size_t cells) {
    total_mw.assign(cells, 0.0);
    best.assign(cells, net::kInvalidSector);
    best_rp_dbm.assign(cells, kNoSignalDbm);
    best_mw.assign(cells, 0.0);
    second.assign(cells, net::kInvalidSector);
    second_rp_dbm.assign(cells, kNoSignalDbm);
  }

  [[nodiscard]] std::size_t cells() const { return total_mw.size(); }
};

}  // namespace magus::model
