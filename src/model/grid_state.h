// Per-grid radio state maintained by the analysis model.
//
// For every grid cell we track the total received power from all active
// sectors plus the two strongest servers. Keeping the runner-up lets power
// *increases* and new-server promotions update in O(1) per cell; only
// demotions (a serving signal dropping) fall back to a scan over sectors.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geo/grid_map.h"
#include "net/sector.h"

namespace magus::model {

inline constexpr float kNoSignalDbm = -std::numeric_limits<float>::infinity();

struct GridState {
  /// Sum of received powers (mW) from all active covering sectors.
  std::vector<double> total_mw;
  /// Strongest server per cell (kInvalidSector = none).
  std::vector<net::SectorId> best;
  std::vector<float> best_rp_dbm;
  /// Runner-up per cell (kInvalidSector = none).
  std::vector<net::SectorId> second;
  std::vector<float> second_rp_dbm;

  GridState() = default;
  explicit GridState(std::size_t cells) { reset(cells); }

  void reset(std::size_t cells) {
    total_mw.assign(cells, 0.0);
    best.assign(cells, net::kInvalidSector);
    best_rp_dbm.assign(cells, kNoSignalDbm);
    second.assign(cells, net::kInvalidSector);
    second_rp_dbm.assign(cells, kNoSignalDbm);
  }

  [[nodiscard]] std::size_t cells() const { return total_mw.size(); }
};

}  // namespace magus::model
