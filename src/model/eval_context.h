// EvalContext: the lightweight, mutable half of the analysis model (the
// per-grid best server, SINR, rates and per-sector loads of Figure 6,
// paper §4.1, Formulas 1-4).
//
// An EvalContext is (GridState + Configuration + footprint handles) over a
// shared, read-only MarketContext. It is cheap to copy — the copy shares
// the market — so a parallel evaluator can keep one clone per worker
// thread and score independent candidates concurrently. All mutations are
// *incremental*: power and tilt changes update only the grids inside the
// changed sector's footprint, which is what makes the search algorithm's
// hundreds of candidate evaluations tractable at market scale. Snapshots
// (cheap vector copies) give the search O(1)-complexity backtracking.
//
// Thread-safety contract: an EvalContext is single-owner — exactly one
// thread may mutate or query it (the lazy sector-load cache makes even
// const queries writes). Sharing happens one level up, at the
// MarketContext, which every clone reads concurrently without locks.
#pragma once

#include <span>
#include <vector>

#include "model/grid_state.h"
#include "model/market_context.h"
#include "net/configuration.h"

namespace magus::model {

class EvalContext {
 public:
  /// `market` must outlive the context. Builds the state for the network's
  /// default configuration.
  explicit EvalContext(const MarketContext* market);

  /// Copies share the market; per-worker clones are built this way.
  EvalContext(const EvalContext&) = default;
  EvalContext& operator=(const EvalContext&) = default;

  [[nodiscard]] const MarketContext& market() const { return *market_; }
  [[nodiscard]] const net::Network& network() const {
    return market_->network();
  }
  [[nodiscard]] const geo::GridMap& grid() const { return market_->grid(); }
  [[nodiscard]] const net::Configuration& configuration() const {
    return config_;
  }
  [[nodiscard]] const ModelOptions& options() const {
    return market_->options();
  }
  [[nodiscard]] std::int32_t cell_count() const {
    return market_->cell_count();
  }
  [[nodiscard]] std::span<const double> ue_density() const {
    return market_->ue_density();
  }

  /// Replaces the whole configuration (full rebuild).
  void set_configuration(const net::Configuration& config);

  /// Re-touches every sector's current-tilt footprint through the market's
  /// provider, re-fetching the current-footprint handles in place. The
  /// fleet MarketStore calls this after a streaming provider released its
  /// heap residency (MappedPathLossDatabase::release_residency): each
  /// touch rematerializes the plane bit-identically at its stable address,
  /// so the grid state and index bindings need no rebuild — only the
  /// touch. A no-op for providers that never release (their cached
  /// references stayed valid throughout).
  void retouch_footprints();

  // ---- Incremental mutations (keep configuration() in sync) ----

  /// Sets sector transmit power (clamped to the sector's range).
  void set_power(net::SectorId sector, double power_dbm);
  /// Takes a sector off-air / restores it.
  void set_active(net::SectorId sector, bool active);
  /// Changes electrical tilt (clamped; swaps the sector's footprint).
  void set_tilt(net::SectorId sector, int tilt_index);

  // ---- Snapshots for search backtracking ----

  struct Snapshot {
    GridState state;
    net::Configuration config;
  };
  [[nodiscard]] Snapshot snapshot() const { return {state_, config_}; }
  /// Restores a snapshot (copy-assign, so one snapshot can back multiple
  /// candidate probes in a search loop). Footprint handles are only
  /// re-fetched for sectors whose tilt actually differs.
  void restore(const Snapshot& snapshot);

  // ---- Per-grid queries ----

  [[nodiscard]] net::SectorId serving_sector(geo::GridIndex g) const {
    return state_.best[static_cast<std::size_t>(g)];
  }
  /// Received power from the serving sector (dBm; -inf when none).
  [[nodiscard]] double best_rp_dbm(geo::GridIndex g) const {
    return state_.best_rp_dbm[static_cast<std::size_t>(g)];
  }
  /// SINR per Formula 2; -inf when the grid has no server.
  [[nodiscard]] double sinr_db(geo::GridIndex g) const;
  [[nodiscard]] lte::Cqi cqi(geo::GridIndex g) const;
  /// True when SINR >= min_service_sinr_db (rate would be positive).
  [[nodiscard]] bool in_service(geo::GridIndex g) const;
  /// r_max(g): rate with the sector to itself (Formula per §4.1).
  [[nodiscard]] double max_rate_bps(geo::GridIndex g) const;
  /// Actual shared rate r(g) = r_max(g) / N (Formula 4), using the
  /// scheduler model. Zero out of service.
  [[nodiscard]] double rate_bps(geo::GridIndex g) const;

  /// Serving map snapshot (kInvalidSector where out of service: a grid
  /// attached to a server below SINRmin counts as unserved, like the
  /// paper's r_max = 0 rule).
  [[nodiscard]] std::vector<net::SectorId> service_map() const;

  /// N(s): UEs attached per sector (in-service grids only; Formula 3).
  /// Computed lazily and cached until the next mutation.
  [[nodiscard]] const std::vector<double>& sector_loads() const;

  /// Low-level state access for the evaluator's fused utility pass.
  [[nodiscard]] const GridState& state() const { return state_; }
  [[nodiscard]] double noise_mw() const { return market_->noise_mw(); }

  // ---- Coverage-index fast path ----

  /// Binds (or unbinds) the market's grid-major coverage index. When
  /// bound, recompute_top2 scans the cell's CSR cover span instead of
  /// probing every sector, and full rebuilds run as one grid-major sweep;
  /// results are bit-identical either way. The market's index must be
  /// built first (MarketContext::ensure_coverage_index); sectors sitting
  /// at tilts outside the indexed planes fall back to direct footprint
  /// probes automatically. Clones inherit the binding.
  void set_use_coverage_index(bool enabled);
  [[nodiscard]] bool use_coverage_index() const {
    return index_ != nullptr;
  }

  // ---- Candidate probing (Algorithm 1 line 4) ----

  /// Would changing sector b's power by delta_db improve grid g's *actual*
  /// rate r(g) (Formula 4)? The new rate is approximated with the current
  /// per-sector loads (the true loads after the change are only known once
  /// it is applied; the evaluation step decides for real). O(1); does not
  /// mutate the context. Accounts for b becoming/ceasing to be the best
  /// server of g — including takeovers that merely move g's UEs to a less
  /// loaded sector, which is how tuning relieves post-outage congestion.
  [[nodiscard]] bool power_delta_improves_rate(net::SectorId b,
                                               double delta_db,
                                               geo::GridIndex g) const;

  /// Same question for a tilt change of sector b to absolute index `tilt`.
  /// O(1) per call after the footprint for `tilt` is materialized.
  [[nodiscard]] bool tilt_improves_rate(net::SectorId b, int tilt,
                                        geo::GridIndex g);

 protected:
  void invalidate_loads() { loads_valid_ = false; }

 private:
  void rebuild();
  /// Grid-major CSR rebuild (requires every active sector on-index).
  void rebuild_index_sweep();
  /// Recounts active sectors whose tilt has no index plane; they force
  /// recompute_top2 onto the footprint-probe fallback and full rebuilds
  /// onto the legacy sector-major path.
  void sync_index_bookkeeping();
  /// Approximate post-change actual rate of grid g when sector `changed`
  /// would be received at `changed_rp` and the cell's total received power
  /// becomes `new_total_mw` (shared probe core for power/tilt candidates).
  [[nodiscard]] double probe_rate_bps(net::SectorId changed, double changed_rp,
                                      double new_total_mw,
                                      geo::GridIndex g) const;
  void add_contribution(net::SectorId sector,
                        const pathloss::SectorFootprint& footprint,
                        double power_dbm);
  void remove_contribution(net::SectorId sector,
                           const pathloss::SectorFootprint& footprint,
                           double power_dbm);
  /// Re-ranks the top-2 servers of one grid by scanning active sectors.
  void recompute_top2(geo::GridIndex g);
  /// Vectorized recompute_top2 over a batch of cells (K lanes at a time);
  /// requires the pure index fast path (index_ bound, off_index_active_
  /// == 0). Bit-identical to calling recompute_top2 per cell.
  void recompute_top2_batch(const std::vector<geo::GridIndex>& cells);
  /// Offers (sector, rp) as a candidate server for g; O(1) promotion.
  /// `mw` is the sector's exact mW contribution (the same 10^(P/10) *
  /// linear product added to total_mw) — stored as best_mw if the
  /// candidate wins so interference subtraction cancels exactly.
  void offer_candidate(geo::GridIndex g, net::SectorId sector, float rp_dbm,
                       double mw);
  [[nodiscard]] double sinr_from(double rp_dbm, double rp_mw,
                                 double total_mw) const;
  [[nodiscard]] const pathloss::SectorFootprint& footprint_of(
      net::SectorId sector) const {
    return *current_footprint_[static_cast<std::size_t>(sector)];
  }

  const MarketContext* market_;
  net::Configuration config_;
  GridState state_;
  /// Footprint in effect per sector (at its current tilt); points into the
  /// provider's caches, which stay valid for the provider's lifetime.
  std::vector<const pathloss::SectorFootprint*> current_footprint_;
  /// The market's shared coverage index, or nullptr when the legacy scan
  /// paths are in effect (see set_use_coverage_index).
  const CoverageIndex* index_ = nullptr;
  /// Active sectors whose current tilt has no index plane (0 on the pure
  /// fast path; maintained by sync_index_bookkeeping).
  int off_index_active_ = 0;
  /// Per-sector mirrors so the span scans touch flat arrays instead of
  /// gathering from Configuration + index lookups per entry:
  /// active_plane_[s] is the dB gain plane of s's current tilt when s is
  /// active and on-index, nullptr otherwise (one branch folds the active
  /// check, the tilt lookup and the off-index case); active_plane_mw_[s]
  /// is its linear twin; sector_power_[s] mirrors config_[s].power_dbm.
  /// power_cap_ bounds every active on-index sector's power
  /// (conservatively stale-high after a power decrease) —
  /// recompute_top2's ranked early exit relies on it. All kept in sync by
  /// sync_index_bookkeeping + the set_power fast update.
  std::vector<const float*> active_plane_;
  std::vector<const float*> active_plane_mw_;
  std::vector<double> sector_power_;
  /// dbm_to_mw(sector_power_[s]) cached per sector so the hot sweeps
  /// multiply instead of calling pow. Refreshed lazily by
  /// sync_index_bookkeeping (only for sectors whose mirrored power
  /// changed) and by set_power; dbm_to_mw is deterministic, so the cached
  /// product is bit-identical to recomputing it.
  std::vector<double> sector_plin_;
  /// Slab offset of s's active gain/linear plane
  /// (CoverageIndex::plane_slab_offset), or -1 when active_plane_[s] is
  /// nullptr — the int32 the SIMD sweeps gather instead of the pointer.
  std::vector<std::int32_t> active_plane_off_;
  double power_cap_ = 0.0;
  /// Reusable demoted-cell list for remove_contribution (avoids a heap
  /// allocation per incremental mutation).
  std::vector<geo::GridIndex> recompute_scratch_;

  mutable std::vector<double> sector_loads_;
  mutable bool loads_valid_ = false;
};

}  // namespace magus::model
