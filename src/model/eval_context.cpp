#include "model/eval_context.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lte/amc.h"
#include "lte/bandwidth.h"
#include "model/coverage_index.h"
#include "model/kernels.h"
#include "model/simd_sweeps.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/simd.h"
#include "util/units.h"

namespace magus::model {

namespace {
/// Strict server ordering with a deterministic tie-break: stronger signal
/// wins; at exactly equal received power the lower sector id wins, so the
/// incremental updates and a full rebuild always agree (co-sited sectors
/// can tie exactly when both land on the same pattern-loss cap).
[[nodiscard]] bool beats(float rp_a, net::SectorId a, float rp_b,
                         net::SectorId b) {
  if (rp_a != rp_b) return rp_a > rp_b;
  return a < b;
}
}  // namespace

EvalContext::EvalContext(const MarketContext* market) : market_(market) {
  if (market_ == nullptr) {
    throw std::invalid_argument("EvalContext: market must not be null");
  }
  // Exact-capacity reservation up front: every later reset() in a full
  // rebuild then reuses the same allocations.
  state_.reserve(static_cast<std::size_t>(market_->cell_count()));
  obs::MetricsRegistry::global()
      .gauge("model.kernel.simd_lanes")
      .set(static_cast<double>(util::simd::kWidth));
  config_ = network().default_configuration();
  rebuild();
}

void EvalContext::set_use_coverage_index(bool enabled) {
  if (!enabled) {
    index_ = nullptr;
    off_index_active_ = 0;
    return;
  }
  index_ = market_->coverage_index();
  if (index_ == nullptr) {
    throw std::logic_error(
        "EvalContext::set_use_coverage_index: build the market's coverage "
        "index first (MarketContext::ensure_coverage_index)");
  }
  sync_index_bookkeeping();
}

void EvalContext::sync_index_bookkeeping() {
  if (index_ == nullptr) {
    off_index_active_ = 0;
    return;
  }
  // Refresh the flat per-sector mirrors in the same pass. O(sectors) is
  // noise next to the O(cells) state copies on every code path that calls
  // this, and it keeps the span scans free of Configuration/index gathers.
  const std::size_t sector_count = network().sector_count();
  active_plane_.assign(sector_count, nullptr);
  active_plane_mw_.assign(sector_count, nullptr);
  active_plane_off_.assign(sector_count, -1);
  if (sector_power_.size() != sector_count) {
    // NaN sentinel compares unequal to every real power, forcing the first
    // plin fill below.
    sector_power_.assign(sector_count,
                         std::numeric_limits<double>::quiet_NaN());
    sector_plin_.assign(sector_count, 0.0);
  }
  double cap = -std::numeric_limits<double>::infinity();
  int off = 0;
  for (const auto& sector : network().sectors()) {
    const auto& setting = config_[sector.id];
    const auto s = static_cast<std::size_t>(sector.id);
    if (sector_power_[s] != setting.power_dbm) {
      // Lazy pow: restore()/set_tilt() resync every mutation, but a
      // sector's power rarely changes between syncs.
      sector_power_[s] = setting.power_dbm;
      sector_plin_[s] = util::dbm_to_mw(setting.power_dbm);
    }
    if (!setting.active) continue;
    const float* gains = index_->plane_gains(sector.id, setting.tilt);
    if (gains == nullptr) {
      ++off;
    } else {
      active_plane_[s] = gains;
      active_plane_mw_[s] = index_->plane_linear(sector.id, setting.tilt);
      active_plane_off_[s] =
          index_->plane_slab_offset(sector.id, setting.tilt);
      cap = std::max(cap, setting.power_dbm);
    }
  }
  power_cap_ = cap;
  off_index_active_ = off;
}

void EvalContext::set_configuration(const net::Configuration& config) {
  if (config.size() != network().sector_count()) {
    throw std::invalid_argument(
        "EvalContext::set_configuration: size mismatch");
  }
  config_ = config;
  rebuild();
}

void EvalContext::rebuild() {
  // Full rebuilds are the expensive model operation (every sector's
  // footprint re-applied); incremental set_power/set_tilt paths stay
  // uninstrumented — they are the per-candidate hot path.
  MAGUS_TRACE_SPAN("model.rebuild", "model");
  static obs::Counter& rebuilds =
      obs::MetricsRegistry::global().counter("model.rebuilds");
  rebuilds.add(1);
  state_.reset(static_cast<std::size_t>(cell_count()));
  current_footprint_.assign(network().sector_count(), nullptr);
  for (const auto& sector : network().sectors()) {
    current_footprint_[static_cast<std::size_t>(sector.id)] =
        &market_->provider().footprint(sector.id, config_[sector.id].tilt);
  }
  // Re-fetch the market's index: a configuration reset is the safe point
  // to pick up an index the market rebuilt since this context bound it.
  if (index_ != nullptr) index_ = market_->coverage_index();
  sync_index_bookkeeping();
  if (index_ != nullptr && off_index_active_ == 0) {
    static obs::Counter& sweeps =
        obs::MetricsRegistry::global().counter("model.rebuild.index_sweeps");
    sweeps.add(1);
    rebuild_index_sweep();
  } else {
    if (index_ != nullptr) {
      // Index bound but an active sector sits at an unindexed tilt:
      // sector-major fallback. Tracked so perf work can spot a market
      // whose searches keep leaving the indexed tilt planes.
      static obs::Counter& legacy =
          obs::MetricsRegistry::global().counter("model.rebuild.legacy");
      legacy.add(1);
    }
    for (const auto& sector : network().sectors()) {
      const auto& setting = config_[sector.id];
      if (setting.active) {
        add_contribution(sector.id, footprint_of(sector.id),
                         setting.power_dbm);
      }
    }
  }
  invalidate_loads();
}

void EvalContext::rebuild_index_sweep() {
  // Grid-major CSR sweep, vectorized across cells: lane j accumulates cell
  // g+j's total and top-2 from its contiguous cover span via masked
  // gathers. Entries come out in ascending sector-id order — the same
  // per-cell visit order as the sector-major add_contribution loop — and
  // each lane runs exactly the scalar per-cell operation sequence, so both
  // the float top-2 stream and the double total_mw accumulation are
  // bit-identical to the legacy path at every lane width (DESIGN.md §15).
  // rebuild() ran sync_index_bookkeeping just before dispatching here, so
  // the per-sector mirrors (power, 10^(P/10), slab offsets) are current.
  namespace vx = util::simd;
  constexpr std::int32_t K = vx::kWidth;
  const auto* row_start =
      reinterpret_cast<const std::int32_t*>(index_->row_starts());
  const std::int32_t* entry_sector = index_->entry_sectors();
  const float* slab_gain = index_->slab_gains();
  const float* slab_lin = index_->slab_linear();
  const std::int32_t* poff = active_plane_off_.data();
  const double* power = sector_power_.data();
  const double* plin = sector_plin_.data();
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const std::int32_t cells = cell_count();
  const sweeps::StateView v = sweeps::view_of(state_);
  geo::GridIndex g = 0;
  for (; g + K <= cells; g += K) {
    const vx::vint vfirst = vx::loadu_i(row_start + g);
    const vx::vint vnext = vx::loadu_i(row_start + g + 1);
    const vx::vint vsize = vx::sub_i(vnext, vfirst);
    std::int32_t max_size = 0;
    for (std::int32_t j = 0; j < K; ++j) {
      max_size = std::max(max_size, vx::extract_i(vsize, j));
    }
    vx::vdouble total = vx::set1_d(0.0);
    vx::vint bid = vx::set1_i(net::kInvalidSector);
    vx::vfloat brp = vx::set1_f(kNoSignalDbm);
    vx::vdouble bmw = vx::set1_d(0.0);
    vx::vint sid = vx::set1_i(net::kInvalidSector);
    vx::vfloat srp = vx::set1_f(kNoSignalDbm);
    for (std::int32_t k = 0; k < max_size; ++k) {
      const vx::fmask in_row = vx::cmp_gt_i(vsize, vx::set1_i(k));
      const vx::vint e = vx::add_i(vfirst, vx::set1_i(k));
      const vx::vint s = vx::gather_i(entry_sector, e, in_row, 0);
      const vx::vint off = vx::gather_i(poff, s, in_row, -1);
      // "has" folds row membership, sector activity and tilt-plane
      // presence into one mask (the scalar gains == nullptr branch); NaN
      // gains (covered at another indexed tilt only) fall out
      // arithmetically below, like the scalar isnan continue.
      const vx::fmask has =
          vx::m_and(in_row, vx::cmp_gt_i(off, vx::set1_i(-1)));
      const vx::vint sl = vx::add_i(off, e);
      const vx::vfloat gain = vx::gather_f(slab_gain, sl, has, qnan);
      const vx::vdouble pw = vx::gather_d(power, s, vx::widen(has), 0.0);
      const vx::vfloat rp =
          vx::to_float(vx::add_d(pw, vx::to_double(gain)));
      // Skipped lanes contribute exactly +0.0 mW (linear gathers fill 0,
      // and the slab stores 0 where the dB plane is NaN) and a NaN rp
      // loses every ordered compare, so the accumulation and the top-2
      // blends run maskless.
      const vx::vdouble mw =
          vx::mul_d(vx::gather_d(plin, s, vx::widen(has), 0.0),
                    vx::to_double(vx::gather_f(slab_lin, sl, has, 0.0f)));
      total = vx::add_d(total, mw);
      const vx::fmask bb =
          vx::m_or(vx::cmp_gt_f(rp, brp),
                   vx::m_and(vx::cmp_eq_f(rp, brp), vx::cmp_gt_i(bid, s)));
      const vx::fmask bs = vx::m_and(
          vx::m_not(bb),
          vx::m_or(vx::cmp_gt_f(rp, srp),
                   vx::m_and(vx::cmp_eq_f(rp, srp), vx::cmp_gt_i(sid, s))));
      sid = vx::blend_i(bb, bid, vx::blend_i(bs, s, sid));
      srp = vx::blend_f(bb, brp, vx::blend_f(bs, rp, srp));
      bid = vx::blend_i(bb, s, bid);
      brp = vx::blend_f(bb, rp, brp);
      bmw = vx::blend_d(vx::widen(bb), mw, bmw);
    }
    const auto i = static_cast<std::size_t>(g);
    vx::storeu_d(v.total_mw + i, total);
    vx::storeu_i(v.best + i, bid);
    vx::storeu_f(v.best_rp_dbm + i, brp);
    vx::storeu_d(v.best_mw + i, bmw);
    vx::storeu_i(v.second + i, sid);
    vx::storeu_f(v.second_rp_dbm + i, srp);
  }
  // Scalar tail: the legacy per-cell loop over the remaining < K cells.
  const float* const* plane = active_plane_.data();
  const float* const* plane_mw = active_plane_mw_.data();
  for (; g < cells; ++g) {
    const CoverageIndex::Row row = index_->row(g);
    double total = 0.0;
    net::SectorId best = net::kInvalidSector;
    float best_rp = kNoSignalDbm;
    double best_mw = 0.0;
    net::SectorId second = net::kInvalidSector;
    float second_rp = kNoSignalDbm;
    for (std::uint32_t k = 0; k < row.size; ++k) {
      const net::SectorId s = row.sectors[k];
      const float* gains = plane[static_cast<std::size_t>(s)];
      if (gains == nullptr) continue;  // inactive
      const float gain = gains[row.first + k];
      if (std::isnan(gain)) continue;  // uncovered at the current tilt
      const auto rp =
          static_cast<float>(power[static_cast<std::size_t>(s)] + gain);
      const double mw = plin[static_cast<std::size_t>(s)] *
                        static_cast<double>(
                            plane_mw[static_cast<std::size_t>(s)]
                                    [row.first + k]);
      total += mw;
      if (beats(rp, s, best_rp, best)) {
        second = best;
        second_rp = best_rp;
        best = s;
        best_rp = rp;
        best_mw = mw;
      } else if (beats(rp, s, second_rp, second)) {
        second = s;
        second_rp = rp;
      }
    }
    const auto i = static_cast<std::size_t>(g);
    state_.total_mw[i] = total;
    state_.best[i] = best;
    state_.best_rp_dbm[i] = best_rp;
    state_.best_mw[i] = best_mw;
    state_.second[i] = second;
    state_.second_rp_dbm[i] = second_rp;
  }
}

void EvalContext::offer_candidate(geo::GridIndex g, net::SectorId sector,
                                  float rp_dbm, double mw) {
  const auto i = static_cast<std::size_t>(g);
  if (beats(rp_dbm, sector, state_.best_rp_dbm[i], state_.best[i])) {
    state_.second[i] = state_.best[i];
    state_.second_rp_dbm[i] = state_.best_rp_dbm[i];
    state_.best[i] = sector;
    state_.best_rp_dbm[i] = rp_dbm;
    state_.best_mw[i] = mw;
  } else if (beats(rp_dbm, sector, state_.second_rp_dbm[i],
                   state_.second[i])) {
    state_.second[i] = sector;
    state_.second_rp_dbm[i] = rp_dbm;
  }
}

void EvalContext::add_contribution(
    net::SectorId sector, const pathloss::SectorFootprint& footprint,
    double power_dbm) {
  // One hoisted dBm->mW conversion per sweep: cell contribution in mW is
  // 10^(P/10) * 10^(gain/10), with the second factor precomputed in the
  // footprint's linear window. remove_contribution and the index sweep
  // form the identical product, so contributions cancel exactly. The
  // per-cell work runs in the SIMD row sweep — bit-identical to the old
  // for_each_covered_linear loop (see simd_sweeps.h).
  const double p_lin = util::dbm_to_mw(power_dbm);
  const sweeps::StateView view = sweeps::view_of(state_);
  static obs::Counter& cells_swept =
      obs::MetricsRegistry::global().counter("model.kernel.add_cells");
  std::size_t swept = 0;
  for (std::int32_t r = 0; r < footprint.window_rows(); ++r) {
    const std::span<const float> line = footprint.window_row(r);
    const std::span<const float> lin = footprint.linear_row(r);
    sweeps::add_row(view,
                    static_cast<std::size_t>(footprint.row_first_cell(r)),
                    line.data(), lin.data(),
                    static_cast<std::int32_t>(line.size()), sector,
                    power_dbm, p_lin);
    swept += line.size();
  }
  cells_swept.add(swept);
  invalidate_loads();
}

void EvalContext::remove_contribution(
    net::SectorId sector, const pathloss::SectorFootprint& footprint,
    double power_dbm) {
  const double p_lin = util::dbm_to_mw(power_dbm);
  const sweeps::StateView view = sweeps::view_of(state_);
  static obs::Counter& cells_swept =
      obs::MetricsRegistry::global().counter("model.kernel.remove_cells");
  std::vector<geo::GridIndex>& demoted = recompute_scratch_;
  demoted.clear();
  std::size_t swept = 0;
  for (std::int32_t r = 0; r < footprint.window_rows(); ++r) {
    const std::span<const float> line = footprint.window_row(r);
    const std::span<const float> lin = footprint.linear_row(r);
    const geo::GridIndex first = footprint.row_first_cell(r);
    sweeps::remove_row(view, static_cast<std::size_t>(first), line.data(),
                       lin.data(), static_cast<std::int32_t>(line.size()),
                       sector, p_lin, first, demoted);
    swept += line.size();
  }
  cells_swept.add(swept);
  // Re-rank the demoted cells after the sweep. Deferring is
  // order-equivalent to the interleaved scalar loop: recompute_top2 reads
  // only immutable index/config data plus the cell's own state and writes
  // only that cell's top-2 fields, and the sweep visits each cell once.
  static obs::Counter& recomputes =
      obs::MetricsRegistry::global().counter("model.kernel.recompute_cells");
  recomputes.add(demoted.size());
  if (index_ != nullptr && off_index_active_ == 0) {
    recompute_top2_batch(demoted);
  } else {
    for (const geo::GridIndex g : demoted) recompute_top2(g);
  }
  invalidate_loads();
}

void EvalContext::recompute_top2(geo::GridIndex g) {
  // Top-2 selection under beats() is a strict total order, so the result
  // is independent of enumeration order: the CSR span scan, its off-index
  // fallback pass, and the legacy all-sectors probe all produce the same
  // (best, second) bit-for-bit.
  // kFootprintCol marks a winner offered from a footprint probe (fallback
  // or legacy path) rather than an index entry; the mW factor then comes
  // from the footprint's linear window instead of the plane array.
  constexpr std::uint32_t kFootprintCol =
      std::numeric_limits<std::uint32_t>::max();
  net::SectorId best = net::kInvalidSector;
  float best_rp = kNoSignalDbm;
  std::uint32_t best_col = kFootprintCol;
  net::SectorId second = net::kInvalidSector;
  float second_rp = kNoSignalDbm;
  const auto offer = [&](net::SectorId s, float rp, std::uint32_t col) {
    if (beats(rp, s, best_rp, best)) {
      second = best;
      second_rp = best_rp;
      best = s;
      best_rp = rp;
      best_col = col;
    } else if (beats(rp, s, second_rp, second)) {
      second = s;
      second_rp = rp;
    }
  };
  if (index_ != nullptr) {
    // Ranked scan with early exit: entries arrive in descending gain-bound
    // order, and power_cap_ + bounds[k] majorizes every received power
    // from entry k on. Once that bound falls strictly below the current
    // runner-up nothing later can enter the top-2, so the scan stops —
    // typically after a handful of entries. float rounding is monotone, so
    // comparing the float-rounded bound keeps the exit exact: any later
    // rp rounds to at most the rounded bound, which is < second_rp.
    // active_plane_[s] == nullptr folds "inactive" and "off-index" into
    // one branch; the fallback pass below covers the off-index sectors.
    const CoverageIndex::RankedRow row = index_->ranked_row(g);
    const float* const* plane = active_plane_.data();
    const double* power = sector_power_.data();
    const double cap = power_cap_;
    for (std::uint32_t k = 0; k < row.size; ++k) {
      if (static_cast<float>(cap + row.bounds[k]) < second_rp) break;
      const net::SectorId s = row.sectors[k];
      const float* gains = plane[static_cast<std::size_t>(s)];
      if (gains == nullptr) continue;
      const float gain = gains[row.cols[k]];
      if (std::isnan(gain)) continue;  // uncovered at the current tilt
      offer(s, static_cast<float>(power[static_cast<std::size_t>(s)] + gain),
            row.cols[k]);
    }
    if (off_index_active_ > 0) {
      // Sectors at unindexed tilts are invisible to the span scan; probe
      // their footprints directly. The counter may briefly over-count
      // mid-mutation (harmless: the loop re-checks every predicate), but
      // it never under-counts while recompute can run.
      for (const auto& sector : network().sectors()) {
        const auto& setting = config_[sector.id];
        if (!setting.active ||
            index_->sector_tilt_indexed(sector.id, setting.tilt)) {
          continue;
        }
        const auto& fp = footprint_of(sector.id);
        if (!fp.covers(g)) continue;
        offer(sector.id,
              static_cast<float>(setting.power_dbm + fp.gain_db(g)),
              kFootprintCol);
      }
    }
  } else {
    for (const auto& sector : network().sectors()) {
      const auto& setting = config_[sector.id];
      if (!setting.active) continue;
      const auto& fp = footprint_of(sector.id);
      if (!fp.covers(g)) continue;
      offer(sector.id,
            static_cast<float>(setting.power_dbm + fp.gain_db(g)),
            kFootprintCol);
    }
  }
  const auto i = static_cast<std::size_t>(g);
  // Re-form the winner's exact contribution: dbm_to_mw is deterministic
  // and the linear factor is the same stored float the accumulation used,
  // so this product is bit-identical to what total_mw absorbed.
  double best_mw = 0.0;
  if (best != net::kInvalidSector) {
    const auto b = static_cast<std::size_t>(best);
    // sector_plin_ caches exactly dbm_to_mw(sector_power_[b]), so reading
    // the mirror instead of re-running pow keeps the product bit-equal.
    const double p_lin = index_ != nullptr
                             ? sector_plin_[b]
                             : util::dbm_to_mw(config_[best].power_dbm);
    const double lin =
        best_col != kFootprintCol
            ? static_cast<double>(
                  active_plane_mw_[b][best_col])
            : static_cast<double>(footprint_of(best).linear_gain(g));
    best_mw = p_lin * lin;
  }
  state_.best[i] = best;
  state_.best_rp_dbm[i] = best_rp;
  state_.best_mw[i] = best_mw;
  state_.second[i] = second;
  state_.second_rp_dbm[i] = second_rp;
}

void EvalContext::recompute_top2_batch(
    const std::vector<geo::GridIndex>& cells) {
  // Vector twin of recompute_top2's ranked scan: lane j re-ranks
  // cells[idx + j]. The early exit stays exact per lane — bounds descend
  // within a row and the runner-up only strengthens, so
  // float(cap + bound) < second_rp is monotone in k and the live mask
  // recomputed each step never readmits an exited lane. Callers guarantee
  // the pure index fast path (index_ bound, off_index_active_ == 0), so
  // the footprint fallback pass never applies here.
  namespace vx = util::simd;
  constexpr std::int32_t K = vx::kWidth;
  const auto m = static_cast<std::int32_t>(cells.size());
  const auto* row_start =
      reinterpret_cast<const std::int32_t*>(index_->row_starts());
  const std::int32_t* rsec = index_->ranked_sectors();
  const auto* rcol =
      reinterpret_cast<const std::int32_t*>(index_->ranked_cols());
  const float* rbound = index_->ranked_bounds();
  const float* slab_gain = index_->slab_gains();
  const float* slab_lin = index_->slab_linear();
  const std::int32_t* poff = active_plane_off_.data();
  const double* power = sector_power_.data();
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const vx::vdouble vcap = vx::set1_d(power_cap_);
  std::int32_t idx = 0;
  for (; idx + K <= m; idx += K) {
    const vx::vint vg = vx::loadu_i(cells.data() + idx);
    const vx::fmask all = vx::cmp_eq_i(vg, vg);
    const vx::vint vfirst = vx::gather_i(row_start, vg, all, 0);
    const vx::vint vnext =
        vx::gather_i(row_start, vx::add_i(vg, vx::set1_i(1)), all, 0);
    const vx::vint vsize = vx::sub_i(vnext, vfirst);
    vx::vint bid = vx::set1_i(net::kInvalidSector);
    vx::vfloat brp = vx::set1_f(kNoSignalDbm);
    vx::vfloat blin = vx::set1_f(0.0f);
    vx::vint sid = vx::set1_i(net::kInvalidSector);
    vx::vfloat srp = vx::set1_f(kNoSignalDbm);
    for (std::int32_t k = 0;; ++k) {
      const vx::fmask in_row = vx::cmp_gt_i(vsize, vx::set1_i(k));
      if (!vx::any(in_row)) break;
      const vx::vint e = vx::add_i(vfirst, vx::set1_i(k));
      const vx::vfloat bound = vx::gather_f(rbound, e, in_row, kNoSignalDbm);
      const vx::vfloat capb =
          vx::to_float(vx::add_d(vcap, vx::to_double(bound)));
      const vx::fmask live =
          vx::m_and(in_row, vx::m_not(vx::cmp_lt_f(capb, srp)));
      if (!vx::any(live)) break;
      const vx::vint s = vx::gather_i(rsec, e, live, 0);
      const vx::vint col = vx::gather_i(rcol, e, live, 0);
      const vx::vint off = vx::gather_i(poff, s, live, -1);
      const vx::fmask has =
          vx::m_and(live, vx::cmp_gt_i(off, vx::set1_i(-1)));
      const vx::vint sl = vx::add_i(off, col);
      const vx::vfloat gain = vx::gather_f(slab_gain, sl, has, qnan);
      const vx::vdouble pw = vx::gather_d(power, s, vx::widen(has), 0.0);
      const vx::vfloat rp =
          vx::to_float(vx::add_d(pw, vx::to_double(gain)));
      const vx::vfloat linf = vx::gather_f(slab_lin, sl, has, 0.0f);
      const vx::fmask bb =
          vx::m_or(vx::cmp_gt_f(rp, brp),
                   vx::m_and(vx::cmp_eq_f(rp, brp), vx::cmp_gt_i(bid, s)));
      const vx::fmask bs = vx::m_and(
          vx::m_not(bb),
          vx::m_or(vx::cmp_gt_f(rp, srp),
                   vx::m_and(vx::cmp_eq_f(rp, srp), vx::cmp_gt_i(sid, s))));
      sid = vx::blend_i(bb, bid, vx::blend_i(bs, s, sid));
      srp = vx::blend_f(bb, brp, vx::blend_f(bs, rp, srp));
      bid = vx::blend_i(bb, s, bid);
      brp = vx::blend_f(bb, rp, brp);
      blin = vx::blend_f(bb, linf, blin);
    }
    for (std::int32_t j = 0; j < K; ++j) {
      const auto i = static_cast<std::size_t>(
          cells[static_cast<std::size_t>(idx + j)]);
      const net::SectorId b = vx::extract_i(bid, j);
      // Re-form the winner's exact contribution from the plin mirror and
      // the same slab float the accumulation used (see recompute_top2).
      double best_mw = 0.0;
      if (b != net::kInvalidSector) {
        best_mw = sector_plin_[static_cast<std::size_t>(b)] *
                  static_cast<double>(vx::extract_f(blin, j));
      }
      state_.best[i] = b;
      state_.best_rp_dbm[i] = vx::extract_f(brp, j);
      state_.best_mw[i] = best_mw;
      state_.second[i] = vx::extract_i(sid, j);
      state_.second_rp_dbm[i] = vx::extract_f(srp, j);
    }
  }
  for (; idx < m; ++idx) {
    recompute_top2(cells[static_cast<std::size_t>(idx)]);
  }
}

void EvalContext::set_power(net::SectorId sector, double power_dbm) {
  const net::Sector& meta = network().sector(sector);
  const double clamped = meta.clamp_power(power_dbm);
  auto& setting = config_[sector];
  const double old_power = setting.power_dbm;
  if (clamped == old_power) return;
  setting.power_dbm = clamped;
  if (index_ != nullptr) {
    // Keep the power mirrors current before the sweep: recompute_top2
    // reads them for the changed sector's new received power. The cap only
    // ratchets up here — after a decrease it is conservatively stale-high
    // (fewer early exits, same results) until the next full sync.
    sector_power_[static_cast<std::size_t>(sector)] = clamped;
    sector_plin_[static_cast<std::size_t>(sector)] = util::dbm_to_mw(clamped);
    power_cap_ = std::max(power_cap_, clamped);
  }
  if (!setting.active) return;  // config changed; no radio contribution

  const auto& fp = footprint_of(sector);
  const bool decreasing = clamped < old_power;
  const double old_plin = util::dbm_to_mw(old_power);
  const double new_plin = util::dbm_to_mw(clamped);
  // Both received powers are formed as float(power + gain) — the exact
  // expression rebuild()/add_contribution use — so the stored per-grid rp
  // values stay bit-identical to a from-scratch rebuild at the new
  // configuration (the equivalence tests rely on this). The mW delta uses
  // the same hoisted 10^(P/10) * linear products as add/remove, so the
  // old contribution cancels exactly.
  fp.for_each_covered_linear([&](geo::GridIndex g, float gain, float linear) {
    const auto i = static_cast<std::size_t>(g);
    const auto new_rp = static_cast<float>(clamped + gain);
    const auto lin = static_cast<double>(linear);
    const double new_mw = new_plin * lin;
    state_.total_mw[i] =
        std::max(0.0, state_.total_mw[i] + new_mw - old_plin * lin);
    if (state_.best[i] == sector) {
      state_.best_rp_dbm[i] = new_rp;
      state_.best_mw[i] = new_mw;
      if (decreasing && beats(state_.second_rp_dbm[i], state_.second[i],
                              new_rp, sector)) {
        recompute_top2(g);
      }
    } else if (state_.second[i] == sector) {
      state_.second_rp_dbm[i] = new_rp;
      if (decreasing) {
        // A third sector may now outrank the runner-up.
        recompute_top2(g);
      } else if (beats(new_rp, sector, state_.best_rp_dbm[i],
                       state_.best[i])) {
        std::swap(state_.best[i], state_.second[i]);
        std::swap(state_.best_rp_dbm[i], state_.second_rp_dbm[i]);
        state_.best_mw[i] = new_mw;
      }
    } else {
      offer_candidate(g, sector, new_rp, new_mw);
    }
  });
  invalidate_loads();
}

void EvalContext::set_active(net::SectorId sector, bool active) {
  auto& setting = config_[sector];
  if (setting.active == active) return;
  setting.active = active;
  // Mirrors must reflect the flip before the sweep: remove_contribution's
  // recompute_top2 calls read active_plane_ to skip the demoted sector.
  sync_index_bookkeeping();
  const auto& fp = footprint_of(sector);
  if (active) {
    add_contribution(sector, fp, setting.power_dbm);
  } else {
    remove_contribution(sector, fp, setting.power_dbm);
  }
}

void EvalContext::set_tilt(net::SectorId sector, int tilt_index) {
  const net::Sector& meta = network().sector(sector);
  const radio::TiltIndex clamped = meta.clamp_tilt(tilt_index);
  auto& setting = config_[sector];
  if (clamped == setting.tilt) return;
  const pathloss::SectorFootprint& old_fp = footprint_of(sector);
  const pathloss::SectorFootprint& new_fp =
      market_->provider().footprint(sector, clamped);
  // Mark the sector inactive while its old contribution is removed:
  // recompute_top2 must not re-offer the stale footprint.
  const bool was_active = setting.active;
  if (was_active) {
    setting.active = false;
    sync_index_bookkeeping();  // hide the sector from recompute's span scan
    remove_contribution(sector, old_fp, setting.power_dbm);
  }
  setting.tilt = clamped;
  current_footprint_[static_cast<std::size_t>(sector)] = &new_fp;
  if (was_active) {
    setting.active = true;
    add_contribution(sector, new_fp, setting.power_dbm);
  }
  sync_index_bookkeeping();
}

void EvalContext::retouch_footprints() {
  for (const auto& sector : network().sectors()) {
    current_footprint_[static_cast<std::size_t>(sector.id)] =
        &market_->provider().footprint(sector.id, config_[sector.id].tilt);
  }
}

void EvalContext::restore(const Snapshot& snapshot) {
  state_ = snapshot.state;
  // Footprint pointers depend on per-sector tilt; refresh only the sectors
  // whose tilt actually changed (provider caches keep previously returned
  // references valid). Skipping the unchanged ones keeps the provider's
  // lock off the restore hot path entirely for power-only searches.
  for (const auto& sector : network().sectors()) {
    const auto i = static_cast<std::size_t>(sector.id);
    if (config_[sector.id].tilt != snapshot.config[sector.id].tilt) {
      current_footprint_[i] = &market_->provider().footprint(
          sector.id, snapshot.config[sector.id].tilt);
    }
  }
  config_ = snapshot.config;
  sync_index_bookkeeping();
  invalidate_loads();
}

double EvalContext::sinr_from(double rp_dbm, double rp_mw,
                              double total_mw) const {
  const double interference_mw = std::max(0.0, total_mw - rp_mw);
  return rp_dbm - util::mw_to_dbm(market_->noise_mw() + interference_mw);
}

double EvalContext::sinr_db(geo::GridIndex g) const {
  const auto i = static_cast<std::size_t>(g);
  const double rp_dbm = state_.best_rp_dbm[i];
  if (state_.best[i] == net::kInvalidSector) return rp_dbm;  // -inf
  // best_mw is the exact product accumulated into total_mw, so the
  // interference subtraction inside sinr_from cancels exactly — no
  // per-call pow and no float-rounding residue near the noise floor.
  return sinr_from(rp_dbm, state_.best_mw[i], state_.total_mw[i]);
}

lte::Cqi EvalContext::cqi(geo::GridIndex g) const {
  const double sinr = sinr_db(g);
  if (sinr < options().min_service_sinr_db) return 0;
  return lte::sinr_to_cqi(sinr);
}

bool EvalContext::in_service(geo::GridIndex g) const { return cqi(g) > 0; }

double EvalContext::max_rate_bps(geo::GridIndex g) const {
  return lte::max_rate_bps_for_cqi(cqi(g), network().carrier().bandwidth);
}

double EvalContext::rate_bps(geo::GridIndex g) const {
  const net::SectorId s = serving_sector(g);
  if (s == net::kInvalidSector) return 0.0;
  const double max_rate = max_rate_bps(g);
  if (max_rate <= 0.0) return 0.0;
  return options().scheduler.shared_rate_bps(
      max_rate, sector_loads()[static_cast<std::size_t>(s)]);
}

std::vector<net::SectorId> EvalContext::service_map() const {
  std::vector<net::SectorId> map(static_cast<std::size_t>(cell_count()),
                                 net::kInvalidSector);
  for (geo::GridIndex g = 0; g < cell_count(); ++g) {
    if (in_service(g)) map[static_cast<std::size_t>(g)] = serving_sector(g);
  }
  return map;
}

const std::vector<double>& EvalContext::sector_loads() const {
  if (!loads_valid_) {
    sector_loads_.resize(network().sector_count());
    loads_kernel(state_, market_->ue_density(), market_->noise_mw(),
                 options().min_service_sinr_db, sector_loads_);
    loads_valid_ = true;
  }
  return sector_loads_;
}

double EvalContext::probe_rate_bps(net::SectorId changed, double changed_rp,
                                   double new_total_mw,
                                   geo::GridIndex g) const {
  const auto i = static_cast<std::size_t>(g);
  double other_best_rp;
  net::SectorId other_best;
  if (state_.best[i] == changed) {
    other_best_rp = state_.second_rp_dbm[i];
    other_best = state_.second[i];
  } else {
    other_best_rp = state_.best_rp_dbm[i];
    other_best = state_.best[i];
  }
  net::SectorId server;
  double serving_rp;
  if (changed_rp >= other_best_rp) {
    server = changed;
    serving_rp = changed_rp;
  } else {
    server = other_best;
    serving_rp = other_best_rp;
  }
  if (server == net::kInvalidSector || !std::isfinite(serving_rp)) return 0.0;

  const double sinr =
      sinr_from(serving_rp, util::dbm_to_mw(serving_rp), new_total_mw);
  if (sinr < options().min_service_sinr_db) return 0.0;
  const double max_rate = lte::max_rate_bps_for_cqi(
      lte::sinr_to_cqi(sinr), network().carrier().bandwidth);
  // Approximate the post-change load with the current one (floored at one
  // UE: an idle sector taking over g serves at least g's own UEs).
  const double load =
      std::max(1.0, sector_loads()[static_cast<std::size_t>(server)]);
  return options().scheduler.shared_rate_bps(max_rate, load);
}

bool EvalContext::power_delta_improves_rate(net::SectorId b, double delta_db,
                                            geo::GridIndex g) const {
  const auto i = static_cast<std::size_t>(g);
  const auto& setting = config_[b];
  if (!setting.active) return false;
  const auto& fp = footprint_of(b);
  if (!fp.covers(g)) return false;

  const net::Sector& meta = network().sector(b);
  const double new_power = meta.clamp_power(setting.power_dbm + delta_db);
  if (new_power == setting.power_dbm) return false;  // clamped away

  const double new_rp = new_power + fp.gain_db(g);
  // Same hoisted-linear products the mutation sweeps apply, so the probed
  // total matches what set_power would actually store.
  const double lin = fp.linear_gain(g);
  const double new_total = std::max(
      0.0, state_.total_mw[i] - util::dbm_to_mw(setting.power_dbm) * lin +
               util::dbm_to_mw(new_power) * lin);

  return probe_rate_bps(b, new_rp, new_total, g) >
         rate_bps(g) * (1.0 + 1e-9);
}

bool EvalContext::tilt_improves_rate(net::SectorId b, int tilt,
                                     geo::GridIndex g) {
  const auto i = static_cast<std::size_t>(g);
  const auto& setting = config_[b];
  if (!setting.active) return false;
  const net::Sector& meta = network().sector(b);
  const radio::TiltIndex clamped = meta.clamp_tilt(tilt);
  if (clamped == setting.tilt) return false;

  const auto& old_fp = footprint_of(b);
  const auto& new_fp = market_->provider().footprint(b, clamped);
  const double new_rp_or_ninf =
      setting.power_dbm + new_fp.gain_or_ninf_db(g);
  const double p_lin = util::dbm_to_mw(setting.power_dbm);
  const double old_mw = p_lin * old_fp.linear_or_zero(g);
  const double new_mw = p_lin * new_fp.linear_or_zero(g);
  const double new_total = std::max(0.0, state_.total_mw[i] - old_mw + new_mw);

  return probe_rate_bps(b, new_rp_or_ninf, new_total, g) >
         rate_bps(g) * (1.0 + 1e-9);
}

}  // namespace magus::model
