#include "model/eval_context.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lte/amc.h"
#include "lte/bandwidth.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/units.h"

namespace magus::model {

namespace {
/// Strict server ordering with a deterministic tie-break: stronger signal
/// wins; at exactly equal received power the lower sector id wins, so the
/// incremental updates and a full rebuild always agree (co-sited sectors
/// can tie exactly when both land on the same pattern-loss cap).
[[nodiscard]] bool beats(float rp_a, net::SectorId a, float rp_b,
                         net::SectorId b) {
  if (rp_a != rp_b) return rp_a > rp_b;
  return a < b;
}
}  // namespace

EvalContext::EvalContext(const MarketContext* market) : market_(market) {
  if (market_ == nullptr) {
    throw std::invalid_argument("EvalContext: market must not be null");
  }
  config_ = network().default_configuration();
  rebuild();
}

void EvalContext::set_configuration(const net::Configuration& config) {
  if (config.size() != network().sector_count()) {
    throw std::invalid_argument(
        "EvalContext::set_configuration: size mismatch");
  }
  config_ = config;
  rebuild();
}

void EvalContext::rebuild() {
  // Full rebuilds are the expensive model operation (every sector's
  // footprint re-applied); incremental set_power/set_tilt paths stay
  // uninstrumented — they are the per-candidate hot path.
  MAGUS_TRACE_SPAN("model.rebuild", "model");
  static obs::Counter& rebuilds =
      obs::MetricsRegistry::global().counter("model.rebuilds");
  rebuilds.add(1);
  state_.reset(static_cast<std::size_t>(cell_count()));
  current_footprint_.assign(network().sector_count(), nullptr);
  for (const auto& sector : network().sectors()) {
    const auto& setting = config_[sector.id];
    current_footprint_[static_cast<std::size_t>(sector.id)] =
        &market_->provider().footprint(sector.id, setting.tilt);
    if (setting.active) {
      add_contribution(sector.id, footprint_of(sector.id), setting.power_dbm);
    }
  }
  invalidate_loads();
}

void EvalContext::offer_candidate(geo::GridIndex g, net::SectorId sector,
                                  float rp_dbm) {
  const auto i = static_cast<std::size_t>(g);
  if (beats(rp_dbm, sector, state_.best_rp_dbm[i], state_.best[i])) {
    state_.second[i] = state_.best[i];
    state_.second_rp_dbm[i] = state_.best_rp_dbm[i];
    state_.best[i] = sector;
    state_.best_rp_dbm[i] = rp_dbm;
  } else if (beats(rp_dbm, sector, state_.second_rp_dbm[i],
                   state_.second[i])) {
    state_.second[i] = sector;
    state_.second_rp_dbm[i] = rp_dbm;
  }
}

void EvalContext::add_contribution(
    net::SectorId sector, const pathloss::SectorFootprint& footprint,
    double power_dbm) {
  footprint.for_each_covered([&](geo::GridIndex g, float gain) {
    const auto i = static_cast<std::size_t>(g);
    const auto rp = static_cast<float>(power_dbm + gain);
    state_.total_mw[i] += util::dbm_to_mw(rp);
    offer_candidate(g, sector, rp);
  });
  invalidate_loads();
}

void EvalContext::remove_contribution(
    net::SectorId sector, const pathloss::SectorFootprint& footprint,
    double power_dbm) {
  footprint.for_each_covered([&](geo::GridIndex g, float gain) {
    const auto i = static_cast<std::size_t>(g);
    const auto rp = static_cast<float>(power_dbm + gain);
    state_.total_mw[i] =
        std::max(0.0, state_.total_mw[i] - util::dbm_to_mw(rp));
    if (state_.best[i] == sector || state_.second[i] == sector) {
      recompute_top2(g);
    }
  });
  invalidate_loads();
}

void EvalContext::recompute_top2(geo::GridIndex g) {
  const auto i = static_cast<std::size_t>(g);
  state_.best[i] = net::kInvalidSector;
  state_.best_rp_dbm[i] = kNoSignalDbm;
  state_.second[i] = net::kInvalidSector;
  state_.second_rp_dbm[i] = kNoSignalDbm;
  for (const auto& sector : network().sectors()) {
    const auto& setting = config_[sector.id];
    if (!setting.active) continue;
    const auto& fp = footprint_of(sector.id);
    if (!fp.covers(g)) continue;
    const auto rp = static_cast<float>(setting.power_dbm + fp.gain_db(g));
    offer_candidate(g, sector.id, rp);
  }
}

void EvalContext::set_power(net::SectorId sector, double power_dbm) {
  const net::Sector& meta = network().sector(sector);
  const double clamped = meta.clamp_power(power_dbm);
  auto& setting = config_[sector];
  const double old_power = setting.power_dbm;
  if (clamped == old_power) return;
  setting.power_dbm = clamped;
  if (!setting.active) return;  // config changed; no radio contribution

  const auto& fp = footprint_of(sector);
  const bool decreasing = clamped < old_power;
  // Both received powers are formed as float(power + gain) — the exact
  // expression rebuild()/add_contribution use — so the stored per-grid rp
  // values stay bit-identical to a from-scratch rebuild at the new
  // configuration (the equivalence tests rely on this).
  fp.for_each_covered([&](geo::GridIndex g, float gain) {
    const auto i = static_cast<std::size_t>(g);
    const auto old_rp = static_cast<float>(old_power + gain);
    const auto new_rp = static_cast<float>(clamped + gain);
    state_.total_mw[i] = std::max(
        0.0, state_.total_mw[i] + util::dbm_to_mw(new_rp) -
                 util::dbm_to_mw(old_rp));
    if (state_.best[i] == sector) {
      state_.best_rp_dbm[i] = new_rp;
      if (decreasing && beats(state_.second_rp_dbm[i], state_.second[i],
                              new_rp, sector)) {
        recompute_top2(g);
      }
    } else if (state_.second[i] == sector) {
      state_.second_rp_dbm[i] = new_rp;
      if (decreasing) {
        // A third sector may now outrank the runner-up.
        recompute_top2(g);
      } else if (beats(new_rp, sector, state_.best_rp_dbm[i],
                       state_.best[i])) {
        std::swap(state_.best[i], state_.second[i]);
        std::swap(state_.best_rp_dbm[i], state_.second_rp_dbm[i]);
      }
    } else {
      offer_candidate(g, sector, new_rp);
    }
  });
  invalidate_loads();
}

void EvalContext::set_active(net::SectorId sector, bool active) {
  auto& setting = config_[sector];
  if (setting.active == active) return;
  setting.active = active;
  const auto& fp = footprint_of(sector);
  if (active) {
    add_contribution(sector, fp, setting.power_dbm);
  } else {
    remove_contribution(sector, fp, setting.power_dbm);
  }
}

void EvalContext::set_tilt(net::SectorId sector, int tilt_index) {
  const net::Sector& meta = network().sector(sector);
  const radio::TiltIndex clamped = meta.clamp_tilt(tilt_index);
  auto& setting = config_[sector];
  if (clamped == setting.tilt) return;
  const pathloss::SectorFootprint& old_fp = footprint_of(sector);
  const pathloss::SectorFootprint& new_fp =
      market_->provider().footprint(sector, clamped);
  // Mark the sector inactive while its old contribution is removed:
  // recompute_top2 must not re-offer the stale footprint.
  const bool was_active = setting.active;
  if (was_active) {
    setting.active = false;
    remove_contribution(sector, old_fp, setting.power_dbm);
  }
  setting.tilt = clamped;
  current_footprint_[static_cast<std::size_t>(sector)] = &new_fp;
  if (was_active) {
    setting.active = true;
    add_contribution(sector, new_fp, setting.power_dbm);
  }
}

void EvalContext::restore(const Snapshot& snapshot) {
  state_ = snapshot.state;
  // Footprint pointers depend on per-sector tilt; refresh only the sectors
  // whose tilt actually changed (provider caches keep previously returned
  // references valid). Skipping the unchanged ones keeps the provider's
  // lock off the restore hot path entirely for power-only searches.
  for (const auto& sector : network().sectors()) {
    const auto i = static_cast<std::size_t>(sector.id);
    if (config_[sector.id].tilt != snapshot.config[sector.id].tilt) {
      current_footprint_[i] = &market_->provider().footprint(
          sector.id, snapshot.config[sector.id].tilt);
    }
  }
  config_ = snapshot.config;
  invalidate_loads();
}

double EvalContext::sinr_from(double rp_dbm, double rp_mw,
                              double total_mw) const {
  const double interference_mw = std::max(0.0, total_mw - rp_mw);
  return rp_dbm - util::mw_to_dbm(market_->noise_mw() + interference_mw);
}

double EvalContext::sinr_db(geo::GridIndex g) const {
  const auto i = static_cast<std::size_t>(g);
  const double rp_dbm = state_.best_rp_dbm[i];
  if (state_.best[i] == net::kInvalidSector) return rp_dbm;  // -inf
  return sinr_from(rp_dbm, util::dbm_to_mw(rp_dbm), state_.total_mw[i]);
}

lte::Cqi EvalContext::cqi(geo::GridIndex g) const {
  const double sinr = sinr_db(g);
  if (sinr < options().min_service_sinr_db) return 0;
  return lte::sinr_to_cqi(sinr);
}

bool EvalContext::in_service(geo::GridIndex g) const { return cqi(g) > 0; }

double EvalContext::max_rate_bps(geo::GridIndex g) const {
  return lte::max_rate_bps_for_cqi(cqi(g), network().carrier().bandwidth);
}

double EvalContext::rate_bps(geo::GridIndex g) const {
  const net::SectorId s = serving_sector(g);
  if (s == net::kInvalidSector) return 0.0;
  const double max_rate = max_rate_bps(g);
  if (max_rate <= 0.0) return 0.0;
  return options().scheduler.shared_rate_bps(
      max_rate, sector_loads()[static_cast<std::size_t>(s)]);
}

std::vector<net::SectorId> EvalContext::service_map() const {
  std::vector<net::SectorId> map(static_cast<std::size_t>(cell_count()),
                                 net::kInvalidSector);
  for (geo::GridIndex g = 0; g < cell_count(); ++g) {
    if (in_service(g)) map[static_cast<std::size_t>(g)] = serving_sector(g);
  }
  return map;
}

const std::vector<double>& EvalContext::sector_loads() const {
  if (!loads_valid_) {
    const auto ue_density = market_->ue_density();
    sector_loads_.assign(network().sector_count(), 0.0);
    for (geo::GridIndex g = 0; g < cell_count(); ++g) {
      const auto i = static_cast<std::size_t>(g);
      const net::SectorId s = state_.best[i];
      if (s == net::kInvalidSector || ue_density[i] <= 0.0) continue;
      if (!in_service(g)) continue;
      sector_loads_[static_cast<std::size_t>(s)] += ue_density[i];
    }
    loads_valid_ = true;
  }
  return sector_loads_;
}

double EvalContext::probe_rate_bps(net::SectorId changed, double changed_rp,
                                   double new_total_mw,
                                   geo::GridIndex g) const {
  const auto i = static_cast<std::size_t>(g);
  double other_best_rp;
  net::SectorId other_best;
  if (state_.best[i] == changed) {
    other_best_rp = state_.second_rp_dbm[i];
    other_best = state_.second[i];
  } else {
    other_best_rp = state_.best_rp_dbm[i];
    other_best = state_.best[i];
  }
  net::SectorId server;
  double serving_rp;
  if (changed_rp >= other_best_rp) {
    server = changed;
    serving_rp = changed_rp;
  } else {
    server = other_best;
    serving_rp = other_best_rp;
  }
  if (server == net::kInvalidSector || !std::isfinite(serving_rp)) return 0.0;

  const double sinr =
      sinr_from(serving_rp, util::dbm_to_mw(serving_rp), new_total_mw);
  if (sinr < options().min_service_sinr_db) return 0.0;
  const double max_rate = lte::max_rate_bps_for_cqi(
      lte::sinr_to_cqi(sinr), network().carrier().bandwidth);
  // Approximate the post-change load with the current one (floored at one
  // UE: an idle sector taking over g serves at least g's own UEs).
  const double load =
      std::max(1.0, sector_loads()[static_cast<std::size_t>(server)]);
  return options().scheduler.shared_rate_bps(max_rate, load);
}

bool EvalContext::power_delta_improves_rate(net::SectorId b, double delta_db,
                                            geo::GridIndex g) const {
  const auto i = static_cast<std::size_t>(g);
  const auto& setting = config_[b];
  if (!setting.active) return false;
  const auto& fp = footprint_of(b);
  if (!fp.covers(g)) return false;

  const net::Sector& meta = network().sector(b);
  const double new_power = meta.clamp_power(setting.power_dbm + delta_db);
  if (new_power == setting.power_dbm) return false;  // clamped away

  const double old_rp = setting.power_dbm + fp.gain_db(g);
  const double new_rp = new_power + fp.gain_db(g);
  const double new_total = std::max(
      0.0,
      state_.total_mw[i] - util::dbm_to_mw(old_rp) + util::dbm_to_mw(new_rp));

  return probe_rate_bps(b, new_rp, new_total, g) >
         rate_bps(g) * (1.0 + 1e-9);
}

bool EvalContext::tilt_improves_rate(net::SectorId b, int tilt,
                                     geo::GridIndex g) {
  const auto i = static_cast<std::size_t>(g);
  const auto& setting = config_[b];
  if (!setting.active) return false;
  const net::Sector& meta = network().sector(b);
  const radio::TiltIndex clamped = meta.clamp_tilt(tilt);
  if (clamped == setting.tilt) return false;

  const auto& old_fp = footprint_of(b);
  const auto& new_fp = market_->provider().footprint(b, clamped);
  const double old_rp_or_ninf =
      setting.power_dbm + old_fp.gain_or_ninf_db(g);
  const double new_rp_or_ninf =
      setting.power_dbm + new_fp.gain_or_ninf_db(g);
  const double old_mw =
      std::isfinite(old_rp_or_ninf) ? util::dbm_to_mw(old_rp_or_ninf) : 0.0;
  const double new_mw =
      std::isfinite(new_rp_or_ninf) ? util::dbm_to_mw(new_rp_or_ninf) : 0.0;
  const double new_total = std::max(0.0, state_.total_mw[i] - old_mw + new_mw);

  return probe_rate_bps(b, new_rp_or_ninf, new_total, g) >
         rate_bps(g) * (1.0 + 1e-9);
}

}  // namespace magus::model
