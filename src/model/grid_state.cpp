#include "model/grid_state.h"

// GridState is a plain aggregate; this TU anchors the module.
namespace magus::model {}
