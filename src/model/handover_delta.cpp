#include "model/handover_delta.h"

#include <stdexcept>

namespace magus::model {

HandoverDelta handover_delta(std::span<const net::SectorId> before,
                             std::span<const net::SectorId> after,
                             std::span<const double> ue_density,
                             const std::vector<bool>& source_on_air) {
  if (before.size() != after.size() || before.size() != ue_density.size()) {
    throw std::invalid_argument("handover_delta: size mismatch");
  }
  HandoverDelta delta;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const net::SectorId src = before[i];
    const net::SectorId dst = after[i];
    if (src == dst) continue;
    if (src == net::kInvalidSector) continue;  // gaining service: attach,
                                               // not a handover
    const double ues = ue_density[i];
    if (ues <= 0.0) continue;
    ++delta.changed_cells;
    const bool src_alive = static_cast<std::size_t>(src) < source_on_air.size()
                               ? source_on_air[static_cast<std::size_t>(src)]
                               : false;
    if (dst == net::kInvalidSector) {
      delta.lost_service_ues += ues;
    } else if (src_alive) {
      delta.seamless_ues += ues;
    } else {
      delta.hard_ues += ues;
    }
  }
  return delta;
}

}  // namespace magus::model
