#include "model/coverage_index.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magus::model {

namespace {

[[nodiscard]] float quiet_nan() {
  return std::numeric_limits<float>::quiet_NaN();
}

}  // namespace

CoverageIndex CoverageIndex::build(const net::Network& network,
                                   pathloss::PathLossProvider& provider,
                                   const CoverageIndexOptions& options) {
  MAGUS_TRACE_SPAN("model.index.build", "model");
  const std::uint64_t start_ns = obs::monotonic_now_ns();
  if (options.tilt_radius < 0) {
    throw std::invalid_argument("CoverageIndex: tilt_radius must be >= 0");
  }

  CoverageIndex index;
  const auto cells =
      static_cast<std::size_t>(provider.grid().cell_count());
  const std::size_t sector_count = network.sector_count();
  const net::Configuration defaults = network.default_configuration();

  // Which (sector, tilt) planes to materialize: every tilt within
  // tilt_radius of the sector's default tilt, clamped to its antenna
  // range. The union of these ranges fixes the global plane span.
  struct SectorTilts {
    int lo = 0;
    int hi = -1;  ///< empty range until resolved
  };
  std::vector<SectorTilts> tilts(sector_count);
  int global_lo = std::numeric_limits<int>::max();
  int global_hi = std::numeric_limits<int>::min();
  for (const net::Sector& sector : network.sectors()) {
    const int base = defaults[sector.id].tilt;
    SectorTilts& t = tilts[static_cast<std::size_t>(sector.id)];
    t.lo = sector.clamp_tilt(base - options.tilt_radius);
    t.hi = sector.clamp_tilt(base + options.tilt_radius);
    global_lo = std::min(global_lo, t.lo);
    global_hi = std::max(global_hi, t.hi);
  }
  if (sector_count == 0) {
    global_lo = 0;
    global_hi = -1;
  }
  index.tilt_lo_ = global_lo;
  const int planes = global_hi - global_lo + 1;
  if (planes > 64) {
    // sector_planes_ is a 64-bit mask per sector; radius would have to
    // exceed every real antenna's tilt range to get here.
    throw std::invalid_argument("CoverageIndex: > 64 tilt planes");
  }

  // Pass 1: per-cell cover counts. A cell's span holds each covering
  // sector once, regardless of how many indexed tilts reach it, so counts
  // use a per-cell "seen this sector" stamp.
  std::vector<std::uint32_t> count(cells, 0);
  std::vector<std::int32_t> stamp(cells, -1);
  for (const net::Sector& sector : network.sectors()) {
    const SectorTilts& t = tilts[static_cast<std::size_t>(sector.id)];
    for (int tilt = t.lo; tilt <= t.hi; ++tilt) {
      const pathloss::SectorFootprint& fp =
          provider.footprint(sector.id, tilt);
      for (std::int32_t r = 0; r < fp.window_rows(); ++r) {
        const std::span<const float> line = fp.window_row(r);
        const auto base = static_cast<std::size_t>(fp.row_first_cell(r));
        for (std::size_t c = 0; c < line.size(); ++c) {
          if (std::isnan(line[c])) continue;
          if (stamp[base + c] != sector.id) {
            stamp[base + c] = sector.id;
            ++count[base + c];
          }
        }
      }
    }
  }

  index.row_start_.resize(cells + 1);
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < cells; ++i) {
    index.row_start_[i] = total;
    total += count[i];
  }
  index.row_start_[cells] = total;

  // Pass 2: fill. The outer loop runs sectors in ascending id order and
  // each cell's cursor only moves forward, so every row's sector ids come
  // out ascending — the property the bit-identity argument needs. A
  // sector covering a cell at several indexed tilts claims one entry the
  // first time and records its slot in entry_at so later tilt planes
  // write their gain into the same column.
  index.entry_sector_.assign(total, net::kInvalidSector);
  // One flat slab per domain (dB / linear) so the SIMD sweeps can gather
  // any plane entry with a single int32 index: plane p starts at
  // p * plane_stride_. The int32 offset arithmetic needs the whole slab
  // under 2^31 entries.
  index.plane_stride_ = total;
  const std::size_t slab_size = static_cast<std::size_t>(planes) * total;
  if (slab_size > static_cast<std::size_t>(
                      std::numeric_limits<std::int32_t>::max())) {
    throw std::invalid_argument(
        "CoverageIndex: plane slab exceeds int32 indexing");
  }
  index.slab_gain_.assign(slab_size, quiet_nan());
  index.slab_mw_.assign(slab_size, 0.0f);
  index.sector_planes_.assign(sector_count, 0);

  std::vector<std::uint32_t> cursor(index.row_start_.begin(),
                                    index.row_start_.end() - 1);
  std::vector<std::uint32_t> entry_at(cells, 0);
  std::fill(stamp.begin(), stamp.end(), -1);
  for (const net::Sector& sector : network.sectors()) {
    const SectorTilts& t = tilts[static_cast<std::size_t>(sector.id)];
    for (int tilt = t.lo; tilt <= t.hi; ++tilt) {
      const int p = tilt - global_lo;
      index.sector_planes_[static_cast<std::size_t>(sector.id)] |=
          std::uint64_t{1} << p;
      float* plane =
          index.slab_gain_.data() + static_cast<std::size_t>(p) * total;
      float* plane_mw =
          index.slab_mw_.data() + static_cast<std::size_t>(p) * total;
      provider.footprint(sector.id, tilt)
          .for_each_covered_linear(
              [&](geo::GridIndex g, float gain, float linear) {
                const auto i = static_cast<std::size_t>(g);
                if (stamp[i] != sector.id) {
                  stamp[i] = sector.id;
                  entry_at[i] = cursor[i]++;
                  index.entry_sector_[entry_at[i]] = sector.id;
                }
                plane[entry_at[i]] = gain;
                plane_mw[entry_at[i]] = linear;
              });
    }
  }

  index.plane_ptr_.resize(static_cast<std::size_t>(planes));
  index.plane_mw_ptr_.resize(static_cast<std::size_t>(planes));
  for (int p = 0; p < planes; ++p) {
    const std::size_t off = static_cast<std::size_t>(p) * total;
    index.plane_ptr_[static_cast<std::size_t>(p)] =
        index.slab_gain_.data() + off;
    index.plane_mw_ptr_[static_cast<std::size_t>(p)] =
        index.slab_mw_.data() + off;
  }

  // Ranked layout: each row's entries reordered by descending bound (the
  // sector's best gain at the cell over its built planes), sector id
  // ascending on ties. The bound is what lets a top-2 scan stop early:
  // power_cap + bound majorizes every received power the entry can offer.
  index.ranked_sector_.assign(total, net::kInvalidSector);
  index.ranked_col_.assign(total, 0);
  index.ranked_bound_.assign(total, 0.0f);
  {
    std::vector<std::uint32_t> order;
    std::vector<float> bound(total, -std::numeric_limits<float>::infinity());
    for (std::uint32_t e = 0; e < total; ++e) {
      for (int p = 0; p < planes; ++p) {
        const float g =
            index.slab_gain_[static_cast<std::size_t>(p) * total + e];
        if (!std::isnan(g)) bound[e] = std::max(bound[e], g);
      }
    }
    for (std::size_t i = 0; i < cells; ++i) {
      const std::uint32_t first = index.row_start_[i];
      const std::uint32_t size = index.row_start_[i + 1] - first;
      order.resize(size);
      for (std::uint32_t k = 0; k < size; ++k) order[k] = first + k;
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (bound[a] != bound[b]) return bound[a] > bound[b];
                  return index.entry_sector_[a] < index.entry_sector_[b];
                });
      for (std::uint32_t k = 0; k < size; ++k) {
        index.ranked_sector_[first + k] = index.entry_sector_[order[k]];
        index.ranked_col_[first + k] = order[k];
        index.ranked_bound_[first + k] = bound[order[k]];
      }
    }
  }

  index.bytes_ = index.row_start_.capacity() * sizeof(std::uint32_t) +
                 index.entry_sector_.capacity() * sizeof(std::int32_t) +
                 index.sector_planes_.capacity() * sizeof(std::uint64_t) +
                 index.plane_ptr_.capacity() * sizeof(const float*) +
                 index.plane_mw_ptr_.capacity() * sizeof(const float*) +
                 index.ranked_sector_.capacity() * sizeof(std::int32_t) +
                 index.ranked_col_.capacity() * sizeof(std::uint32_t) +
                 index.ranked_bound_.capacity() * sizeof(float) +
                 index.slab_gain_.capacity() * sizeof(float) +
                 index.slab_mw_.capacity() * sizeof(float);

  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& builds = registry.counter("model.index.builds");
  static obs::Histogram& build_us = registry.histogram(
      "model.index.build_us", obs::exponential_bounds(10.0, 4.0, 12));
  builds.add(1);
  build_us.observe(
      static_cast<double>(obs::monotonic_now_ns() - start_ns) / 1000.0);
  registry.gauge("model.index.bytes")
      .set(static_cast<double>(index.bytes_));
  registry.gauge("model.index.entries")
      .set(static_cast<double>(index.entry_count()));
  registry.gauge("model.index.planes").set(static_cast<double>(planes));
  return index;
}

}  // namespace magus::model
