// Receiver thermal-noise floor.
#pragma once

namespace magus::radio {

/// Thermal noise power over `bandwidth_hz` with the given receiver noise
/// figure, in dBm: -174 + 10 log10(BW) + NF.
[[nodiscard]] double noise_floor_dbm(double bandwidth_hz,
                                     double noise_figure_db);

/// Convenience for LTE channel bandwidths given in MHz (uses the occupied
/// bandwidth, i.e. PRB count x 180 kHz).
[[nodiscard]] double lte_noise_floor_dbm(double channel_mhz,
                                         double noise_figure_db = 7.0);

}  // namespace magus::radio
