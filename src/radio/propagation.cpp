#include "radio/propagation.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace magus::radio {

PropagationModel::PropagationModel(const terrain::Terrain* terrain,
                                   SpmParams params)
    : terrain_(terrain), params_(params) {
  if (terrain_ == nullptr) {
    throw std::invalid_argument("PropagationModel: terrain must not be null");
  }
}

double PropagationModel::isotropic_gain_from(const TransmitterSite& tx,
                                             double tx_ground_m, geo::Point rx,
                                             const RxEnvironment& env) const {
  const double distance_m =
      std::max(geo::distance_m(tx.position, rx), params_.min_distance_m);
  const double distance_km = distance_m / 1000.0;
  const double log_d = std::log10(distance_km);

  // Effective TX height: antenna height plus terrain advantage over the RX.
  const double h_eff =
      std::max(5.0, tx.height_m + tx_ground_m - env.elevation_m);
  const double log_h = std::log10(h_eff);

  const double spm_loss =
      params_.k1 + params_.k2 * log_d + params_.k3 * log_h +
      params_.k4 * env.diffraction_loss_db + params_.k5 * log_d * log_h +
      params_.k6 * params_.rx_height_m;

  // Free-space at 2.1 GHz bounds how *small* the loss can get; the Hata
  // form misbehaves at very short range.
  const double floor_loss =
      32.45 + 20.0 * std::log10(distance_km) + 20.0 * std::log10(2100.0);
  const double loss = std::max(spm_loss, floor_loss) + env.clutter_loss_db -
                      env.shadowing_db;
  return -loss;
}

double PropagationModel::pattern_gain_dbi(const TransmitterSite& tx,
                                          double tx_ground_m,
                                          const AntennaPattern& antenna,
                                          TiltIndex tilt, geo::Point rx,
                                          double rx_ground_m) const {
  const double bearing = geo::bearing_deg(tx.position, rx);
  const double azimuth_off = geo::wrap_angle_deg(bearing - tx.azimuth_deg);
  const double distance_m =
      std::max(geo::distance_m(tx.position, rx), params_.min_distance_m);
  const double tx_total = tx_ground_m + tx.height_m;
  const double rx_total = rx_ground_m + params_.rx_height_m;
  const double elevation_deg =
      std::atan2(rx_total - tx_total, distance_m) * 180.0 / std::numbers::pi;
  return antenna.gain_dbi(azimuth_off, elevation_deg, tilt);
}

double PropagationModel::isotropic_path_gain_db(const TransmitterSite& tx,
                                                geo::Point rx) const {
  RxEnvironment env;
  env.elevation_m = terrain_->elevation_m(rx);
  env.clutter_loss_db =
      terrain::clutter_loss_db(terrain_->clutter_at(rx));
  env.shadowing_db = terrain_->shadowing_db(rx);
  env.diffraction_loss_db = terrain_->diffraction_loss_db(
      tx.position, tx.height_m, rx, params_.rx_height_m);
  return isotropic_gain_from(tx, terrain_->elevation_m(tx.position), rx, env);
}

double PropagationModel::path_gain_db(const TransmitterSite& tx,
                                      const AntennaPattern& antenna,
                                      TiltIndex tilt, geo::Point rx) const {
  return isotropic_path_gain_db(tx, rx) +
         pattern_gain_dbi(tx, terrain_->elevation_m(tx.position), antenna,
                          tilt, rx, terrain_->elevation_m(rx));
}

double PropagationModel::diffraction_from_profile(
    geo::Point a, double elev_a_m, geo::Point b, double elev_b_m,
    const terrain::TerrainGridCache& cache) const {
  const double total_distance = geo::distance_m(a, b);
  if (total_distance < 1.0) return 0.0;
  const int samples =
      std::clamp(static_cast<int>(total_distance / 400.0), 4,
                 params_.max_diffraction_samples);
  double worst_obstruction_m = 0.0;
  for (int i = 1; i < samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const geo::Point p{a.x_m + (b.x_m - a.x_m) * t,
                       a.y_m + (b.y_m - a.y_m) * t};
    const double ray_height = elev_a_m + (elev_b_m - elev_a_m) * t;
    const double obstruction = cache.elevation_at(p) - ray_height;
    worst_obstruction_m = std::max(worst_obstruction_m, obstruction);
  }
  if (worst_obstruction_m <= 0.0) return 0.0;
  const double loss = 6.0 + 8.0 * std::log2(1.0 + worst_obstruction_m / 10.0);
  return std::min(loss, 30.0);
}

double PropagationModel::path_gain_db_cached(
    const TransmitterSite& tx, const AntennaPattern& antenna, TiltIndex tilt,
    geo::GridIndex g, const terrain::TerrainGridCache& cache) const {
  const geo::Point rx = cache.grid().center_of(g);
  const double tx_ground = cache.elevation_at(tx.position);

  RxEnvironment env;
  env.elevation_m = cache.elevation_of(g);
  env.clutter_loss_db = cache.clutter_loss_of(g);
  env.shadowing_db = cache.shadowing_of(g);
  env.diffraction_loss_db = diffraction_from_profile(
      tx.position, tx_ground + tx.height_m, rx,
      env.elevation_m + params_.rx_height_m, cache);

  return isotropic_gain_from(tx, tx_ground, rx, env) +
         pattern_gain_dbi(tx, tx_ground, antenna, tilt, rx, env.elevation_m);
}

}  // namespace magus::radio
