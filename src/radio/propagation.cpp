#include "radio/propagation.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/simd.h"

namespace magus::radio {
namespace {

/// Knife-edge loss from the worst obstruction height (m) above the direct
/// ray. One formula shared by the per-cell reference sampler and the
/// radial-profile table so the two paths can only differ in *where* they
/// sample the terrain, never in how an obstruction converts to dB.
double knife_edge_db(double worst_obstruction_m) {
  if (worst_obstruction_m <= 0.0) return 0.0;
  const double loss = 6.0 + 8.0 * std::log2(1.0 + worst_obstruction_m / 10.0);
  return std::min(loss, 30.0);
}

}  // namespace

void RadialProfileTable::build(const SiteContext& site, double range_m,
                               const terrain::TerrainGridCache& cache,
                               double step_m) {
  if (step_m <= 0.0) step_m = 400.0;
  range_m = std::max(range_m, 0.0);
  tx_total_m_ = site.tx_total_m;
  step_m_ = step_m;

  // One ray per boundary cell: angular step <= cell_size / range radians,
  // so two adjacent rays are never farther apart than one cell width even
  // at maximum range.
  const double cell = cache.grid().cell_size_m();
  const double circumference = 2.0 * std::numbers::pi * range_m;
  ray_count_ = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::ceil(circumference / cell)));
  step_deg_ = 360.0 / static_cast<double>(ray_count_);

  // Interior samples strictly inside (0, range): k-th sample at (k+1)*step.
  samples_per_ray_ = static_cast<std::size_t>(
      std::max(0.0, std::ceil(range_m / step_m) - 1.0));

  heights_.resize(ray_count_ * samples_per_ray_);
  for (std::size_t ray = 0; ray < ray_count_; ++ray) {
    cache.sample_ray_elevations(
        site.tx.position, static_cast<double>(ray) * step_deg_, step_m,
        std::span<float>{heights_.data() + ray * samples_per_ray_,
                         samples_per_ray_});
  }
}

double RadialProfileTable::diffraction_db(double bearing_deg,
                                          double distance_m,
                                          double rx_total_m) const {
  if (distance_m < 1.0 || samples_per_ray_ == 0) return 0.0;
  const std::size_t ray =
      static_cast<std::size_t>(std::llround(bearing_deg / step_deg_)) %
      ray_count_;
  // Samples strictly between the endpoints: s_k = (k+1)*step < distance.
  const std::size_t prefix = std::min(
      samples_per_ray_,
      static_cast<std::size_t>(
          std::max(0.0, std::ceil(distance_m / step_m_) - 1.0)));
  const float* h = heights_.data() + ray * samples_per_ray_;
  const double slope = (rx_total_m - tx_total_m_) / distance_m;
  double worst_obstruction_m = 0.0;
  double s = step_m_;
  for (std::size_t k = 0; k < prefix; ++k, s += step_m_) {
    const double ray_height = tx_total_m_ + slope * s;
    worst_obstruction_m =
        std::max(worst_obstruction_m, static_cast<double>(h[k]) - ray_height);
  }
  return knife_edge_db(worst_obstruction_m);
}

PropagationModel::PropagationModel(const terrain::Terrain* terrain,
                                   SpmParams params)
    : terrain_(terrain), params_(params) {
  if (terrain_ == nullptr) {
    throw std::invalid_argument("PropagationModel: terrain must not be null");
  }
}

double PropagationModel::isotropic_gain_from(const TransmitterSite& tx,
                                             double tx_ground_m, geo::Point rx,
                                             const RxEnvironment& env) const {
  const double distance_m =
      std::max(geo::distance_m(tx.position, rx), params_.min_distance_m);
  const double distance_km = distance_m / 1000.0;
  const double log_d = std::log10(distance_km);

  // Effective TX height: antenna height plus terrain advantage over the RX.
  const double h_eff =
      std::max(5.0, tx.height_m + tx_ground_m - env.elevation_m);
  const double log_h = std::log10(h_eff);

  const double spm_loss =
      params_.k1 + params_.k2 * log_d + params_.k3 * log_h +
      params_.k4 * env.diffraction_loss_db + params_.k5 * log_d * log_h +
      params_.k6 * params_.rx_height_m;

  // Free-space at 2.1 GHz bounds how *small* the loss can get; the Hata
  // form misbehaves at very short range.
  const double floor_loss =
      32.45 + 20.0 * std::log10(distance_km) + 20.0 * std::log10(2100.0);
  const double loss = std::max(spm_loss, floor_loss) + env.clutter_loss_db -
                      env.shadowing_db;
  return -loss;
}

double PropagationModel::pattern_gain_dbi(const TransmitterSite& tx,
                                          double tx_ground_m,
                                          const AntennaPattern& antenna,
                                          TiltIndex tilt, geo::Point rx,
                                          double rx_ground_m) const {
  const double bearing = geo::bearing_deg(tx.position, rx);
  const double azimuth_off = geo::wrap_angle_deg(bearing - tx.azimuth_deg);
  const double distance_m =
      std::max(geo::distance_m(tx.position, rx), params_.min_distance_m);
  const double tx_total = tx_ground_m + tx.height_m;
  const double rx_total = rx_ground_m + params_.rx_height_m;
  const double elevation_deg =
      std::atan2(rx_total - tx_total, distance_m) * 180.0 / std::numbers::pi;
  return antenna.gain_dbi(azimuth_off, elevation_deg, tilt);
}

double PropagationModel::isotropic_path_gain_db(const TransmitterSite& tx,
                                                geo::Point rx) const {
  RxEnvironment env;
  env.elevation_m = terrain_->elevation_m(rx);
  env.clutter_loss_db =
      terrain::clutter_loss_db(terrain_->clutter_at(rx));
  env.shadowing_db = terrain_->shadowing_db(rx);
  env.diffraction_loss_db = terrain_->diffraction_loss_db(
      tx.position, tx.height_m, rx, params_.rx_height_m);
  return isotropic_gain_from(tx, terrain_->elevation_m(tx.position), rx, env);
}

double PropagationModel::path_gain_db(const TransmitterSite& tx,
                                      const AntennaPattern& antenna,
                                      TiltIndex tilt, geo::Point rx) const {
  return isotropic_path_gain_db(tx, rx) +
         pattern_gain_dbi(tx, terrain_->elevation_m(tx.position), antenna,
                          tilt, rx, terrain_->elevation_m(rx));
}

double PropagationModel::diffraction_from_profile(
    geo::Point a, double elev_a_m, geo::Point b, double elev_b_m,
    const terrain::TerrainGridCache& cache) const {
  const double total_distance = geo::distance_m(a, b);
  if (total_distance < 1.0) return 0.0;
  const int samples =
      std::clamp(static_cast<int>(total_distance / 400.0), 4,
                 params_.max_diffraction_samples);
  double worst_obstruction_m = 0.0;
  for (int i = 1; i < samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const geo::Point p{a.x_m + (b.x_m - a.x_m) * t,
                       a.y_m + (b.y_m - a.y_m) * t};
    const double ray_height = elev_a_m + (elev_b_m - elev_a_m) * t;
    const double obstruction = cache.elevation_at(p) - ray_height;
    worst_obstruction_m = std::max(worst_obstruction_m, obstruction);
  }
  return knife_edge_db(worst_obstruction_m);
}

double PropagationModel::path_gain_db_cached(
    const TransmitterSite& tx, const AntennaPattern& antenna, TiltIndex tilt,
    geo::GridIndex g, const terrain::TerrainGridCache& cache) const {
  const geo::Point rx = cache.grid().center_of(g);
  const double tx_ground = cache.elevation_at(tx.position);

  RxEnvironment env;
  env.elevation_m = cache.elevation_of(g);
  env.clutter_loss_db = cache.clutter_loss_of(g);
  env.shadowing_db = cache.shadowing_of(g);
  env.diffraction_loss_db = diffraction_from_profile(
      tx.position, tx_ground + tx.height_m, rx,
      env.elevation_m + params_.rx_height_m, cache);

  return isotropic_gain_from(tx, tx_ground, rx, env) +
         pattern_gain_dbi(tx, tx_ground, antenna, tilt, rx, env.elevation_m);
}

SiteContext PropagationModel::site_context(
    const TransmitterSite& tx, const terrain::TerrainGridCache& cache) const {
  SiteContext ctx;
  ctx.tx = tx;
  ctx.tx_ground_m = cache.elevation_at(tx.position);
  ctx.tx_total_m = ctx.tx_ground_m + tx.height_m;
  return ctx;
}

void PropagationModel::isotropic_row_reference(
    const SiteContext& site, geo::GridIndex first, std::int32_t count,
    const terrain::TerrainGridCache& cache, const RadialProfileTable& profiles,
    std::span<float> iso_db, std::span<float> azimuth_off_deg,
    std::span<float> elevation_deg) const {
  const geo::GridMap& grid = cache.grid();
  // All cells of the run share one row: y, and therefore dy, is constant.
  const geo::Point first_center = grid.center_of(first);
  const double cell = grid.cell_size_m();
  const double dy = first_center.y_m - site.tx.position.y_m;
  const double dy2 = dy * dy;
  const double deg_per_rad = 180.0 / std::numbers::pi;

  // Constant pieces of the SPM sum, folded once per run instead of per cell:
  //   loss = max(k1 + k6 h_rx + (k2 + k5 log_h) log_d + k3 log_h + k4 D,
  //              32.45 + 20 log10(2100) + 20 log_d) + clutter - shadowing.
  const double spm_const = params_.k1 + params_.k6 * params_.rx_height_m;
  const double floor_const = 32.45 + 20.0 * std::log10(2100.0);

  for (std::int32_t i = 0; i < count; ++i) {
    const geo::GridIndex g = first + i;
    const double dx = (first_center.x_m + static_cast<double>(i) * cell) -
                      site.tx.position.x_m;
    const double raw_d = std::sqrt(dx * dx + dy2);
    const double distance_m = std::max(raw_d, params_.min_distance_m);
    double bearing = std::atan2(dx, dy) * deg_per_rad;
    if (bearing < 0.0) bearing += 360.0;

    const double rx_elev = cache.elevation_of(g);
    const double rx_total = rx_elev + params_.rx_height_m;
    const double diffraction =
        profiles.diffraction_db(bearing, raw_d, rx_total);

    const double log_d = std::log10(distance_m / 1000.0);
    const double h_eff =
        std::max(5.0, site.tx.height_m + site.tx_ground_m - rx_elev);
    const double log_h = std::log10(h_eff);
    const double spm_loss = spm_const + params_.k2 * log_d +
                            params_.k3 * log_h + params_.k4 * diffraction +
                            params_.k5 * log_d * log_h;
    const double floor_loss = floor_const + 20.0 * log_d;
    const double loss = std::max(spm_loss, floor_loss) +
                        cache.clutter_loss_of(g) - cache.shadowing_of(g);

    iso_db[static_cast<std::size_t>(i)] = static_cast<float>(-loss);
    azimuth_off_deg[static_cast<std::size_t>(i)] = static_cast<float>(
        geo::wrap_angle_deg(bearing - site.tx.azimuth_deg));
    elevation_deg[static_cast<std::size_t>(i)] = static_cast<float>(
        std::atan2(rx_total - site.tx_total_m, distance_m) * deg_per_rad);
  }
}

void PropagationModel::isotropic_row_cached(
    const SiteContext& site, geo::GridIndex first, std::int32_t count,
    const terrain::TerrainGridCache& cache, const RadialProfileTable& profiles,
    std::span<float> iso_db, std::span<float> azimuth_off_deg,
    std::span<float> elevation_deg) const {
  namespace vx = util::simd;
  constexpr std::int32_t K = vx::kWidth;
  // The row splits into three passes over fixed-size chunks: a vector
  // geometry pass (dx / distance), a scalar pass for the libm-bound middle
  // (atan2 bearing, diffraction probe, log10s — transcendentals are not
  // lane-reproducible, so they stay scalar by design), and a vector SPM
  // combine. Every lane op mirrors the reference loop's term order and
  // association exactly (note k5*log_d*log_h associates as
  // (k5*log_d)*log_h), so the outputs are bit-identical to
  // isotropic_row_reference at any lane width.
  constexpr std::int32_t kChunk = 128;
  static_assert(kChunk % vx::kWidth == 0);

  const geo::GridMap& grid = cache.grid();
  const geo::Point first_center = grid.center_of(first);
  const double cell = grid.cell_size_m();
  const double dy = first_center.y_m - site.tx.position.y_m;
  const double dy2 = dy * dy;
  const double deg_per_rad = 180.0 / std::numbers::pi;
  const double spm_const = params_.k1 + params_.k6 * params_.rx_height_m;
  const double floor_const = 32.45 + 20.0 * std::log10(2100.0);
  const float* clutter = cache.clutter_loss_data();
  const float* shadow = cache.shadowing_data();

  const vx::vdouble vcell = vx::set1_d(cell);
  const vx::vdouble vfcx = vx::set1_d(first_center.x_m);
  const vx::vdouble vtxx = vx::set1_d(site.tx.position.x_m);
  const vx::vdouble vdy2 = vx::set1_d(dy2);
  const vx::vdouble vmind = vx::set1_d(params_.min_distance_m);
  const vx::vdouble vk2 = vx::set1_d(params_.k2);
  const vx::vdouble vk3 = vx::set1_d(params_.k3);
  const vx::vdouble vk4 = vx::set1_d(params_.k4);
  const vx::vdouble vk5 = vx::set1_d(params_.k5);
  const vx::vdouble vspmc = vx::set1_d(spm_const);
  const vx::vdouble vfloorc = vx::set1_d(floor_const);
  const vx::vdouble v20 = vx::set1_d(20.0);
  const vx::vdouble viota = vx::iota_d();

  double dxs[kChunk];
  double raws[kChunk];
  double dists[kChunk];
  double logds[kChunk];
  double loghs[kChunk];
  double diffs[kChunk];

  for (std::int32_t base = 0; base < count; base += kChunk) {
    const std::int32_t n = std::min(kChunk, count - base);

    // Pass 1 (vector): dx = (x0 + i*cell) - tx.x in exactly that order
    // (folding x0 - tx.x into one constant would change the rounding),
    // raw = sqrt(dx^2 + dy^2), dist = max(raw, min_distance). max_d's
    // "b wins on equal" matches std::max(raw, min) bitwise here (positive
    // operands).
    std::int32_t c = 0;
    for (; c + K <= n; c += K) {
      const vx::vdouble vi =
          vx::add_d(vx::set1_d(static_cast<double>(base + c)), viota);
      const vx::vdouble dx =
          vx::sub_d(vx::add_d(vfcx, vx::mul_d(vi, vcell)), vtxx);
      const vx::vdouble raw =
          vx::sqrt_d(vx::add_d(vx::mul_d(dx, dx), vdy2));
      vx::storeu_d(dxs + c, dx);
      vx::storeu_d(raws + c, raw);
      vx::storeu_d(dists + c, vx::max_d(raw, vmind));
    }
    for (; c < n; ++c) {
      const double dx =
          (first_center.x_m + static_cast<double>(base + c) * cell) -
          site.tx.position.x_m;
      dxs[c] = dx;
      raws[c] = std::sqrt(dx * dx + dy2);
      dists[c] = std::max(raws[c], params_.min_distance_m);
    }

    // Pass 2 (scalar): bearing/azimuth/elevation geometry, the diffraction
    // prefix scan, and both log10s.
    for (std::int32_t k = 0; k < n; ++k) {
      const std::int32_t i = base + k;
      const geo::GridIndex g = first + i;
      double bearing = std::atan2(dxs[k], dy) * deg_per_rad;
      if (bearing < 0.0) bearing += 360.0;
      const double rx_elev = cache.elevation_of(g);
      const double rx_total = rx_elev + params_.rx_height_m;
      diffs[k] = profiles.diffraction_db(bearing, raws[k], rx_total);
      logds[k] = std::log10(dists[k] / 1000.0);
      const double h_eff =
          std::max(5.0, site.tx.height_m + site.tx_ground_m - rx_elev);
      loghs[k] = std::log10(h_eff);
      azimuth_off_deg[static_cast<std::size_t>(i)] = static_cast<float>(
          geo::wrap_angle_deg(bearing - site.tx.azimuth_deg));
      elevation_deg[static_cast<std::size_t>(i)] = static_cast<float>(
          std::atan2(rx_total - site.tx_total_m, dists[k]) * deg_per_rad);
    }

    // Pass 3 (vector): the SPM combine, term by term in reference order:
    //   spm  = (((spm_const + k2*log_d) + k3*log_h) + k4*diff)
    //          + (k5*log_d)*log_h
    //   loss = (max(spm, floor_const + 20*log_d) + clutter) - shadowing
    //   iso  = float(-loss)
    // std::max picks a (first arg) on equality, max_d picks b — bit-equal
    // for equal finite losses. Clutter/shadowing load as float and widen,
    // matching the scalar accessors' float -> double promotion.
    c = 0;
    for (; c + K <= n; c += K) {
      const std::size_t i = static_cast<std::size_t>(base + c);
      const vx::vdouble log_d = vx::loadu_d(logds + c);
      const vx::vdouble log_h = vx::loadu_d(loghs + c);
      vx::vdouble spm = vx::add_d(vspmc, vx::mul_d(vk2, log_d));
      spm = vx::add_d(spm, vx::mul_d(vk3, log_h));
      spm = vx::add_d(spm, vx::mul_d(vk4, vx::loadu_d(diffs + c)));
      spm = vx::add_d(spm, vx::mul_d(vx::mul_d(vk5, log_d), log_h));
      const vx::vdouble floor_loss =
          vx::add_d(vfloorc, vx::mul_d(v20, log_d));
      const vx::vdouble loss = vx::sub_d(
          vx::add_d(
              vx::max_d(spm, floor_loss),
              vx::to_double(vx::loadu_f(clutter + first + i))),
          vx::to_double(vx::loadu_f(shadow + first + i)));
      vx::storeu_f(iso_db.data() + i, vx::to_float(vx::neg_d(loss)));
    }
    for (; c < n; ++c) {
      const std::size_t i = static_cast<std::size_t>(base + c);
      const geo::GridIndex g = first + static_cast<std::int32_t>(i);
      const double spm_loss = spm_const + params_.k2 * logds[c] +
                              params_.k3 * loghs[c] + params_.k4 * diffs[c] +
                              params_.k5 * logds[c] * loghs[c];
      const double floor_loss = floor_const + 20.0 * logds[c];
      const double loss = std::max(spm_loss, floor_loss) +
                          cache.clutter_loss_of(g) - cache.shadowing_of(g);
      iso_db[i] = static_cast<float>(-loss);
    }
  }
}

void PropagationModel::apply_antenna_row(
    const AntennaPattern& antenna, TiltIndex tilt,
    std::span<const float> iso_db, std::span<const float> azimuth_off_deg,
    std::span<const float> elevation_deg, std::int32_t count,
    std::span<float> out_gain_db) const {
  antenna.gain_row(iso_db, azimuth_off_deg, elevation_deg, tilt, count,
                   out_gain_db);
}

}  // namespace magus::radio
