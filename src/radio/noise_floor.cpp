#include "radio/noise_floor.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace magus::radio {

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  if (bandwidth_hz <= 0.0) {
    throw std::invalid_argument("noise_floor_dbm: bandwidth must be positive");
  }
  return util::kThermalNoiseDbmPerHz + 10.0 * std::log10(bandwidth_hz) +
         noise_figure_db;
}

double lte_noise_floor_dbm(double channel_mhz, double noise_figure_db) {
  // Occupied bandwidth: LTE uses 90% of the channel, e.g. 10 MHz -> 50 PRB
  // x 180 kHz = 9 MHz.
  const double occupied_hz = channel_mhz * 1e6 * 0.9;
  return noise_floor_dbm(occupied_hz, noise_figure_db);
}

}  // namespace magus::radio
