// Standard Propagation Model (SPM) over procedural terrain.
//
// The paper's path-loss matrices come from Atoll, whose Standard Propagation
// Model is a tuned Hata-style model:
//
//   PL = K1 + K2 log10(d) + K3 log10(h_tx_eff) + K4 * diffraction
//      + K5 log10(d) log10(h_tx_eff) + K6 h_rx + K_clutter
//
// with per-clutter empirical corrections. We implement that structure and
// add the terrain diffraction and correlated shadowing terms from
// magus::terrain, producing the irregular contours of the paper's Figure 3.
//
// Convention: this module returns *negative gain* L in dB (RP = P + L,
// paper Formula 1), so typical values run from about -60 near the site to
// -200 at 30 km, matching the paper's reported range.
//
// Two evaluation paths exist: a direct one querying the terrain noise
// fields per call (exact, used in tests and one-off queries), and a cached
// one fed by a TerrainGridCache (used by the footprint builder, where the
// per-call noise evaluation would dominate construction time).
#pragma once

#include "geo/grid_map.h"
#include "geo/point.h"
#include "radio/antenna.h"
#include "terrain/terrain.h"

namespace magus::radio {

struct SpmParams {
  // COST231-Hata-flavored constants at ~2.1 GHz (K1 absorbs the frequency
  // term: 46.3 + 33.9 log10(2100) ~ 158.9, minus the mobile-antenna
  // correction), matching Atoll's SPM defaults for macro deployments.
  double k1 = 138.5;   ///< constant offset incl. frequency term (dB)
  double k2 = 44.9;    ///< distance slope (dB/decade), d in km
  double k3 = -13.82;  ///< effective TX height gain (dB/decade), h in m
  double k4 = 0.8;     ///< diffraction multiplier (dimensionless)
  double k5 = -6.55;   ///< distance x height cross term
  double k6 = -0.1;    ///< RX height correction (dB/m)
  double rx_height_m = 1.5;
  double min_distance_m = 25.0;  ///< clamp to avoid the near-field singularity
  int max_diffraction_samples = 16;
};

/// Transmitter-side description needed by the propagation model.
struct TransmitterSite {
  geo::Point position;
  double height_m = 30.0;    ///< antenna height above ground
  double azimuth_deg = 0.0;  ///< boresight compass bearing
};

class PropagationModel {
 public:
  /// `terrain` must outlive the model.
  PropagationModel(const terrain::Terrain* terrain, SpmParams params);

  /// Total path "gain" L(T, g) in dB (negative), antenna pattern included:
  ///   L = -(SPM path loss) + antenna_gain(azimuth, elevation, tilt)
  ///       - clutter loss + shadowing
  /// so that received power is simply P_tx_dbm + L. Queries the terrain
  /// directly (exact but slow in bulk).
  [[nodiscard]] double path_gain_db(const TransmitterSite& tx,
                                    const AntennaPattern& antenna,
                                    TiltIndex tilt, geo::Point rx) const;

  /// Same quantity for a grid cell, served from the cache (fast path for
  /// footprint construction). The cache must cover the cell's grid.
  [[nodiscard]] double path_gain_db_cached(
      const TransmitterSite& tx, const AntennaPattern& antenna, TiltIndex tilt,
      geo::GridIndex g, const terrain::TerrainGridCache& cache) const;

  /// The isotropic part only (no antenna pattern): SPM + clutter +
  /// diffraction + shadowing. Exposed for testing and for omni antennas.
  [[nodiscard]] double isotropic_path_gain_db(const TransmitterSite& tx,
                                              geo::Point rx) const;

  [[nodiscard]] const SpmParams& params() const { return params_; }

 private:
  /// Per-receiver terrain inputs, however they were obtained.
  struct RxEnvironment {
    double elevation_m = 0.0;
    double clutter_loss_db = 0.0;
    double shadowing_db = 0.0;
    double diffraction_loss_db = 0.0;
  };

  [[nodiscard]] double isotropic_gain_from(const TransmitterSite& tx,
                                           double tx_ground_m, geo::Point rx,
                                           const RxEnvironment& env) const;
  [[nodiscard]] double pattern_gain_dbi(const TransmitterSite& tx,
                                        double tx_ground_m,
                                        const AntennaPattern& antenna,
                                        TiltIndex tilt, geo::Point rx,
                                        double rx_ground_m) const;
  /// Knife-edge diffraction from a sampled elevation profile.
  [[nodiscard]] double diffraction_from_profile(
      geo::Point a, double elev_a_m, geo::Point b, double elev_b_m,
      const terrain::TerrainGridCache& cache) const;

  const terrain::Terrain* terrain_;
  SpmParams params_;
};

}  // namespace magus::radio
