// Standard Propagation Model (SPM) over procedural terrain.
//
// The paper's path-loss matrices come from Atoll, whose Standard Propagation
// Model is a tuned Hata-style model:
//
//   PL = K1 + K2 log10(d) + K3 log10(h_tx_eff) + K4 * diffraction
//      + K5 log10(d) log10(h_tx_eff) + K6 h_rx + K_clutter
//
// with per-clutter empirical corrections. We implement that structure and
// add the terrain diffraction and correlated shadowing terms from
// magus::terrain, producing the irregular contours of the paper's Figure 3.
//
// Convention: this module returns *negative gain* L in dB (RP = P + L,
// paper Formula 1), so typical values run from about -60 near the site to
// -200 at 30 km, matching the paper's reported range.
//
// Three evaluation paths exist:
//   - a direct one querying the terrain noise fields per call (exact, used
//     in tests and one-off queries),
//   - a cached per-cell one fed by a TerrainGridCache (the bit-exact
//     reference for matrix construction, kept as the baseline the batched
//     kernels are benchmarked and tested against),
//   - a batched row pipeline (site_context / RadialProfileTable /
//     isotropic_row_cached / apply_antenna_row) that hoists per-site
//     constants out of the per-cell loop, samples each terrain diffraction
//     profile once per radial ray instead of once per cell, and splits the
//     evaluation into a tilt-invariant isotropic pass plus a cheap
//     per-tilt antenna pass. This is what FootprintBuilder uses; it is
//     deterministic (bitwise identical for any thread count) and agrees
//     with the per-cell reference up to documented sampling differences
//     (sqrt vs hypot distances; ray-quantized diffraction profiles).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geo/grid_map.h"
#include "geo/point.h"
#include "radio/antenna.h"
#include "terrain/terrain.h"

namespace magus::radio {

struct SpmParams {
  // COST231-Hata-flavored constants at ~2.1 GHz (K1 absorbs the frequency
  // term: 46.3 + 33.9 log10(2100) ~ 158.9, minus the mobile-antenna
  // correction), matching Atoll's SPM defaults for macro deployments.
  double k1 = 138.5;   ///< constant offset incl. frequency term (dB)
  double k2 = 44.9;    ///< distance slope (dB/decade), d in km
  double k3 = -13.82;  ///< effective TX height gain (dB/decade), h in m
  double k4 = 0.8;     ///< diffraction multiplier (dimensionless)
  double k5 = -6.55;   ///< distance x height cross term
  double k6 = -0.1;    ///< RX height correction (dB/m)
  double rx_height_m = 1.5;
  double min_distance_m = 25.0;  ///< clamp to avoid the near-field singularity
  int max_diffraction_samples = 16;
  /// Radial spacing of the shared diffraction-profile samples used by the
  /// batched kernel (matches the reference sampler's near-range spacing).
  double profile_step_m = 400.0;
};

/// Transmitter-side description needed by the propagation model.
struct TransmitterSite {
  geo::Point position;
  double height_m = 30.0;    ///< antenna height above ground
  double azimuth_deg = 0.0;  ///< boresight compass bearing
};

/// Per-transmitter constants hoisted out of the per-cell loops: the site
/// terrain elevation costs a bilinear interpolation, which the reference
/// kernel re-pays for every cell.
struct SiteContext {
  TransmitterSite tx;
  double tx_ground_m = 0.0;  ///< terrain elevation at the site
  double tx_total_m = 0.0;   ///< tx_ground_m + tx.height_m
};

/// Shared terrain diffraction profiles for one transmitter.
//
/// The reference kernel resamples the terrain elevation profile between the
/// site and every receiver cell (up to max_diffraction_samples bilinear
/// lookups per cell). At footprint scale most of those samples coincide:
/// cells at the same bearing share one ray. This table casts one ray per
/// boundary cell (angular step <= one cell width at max range, so the
/// lateral quantization error stays below the grid's own discretization),
/// samples each ray's elevations once at a fixed radial step, and then
/// answers per-cell knife-edge queries with a cheap prefix scan over the
/// stored heights — terrain is sampled once per ray instead of once per
/// cell. build() may be called repeatedly to re-aim the table at another
/// site; storage is reused.
class RadialProfileTable {
 public:
  /// Samples the rays for `site` out to `range_m` on `cache`'s terrain.
  /// `step_m` <= 0 falls back to 400 m spacing.
  void build(const SiteContext& site, double range_m,
             const terrain::TerrainGridCache& cache, double step_m);

  /// Knife-edge diffraction loss (dB, >= 0) toward a receiver at the given
  /// compass bearing / straight-line distance whose antenna tops out at
  /// `rx_total_m`. Identical formula to the reference kernel; only the
  /// profile sampling differs as documented above.
  [[nodiscard]] double diffraction_db(double bearing_deg, double distance_m,
                                      double rx_total_m) const;

  [[nodiscard]] std::size_t ray_count() const { return ray_count_; }
  [[nodiscard]] std::size_t samples_per_ray() const {
    return samples_per_ray_;
  }
  /// Total terrain samples taken by the last build() (the cost the table
  /// amortizes across cells; exported as pathloss.build.profile_samples).
  [[nodiscard]] std::size_t sample_count() const {
    return ray_count_ * samples_per_ray_;
  }

 private:
  std::size_t ray_count_ = 0;
  std::size_t samples_per_ray_ = 0;
  double step_m_ = 0.0;
  double step_deg_ = 0.0;
  double tx_total_m_ = 0.0;
  std::vector<float> heights_;  ///< [ray][sample], sample k at (k+1)*step_m
};

class PropagationModel {
 public:
  /// `terrain` must outlive the model.
  PropagationModel(const terrain::Terrain* terrain, SpmParams params);

  /// Total path "gain" L(T, g) in dB (negative), antenna pattern included:
  ///   L = -(SPM path loss) + antenna_gain(azimuth, elevation, tilt)
  ///       - clutter loss + shadowing
  /// so that received power is simply P_tx_dbm + L. Queries the terrain
  /// directly (exact but slow in bulk).
  [[nodiscard]] double path_gain_db(const TransmitterSite& tx,
                                    const AntennaPattern& antenna,
                                    TiltIndex tilt, geo::Point rx) const;

  /// Same quantity for a grid cell, served from the cache. This is the
  /// bit-exact per-cell reference the batched row kernel is validated
  /// against; bulk construction goes through the batched pipeline below.
  [[nodiscard]] double path_gain_db_cached(
      const TransmitterSite& tx, const AntennaPattern& antenna, TiltIndex tilt,
      geo::GridIndex g, const terrain::TerrainGridCache& cache) const;

  /// The isotropic part only (no antenna pattern): SPM + clutter +
  /// diffraction + shadowing. Exposed for testing and for omni antennas.
  [[nodiscard]] double isotropic_path_gain_db(const TransmitterSite& tx,
                                              geo::Point rx) const;

  /// Hoists the per-site constants (one bilinear terrain lookup) for the
  /// batched kernels.
  [[nodiscard]] SiteContext site_context(
      const TransmitterSite& tx, const terrain::TerrainGridCache& cache) const;

  /// Batched isotropic pass over `count` consecutive cells of one grid row
  /// starting at cell `first` (all in the same row). Writes, per cell, the
  /// isotropic gain (SPM + clutter + shadowing + profile-table diffraction)
  /// and the geometry the antenna pass needs (azimuth off boresight,
  /// elevation angle). These planes are tilt-invariant: one isotropic pass
  /// per sector serves every tilt's footprint. Deterministic; safe to call
  /// concurrently with distinct output spans.
  void isotropic_row_cached(const SiteContext& site, geo::GridIndex first,
                            std::int32_t count,
                            const terrain::TerrainGridCache& cache,
                            const RadialProfileTable& profiles,
                            std::span<float> iso_db,
                            std::span<float> azimuth_off_deg,
                            std::span<float> elevation_deg) const;

  /// Scalar per-cell twin of isotropic_row_cached, kept verbatim as the
  /// bit-identity oracle for the SIMD row pass (the identity tests compare
  /// the two across tail residues and lane widths).
  void isotropic_row_reference(const SiteContext& site, geo::GridIndex first,
                               std::int32_t count,
                               const terrain::TerrainGridCache& cache,
                               const RadialProfileTable& profiles,
                               std::span<float> iso_db,
                               std::span<float> azimuth_off_deg,
                               std::span<float> elevation_deg) const;

  /// Per-tilt pass: total gain = iso + antenna.gain_dbi(azimuth, elevation,
  /// tilt) for each of the `count` cells. The only tilt-dependent work —
  /// pure arithmetic, no terrain or transcendental-heavy geometry.
  void apply_antenna_row(const AntennaPattern& antenna, TiltIndex tilt,
                         std::span<const float> iso_db,
                         std::span<const float> azimuth_off_deg,
                         std::span<const float> elevation_deg,
                         std::int32_t count, std::span<float> out_gain_db) const;

  [[nodiscard]] const SpmParams& params() const { return params_; }

 private:
  /// Per-receiver terrain inputs, however they were obtained.
  struct RxEnvironment {
    double elevation_m = 0.0;
    double clutter_loss_db = 0.0;
    double shadowing_db = 0.0;
    double diffraction_loss_db = 0.0;
  };

  [[nodiscard]] double isotropic_gain_from(const TransmitterSite& tx,
                                           double tx_ground_m, geo::Point rx,
                                           const RxEnvironment& env) const;
  [[nodiscard]] double pattern_gain_dbi(const TransmitterSite& tx,
                                        double tx_ground_m,
                                        const AntennaPattern& antenna,
                                        TiltIndex tilt, geo::Point rx,
                                        double rx_ground_m) const;
  /// Knife-edge diffraction from a per-cell sampled elevation profile (the
  /// reference path; the batched kernel asks the RadialProfileTable).
  [[nodiscard]] double diffraction_from_profile(
      geo::Point a, double elev_a_m, geo::Point b, double elev_b_m,
      const terrain::TerrainGridCache& cache) const;

  const terrain::Terrain* terrain_;
  SpmParams params_;
};

}  // namespace magus::radio
