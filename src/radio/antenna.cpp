#include "radio/antenna.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/simd.h"

namespace magus::radio {

AntennaPattern::AntennaPattern(AntennaParams params) : params_(params) {
  if (params_.horizontal_beamwidth_deg <= 0.0 ||
      params_.vertical_beamwidth_deg <= 0.0) {
    throw std::invalid_argument("AntennaPattern: beamwidths must be positive");
  }
  if (params_.min_tilt_index > params_.max_tilt_index) {
    throw std::invalid_argument("AntennaPattern: empty tilt range");
  }
}

double AntennaPattern::downtilt_deg(TiltIndex tilt) const {
  return params_.base_downtilt_deg + params_.tilt_step_deg * tilt;
}

double AntennaPattern::gain_dbi(double azimuth_off_boresight_deg,
                                double elevation_deg, TiltIndex tilt) const {
  const double phi = azimuth_off_boresight_deg;
  const double horizontal_loss =
      std::min(12.0 * (phi / params_.horizontal_beamwidth_deg) *
                   (phi / params_.horizontal_beamwidth_deg),
               params_.front_back_ratio_db);

  // The beam points `downtilt` degrees below the horizon; elevation_deg is
  // measured from the horizon (negative = below).
  const double theta_off_beam = elevation_deg + downtilt_deg(tilt);
  const double vertical_loss =
      std::min(12.0 * (theta_off_beam / params_.vertical_beamwidth_deg) *
                   (theta_off_beam / params_.vertical_beamwidth_deg),
               params_.side_lobe_limit_db);

  const double total_loss =
      std::min(horizontal_loss + vertical_loss, params_.front_back_ratio_db);
  return params_.boresight_gain_dbi - total_loss;
}

void AntennaPattern::gain_row(std::span<const float> iso_db,
                              std::span<const float> azimuth_off_boresight_deg,
                              std::span<const float> elevation_deg,
                              TiltIndex tilt, std::int32_t count,
                              std::span<float> out_gain_db) const {
  namespace vx = util::simd;
  constexpr std::int32_t K = vx::kWidth;
  // Lane arithmetic mirrors gain_dbi term by term (same association, no
  // FMA contraction); min_d's "b wins on equal" matches std::min exactly
  // for the finite, non-±0 values here.
  const vx::vdouble vhb = vx::set1_d(params_.horizontal_beamwidth_deg);
  const vx::vdouble vvb = vx::set1_d(params_.vertical_beamwidth_deg);
  const vx::vdouble vfb = vx::set1_d(params_.front_back_ratio_db);
  const vx::vdouble vsla = vx::set1_d(params_.side_lobe_limit_db);
  const vx::vdouble vtilt = vx::set1_d(downtilt_deg(tilt));
  const vx::vdouble vbore = vx::set1_d(params_.boresight_gain_dbi);
  const vx::vdouble v12 = vx::set1_d(12.0);
  std::int32_t i = 0;
  for (; i + K <= count; i += K) {
    const auto j = static_cast<std::size_t>(i);
    const vx::vdouble phi = vx::to_double(
        vx::loadu_f(azimuth_off_boresight_deg.data() + j));
    const vx::vdouble ph = vx::div_d(phi, vhb);
    const vx::vdouble hl = vx::min_d(vx::mul_d(vx::mul_d(v12, ph), ph), vfb);
    const vx::vdouble theta = vx::add_d(
        vx::to_double(vx::loadu_f(elevation_deg.data() + j)), vtilt);
    const vx::vdouble th = vx::div_d(theta, vvb);
    const vx::vdouble vl =
        vx::min_d(vx::mul_d(vx::mul_d(v12, th), th), vsla);
    const vx::vdouble total = vx::min_d(vx::add_d(hl, vl), vfb);
    const vx::vdouble gain = vx::add_d(
        vx::to_double(vx::loadu_f(iso_db.data() + j)),
        vx::sub_d(vbore, total));
    vx::storeu_f(out_gain_db.data() + j, vx::to_float(gain));
  }
  for (; i < count; ++i) {
    const auto j = static_cast<std::size_t>(i);
    out_gain_db[j] = static_cast<float>(
        static_cast<double>(iso_db[j]) +
        gain_dbi(azimuth_off_boresight_deg[j], elevation_deg[j], tilt));
  }
}

}  // namespace magus::radio
