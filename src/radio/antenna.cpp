#include "radio/antenna.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace magus::radio {

AntennaPattern::AntennaPattern(AntennaParams params) : params_(params) {
  if (params_.horizontal_beamwidth_deg <= 0.0 ||
      params_.vertical_beamwidth_deg <= 0.0) {
    throw std::invalid_argument("AntennaPattern: beamwidths must be positive");
  }
  if (params_.min_tilt_index > params_.max_tilt_index) {
    throw std::invalid_argument("AntennaPattern: empty tilt range");
  }
}

double AntennaPattern::downtilt_deg(TiltIndex tilt) const {
  return params_.base_downtilt_deg + params_.tilt_step_deg * tilt;
}

double AntennaPattern::gain_dbi(double azimuth_off_boresight_deg,
                                double elevation_deg, TiltIndex tilt) const {
  const double phi = azimuth_off_boresight_deg;
  const double horizontal_loss =
      std::min(12.0 * (phi / params_.horizontal_beamwidth_deg) *
                   (phi / params_.horizontal_beamwidth_deg),
               params_.front_back_ratio_db);

  // The beam points `downtilt` degrees below the horizon; elevation_deg is
  // measured from the horizon (negative = below).
  const double theta_off_beam = elevation_deg + downtilt_deg(tilt);
  const double vertical_loss =
      std::min(12.0 * (theta_off_beam / params_.vertical_beamwidth_deg) *
                   (theta_off_beam / params_.vertical_beamwidth_deg),
               params_.side_lobe_limit_db);

  const double total_loss =
      std::min(horizontal_loss + vertical_loss, params_.front_back_ratio_db);
  return params_.boresight_gain_dbi - total_loss;
}

}  // namespace magus::radio
