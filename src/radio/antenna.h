// Directional sector antenna model with electrical downtilt.
//
// Follows the 3GPP TR 36.814 parametrization used in LTE system studies:
//
//   A_h(phi)   = -min(12 (phi / phi_3dB)^2,  A_max)          horizontal cut
//   A_v(theta) = -min(12 ((theta - theta_tilt)/theta_3dB)^2, SLA_v)
//   A(phi, theta) = -min(-(A_h + A_v), A_max)
//
// plus a peak boresight gain in dBi. Tilt is configured in discrete steps
// (TiltIndex) like the paper's Atoll data, which ships one path-loss matrix
// per tilt setting (16 settings besides the normal case).
#pragma once

#include <cstdint>
#include <span>

namespace magus::radio {

/// Discrete electrical tilt setting. 0 is the planned (default) tilt; each
/// step changes the physical downtilt angle by AntennaPattern::tilt_step_deg.
/// Positive index = more downtilt (shrinks coverage), negative = uptilt
/// (extends coverage), matching the paper's up/downtilt terminology.
using TiltIndex = std::int8_t;

struct AntennaParams {
  double boresight_gain_dbi = 15.0;
  double horizontal_beamwidth_deg = 65.0;  ///< 3 dB beamwidth, horizontal cut
  double vertical_beamwidth_deg = 10.0;    ///< 3 dB beamwidth, vertical cut
  double front_back_ratio_db = 25.0;       ///< A_max: max horizontal loss
  double side_lobe_limit_db = 20.0;        ///< SLA_v: max vertical loss
  double base_downtilt_deg = 4.0;          ///< physical downtilt at index 0
  double tilt_step_deg = 1.0;              ///< degrees per TiltIndex step
  TiltIndex min_tilt_index = -8;           ///< deepest uptilt setting
  TiltIndex max_tilt_index = 8;            ///< deepest downtilt setting
};

class AntennaPattern {
 public:
  explicit AntennaPattern(AntennaParams params);

  [[nodiscard]] const AntennaParams& params() const { return params_; }

  /// Antenna gain (dBi, can be negative off-beam) toward a target at
  /// `azimuth_off_boresight_deg` horizontally and `elevation_deg` vertically
  /// (negative elevation = below the antenna horizon, the usual case for a
  /// ground UE), with electrical tilt `tilt`.
  [[nodiscard]] double gain_dbi(double azimuth_off_boresight_deg,
                                double elevation_deg, TiltIndex tilt) const;

  /// Row variant of gain_dbi, SIMD-vectorized across cells:
  /// out_gain_db[i] = float(double(iso_db[i]) + gain_dbi(azimuth[i],
  /// elevation[i], tilt)) for i in [0, count) — bit-identical to the
  /// per-cell loop (the pattern formula is pure mul/div/add/min, all
  /// exactly rounded IEEE ops).
  void gain_row(std::span<const float> iso_db,
                std::span<const float> azimuth_off_boresight_deg,
                std::span<const float> elevation_deg, TiltIndex tilt,
                std::int32_t count, std::span<float> out_gain_db) const;

  /// Effective downtilt angle (degrees below horizon) at a tilt setting.
  [[nodiscard]] double downtilt_deg(TiltIndex tilt) const;

  /// Number of supported tilt settings (inclusive range).
  [[nodiscard]] int tilt_setting_count() const {
    return params_.max_tilt_index - params_.min_tilt_index + 1;
  }

 private:
  AntennaParams params_;
};

}  // namespace magus::radio
