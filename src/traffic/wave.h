// Wave composition: merging many markets' campaign schedules into one
// fleet-wide sequence of shared maintenance windows.
//
// Each market's campaign is a chain — its windows must run in order, one
// per shared window at most (the market has one local crew shift per
// night). The fleet constraint is crew concurrency: the carrier can staff
// at most `crew_cap` markets in any shared window. Composing a wave is
// therefore scheduling unit-task chains on `crew_cap` machines; the
// longest-remaining-chain-first greedy used here is optimal for that
// structure: the makespan always equals
//   max(ceil(total_windows / crew_cap), longest_chain).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace magus::traffic {

struct MarketWaveInput {
  /// Caller-chosen market key (the fleet layer passes its MarketId).
  std::int32_t market = 0;
  /// Windows in this market's campaign schedule (its chain length).
  std::size_t window_count = 0;
};

struct WaveSlot {
  /// (market, market-local window index) pairs staffed in this shared
  /// window; at most crew_cap entries, at most one per market.
  std::vector<std::pair<std::int32_t, std::size_t>> assignments;
};

struct WavePlan {
  std::vector<WaveSlot> slots;  ///< fleet windows, in execution order
  std::size_t crew_cap = 0;

  [[nodiscard]] std::size_t makespan() const { return slots.size(); }
};

/// Deterministic composition (ties by market key): every market's windows
/// appear in order, no slot exceeds crew_cap, and the makespan meets the
/// lower bound above. Throws std::invalid_argument when crew_cap is 0.
[[nodiscard]] WavePlan compose_wave(std::span<const MarketWaveInput> markets,
                                    std::size_t crew_cap);

}  // namespace magus::traffic
