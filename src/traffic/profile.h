// Diurnal traffic profiles.
//
// The paper's motivation (§1): upgrades are scheduled "during the off-peak
// hours and low-impact days, when possible", but often spill into or must
// run during business hours, and some locations (airports) have no quiet
// window at all. This module models the time dimension: a TrafficProfile
// scales the frozen UE density by hour-of-week, letting the window planner
// quantify the expected disruption of an upgrade at any start time — with
// and without Magus's mitigation.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace magus::traffic {

inline constexpr int kHoursPerDay = 24;
inline constexpr int kHoursPerWeek = 7 * kHoursPerDay;

/// Hour-of-week index: 0 = Monday 00:00-01:00, 167 = Sunday 23:00-24:00.
struct HourOfWeek {
  int value = 0;

  [[nodiscard]] int day() const { return value / kHoursPerDay; }        // 0=Mon
  [[nodiscard]] int hour_of_day() const { return value % kHoursPerDay; }
  [[nodiscard]] HourOfWeek next() const {
    return HourOfWeek{(value + 1) % kHoursPerWeek};
  }
  [[nodiscard]] std::string label() const;

  friend bool operator==(HourOfWeek, HourOfWeek) = default;
};

/// Relative traffic intensity per hour of week; 1.0 = the weekly mean.
class TrafficProfile {
 public:
  /// Flat profile (every hour at 1.0).
  TrafficProfile();

  /// Builds from explicit multipliers (size kHoursPerWeek), normalized so
  /// the weekly mean is 1. Throws std::invalid_argument on size mismatch
  /// or non-positive entries.
  explicit TrafficProfile(std::vector<double> multipliers);

  /// A typical mixed residential/business cell: weekday double-hump
  /// (morning + evening), quiet nights, flatter weekends.
  [[nodiscard]] static TrafficProfile metropolitan();

  /// A 24/7 location (the paper's airport example): shallow night dip,
  /// no weekday/weekend distinction — no good upgrade window exists.
  [[nodiscard]] static TrafficProfile always_busy();

  /// Business district: tall weekday business-hours plateau, dead nights
  /// and weekends.
  [[nodiscard]] static TrafficProfile business_district();

  [[nodiscard]] double multiplier(HourOfWeek hour) const {
    return multipliers_[static_cast<std::size_t>(hour.value)];
  }

  /// Mean multiplier over [start, start + duration_hours).
  [[nodiscard]] double mean_over(HourOfWeek start, int duration_hours) const;

  /// The hour at which a window of `duration_hours` has the smallest mean
  /// multiplier — the naive scheduler's choice.
  [[nodiscard]] HourOfWeek quietest_window(int duration_hours) const;

 private:
  std::array<double, kHoursPerWeek> multipliers_;
};

}  // namespace magus::traffic
