#include "traffic/wave.h"

#include <algorithm>
#include <stdexcept>

namespace magus::traffic {

WavePlan compose_wave(std::span<const MarketWaveInput> markets,
                      std::size_t crew_cap) {
  if (crew_cap == 0) {
    throw std::invalid_argument("compose_wave: crew_cap must be positive");
  }
  struct Chain {
    std::int32_t market;
    std::size_t remaining;
    std::size_t next_window;
  };
  std::vector<Chain> chains;
  chains.reserve(markets.size());
  for (const MarketWaveInput& input : markets) {
    if (input.window_count == 0) continue;
    chains.push_back({input.market, input.window_count, 0});
  }
  // Deterministic base order; the per-slot sort below only reorders by
  // remaining length, so equal-length chains keep this market-key order.
  std::sort(chains.begin(), chains.end(),
            [](const Chain& a, const Chain& b) { return a.market < b.market; });

  WavePlan plan;
  plan.crew_cap = crew_cap;
  while (!chains.empty()) {
    // Longest remaining chain first: stable_sort keeps the market-key tie
    // order, so composition is deterministic in the input set.
    std::stable_sort(chains.begin(), chains.end(),
                     [](const Chain& a, const Chain& b) {
                       return a.remaining > b.remaining;
                     });
    WaveSlot slot;
    const std::size_t staffed = std::min(crew_cap, chains.size());
    for (std::size_t i = 0; i < staffed; ++i) {
      slot.assignments.emplace_back(chains[i].market, chains[i].next_window);
      ++chains[i].next_window;
      --chains[i].remaining;
    }
    std::erase_if(chains, [](const Chain& c) { return c.remaining == 0; });
    plan.slots.push_back(std::move(slot));
  }
  return plan;
}

}  // namespace magus::traffic
