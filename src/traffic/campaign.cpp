#include "traffic/campaign.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace magus::traffic {

bool upgrades_conflict(const PlannedUpgrade& a, const PlannedUpgrade& b) {
  std::set<net::SectorId> sectors_a(a.targets.begin(), a.targets.end());
  sectors_a.insert(a.involved.begin(), a.involved.end());
  const auto touches = [&](net::SectorId s) { return sectors_a.contains(s); };
  return std::any_of(b.targets.begin(), b.targets.end(), touches) ||
         std::any_of(b.involved.begin(), b.involved.end(), touches);
}

PlannedUpgrade without_quarantined(
    PlannedUpgrade upgrade, std::span<const net::SectorId> quarantined) {
  const std::set<net::SectorId> fenced(quarantined.begin(), quarantined.end());
  std::erase_if(upgrade.involved,
                [&](net::SectorId s) { return fenced.contains(s); });
  return upgrade;
}

bool targets_quarantined(const PlannedUpgrade& upgrade,
                         std::span<const net::SectorId> quarantined) {
  const std::set<net::SectorId> fenced(quarantined.begin(), quarantined.end());
  return std::any_of(upgrade.targets.begin(), upgrade.targets.end(),
                     [&](net::SectorId s) { return fenced.contains(s); });
}

CampaignSchedule schedule_campaign(std::span<const PlannedUpgrade> upgrades,
                                   std::size_t max_windows) {
  const std::size_t n = upgrades.size();
  CampaignSchedule result;

  // Conflict graph.
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (upgrades_conflict(upgrades[i], upgrades[j])) {
        adjacency[i].push_back(j);
        adjacency[j].push_back(i);
        result.conflicts.emplace_back(i, j);
      }
    }
  }

  // Largest-degree-first greedy coloring. Ties break on upgrade *content*
  // (sorted targets, then sorted involved), not input index, so the window
  // assignment is invariant under permutation of the upgrade list — two
  // schedules of the same campaign differ only in index relabeling. Input
  // index is the final tie-break for byte-identical duplicates.
  std::vector<std::pair<std::vector<net::SectorId>, std::vector<net::SectorId>>>
      content(n);
  for (std::size_t i = 0; i < n; ++i) {
    content[i].first = upgrades[i].targets;
    content[i].second = upgrades[i].involved;
    std::sort(content[i].first.begin(), content[i].first.end());
    std::sort(content[i].second.begin(), content[i].second.end());
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (adjacency[a].size() != adjacency[b].size()) {
      return adjacency[a].size() > adjacency[b].size();
    }
    if (content[a] != content[b]) return content[a] < content[b];
    return a < b;
  });

  std::vector<int> color(n, -1);
  int colors_used = 0;
  for (const std::size_t u : order) {
    std::set<int> taken;
    for (const std::size_t v : adjacency[u]) {
      if (color[v] >= 0) taken.insert(color[v]);
    }
    int c = 0;
    while (taken.contains(c)) ++c;
    color[u] = c;
    colors_used = std::max(colors_used, c + 1);
  }
  if (max_windows != 0 &&
      static_cast<std::size_t>(colors_used) > max_windows) {
    throw std::runtime_error(
        "schedule_campaign: conflict structure needs " +
        std::to_string(colors_used) + " windows, only " +
        std::to_string(max_windows) + " allowed");
  }

  result.windows.assign(static_cast<std::size_t>(colors_used), {});
  for (std::size_t i = 0; i < n; ++i) {
    result.windows[static_cast<std::size_t>(color[i])].push_back(i);
  }
  return result;
}

}  // namespace magus::traffic
