#include "traffic/window_planner.h"

#include <stdexcept>

namespace magus::traffic {

double window_time_budget_s(int duration_hours, double utilization) {
  if (duration_hours <= 0) {
    throw std::invalid_argument("window_time_budget_s: non-positive duration");
  }
  if (utilization <= 0.0 || utilization > 1.0) {
    throw std::invalid_argument(
        "window_time_budget_s: utilization outside (0, 1]");
  }
  return static_cast<double>(duration_hours) * 3600.0 * utilization;
}

WindowPlanner::WindowPlanner(TrafficProfile profile)
    : profile_(std::move(profile)) {}

WindowPlan WindowPlanner::assess(const core::MitigationPlan& plan,
                                 int duration_hours) const {
  if (duration_hours <= 0) {
    throw std::invalid_argument("WindowPlanner: non-positive duration");
  }
  const double loss_unmitigated = plan.f_before - plan.f_upgrade;
  const double loss_mitigated = plan.f_before - plan.f_after;

  WindowPlan result;
  result.by_start_hour.reserve(kHoursPerWeek);
  for (int h = 0; h < kHoursPerWeek; ++h) {
    WindowAssessment w;
    w.start = HourOfWeek{h};
    w.traffic_mean = profile_.mean_over(w.start, duration_hours);
    // Disruption scales with how many UEs are actually on-air during the
    // window relative to the reference density the plan was computed at.
    const double weight = w.traffic_mean * duration_hours;
    w.disruption_unmitigated = loss_unmitigated * weight;
    w.disruption_mitigated = loss_mitigated * weight;
    result.by_start_hour.push_back(w);
  }

  result.best_unmitigated = result.by_start_hour.front();
  result.best_mitigated = result.by_start_hour.front();
  result.worst_window = result.by_start_hour.front();
  for (const auto& w : result.by_start_hour) {
    if (w.disruption_unmitigated <
        result.best_unmitigated.disruption_unmitigated) {
      result.best_unmitigated = w;
    }
    if (w.disruption_mitigated < result.best_mitigated.disruption_mitigated) {
      result.best_mitigated = w;
    }
    if (w.disruption_unmitigated >
        result.worst_window.disruption_unmitigated) {
      result.worst_window = w;
    }
  }
  return result;
}

}  // namespace magus::traffic
