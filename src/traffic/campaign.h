// Campaign scheduling: assigning many planned upgrades to maintenance
// windows so that no two concurrent upgrades interact.
//
// Magus tunes a target's *neighbors*; two upgrades whose neighborhoods
// overlap cannot run in the same window (one upgrade's mitigation would
// tune sectors the other is taking down or also tuning). This is a
// graph-coloring problem on the conflict graph; the scheduler uses the
// classic largest-degree-first greedy, which is deterministic and within
// one color of optimal on interval-like conflict structures.
#pragma once

#include <span>
#include <vector>

#include "net/sector.h"

namespace magus::traffic {

struct PlannedUpgrade {
  /// Sectors going off-air.
  std::vector<net::SectorId> targets;
  /// Sectors Magus will tune for it (MitigationPlan::involved).
  std::vector<net::SectorId> involved;
  int duration_hours = 5;
};

struct CampaignSchedule {
  /// window index -> indices into the input upgrade list.
  std::vector<std::vector<std::size_t>> windows;
  /// Pairs of upgrade indices that conflict (touch shared sectors).
  std::vector<std::pair<std::size_t, std::size_t>> conflicts;

  [[nodiscard]] std::size_t window_count() const { return windows.size(); }
};

/// True when the two upgrades share any sector (target or tuned neighbor).
[[nodiscard]] bool upgrades_conflict(const PlannedUpgrade& a,
                                     const PlannedUpgrade& b);

/// A copy of `upgrade` with every quarantined sector removed from the
/// `involved` tuning set — the campaign runner's graceful-degradation
/// input to the planner (the plan is recomputed on the reduced set; a
/// fenced-off neighbor is never tuned). Targets are left untouched: a
/// quarantined *target* makes the upgrade unexecutable this window, which
/// the caller must detect (targets_quarantined) and skip.
[[nodiscard]] PlannedUpgrade without_quarantined(
    PlannedUpgrade upgrade, std::span<const net::SectorId> quarantined);

/// True when any of the upgrade's targets is currently quarantined.
[[nodiscard]] bool targets_quarantined(
    const PlannedUpgrade& upgrade,
    std::span<const net::SectorId> quarantined);

/// Greedy conflict-free assignment. Every upgrade lands in exactly one
/// window; upgrades that conflict never share a window. The number of
/// windows is determined by the conflict structure (max_windows = 0 means
/// unbounded; otherwise throws std::runtime_error if the bound cannot be
/// met).
[[nodiscard]] CampaignSchedule schedule_campaign(
    std::span<const PlannedUpgrade> upgrades, std::size_t max_windows = 0);

}  // namespace magus::traffic
