// Upgrade-window planning: when should a 4-6 hour upgrade start, and how
// much does Magus's mitigation buy at each candidate time?
//
// Expected disruption of an upgrade window = (per-hour utility loss at the
// frozen reference density) x (traffic multiplier of each hour in the
// window), summed over the window. The utility loss is f(C_before) -
// f(C_upgrade) without mitigation and f(C_before) - f(C_after) with Magus;
// both come from one MitigationPlan, so ranking every start hour is pure
// arithmetic after a single planning run.
//
// This quantifies the paper's motivating claims: upgrades "last 4-6 hours",
// are often forced into business hours, and some sites (airports) have no
// quiet window at all — exactly where proactive mitigation matters most.
#pragma once

#include <vector>

#include "core/planner.h"
#include "traffic/profile.h"

namespace magus::traffic {

struct WindowAssessment {
  HourOfWeek start;
  double traffic_mean = 0.0;  ///< mean multiplier over the window
  /// Expected disruption (utility-loss x hours, traffic weighted).
  double disruption_unmitigated = 0.0;
  double disruption_mitigated = 0.0;

  [[nodiscard]] double saving() const {
    return disruption_unmitigated - disruption_mitigated;
  }
};

struct WindowPlan {
  std::vector<WindowAssessment> by_start_hour;  ///< all 168 starts
  WindowAssessment best_unmitigated;  ///< naive scheduler's pick
  WindowAssessment best_mitigated;    ///< best start given Magus runs
  /// Disruption of the *worst* window with mitigation vs without: how much
  /// Magus de-risks a forced (vendor-dictated) business-hours slot.
  WindowAssessment worst_window;
};

/// Simulated execution-time budget of one maintenance window: the window's
/// wall-clock span scaled by the fraction usable for configuration work
/// (the rest is vendor hands-on time — racking, cabling, software load —
/// during which no pushes happen). The campaign runner hands this to the
/// executor's deadline watchdog, which skips recovery-ladder rungs whose
/// worst-case cost no longer fits. Throws on non-positive hours or a
/// utilization outside (0, 1].
[[nodiscard]] double window_time_budget_s(int duration_hours,
                                          double utilization = 0.25);

class WindowPlanner {
 public:
  explicit WindowPlanner(TrafficProfile profile);

  /// Assesses every start hour for an upgrade of `duration_hours` whose
  /// mitigation plan is `plan`. Requires f_before >= f_after >= f_upgrade
  /// ordering from a planner run.
  [[nodiscard]] WindowPlan assess(const core::MitigationPlan& plan,
                                  int duration_hours) const;

  [[nodiscard]] const TrafficProfile& profile() const { return profile_; }

 private:
  TrafficProfile profile_;
};

}  // namespace magus::traffic
