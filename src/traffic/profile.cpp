#include "traffic/profile.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace magus::traffic {

std::string HourOfWeek::label() const {
  static constexpr const char* kDays[] = {"Mon", "Tue", "Wed", "Thu",
                                          "Fri", "Sat", "Sun"};
  return std::string(kDays[day()]) + " " +
         (hour_of_day() < 10 ? "0" : "") + std::to_string(hour_of_day()) +
         ":00";
}

TrafficProfile::TrafficProfile() { multipliers_.fill(1.0); }

TrafficProfile::TrafficProfile(std::vector<double> multipliers) {
  if (multipliers.size() != static_cast<std::size_t>(kHoursPerWeek)) {
    throw std::invalid_argument("TrafficProfile: need 168 hourly values");
  }
  double sum = 0.0;
  for (const double m : multipliers) {
    if (m <= 0.0) {
      throw std::invalid_argument("TrafficProfile: multipliers must be > 0");
    }
    sum += m;
  }
  const double mean = sum / kHoursPerWeek;
  for (int h = 0; h < kHoursPerWeek; ++h) {
    multipliers_[static_cast<std::size_t>(h)] = multipliers[h] / mean;
  }
}

namespace {
/// Smooth bump centered at `center` (hours) with the given width.
[[nodiscard]] double bump(double hour, double center, double width) {
  const double d = (hour - center) / width;
  return std::exp(-d * d);
}
}  // namespace

TrafficProfile TrafficProfile::metropolitan() {
  std::vector<double> m(kHoursPerWeek);
  for (int h = 0; h < kHoursPerWeek; ++h) {
    const int day = h / kHoursPerDay;
    const double hod = h % kHoursPerDay;
    const bool weekend = day >= 5;
    double level = 0.25;  // night floor
    if (weekend) {
      level += 0.9 * bump(hod, 14.0, 5.5);  // one broad afternoon hump
    } else {
      level += 1.1 * bump(hod, 9.5, 2.5);   // morning commute + office
      level += 1.3 * bump(hod, 19.0, 3.5);  // evening peak
      level += 0.6 * bump(hod, 13.0, 2.0);  // lunch
    }
    m[static_cast<std::size_t>(h)] = level;
  }
  return TrafficProfile{std::move(m)};
}

TrafficProfile TrafficProfile::always_busy() {
  std::vector<double> m(kHoursPerWeek);
  for (int h = 0; h < kHoursPerWeek; ++h) {
    const double hod = h % kHoursPerDay;
    // Shallow sinusoidal dip at night; identical every day.
    m[static_cast<std::size_t>(h)] =
        1.0 + 0.15 * std::sin((hod - 9.0) / 24.0 * 2.0 * std::numbers::pi);
  }
  return TrafficProfile{std::move(m)};
}

TrafficProfile TrafficProfile::business_district() {
  std::vector<double> m(kHoursPerWeek);
  for (int h = 0; h < kHoursPerWeek; ++h) {
    const int day = h / kHoursPerDay;
    const double hod = h % kHoursPerDay;
    const bool weekend = day >= 5;
    double level = 0.12;
    if (!weekend && hod >= 8.0 && hod < 19.0) {
      level = 1.0 + 0.5 * bump(hod, 11.0, 2.0) + 0.5 * bump(hod, 15.0, 2.5);
    }
    m[static_cast<std::size_t>(h)] = level;
  }
  return TrafficProfile{std::move(m)};
}

double TrafficProfile::mean_over(HourOfWeek start, int duration_hours) const {
  if (duration_hours <= 0) {
    throw std::invalid_argument("TrafficProfile: non-positive duration");
  }
  double sum = 0.0;
  HourOfWeek hour = start;
  for (int i = 0; i < duration_hours; ++i) {
    sum += multiplier(hour);
    hour = hour.next();
  }
  return sum / duration_hours;
}

HourOfWeek TrafficProfile::quietest_window(int duration_hours) const {
  HourOfWeek best{0};
  double best_mean = mean_over(best, duration_hours);
  for (int h = 1; h < kHoursPerWeek; ++h) {
    const HourOfWeek candidate{h};
    const double mean = mean_over(candidate, duration_hours);
    if (mean < best_mean) {
      best_mean = mean;
      best = candidate;
    }
  }
  return best;
}

}  // namespace magus::traffic
