// Unit conversions for radio engineering quantities.
//
// Conventions used throughout the library:
//   - Absolute power is expressed in dBm ("_dbm" suffix) or milliwatts
//     ("_mw" suffix).
//   - Relative gain/loss is expressed in dB ("_db" suffix). Path loss is a
//     *negative* gain, matching the paper's Formula 1 (RP = P + L with
//     L in [-200, -20] dB).
//   - Linear power ratios have a "_linear" suffix.
#pragma once

#include <cmath>
#include <span>

namespace magus::util {

/// Boltzmann thermal noise density at 290 K, in dBm per Hz.
inline constexpr double kThermalNoiseDbmPerHz = -174.0;

/// Converts a power ratio in dB to a linear ratio.
[[nodiscard]] inline double db_to_linear(double db) {
  return std::pow(10.0, db / 10.0);
}

/// Converts a linear power ratio to dB. Requires linear > 0.
[[nodiscard]] inline double linear_to_db(double linear) {
  return 10.0 * std::log10(linear);
}

/// Converts absolute power in dBm to milliwatts.
[[nodiscard]] inline double dbm_to_mw(double dbm) { return db_to_linear(dbm); }

/// Converts absolute power in milliwatts to dBm. Requires mw > 0.
[[nodiscard]] inline double mw_to_dbm(double mw) { return linear_to_db(mw); }

/// Converts watts to dBm. Requires watts > 0.
[[nodiscard]] inline double watts_to_dbm(double watts) {
  return mw_to_dbm(watts * 1e3);
}

/// Converts dBm to watts.
[[nodiscard]] inline double dbm_to_watts(double dbm) {
  return dbm_to_mw(dbm) / 1e3;
}

/// Sum of absolute powers given in dBm, returned in dBm.
/// Returns -infinity for an empty span (zero power).
[[nodiscard]] double sum_powers_dbm(std::span<const double> dbm_values);

/// Ratio of two absolute powers (numerator over denominator), in dB.
[[nodiscard]] inline double power_ratio_db(double numerator_dbm,
                                           double denominator_dbm) {
  return numerator_dbm - denominator_dbm;
}

/// True if |a - b| <= tolerance_db when both are finite; also true when both
/// are -infinity (i.e. both represent zero power).
[[nodiscard]] bool near_db(double a, double b, double tolerance_db);

}  // namespace magus::util
