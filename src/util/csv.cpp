#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace magus::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(std::initializer_list<std::string_view> cells) {
  bool first = true;
  for (const auto cell : cells) {
    if (!first) out_ << ',';
    first = false;
    write_escaped(cell);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    first = false;
    write_escaped(cell);
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double value) {
  std::ostringstream s;
  s.precision(6);
  s << value;
  return s.str();
}

std::string CsvWriter::cell(long long value) { return std::to_string(value); }

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

void CsvWriter::write_escaped(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    out_ << cell;
    return;
  }
  out_ << '"';
  for (const char c : cell) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

}  // namespace magus::util
