// Minimal CSV writer for exporting bench results.
//
// Values containing commas, quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace magus::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row. Each cell is escaped as needed.
  void write_row(std::initializer_list<std::string_view> cells);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  [[nodiscard]] static std::string cell(double value);
  [[nodiscard]] static std::string cell(long long value);

  /// Flushes and closes. Also performed by the destructor.
  void close();

 private:
  void write_escaped(std::string_view cell);

  std::ofstream out_;
};

}  // namespace magus::util
