#include "util/args.h"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/thread_pool.h"

namespace magus::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_flag("help", "false", "print this help and exit");
}

void ArgParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  if (flags_.contains(name)) {
    throw std::runtime_error("ArgParser: duplicate flag --" + name);
  }
  flags_[name] = Flag{default_value, default_value, help};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("ArgParser: expected --flag, got '" + token +
                               "'\n" + usage());
    }
    token.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.erase(eq);
      has_value = true;
    }
    auto it = flags_.find(token);
    if (it == flags_.end()) {
      throw std::runtime_error("ArgParser: unknown flag --" + token + "\n" +
                               usage());
    }
    if (!has_value) {
      const bool is_bool_flag =
          it->second.default_value == "true" ||
          it->second.default_value == "false";
      if (is_bool_flag &&
          (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw std::runtime_error("ArgParser: missing value for --" + token);
        }
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
  if (get_bool("help")) {
    std::cout << usage();
    return false;
  }
  return true;
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name).value;
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name).value);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name).value);
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  return v == "true" || v == "1" || v == "yes";
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out << "  --" << name << " (default: " << flag.default_value << ")\n"
        << "      " << flag.help << "\n";
  }
  return out.str();
}

void add_threads_flag(ArgParser& parser) {
  parser.add_flag("threads", "0",
                  "worker threads for candidate evaluation "
                  "(0 = hardware concurrency)");
}

std::size_t threads_from(const ArgParser& parser) {
  const std::int64_t raw = parser.get_int("threads");
  return resolve_thread_count(raw > 0 ? static_cast<std::size_t>(raw) : 0);
}

void add_obs_flags(ArgParser& parser) {
  parser.add_flag("metrics", "",
                  "write a metrics snapshot (JSON) to this path on exit");
  parser.add_flag("trace", "",
                  "collect a Chrome trace-event file (JSON) at this path; "
                  "view in chrome://tracing or Perfetto");
  parser.add_flag("profile", "",
                  "profile the run: write a time-attribution report (JSON) "
                  "to this path, folded flamegraph stacks to <path>.folded, "
                  "and print the summary table on exit");
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::runtime_error("ArgParser: flag --" + name + " not registered");
  }
  return it->second;
}

}  // namespace magus::util
