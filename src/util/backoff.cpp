#include "util/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace magus::util {

double BackoffPolicy::delay_before_attempt_s(int attempt) const {
  if (attempt < 0) {
    throw std::invalid_argument("BackoffPolicy: negative attempt index");
  }
  if (attempt == 0) return 0.0;
  const double raw =
      initial_delay_s * std::pow(multiplier, static_cast<double>(attempt - 1));
  return std::clamp(raw, 0.0, max_delay_s);
}

double BackoffPolicy::delay_before_attempt_s(int attempt,
                                             Xoshiro256ss& rng) const {
  if (jitter_fraction < 0.0 || jitter_fraction > 1.0) {
    throw std::invalid_argument("BackoffPolicy: jitter_fraction outside [0,1]");
  }
  const double base = delay_before_attempt_s(attempt);
  if (jitter_fraction == 0.0 || base == 0.0) return base;
  return base * (1.0 + jitter_fraction * (rng.uniform() - 0.5));
}

double BackoffPolicy::worst_case_total_delay_s() const {
  double total = 0.0;
  for (int a = 0; a < max_attempts; ++a) total += delay_before_attempt_s(a);
  return total * (1.0 + 0.5 * std::max(0.0, jitter_fraction));
}

}  // namespace magus::util
