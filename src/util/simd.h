#pragma once
// util::simd — a small portable SIMD layer for the evaluation kernels.
//
// One backend is selected at compile time via MAGUS_SIMD_LEVEL (set by the
// MAGUS_SIMD CMake option; auto-detected from the compiler's target macros
// when the option is absent):
//
//   0  scalar fallback (kWidth = 1) — the reference semantics
//   1  SSE2  (kWidth = 2)
//   2  AVX2  (kWidth = 4, requires -mavx2)
//   3  NEON  (kWidth = 2, aarch64)
//
// The kernel contract is *bitwise identity across backends*: a kernel
// written against this API produces the same bytes at every lane width.
// That works because the API exposes only exactly-rounded IEEE-754
// operations (add/sub/mul/div/sqrt/min/max/compare/convert) — one vector
// lane performs the identical rounding the scalar expression performs —
// and because the layer deliberately has NO fused multiply-add: the build
// pins -ffp-contract=off so neither the kernels here nor the scalar
// fallback contract a*b+c into a single rounding. Transcendentals
// (pow/log10/atan2) are not reproducible lane-for-lane across libm
// implementations and are intentionally absent: kernels keep them in
// scalar code (see DESIGN.md §15).
//
// Semantics notes (all backends match these exactly):
//  - min_*/max_*(a, b) return b when a == b or either is NaN (the MINPD /
//    MAXPD rule). Callers translating std::min/std::max must pick the
//    argument order that matches on the ±0.0 and equal-value cases.
//  - Comparisons return all-ones lane masks; any compare with NaN is false
//    (ordered, non-signaling). blend_*(m, a, b) = m ? a : b per lane.
//  - Masked gathers never touch memory in inactive lanes (safe for
//    out-of-range indices there); inactive lanes take `fill`.
//  - Partial loads/stores move exactly n <= kWidth leading lanes;
//    loadu_*_partial fills the rest with `fill`, storeu_*_partial leaves
//    memory beyond n untouched.
//
// vfloat and vint carry kWidth lanes (the *double* width), so float and
// int data gathered for a block of cells pairs 1:1 with vdouble math.

#include <cmath>
#include <cstdint>
#include <cstring>

#ifndef MAGUS_SIMD_LEVEL
#if defined(__AVX2__)
#define MAGUS_SIMD_LEVEL 2
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MAGUS_SIMD_LEVEL 3
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define MAGUS_SIMD_LEVEL 1
#else
#define MAGUS_SIMD_LEVEL 0
#endif
#endif

#if MAGUS_SIMD_LEVEL == 2 && !defined(__AVX2__)
#error "MAGUS_SIMD_LEVEL=2 requires -mavx2 (let CMake's MAGUS_SIMD option add it)"
#endif
#if MAGUS_SIMD_LEVEL == 1 && !(defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64))
#error "MAGUS_SIMD_LEVEL=1 requires SSE2"
#endif
#if MAGUS_SIMD_LEVEL == 3 && !(defined(__aarch64__) && defined(__ARM_NEON))
#error "MAGUS_SIMD_LEVEL=3 requires aarch64 NEON"
#endif

#if MAGUS_SIMD_LEVEL == 1 || MAGUS_SIMD_LEVEL == 2
#include <immintrin.h>
#elif MAGUS_SIMD_LEVEL == 3
#include <arm_neon.h>
#endif

namespace magus::util::simd {

inline constexpr int kLevel = MAGUS_SIMD_LEVEL;

#if MAGUS_SIMD_LEVEL == 2
// ---------------------------------------------------------------- AVX2 --
inline constexpr int kWidth = 4;
inline constexpr const char* kBackendName = "avx2";

struct vdouble { __m256d v; };
struct vfloat  { __m128  v; };
struct vint    { __m128i v; };
struct dmask   { __m256d v; };  // all-ones 64-bit lanes
struct fmask   { __m128  v; };  // all-ones 32-bit lanes (floats and ints)

inline vdouble set1_d(double x) { return {_mm256_set1_pd(x)}; }
inline vfloat  set1_f(float x)  { return {_mm_set1_ps(x)}; }
inline vint    set1_i(std::int32_t x) { return {_mm_set1_epi32(x)}; }

inline vdouble loadu_d(const double* p) { return {_mm256_loadu_pd(p)}; }
inline vfloat  loadu_f(const float* p)  { return {_mm_loadu_ps(p)}; }
inline vint    loadu_i(const std::int32_t* p) {
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
}
inline void storeu_d(double* p, vdouble a) { _mm256_storeu_pd(p, a.v); }
inline void storeu_f(float* p, vfloat a)   { _mm_storeu_ps(p, a.v); }
inline void storeu_i(std::int32_t* p, vint a) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
}

namespace detail {
// 8 live then 8 dead 32-bit lanes; pointer arithmetic carves an n-lane mask.
alignas(32) inline constexpr std::int32_t kTail32[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
alignas(32) inline constexpr std::int64_t kTail64[8] = {
    -1, -1, -1, -1, 0, 0, 0, 0};
inline __m256i tail_mask64(int n) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTail64 + (4 - n)));
}
inline __m128i tail_mask32(int n) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(kTail32 + (8 - n)));
}
}  // namespace detail

inline vdouble loadu_d_partial(const double* p, int n, double fill) {
  __m256i m = detail::tail_mask64(n);
  __m256d v = _mm256_maskload_pd(p, m);
  return {_mm256_blendv_pd(_mm256_set1_pd(fill), v, _mm256_castsi256_pd(m))};
}
inline vfloat loadu_f_partial(const float* p, int n, float fill) {
  __m128i m = detail::tail_mask32(n);
  __m128 v = _mm_maskload_ps(p, m);
  return {_mm_blendv_ps(_mm_set1_ps(fill), v, _mm_castsi128_ps(m))};
}
inline vint loadu_i_partial(const std::int32_t* p, int n, std::int32_t fill) {
  __m128i m = detail::tail_mask32(n);
  __m128i v = _mm_maskload_epi32(p, m);
  return {_mm_blendv_epi8(_mm_set1_epi32(fill), v, m)};
}
inline void storeu_d_partial(double* p, vdouble a, int n) {
  _mm256_maskstore_pd(p, detail::tail_mask64(n), a.v);
}
inline void storeu_f_partial(float* p, vfloat a, int n) {
  _mm_maskstore_ps(p, detail::tail_mask32(n), a.v);
}
inline void storeu_i_partial(std::int32_t* p, vint a, int n) {
  _mm_maskstore_epi32(p, detail::tail_mask32(n), a.v);
}

inline vdouble add_d(vdouble a, vdouble b) { return {_mm256_add_pd(a.v, b.v)}; }
inline vdouble sub_d(vdouble a, vdouble b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline vdouble mul_d(vdouble a, vdouble b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline vdouble div_d(vdouble a, vdouble b) { return {_mm256_div_pd(a.v, b.v)}; }
inline vdouble min_d(vdouble a, vdouble b) { return {_mm256_min_pd(a.v, b.v)}; }
inline vdouble max_d(vdouble a, vdouble b) { return {_mm256_max_pd(a.v, b.v)}; }
inline vdouble sqrt_d(vdouble a) { return {_mm256_sqrt_pd(a.v)}; }
inline vdouble neg_d(vdouble a) {
  return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
}
inline vfloat add_f(vfloat a, vfloat b) { return {_mm_add_ps(a.v, b.v)}; }
inline vfloat sub_f(vfloat a, vfloat b) { return {_mm_sub_ps(a.v, b.v)}; }
inline vfloat mul_f(vfloat a, vfloat b) { return {_mm_mul_ps(a.v, b.v)}; }
inline vfloat min_f(vfloat a, vfloat b) { return {_mm_min_ps(a.v, b.v)}; }
inline vfloat max_f(vfloat a, vfloat b) { return {_mm_max_ps(a.v, b.v)}; }
inline vint add_i(vint a, vint b) { return {_mm_add_epi32(a.v, b.v)}; }
inline vint sub_i(vint a, vint b) { return {_mm_sub_epi32(a.v, b.v)}; }

inline vdouble to_double(vfloat a) { return {_mm256_cvtps_pd(a.v)}; }
inline vfloat to_float(vdouble a) { return {_mm256_cvtpd_ps(a.v)}; }

inline dmask cmp_gt_d(vdouble a, vdouble b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
inline dmask cmp_lt_d(vdouble a, vdouble b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline dmask cmp_le_d(vdouble a, vdouble b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline dmask cmp_ge_d(vdouble a, vdouble b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline dmask cmp_eq_d(vdouble a, vdouble b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
inline fmask cmp_gt_f(vfloat a, vfloat b) { return {_mm_cmpgt_ps(a.v, b.v)}; }
inline fmask cmp_lt_f(vfloat a, vfloat b) { return {_mm_cmplt_ps(a.v, b.v)}; }
inline fmask cmp_le_f(vfloat a, vfloat b) { return {_mm_cmple_ps(a.v, b.v)}; }
inline fmask cmp_ge_f(vfloat a, vfloat b) { return {_mm_cmpge_ps(a.v, b.v)}; }
inline fmask cmp_eq_f(vfloat a, vfloat b) { return {_mm_cmpeq_ps(a.v, b.v)}; }
inline fmask isnan_f(vfloat a) { return {_mm_cmpunord_ps(a.v, a.v)}; }
inline fmask cmp_gt_i(vint a, vint b) {
  return {_mm_castsi128_ps(_mm_cmpgt_epi32(a.v, b.v))};
}
inline fmask cmp_eq_i(vint a, vint b) {
  return {_mm_castsi128_ps(_mm_cmpeq_epi32(a.v, b.v))};
}

inline fmask m_and(fmask a, fmask b) { return {_mm_and_ps(a.v, b.v)}; }
inline fmask m_or(fmask a, fmask b)  { return {_mm_or_ps(a.v, b.v)}; }
inline fmask m_not(fmask a) {
  return {_mm_xor_ps(a.v, _mm_castsi128_ps(_mm_set1_epi32(-1)))};
}
inline dmask m_and(dmask a, dmask b) { return {_mm256_and_pd(a.v, b.v)}; }
inline dmask m_or(dmask a, dmask b)  { return {_mm256_or_pd(a.v, b.v)}; }
inline dmask m_not(dmask a) {
  return {_mm256_xor_pd(a.v, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)))};
}
inline dmask widen(fmask m) {
  // Sign-extend each 32-bit all-ones lane to 64 bits.
  return {_mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_castps_si128(m.v)))};
}
inline fmask narrow(dmask m) {
  __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  __m256i packed = _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m.v), idx);
  return {_mm_castsi128_ps(_mm256_castsi256_si128(packed))};
}
inline unsigned to_bits(fmask m) {
  return static_cast<unsigned>(_mm_movemask_ps(m.v));
}
inline unsigned to_bits(dmask m) {
  return static_cast<unsigned>(_mm256_movemask_pd(m.v));
}
inline bool any(fmask m) { return to_bits(m) != 0; }
inline bool any(dmask m) { return to_bits(m) != 0; }

inline vdouble blend_d(dmask m, vdouble a, vdouble b) {
  return {_mm256_blendv_pd(b.v, a.v, m.v)};
}
inline vfloat blend_f(fmask m, vfloat a, vfloat b) {
  return {_mm_blendv_ps(b.v, a.v, m.v)};
}
inline vint blend_i(fmask m, vint a, vint b) {
  return {_mm_blendv_epi8(b.v, a.v, _mm_castps_si128(m.v))};
}
inline vint mask_i(fmask m) { return {_mm_castps_si128(m.v)}; }

inline vdouble gather_d(const double* base, vint idx, dmask m, double fill) {
  return {_mm256_mask_i32gather_pd(_mm256_set1_pd(fill), base, idx.v, m.v, 8)};
}
inline vfloat gather_f(const float* base, vint idx, fmask m, float fill) {
  return {_mm_mask_i32gather_ps(_mm_set1_ps(fill), base, idx.v, m.v, 4)};
}
inline vint gather_i(const std::int32_t* base, vint idx, fmask m,
                     std::int32_t fill) {
  return {_mm_mask_i32gather_epi32(_mm_set1_epi32(fill), base, idx.v,
                                   _mm_castps_si128(m.v), 4)};
}

inline double extract_d(vdouble a, int lane) {
  alignas(32) double out[4];
  _mm256_store_pd(out, a.v);
  return out[lane];
}
inline float extract_f(vfloat a, int lane) {
  alignas(16) float out[4];
  _mm_store_ps(out, a.v);
  return out[lane];
}
inline std::int32_t extract_i(vint a, int lane) {
  alignas(16) std::int32_t out[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(out), a.v);
  return out[lane];
}

inline vdouble iota_d() { return {_mm256_setr_pd(0.0, 1.0, 2.0, 3.0)}; }

#elif MAGUS_SIMD_LEVEL == 1
// ---------------------------------------------------------------- SSE2 --
inline constexpr int kWidth = 2;
inline constexpr const char* kBackendName = "sse2";

// vfloat/vint hold their two meaningful lanes in the low half of a 128-bit
// register; the upper lanes are unspecified and never observed.
struct vdouble { __m128d v; };
struct vfloat  { __m128  v; };
struct vint    { __m128i v; };
struct dmask   { __m128d v; };
struct fmask   { __m128  v; };

inline vdouble set1_d(double x) { return {_mm_set1_pd(x)}; }
inline vfloat  set1_f(float x)  { return {_mm_set1_ps(x)}; }
inline vint    set1_i(std::int32_t x) { return {_mm_set1_epi32(x)}; }

inline vdouble loadu_d(const double* p) { return {_mm_loadu_pd(p)}; }
inline vfloat loadu_f(const float* p) {
  return {_mm_castsi128_ps(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)))};
}
inline vint loadu_i(const std::int32_t* p) {
  return {_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))};
}
inline void storeu_d(double* p, vdouble a) { _mm_storeu_pd(p, a.v); }
inline void storeu_f(float* p, vfloat a) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), _mm_castps_si128(a.v));
}
inline void storeu_i(std::int32_t* p, vint a) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), a.v);
}

inline vdouble loadu_d_partial(const double* p, int n, double fill) {
  double out[2] = {fill, fill};
  for (int i = 0; i < n; ++i) out[i] = p[i];
  return {_mm_loadu_pd(out)};
}
inline vfloat loadu_f_partial(const float* p, int n, float fill) {
  float out[2] = {fill, fill};
  for (int i = 0; i < n; ++i) out[i] = p[i];
  return loadu_f(out);
}
inline vint loadu_i_partial(const std::int32_t* p, int n, std::int32_t fill) {
  std::int32_t out[2] = {fill, fill};
  for (int i = 0; i < n; ++i) out[i] = p[i];
  return loadu_i(out);
}
inline void storeu_d_partial(double* p, vdouble a, int n) {
  double out[2];
  _mm_storeu_pd(out, a.v);
  for (int i = 0; i < n; ++i) p[i] = out[i];
}
inline void storeu_f_partial(float* p, vfloat a, int n) {
  float out[2];
  storeu_f(out, a);
  for (int i = 0; i < n; ++i) p[i] = out[i];
}
inline void storeu_i_partial(std::int32_t* p, vint a, int n) {
  std::int32_t out[2];
  storeu_i(out, a);
  for (int i = 0; i < n; ++i) p[i] = out[i];
}

inline vdouble add_d(vdouble a, vdouble b) { return {_mm_add_pd(a.v, b.v)}; }
inline vdouble sub_d(vdouble a, vdouble b) { return {_mm_sub_pd(a.v, b.v)}; }
inline vdouble mul_d(vdouble a, vdouble b) { return {_mm_mul_pd(a.v, b.v)}; }
inline vdouble div_d(vdouble a, vdouble b) { return {_mm_div_pd(a.v, b.v)}; }
inline vdouble min_d(vdouble a, vdouble b) { return {_mm_min_pd(a.v, b.v)}; }
inline vdouble max_d(vdouble a, vdouble b) { return {_mm_max_pd(a.v, b.v)}; }
inline vdouble sqrt_d(vdouble a) { return {_mm_sqrt_pd(a.v)}; }
inline vdouble neg_d(vdouble a) {
  return {_mm_xor_pd(a.v, _mm_set1_pd(-0.0))};
}
inline vfloat add_f(vfloat a, vfloat b) { return {_mm_add_ps(a.v, b.v)}; }
inline vfloat sub_f(vfloat a, vfloat b) { return {_mm_sub_ps(a.v, b.v)}; }
inline vfloat mul_f(vfloat a, vfloat b) { return {_mm_mul_ps(a.v, b.v)}; }
inline vfloat min_f(vfloat a, vfloat b) { return {_mm_min_ps(a.v, b.v)}; }
inline vfloat max_f(vfloat a, vfloat b) { return {_mm_max_ps(a.v, b.v)}; }
inline vint add_i(vint a, vint b) { return {_mm_add_epi32(a.v, b.v)}; }
inline vint sub_i(vint a, vint b) { return {_mm_sub_epi32(a.v, b.v)}; }

inline vdouble to_double(vfloat a) { return {_mm_cvtps_pd(a.v)}; }
inline vfloat to_float(vdouble a) { return {_mm_cvtpd_ps(a.v)}; }

inline dmask cmp_gt_d(vdouble a, vdouble b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
inline dmask cmp_lt_d(vdouble a, vdouble b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline dmask cmp_le_d(vdouble a, vdouble b) { return {_mm_cmple_pd(a.v, b.v)}; }
inline dmask cmp_ge_d(vdouble a, vdouble b) { return {_mm_cmpge_pd(a.v, b.v)}; }
inline dmask cmp_eq_d(vdouble a, vdouble b) { return {_mm_cmpeq_pd(a.v, b.v)}; }
inline fmask cmp_gt_f(vfloat a, vfloat b) { return {_mm_cmpgt_ps(a.v, b.v)}; }
inline fmask cmp_lt_f(vfloat a, vfloat b) { return {_mm_cmplt_ps(a.v, b.v)}; }
inline fmask cmp_le_f(vfloat a, vfloat b) { return {_mm_cmple_ps(a.v, b.v)}; }
inline fmask cmp_ge_f(vfloat a, vfloat b) { return {_mm_cmpge_ps(a.v, b.v)}; }
inline fmask cmp_eq_f(vfloat a, vfloat b) { return {_mm_cmpeq_ps(a.v, b.v)}; }
inline fmask isnan_f(vfloat a) { return {_mm_cmpunord_ps(a.v, a.v)}; }
inline fmask cmp_gt_i(vint a, vint b) {
  return {_mm_castsi128_ps(_mm_cmpgt_epi32(a.v, b.v))};
}
inline fmask cmp_eq_i(vint a, vint b) {
  return {_mm_castsi128_ps(_mm_cmpeq_epi32(a.v, b.v))};
}

inline fmask m_and(fmask a, fmask b) { return {_mm_and_ps(a.v, b.v)}; }
inline fmask m_or(fmask a, fmask b)  { return {_mm_or_ps(a.v, b.v)}; }
inline fmask m_not(fmask a) {
  return {_mm_xor_ps(a.v, _mm_castsi128_ps(_mm_set1_epi32(-1)))};
}
inline dmask m_and(dmask a, dmask b) { return {_mm_and_pd(a.v, b.v)}; }
inline dmask m_or(dmask a, dmask b)  { return {_mm_or_pd(a.v, b.v)}; }
inline dmask m_not(dmask a) {
  return {_mm_xor_pd(a.v, _mm_castsi128_pd(_mm_set1_epi32(-1)))};
}
inline dmask widen(fmask m) {
  __m128i mi = _mm_castps_si128(m.v);
  return {_mm_castsi128_pd(_mm_unpacklo_epi32(mi, mi))};
}
inline fmask narrow(dmask m) {
  __m128i mi = _mm_castpd_si128(m.v);
  return {_mm_castsi128_ps(_mm_shuffle_epi32(mi, _MM_SHUFFLE(3, 2, 2, 0)))};
}
inline unsigned to_bits(fmask m) {
  return static_cast<unsigned>(_mm_movemask_ps(m.v)) & 0x3u;
}
inline unsigned to_bits(dmask m) {
  return static_cast<unsigned>(_mm_movemask_pd(m.v));
}
inline bool any(fmask m) { return to_bits(m) != 0; }
inline bool any(dmask m) { return to_bits(m) != 0; }

inline vdouble blend_d(dmask m, vdouble a, vdouble b) {
  return {_mm_or_pd(_mm_and_pd(m.v, a.v), _mm_andnot_pd(m.v, b.v))};
}
inline vfloat blend_f(fmask m, vfloat a, vfloat b) {
  return {_mm_or_ps(_mm_and_ps(m.v, a.v), _mm_andnot_ps(m.v, b.v))};
}
inline vint blend_i(fmask m, vint a, vint b) {
  __m128i mi = _mm_castps_si128(m.v);
  return {_mm_or_si128(_mm_and_si128(mi, a.v), _mm_andnot_si128(mi, b.v))};
}
inline vint mask_i(fmask m) { return {_mm_castps_si128(m.v)}; }

inline vdouble gather_d(const double* base, vint idx, dmask m, double fill) {
  std::int32_t ix[2];
  storeu_i(ix, idx);
  unsigned bits = to_bits(m);
  double out[2];
  out[0] = (bits & 1u) ? base[ix[0]] : fill;
  out[1] = (bits & 2u) ? base[ix[1]] : fill;
  return {_mm_loadu_pd(out)};
}
inline vfloat gather_f(const float* base, vint idx, fmask m, float fill) {
  std::int32_t ix[2];
  storeu_i(ix, idx);
  unsigned bits = to_bits(m);
  float out[2];
  out[0] = (bits & 1u) ? base[ix[0]] : fill;
  out[1] = (bits & 2u) ? base[ix[1]] : fill;
  return loadu_f(out);
}
inline vint gather_i(const std::int32_t* base, vint idx, fmask m,
                     std::int32_t fill) {
  std::int32_t ix[2];
  storeu_i(ix, idx);
  unsigned bits = to_bits(m);
  std::int32_t out[2];
  out[0] = (bits & 1u) ? base[ix[0]] : fill;
  out[1] = (bits & 2u) ? base[ix[1]] : fill;
  return loadu_i(out);
}

inline double extract_d(vdouble a, int lane) {
  double out[2];
  _mm_storeu_pd(out, a.v);
  return out[lane];
}
inline float extract_f(vfloat a, int lane) {
  float out[2];
  storeu_f(out, a);
  return out[lane];
}
inline std::int32_t extract_i(vint a, int lane) {
  std::int32_t out[2];
  storeu_i(out, a);
  return out[lane];
}

inline vdouble iota_d() { return {_mm_setr_pd(0.0, 1.0)}; }

#elif MAGUS_SIMD_LEVEL == 3
// ---------------------------------------------------------------- NEON --
inline constexpr int kWidth = 2;
inline constexpr const char* kBackendName = "neon";

struct vdouble { float64x2_t v; };
struct vfloat  { float32x2_t v; };
struct vint    { int32x2_t v; };
struct dmask   { uint64x2_t v; };
struct fmask   { uint32x2_t v; };

inline vdouble set1_d(double x) { return {vdupq_n_f64(x)}; }
inline vfloat  set1_f(float x)  { return {vdup_n_f32(x)}; }
inline vint    set1_i(std::int32_t x) { return {vdup_n_s32(x)}; }

inline vdouble loadu_d(const double* p) { return {vld1q_f64(p)}; }
inline vfloat  loadu_f(const float* p)  { return {vld1_f32(p)}; }
inline vint    loadu_i(const std::int32_t* p) { return {vld1_s32(p)}; }
inline void storeu_d(double* p, vdouble a) { vst1q_f64(p, a.v); }
inline void storeu_f(float* p, vfloat a)   { vst1_f32(p, a.v); }
inline void storeu_i(std::int32_t* p, vint a) { vst1_s32(p, a.v); }

inline vdouble loadu_d_partial(const double* p, int n, double fill) {
  double out[2] = {fill, fill};
  for (int i = 0; i < n; ++i) out[i] = p[i];
  return {vld1q_f64(out)};
}
inline vfloat loadu_f_partial(const float* p, int n, float fill) {
  float out[2] = {fill, fill};
  for (int i = 0; i < n; ++i) out[i] = p[i];
  return {vld1_f32(out)};
}
inline vint loadu_i_partial(const std::int32_t* p, int n, std::int32_t fill) {
  std::int32_t out[2] = {fill, fill};
  for (int i = 0; i < n; ++i) out[i] = p[i];
  return {vld1_s32(out)};
}
inline void storeu_d_partial(double* p, vdouble a, int n) {
  double out[2];
  vst1q_f64(out, a.v);
  for (int i = 0; i < n; ++i) p[i] = out[i];
}
inline void storeu_f_partial(float* p, vfloat a, int n) {
  float out[2];
  vst1_f32(out, a.v);
  for (int i = 0; i < n; ++i) p[i] = out[i];
}
inline void storeu_i_partial(std::int32_t* p, vint a, int n) {
  std::int32_t out[2];
  vst1_s32(out, a.v);
  for (int i = 0; i < n; ++i) p[i] = out[i];
}

inline vdouble add_d(vdouble a, vdouble b) { return {vaddq_f64(a.v, b.v)}; }
inline vdouble sub_d(vdouble a, vdouble b) { return {vsubq_f64(a.v, b.v)}; }
inline vdouble mul_d(vdouble a, vdouble b) { return {vmulq_f64(a.v, b.v)}; }
inline vdouble div_d(vdouble a, vdouble b) { return {vdivq_f64(a.v, b.v)}; }
// FMIN/FMAX propagate NaN and order ±0.0 correctly; for the NaN-free,
// distinct-value inputs our kernels feed them they match MINPD/MAXPD.
inline vdouble min_d(vdouble a, vdouble b) { return {vminq_f64(a.v, b.v)}; }
inline vdouble max_d(vdouble a, vdouble b) { return {vmaxq_f64(a.v, b.v)}; }
inline vdouble sqrt_d(vdouble a) { return {vsqrtq_f64(a.v)}; }
inline vdouble neg_d(vdouble a) { return {vnegq_f64(a.v)}; }
inline vfloat add_f(vfloat a, vfloat b) { return {vadd_f32(a.v, b.v)}; }
inline vfloat sub_f(vfloat a, vfloat b) { return {vsub_f32(a.v, b.v)}; }
inline vfloat mul_f(vfloat a, vfloat b) { return {vmul_f32(a.v, b.v)}; }
inline vfloat min_f(vfloat a, vfloat b) { return {vmin_f32(a.v, b.v)}; }
inline vfloat max_f(vfloat a, vfloat b) { return {vmax_f32(a.v, b.v)}; }
inline vint add_i(vint a, vint b) { return {vadd_s32(a.v, b.v)}; }
inline vint sub_i(vint a, vint b) { return {vsub_s32(a.v, b.v)}; }

inline vdouble to_double(vfloat a) { return {vcvt_f64_f32(a.v)}; }
inline vfloat to_float(vdouble a) { return {vcvt_f32_f64(a.v)}; }

inline dmask cmp_gt_d(vdouble a, vdouble b) { return {vcgtq_f64(a.v, b.v)}; }
inline dmask cmp_lt_d(vdouble a, vdouble b) { return {vcltq_f64(a.v, b.v)}; }
inline dmask cmp_le_d(vdouble a, vdouble b) { return {vcleq_f64(a.v, b.v)}; }
inline dmask cmp_ge_d(vdouble a, vdouble b) { return {vcgeq_f64(a.v, b.v)}; }
inline dmask cmp_eq_d(vdouble a, vdouble b) { return {vceqq_f64(a.v, b.v)}; }
inline fmask cmp_gt_f(vfloat a, vfloat b) { return {vcgt_f32(a.v, b.v)}; }
inline fmask cmp_lt_f(vfloat a, vfloat b) { return {vclt_f32(a.v, b.v)}; }
inline fmask cmp_le_f(vfloat a, vfloat b) { return {vcle_f32(a.v, b.v)}; }
inline fmask cmp_ge_f(vfloat a, vfloat b) { return {vcge_f32(a.v, b.v)}; }
inline fmask cmp_eq_f(vfloat a, vfloat b) { return {vceq_f32(a.v, b.v)}; }
inline fmask isnan_f(vfloat a) { return {vmvn_u32(vceq_f32(a.v, a.v))}; }
inline fmask cmp_gt_i(vint a, vint b) { return {vcgt_s32(a.v, b.v)}; }
inline fmask cmp_eq_i(vint a, vint b) { return {vceq_s32(a.v, b.v)}; }

inline fmask m_and(fmask a, fmask b) { return {vand_u32(a.v, b.v)}; }
inline fmask m_or(fmask a, fmask b)  { return {vorr_u32(a.v, b.v)}; }
inline fmask m_not(fmask a) { return {vmvn_u32(a.v)}; }
inline dmask m_and(dmask a, dmask b) { return {vandq_u64(a.v, b.v)}; }
inline dmask m_or(dmask a, dmask b)  { return {vorrq_u64(a.v, b.v)}; }
inline dmask m_not(dmask a) {
  return {veorq_u64(a.v, vdupq_n_u64(~0ull))};
}
inline dmask widen(fmask m) {
  // Sign-extend -1/0 32-bit lanes to 64-bit all-ones/zero.
  return {vreinterpretq_u64_s64(vmovl_s32(vreinterpret_s32_u32(m.v)))};
}
inline fmask narrow(dmask m) { return {vmovn_u64(m.v)}; }
inline unsigned to_bits(fmask m) {
  return (vget_lane_u32(m.v, 0) ? 1u : 0u) | (vget_lane_u32(m.v, 1) ? 2u : 0u);
}
inline unsigned to_bits(dmask m) {
  return (vgetq_lane_u64(m.v, 0) ? 1u : 0u) |
         (vgetq_lane_u64(m.v, 1) ? 2u : 0u);
}
inline bool any(fmask m) { return to_bits(m) != 0; }
inline bool any(dmask m) { return to_bits(m) != 0; }

inline vdouble blend_d(dmask m, vdouble a, vdouble b) {
  return {vbslq_f64(m.v, a.v, b.v)};
}
inline vfloat blend_f(fmask m, vfloat a, vfloat b) {
  return {vbsl_f32(m.v, a.v, b.v)};
}
inline vint blend_i(fmask m, vint a, vint b) {
  return {vbsl_s32(m.v, a.v, b.v)};
}
inline vint mask_i(fmask m) { return {vreinterpret_s32_u32(m.v)}; }

inline vdouble gather_d(const double* base, vint idx, dmask m, double fill) {
  std::int32_t ix[2];
  vst1_s32(ix, idx.v);
  unsigned bits = to_bits(m);
  double out[2];
  out[0] = (bits & 1u) ? base[ix[0]] : fill;
  out[1] = (bits & 2u) ? base[ix[1]] : fill;
  return {vld1q_f64(out)};
}
inline vfloat gather_f(const float* base, vint idx, fmask m, float fill) {
  std::int32_t ix[2];
  vst1_s32(ix, idx.v);
  unsigned bits = to_bits(m);
  float out[2];
  out[0] = (bits & 1u) ? base[ix[0]] : fill;
  out[1] = (bits & 2u) ? base[ix[1]] : fill;
  return {vld1_f32(out)};
}
inline vint gather_i(const std::int32_t* base, vint idx, fmask m,
                     std::int32_t fill) {
  std::int32_t ix[2];
  vst1_s32(ix, idx.v);
  unsigned bits = to_bits(m);
  std::int32_t out[2];
  out[0] = (bits & 1u) ? base[ix[0]] : fill;
  out[1] = (bits & 2u) ? base[ix[1]] : fill;
  return {vld1_s32(out)};
}

inline double extract_d(vdouble a, int lane) {
  double out[2];
  vst1q_f64(out, a.v);
  return out[lane];
}
inline float extract_f(vfloat a, int lane) {
  float out[2];
  vst1_f32(out, a.v);
  return out[lane];
}
inline std::int32_t extract_i(vint a, int lane) {
  std::int32_t out[2];
  vst1_s32(out, a.v);
  return out[lane];
}

inline vdouble iota_d() {
  double out[2] = {0.0, 1.0};
  return {vld1q_f64(out)};
}

#else
// -------------------------------------------------------------- scalar --
inline constexpr int kWidth = 1;
inline constexpr const char* kBackendName = "scalar";

struct vdouble { double v; };
struct vfloat  { float v; };
struct vint    { std::int32_t v; };
struct dmask   { bool v; };
struct fmask   { bool v; };

inline vdouble set1_d(double x) { return {x}; }
inline vfloat  set1_f(float x)  { return {x}; }
inline vint    set1_i(std::int32_t x) { return {x}; }

inline vdouble loadu_d(const double* p) { return {*p}; }
inline vfloat  loadu_f(const float* p)  { return {*p}; }
inline vint    loadu_i(const std::int32_t* p) { return {*p}; }
inline void storeu_d(double* p, vdouble a) { *p = a.v; }
inline void storeu_f(float* p, vfloat a)   { *p = a.v; }
inline void storeu_i(std::int32_t* p, vint a) { *p = a.v; }

inline vdouble loadu_d_partial(const double* p, int n, double fill) {
  return {n > 0 ? *p : fill};
}
inline vfloat loadu_f_partial(const float* p, int n, float fill) {
  return {n > 0 ? *p : fill};
}
inline vint loadu_i_partial(const std::int32_t* p, int n, std::int32_t fill) {
  return {n > 0 ? *p : fill};
}
inline void storeu_d_partial(double* p, vdouble a, int n) {
  if (n > 0) *p = a.v;
}
inline void storeu_f_partial(float* p, vfloat a, int n) {
  if (n > 0) *p = a.v;
}
inline void storeu_i_partial(std::int32_t* p, vint a, int n) {
  if (n > 0) *p = a.v;
}

inline vdouble add_d(vdouble a, vdouble b) { return {a.v + b.v}; }
inline vdouble sub_d(vdouble a, vdouble b) { return {a.v - b.v}; }
inline vdouble mul_d(vdouble a, vdouble b) { return {a.v * b.v}; }
inline vdouble div_d(vdouble a, vdouble b) { return {a.v / b.v}; }
// The MINPD/MAXPD rule: b wins on equality or NaN.
inline vdouble min_d(vdouble a, vdouble b) { return {a.v < b.v ? a.v : b.v}; }
inline vdouble max_d(vdouble a, vdouble b) { return {a.v > b.v ? a.v : b.v}; }
inline vdouble sqrt_d(vdouble a) { return {std::sqrt(a.v)}; }
inline vdouble neg_d(vdouble a) { return {-a.v}; }
inline vfloat add_f(vfloat a, vfloat b) { return {a.v + b.v}; }
inline vfloat sub_f(vfloat a, vfloat b) { return {a.v - b.v}; }
inline vfloat mul_f(vfloat a, vfloat b) { return {a.v * b.v}; }
inline vfloat min_f(vfloat a, vfloat b) { return {a.v < b.v ? a.v : b.v}; }
inline vfloat max_f(vfloat a, vfloat b) { return {a.v > b.v ? a.v : b.v}; }
inline vint add_i(vint a, vint b) { return {a.v + b.v}; }
inline vint sub_i(vint a, vint b) { return {a.v - b.v}; }

inline vdouble to_double(vfloat a) { return {static_cast<double>(a.v)}; }
inline vfloat to_float(vdouble a) { return {static_cast<float>(a.v)}; }

inline dmask cmp_gt_d(vdouble a, vdouble b) { return {a.v > b.v}; }
inline dmask cmp_lt_d(vdouble a, vdouble b) { return {a.v < b.v}; }
inline dmask cmp_le_d(vdouble a, vdouble b) { return {a.v <= b.v}; }
inline dmask cmp_ge_d(vdouble a, vdouble b) { return {a.v >= b.v}; }
inline dmask cmp_eq_d(vdouble a, vdouble b) { return {a.v == b.v}; }
inline fmask cmp_gt_f(vfloat a, vfloat b) { return {a.v > b.v}; }
inline fmask cmp_lt_f(vfloat a, vfloat b) { return {a.v < b.v}; }
inline fmask cmp_le_f(vfloat a, vfloat b) { return {a.v <= b.v}; }
inline fmask cmp_ge_f(vfloat a, vfloat b) { return {a.v >= b.v}; }
inline fmask cmp_eq_f(vfloat a, vfloat b) { return {a.v == b.v}; }
inline fmask isnan_f(vfloat a) { return {a.v != a.v}; }
inline fmask cmp_gt_i(vint a, vint b) { return {a.v > b.v}; }
inline fmask cmp_eq_i(vint a, vint b) { return {a.v == b.v}; }

inline fmask m_and(fmask a, fmask b) { return {a.v && b.v}; }
inline fmask m_or(fmask a, fmask b)  { return {a.v || b.v}; }
inline fmask m_not(fmask a) { return {!a.v}; }
inline dmask m_and(dmask a, dmask b) { return {a.v && b.v}; }
inline dmask m_or(dmask a, dmask b)  { return {a.v || b.v}; }
inline dmask m_not(dmask a) { return {!a.v}; }
inline dmask widen(fmask m) { return {m.v}; }
inline fmask narrow(dmask m) { return {m.v}; }
inline unsigned to_bits(fmask m) { return m.v ? 1u : 0u; }
inline unsigned to_bits(dmask m) { return m.v ? 1u : 0u; }
inline bool any(fmask m) { return m.v; }
inline bool any(dmask m) { return m.v; }

inline vdouble blend_d(dmask m, vdouble a, vdouble b) { return m.v ? a : b; }
inline vfloat blend_f(fmask m, vfloat a, vfloat b) { return m.v ? a : b; }
inline vint blend_i(fmask m, vint a, vint b) { return m.v ? a : b; }
inline vint mask_i(fmask m) { return {m.v ? std::int32_t{-1} : 0}; }

inline vdouble gather_d(const double* base, vint idx, dmask m, double fill) {
  return {m.v ? base[idx.v] : fill};
}
inline vfloat gather_f(const float* base, vint idx, fmask m, float fill) {
  return {m.v ? base[idx.v] : fill};
}
inline vint gather_i(const std::int32_t* base, vint idx, fmask m,
                     std::int32_t fill) {
  return {m.v ? base[idx.v] : fill};
}

inline double extract_d(vdouble a, int) { return a.v; }
inline float extract_f(vfloat a, int) { return a.v; }
inline std::int32_t extract_i(vint a, int) { return a.v; }

inline vdouble iota_d() { return {0.0}; }

#endif

}  // namespace magus::util::simd
