#include "util/checksum.h"

namespace magus::util {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t hash) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace magus::util
