#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace magus::util {

namespace {

std::atomic<ThreadPool::WaitHook> g_wait_hook{nullptr};

[[nodiscard]] std::uint64_t wait_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void ThreadPool::set_wait_hook(WaitHook hook) {
  g_wait_hook.store(hook, std::memory_order_relaxed);
}

std::size_t resolve_thread_count(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve_thread_count(threads);
  threads_.reserve(total - 1);
  for (std::size_t w = 1; w < total; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain(std::size_t worker, const Task& fn, std::size_t count) {
  std::size_t task;
  while ((task = next_task_.fetch_add(1, std::memory_order_relaxed)) < count) {
    try {
      fn(worker, task);
    } catch (...) {
      {
        const std::lock_guard lock{mutex_};
        if (!error_) error_ = std::current_exception();
      }
      // Abandon the remaining tasks; concurrent workers finish their
      // current one and stop.
      next_task_.store(count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::run(std::size_t count, const Task& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    // Single-threaded pool: run inline, no synchronization at all.
    for (std::size_t task = 0; task < count; ++task) fn(0, task);
    return;
  }
  {
    const std::lock_guard lock{mutex_};
    job_ = &fn;
    job_count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    active_ = threads_.size();
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain(0, fn, count);
  const WaitHook hook = g_wait_hook.load(std::memory_order_relaxed);
  const std::uint64_t join_start_ns = hook ? wait_clock_ns() : 0;
  std::unique_lock lock{mutex_};
  done_cv_.wait(lock, [this] { return active_ == 0; });
  if (hook) hook(WaitKind::kJoin, join_start_ns, wait_clock_ns());
  job_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const Task* job = nullptr;
    std::size_t count = 0;
    const WaitHook hook = g_wait_hook.load(std::memory_order_relaxed);
    const std::uint64_t wait_start_ns = hook ? wait_clock_ns() : 0;
    {
      std::unique_lock lock{mutex_};
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    // Reported only when a job arrived: the final stop_ wait is shutdown,
    // not queue wait, and would dwarf every real interval.
    if (hook) hook(WaitKind::kTaskWait, wait_start_ns, wait_clock_ns());
    drain(worker, *job, count);
    {
      const std::lock_guard lock{mutex_};
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace magus::util
