#include "util/units.h"

#include <limits>

namespace magus::util {

double sum_powers_dbm(std::span<const double> dbm_values) {
  double total_mw = 0.0;
  for (const double dbm : dbm_values) total_mw += dbm_to_mw(dbm);
  if (total_mw <= 0.0) return -std::numeric_limits<double>::infinity();
  return mw_to_dbm(total_mw);
}

bool near_db(double a, double b, double tolerance_db) {
  if (std::isinf(a) && std::isinf(b)) return (a < 0) == (b < 0);
  return std::abs(a - b) <= tolerance_db;
}

}  // namespace magus::util
