// Fixed-width console table printer used by the bench harnesses to emit
// paper-style tables (e.g. Table 1 of the Magus paper).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace magus::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats `value` as a percentage with one decimal, e.g. "56.5%".
  [[nodiscard]] static std::string percent(double fraction);

  /// Formats a double with the given number of decimals.
  [[nodiscard]] static std::string num(double value, int decimals = 2);

  /// Writes the table with column-aligned cells and a header separator.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace magus::util
