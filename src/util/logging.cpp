#include "util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace magus::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_thread_ids{false};
std::mutex g_write_mutex;

[[nodiscard]] const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

[[nodiscard]] int this_thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_thread_ids(bool enabled) {
  g_thread_ids.store(enabled, std::memory_order_relaxed);
}

bool log_thread_ids() { return g_thread_ids.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Format the whole line first, then emit it under the mutex in one write:
  // concurrent callers may interleave *lines* but never characters.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  if (log_thread_ids()) {
    line += "[t";
    line += std::to_string(this_thread_log_id());
    line += "] ";
  }
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(g_write_mutex);
  std::cerr << line;
}

}  // namespace magus::util
