// Lightweight leveled logging to stderr.
//
// The library itself logs sparingly (search progress at Debug level); the
// bench harnesses raise the level for timing visibility. Thread-safe: each
// line is formatted off-lock and emitted as a single mutex-guarded write,
// so lines from the evaluator worker threads never interleave. Enable
// set_log_thread_ids(true) to tag every line with a small per-thread id.
#pragma once

#include <sstream>
#include <string>

namespace magus::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// When enabled, every line carries a "[t<N>]" tag, where N is a small
/// dense id assigned to each logging thread on first use (0 = the first
/// thread that logged, typically main).
void set_log_thread_ids(bool enabled);
[[nodiscard]] bool log_thread_ids();

/// Emits one line: "[LEVEL] message" (plus the thread tag when enabled).
/// One guarded write per call; safe to call from any thread.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return detail::LogLine{LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogLine log_info() {
  return detail::LogLine{LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return detail::LogLine{LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogLine log_error() {
  return detail::LogLine{LogLevel::kError};
}

}  // namespace magus::util
