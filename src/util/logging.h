// Lightweight leveled logging to stderr.
//
// The library itself logs sparingly (search progress at Debug level); the
// bench harnesses raise the level for timing visibility. Not thread-safe
// beyond what stderr provides; the library is single-threaded by design.
#pragma once

#include <sstream>
#include <string>

namespace magus::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line: "[LEVEL] message".
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return detail::LogLine{LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogLine log_info() {
  return detail::LogLine{LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return detail::LogLine{LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogLine log_error() {
  return detail::LogLine{LogLevel::kError};
}

}  // namespace magus::util
