#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace magus::util {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double percentile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 1.0);
  const double position = clamped * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double weight = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - weight) + sorted[lower + 1] * weight;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto total = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / total});
  }
  return cdf;
}

double fraction_at_least(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t hits = 0;
  for (const double v : values) {
    if (v >= threshold) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::string summarize(std::span<const double> values) {
  std::ostringstream out;
  if (values.empty()) {
    out << "n=0";
    return out.str();
  }
  RunningStats stats;
  for (const double v : values) stats.add(v);
  out.precision(4);
  out << "n=" << stats.count() << " mean=" << stats.mean()
      << " min=" << stats.min() << " p50=" << percentile(values, 0.5)
      << " max=" << stats.max();
  return out.str();
}

}  // namespace magus::util
