// Minimal JSON writer for machine-readable bench output.
//
// Emits one object with insertion-ordered keys; values are numbers,
// booleans, strings, nested objects or arrays. Write-only on purpose: the
// benches need a well-formed, stable artifact for scripts to consume, not a
// parser.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace magus::util {

class JsonArray;
class JsonObject;

namespace detail {

/// One JSON value; shared by objects (keyed) and arrays (indexed).
struct JsonValue {
  enum class Kind {
    kNumber,
    kInteger,
    kBool,
    kString,
    kObject,
    kArray
  } kind = Kind::kInteger;
  double number = 0.0;
  std::int64_t integer = 0;
  bool boolean = false;
  std::string string;
  std::shared_ptr<JsonObject> object;  ///< shared: JsonValue must be copyable
  std::shared_ptr<JsonArray> array;

  void append(std::ostream& out, int indent) const;

  [[nodiscard]] static JsonValue from(double value);
  [[nodiscard]] static JsonValue from(std::int64_t value);
  [[nodiscard]] static JsonValue from(bool value);
  [[nodiscard]] static JsonValue from(std::string value);
  [[nodiscard]] static JsonValue from(JsonObject value);
  [[nodiscard]] static JsonValue from(JsonArray value);
};

}  // namespace detail

class JsonObject {
 public:
  JsonObject() = default;

  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, bool value);
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, JsonObject value);
  JsonObject& set(const std::string& key, JsonArray value);

  /// Serializes with 2-space indentation and a trailing newline. Doubles
  /// round-trip (max_digits10); NaN/inf become null (JSON has no literals
  /// for them).
  [[nodiscard]] std::string dump() const;

  /// dump() to `path`; throws std::runtime_error when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

 private:
  friend struct detail::JsonValue;

  void append(std::ostream& out, int indent) const;

  std::vector<std::pair<std::string, detail::JsonValue>> members_;
};

/// Ordered JSON array of heterogeneous values (same value kinds as
/// JsonObject members). Needed by the trace/metrics exporters, whose
/// payloads are event and bucket lists rather than fixed-key records.
class JsonArray {
 public:
  JsonArray() = default;

  JsonArray& push_back(double value);
  JsonArray& push_back(std::int64_t value);
  JsonArray& push_back(bool value);
  JsonArray& push_back(const std::string& value);
  JsonArray& push_back(const char* value);
  JsonArray& push_back(JsonObject value);
  JsonArray& push_back(JsonArray value);

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Serializes the array alone (same formatting rules as JsonObject).
  [[nodiscard]] std::string dump() const;

 private:
  friend struct detail::JsonValue;

  void append(std::ostream& out, int indent) const;

  std::vector<detail::JsonValue> items_;
};

}  // namespace magus::util
