// Minimal JSON writer for machine-readable bench output.
//
// Emits one object with insertion-ordered keys; values are numbers,
// booleans, strings or nested objects. Write-only on purpose: the benches
// need a well-formed, stable artifact for scripts to consume, not a parser.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace magus::util {

class JsonObject {
 public:
  JsonObject() = default;

  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, bool value);
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, JsonObject value);

  /// Serializes with 2-space indentation and a trailing newline. Doubles
  /// round-trip (max_digits10); NaN/inf become null (JSON has no literals
  /// for them).
  [[nodiscard]] std::string dump() const;

  /// dump() to `path`; throws std::runtime_error when the file cannot be
  /// written.
  void write_file(const std::string& path) const;

 private:
  struct Value {
    enum class Kind { kNumber, kInteger, kBool, kString, kObject } kind;
    double number = 0.0;
    std::int64_t integer = 0;
    bool boolean = false;
    std::string string;
    std::shared_ptr<JsonObject> object;  ///< shared: Value must be copyable
  };

  void append(std::ostream& out, int indent) const;

  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace magus::util
