// A small fixed-size worker pool for data-parallel batch work.
//
// The pool is built once and reused across batches (spawning threads per
// candidate batch would dwarf the evaluation cost). run() executes a job of
// `count` independent tasks, handing out task indices through one atomic
// counter so fast workers steal the tail from slow ones. The calling thread
// participates as worker 0: a pool of size 1 spawns no threads at all and
// runs every task inline, which keeps the single-threaded path free of any
// synchronization cost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace magus::util {

/// `threads == 0` resolves to the hardware concurrency (at least 1).
[[nodiscard]] std::size_t resolve_thread_count(std::size_t threads);

class ThreadPool {
 public:
  /// fn(worker, task): `worker` in [0, size()), `task` in [0, count).
  using Task = std::function<void(std::size_t worker, std::size_t task)>;

  /// Wait intervals the pool can report to an observer: a spawned worker
  /// blocking until a job arrives (kTaskWait — queue wait), and the run()
  /// caller blocking on the stragglers after draining its own share
  /// (kJoin — barrier wait).
  enum class WaitKind { kTaskWait, kJoin };

  /// Process-wide wait observer, called on the waiting thread with the
  /// interval in monotonic (steady_clock) nanoseconds. util sits below the
  /// obs layer, so the profiler installs itself through this hook instead
  /// of the pool recording spans directly. Null (the default) disables all
  /// timing; installation is sticky and must happen before heavy use
  /// (ObsSession does it at startup). The hook must be thread-safe and
  /// cheap — it runs once per job per worker.
  using WaitHook = void (*)(WaitKind kind, std::uint64_t start_ns,
                            std::uint64_t end_ns);
  static void set_wait_hook(WaitHook hook);

  /// Spawns size()-1 threads; the caller of run() is worker 0.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, calling thread included; always >= 1.
  [[nodiscard]] std::size_t size() const { return threads_.size() + 1; }

  /// Runs fn for every task index in [0, count) and returns when all are
  /// done. Task order and worker assignment are unspecified; tasks must be
  /// independent. The first exception thrown by any task is rethrown here
  /// (remaining tasks are abandoned). Not reentrant.
  void run(std::size_t count, const Task& fn);

 private:
  void worker_loop(std::size_t worker);
  /// Pulls task indices until the job is drained; records the first error.
  void drain(std::size_t worker, const Task& fn, std::size_t count);

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const Task* job_ = nullptr;      ///< current job (guarded by mutex_)
  std::size_t job_count_ = 0;      ///< tasks in the current job
  std::uint64_t generation_ = 0;   ///< bumped per job; workers wait on it
  std::size_t active_ = 0;         ///< spawned workers still in the job
  std::exception_ptr error_;       ///< first task failure of the job
  bool stop_ = false;
  std::atomic<std::size_t> next_task_{0};
};

}  // namespace magus::util
