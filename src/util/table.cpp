#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace magus::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::percent(double fraction) {
  std::ostringstream s;
  s << std::fixed << std::setprecision(1) << fraction * 100.0 << '%';
  return s.str();
}

std::string TablePrinter::num(double value, int decimals) {
  std::ostringstream s;
  s << std::fixed << std::setprecision(decimals) << value;
  return s.str();
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
          << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace magus::util
