// Capped exponential backoff policy.
//
// Shared by every retry loop in the execution layer (OSS configuration
// pushes, handover-procedure re-attempts): attempt 0 runs immediately,
// attempt k waits initial_delay_s * multiplier^(k-1), capped at
// max_delay_s, until max_attempts attempts have been spent.
//
// The base schedule is purely deterministic. Optional *seeded* jitter
// decorrelates concurrent retry loops (so many executors retrying against
// the same OSS don't synchronize into thundering herds) while keeping all
// randomness flowing from explicit util::rng streams: the caller supplies
// the stream, the policy only scales the delay. jitter_fraction = 0 (the
// default) reproduces the legacy bit-identical schedule and consumes
// nothing from the stream.
#pragma once

#include "util/rng.h"

namespace magus::util {

struct BackoffPolicy {
  double initial_delay_s = 0.5;
  double multiplier = 2.0;
  double max_delay_s = 8.0;
  int max_attempts = 4;  ///< total attempts, including the first
  /// Symmetric jitter band as a fraction of the deterministic delay: the
  /// jittered delay is d * (1 + jitter_fraction * (u - 0.5)) with u drawn
  /// uniformly from the caller's stream. 0 disables jitter entirely (no
  /// stream draw), keeping legacy traces bit-identical.
  double jitter_fraction = 0.0;

  /// Delay to wait *before* the given attempt (0-based). Attempt 0 is
  /// immediate; later attempts grow geometrically up to the cap. The
  /// deterministic, jitter-free schedule.
  [[nodiscard]] double delay_before_attempt_s(int attempt) const;

  /// Jittered delay: the deterministic delay scaled by the seeded jitter
  /// band. Draws exactly one value from `rng` when jitter_fraction > 0 and
  /// the base delay is non-zero; otherwise identical to the deterministic
  /// overload (and consumes nothing, so arming jitter_fraction = 0 keeps
  /// existing streams unperturbed).
  [[nodiscard]] double delay_before_attempt_s(int attempt,
                                              Xoshiro256ss& rng) const;

  /// True when `attempts_made` attempts have been spent and no further
  /// retry is allowed.
  [[nodiscard]] bool exhausted(int attempts_made) const {
    return attempts_made >= max_attempts;
  }

  /// Total wait accumulated by a full run through all attempts — the
  /// worst-case latency a retry loop adds before giving up. Includes the
  /// worst-case jitter inflation (the deadline watchdog budgets against
  /// this bound).
  [[nodiscard]] double worst_case_total_delay_s() const;
};

}  // namespace magus::util
