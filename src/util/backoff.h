// Capped exponential backoff policy.
//
// Shared by every retry loop in the execution layer (OSS configuration
// pushes, handover-procedure re-attempts): attempt 0 runs immediately,
// attempt k waits initial_delay_s * multiplier^(k-1), capped at
// max_delay_s, until max_attempts attempts have been spent. Purely
// deterministic — jitter, where needed, is the caller's responsibility so
// that all randomness keeps flowing from explicit seeds.
#pragma once

namespace magus::util {

struct BackoffPolicy {
  double initial_delay_s = 0.5;
  double multiplier = 2.0;
  double max_delay_s = 8.0;
  int max_attempts = 4;  ///< total attempts, including the first

  /// Delay to wait *before* the given attempt (0-based). Attempt 0 is
  /// immediate; later attempts grow geometrically up to the cap.
  [[nodiscard]] double delay_before_attempt_s(int attempt) const;

  /// True when `attempts_made` attempts have been spent and no further
  /// retry is allowed.
  [[nodiscard]] bool exhausted(int attempts_made) const {
    return attempts_made >= max_attempts;
  }

  /// Total wait accumulated by a full run through all attempts — the
  /// worst-case latency a retry loop adds before giving up.
  [[nodiscard]] double worst_case_total_delay_s() const;
};

}  // namespace magus::util
