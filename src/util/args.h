// Tiny command-line flag parser for the examples and bench binaries.
//
// Supports "--name value" and "--name=value" forms plus boolean switches
// ("--verbose"). Unknown flags raise an error listing known flags.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace magus::util {

class ArgParser {
 public:
  ArgParser(std::string program_description);

  /// Registers a flag with a default value (all values are strings
  /// internally; typed getters parse on demand).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws std::runtime_error on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Flag& find(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

/// Registers the standard "--threads" flag (0 = hardware concurrency).
void add_threads_flag(ArgParser& parser);

/// Reads "--threads" and resolves 0 / negative values to the hardware
/// concurrency; always returns >= 1.
[[nodiscard]] std::size_t threads_from(const ArgParser& parser);

/// Registers the standard "--metrics <path>" / "--trace <path>" pair
/// (empty = disabled). Pair with obs::ObsSession, which reads them and
/// writes the artifacts.
void add_obs_flags(ArgParser& parser);

}  // namespace magus::util
