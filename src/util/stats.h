// Descriptive statistics helpers used by the evaluation harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace magus::util {

/// Welford-style running summary: mean/variance/min/max without storing data.
class RunningStats {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation between order statistics.
/// `q` in [0, 1]. Requires a non-empty span. Does not need sorted input.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Empirical CDF: sorted (value, cumulative fraction) points, fraction in
/// (0, 1], suitable for plotting or table output.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    std::span<const double> values);

/// Fraction of values satisfying value >= threshold.
[[nodiscard]] double fraction_at_least(std::span<const double> values,
                                       double threshold);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> values);

/// Renders a compact "mean=.. min=.. p50=.. max=.." summary string.
[[nodiscard]] std::string summarize(std::span<const double> values);

}  // namespace magus::util
