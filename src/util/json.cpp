#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace magus::util {

namespace {

void append_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Escape remaining control characters; the cast matters — a
          // plain (signed) char would sign-extend through %x and emit
          // "￿ff8" garbage instead of four hex digits.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void append_number(std::ostream& out, double value) {
  if (std::isfinite(value)) {
    std::ostringstream num;
    num.precision(std::numeric_limits<double>::max_digits10);
    num << value;
    out << num.str();
  } else {
    out << "null";
  }
}

}  // namespace

namespace detail {

JsonValue JsonValue::from(double value) {
  JsonValue v;
  v.kind = Kind::kNumber;
  v.number = value;
  return v;
}

JsonValue JsonValue::from(std::int64_t value) {
  JsonValue v;
  v.kind = Kind::kInteger;
  v.integer = value;
  return v;
}

JsonValue JsonValue::from(bool value) {
  JsonValue v;
  v.kind = Kind::kBool;
  v.boolean = value;
  return v;
}

JsonValue JsonValue::from(std::string value) {
  JsonValue v;
  v.kind = Kind::kString;
  v.string = std::move(value);
  return v;
}

JsonValue JsonValue::from(JsonObject value) {
  JsonValue v;
  v.kind = Kind::kObject;
  v.object = std::make_shared<JsonObject>(std::move(value));
  return v;
}

JsonValue JsonValue::from(JsonArray value) {
  JsonValue v;
  v.kind = Kind::kArray;
  v.array = std::make_shared<JsonArray>(std::move(value));
  return v;
}

void JsonValue::append(std::ostream& out, int indent) const {
  switch (kind) {
    case Kind::kNumber:
      append_number(out, number);
      break;
    case Kind::kInteger:
      out << integer;
      break;
    case Kind::kBool:
      out << (boolean ? "true" : "false");
      break;
    case Kind::kString:
      append_escaped(out, string);
      break;
    case Kind::kObject:
      object->append(out, indent);
      break;
    case Kind::kArray:
      array->append(out, indent);
      break;
  }
}

}  // namespace detail

JsonObject& JsonObject::set(const std::string& key, double value) {
  members_.emplace_back(key, detail::JsonValue::from(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  members_.emplace_back(key, detail::JsonValue::from(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  members_.emplace_back(key, detail::JsonValue::from(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  members_.emplace_back(key, detail::JsonValue::from(value));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string{value});
}

JsonObject& JsonObject::set(const std::string& key, JsonObject value) {
  members_.emplace_back(key, detail::JsonValue::from(std::move(value)));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, JsonArray value) {
  members_.emplace_back(key, detail::JsonValue::from(std::move(value)));
  return *this;
}

void JsonObject::append(std::ostream& out, int indent) const {
  if (members_.empty()) {
    out << "{}";
    return;
  }
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  out << "{\n";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const auto& [key, value] = members_[i];
    out << pad;
    append_escaped(out, key);
    out << ": ";
    value.append(out, indent + 2);
    out << (i + 1 < members_.size() ? ",\n" : "\n");
  }
  out << std::string(static_cast<std::size_t>(indent), ' ') << '}';
}

std::string JsonObject::dump() const {
  std::ostringstream out;
  append(out, 0);
  out << '\n';
  return out.str();
}

void JsonObject::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("JsonObject: cannot open " + path);
  }
  out << dump();
  if (!out) {
    throw std::runtime_error("JsonObject: write failed for " + path);
  }
}

JsonArray& JsonArray::push_back(double value) {
  items_.push_back(detail::JsonValue::from(value));
  return *this;
}

JsonArray& JsonArray::push_back(std::int64_t value) {
  items_.push_back(detail::JsonValue::from(value));
  return *this;
}

JsonArray& JsonArray::push_back(bool value) {
  items_.push_back(detail::JsonValue::from(value));
  return *this;
}

JsonArray& JsonArray::push_back(const std::string& value) {
  items_.push_back(detail::JsonValue::from(value));
  return *this;
}

JsonArray& JsonArray::push_back(const char* value) {
  return push_back(std::string{value});
}

JsonArray& JsonArray::push_back(JsonObject value) {
  items_.push_back(detail::JsonValue::from(std::move(value)));
  return *this;
}

JsonArray& JsonArray::push_back(JsonArray value) {
  items_.push_back(detail::JsonValue::from(std::move(value)));
  return *this;
}

void JsonArray::append(std::ostream& out, int indent) const {
  if (items_.empty()) {
    out << "[]";
    return;
  }
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  out << "[\n";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    out << pad;
    items_[i].append(out, indent + 2);
    out << (i + 1 < items_.size() ? ",\n" : "\n");
  }
  out << std::string(static_cast<std::size_t>(indent), ' ') << ']';
}

std::string JsonArray::dump() const {
  std::ostringstream out;
  append(out, 0);
  out << '\n';
  return out.str();
}

}  // namespace magus::util
