#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace magus::util {

namespace {

void append_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

JsonObject& JsonObject::set(const std::string& key, double value) {
  Value v;
  v.kind = Value::Kind::kNumber;
  v.number = value;
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  Value v;
  v.kind = Value::Kind::kInteger;
  v.integer = value;
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  Value v;
  v.kind = Value::Kind::kBool;
  v.boolean = value;
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  Value v;
  v.kind = Value::Kind::kString;
  v.string = value;
  members_.emplace_back(key, std::move(v));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string{value});
}

JsonObject& JsonObject::set(const std::string& key, JsonObject value) {
  Value v;
  v.kind = Value::Kind::kObject;
  v.object = std::make_shared<JsonObject>(std::move(value));
  members_.emplace_back(key, std::move(v));
  return *this;
}

void JsonObject::append(std::ostream& out, int indent) const {
  if (members_.empty()) {
    out << "{}";
    return;
  }
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  out << "{\n";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const auto& [key, value] = members_[i];
    out << pad;
    append_escaped(out, key);
    out << ": ";
    switch (value.kind) {
      case Value::Kind::kNumber:
        if (std::isfinite(value.number)) {
          std::ostringstream num;
          num.precision(std::numeric_limits<double>::max_digits10);
          num << value.number;
          out << num.str();
        } else {
          out << "null";
        }
        break;
      case Value::Kind::kInteger:
        out << value.integer;
        break;
      case Value::Kind::kBool:
        out << (value.boolean ? "true" : "false");
        break;
      case Value::Kind::kString:
        append_escaped(out, value.string);
        break;
      case Value::Kind::kObject:
        value.object->append(out, indent + 2);
        break;
    }
    out << (i + 1 < members_.size() ? ",\n" : "\n");
  }
  out << std::string(static_cast<std::size_t>(indent), ' ') << '}';
}

std::string JsonObject::dump() const {
  std::ostringstream out;
  append(out, 0);
  out << '\n';
  return out.str();
}

void JsonObject::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("JsonObject: cannot open " + path);
  }
  out << dump();
  if (!out) {
    throw std::runtime_error("JsonObject: write failed for " + path);
  }
}

}  // namespace magus::util
