#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace magus::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t state = value;
  return splitmix64(state);
}

std::uint64_t hash_coords(std::uint64_t seed, std::int64_t x, std::int64_t y) {
  std::uint64_t h = seed;
  h = mix64(h ^ (static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ULL));
  h = mix64(h ^ (static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4FULL));
  return h;
}

double hash_to_unit_double(std::uint64_t hash) {
  // Take the top 53 bits: exactly representable as a double in [0, 1).
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256ss::uniform() { return hash_to_unit_double((*this)()); }

double Xoshiro256ss::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Xoshiro256ss::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Xoshiro256ss::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256ss::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

int Xoshiro256ss::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 60.0) {
    // Normal approximation with continuity correction.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  int count = 0;
  double product = uniform();
  while (product > threshold) {
    ++count;
    product *= uniform();
  }
  return count;
}

Xoshiro256ss Xoshiro256ss::fork(std::uint64_t stream_id) const {
  return Xoshiro256ss{mix64(state_[0] ^ mix64(stream_id))};
}

}  // namespace magus::util
