// Deterministic random number generation.
//
// All randomness in the library flows from explicit 64-bit seeds so that
// every experiment is exactly reproducible. Two generators are provided:
//
//   - SplitMix64: used for seeding and for stateless coordinate hashing
//     (terrain/clutter fields need a reproducible pseudo-random value per
//     grid cell that does not depend on evaluation order).
//   - Xoshiro256ss (xoshiro256**): the general-purpose stream generator.
#pragma once

#include <array>
#include <cstdint>

namespace magus::util {

/// SplitMix64 step: advances the state and returns the next 64-bit value.
/// Also usable as a stateless mixing function (hash of the input).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a single 64-bit value (SplitMix64 finalizer).
[[nodiscard]] std::uint64_t mix64(std::uint64_t value);

/// Combines a seed with coordinates into a reproducible per-cell hash.
[[nodiscard]] std::uint64_t hash_coords(std::uint64_t seed, std::int64_t x,
                                        std::int64_t y);

/// Maps a 64-bit hash to a double in [0, 1).
[[nodiscard]] double hash_to_unit_double(std::uint64_t hash);

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as the authors recommend.
  explicit Xoshiro256ss(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return ~static_cast<result_type>(0);
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  [[nodiscard]] double normal();

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Poisson-distributed count (Knuth for small mean, normal approx above 60).
  [[nodiscard]] int poisson(double mean);

  /// Creates an independent generator for a named sub-stream.
  [[nodiscard]] Xoshiro256ss fork(std::uint64_t stream_id) const;

  /// The raw 256-bit state, for durable checkpointing (the execution
  /// journal records it so a resumed run replays the exact same stream).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace magus::util
