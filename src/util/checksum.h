// FNV-1a checksumming, shared by every durable on-disk format.
//
// Originally private to the path-loss database (DB v2's per-entry
// checksums); hoisted so the execution journal's per-record checksums use
// the exact same scheme. Chainable: pass the previous hash to checksum a
// logical record spread over several buffers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace magus::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

/// FNV-1a over a byte range, chainable via `hash`.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                  std::uint64_t hash = kFnv1aOffsetBasis);

}  // namespace magus::util
