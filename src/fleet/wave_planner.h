// WavePlanner: fleet-scale campaign planning and execution over a
// MarketStore.
//
// plan() walks the requested markets one at a time — acquiring each
// through the store (so the byte budget, not the fleet size, bounds
// resident memory) — runs the single-market Magus pipeline per upgrade
// site, drops upgrades whose predicted recovery falls below the market's
// floor, colors each market's upgrades into conflict-free local windows
// (traffic::schedule_campaign), and composes every market's window chain
// into one fleet wave under the global crew-concurrency cap
// (traffic::compose_wave).
//
// Parallelism is *inside* a market, never across markets: all per-market
// planners score their candidate batches on the planner's one shared
// util::ThreadPool (PlannerOptions::shared_pool), so fleet planning uses
// the same worker set a single market would, and per-market results are
// bit-identical to a standalone core::MagusPlanner run on that market —
// which is what the fleet bench asserts.
//
// execute() replays the wave market by market through exec::FleetRunner:
// one crash-safe CampaignRunner per market with its own derived seed and
// its own write-ahead journal file.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/planner.h"
#include "exec/fleet_runner.h"
#include "fleet/market_store.h"
#include "traffic/wave.h"

namespace magus::fleet {

struct WavePlannerOptions {
  core::PlannerOptions planner;  ///< shared_pool is overwritten internally
  core::Utility utility = core::Utility::performance();
  /// Markets the carrier can staff per shared maintenance window.
  std::size_t crew_cap = 4;
  /// Fleet-wide minimum predicted recovery ratio; upgrades below it are
  /// deferred (reported, not scheduled). Per-market requests can override.
  /// Default -inf schedules everything: the recovery *ratio* is negative
  /// whenever an upgrade raises utility (over-interfering site off-air
  /// flips Formula 7's denominator), so a floor is an opt-in policy.
  double recovery_floor = -std::numeric_limits<double>::infinity();
  /// Bound on any single market's window count (0 = unbounded); passed to
  /// traffic::schedule_campaign, which throws when infeasible.
  std::size_t max_windows_per_market = 0;
  /// Workers in the shared evaluation pool (0 = hardware concurrency).
  std::size_t threads = 0;
};

struct MarketUpgradeRequest {
  MarketId market = 0;
  /// Sites to upgrade in this market (lowest site ids first); each site's
  /// sectors form one planned upgrade.
  std::size_t max_sites = 4;
  /// Per-market recovery floor; NaN (the default) = use the fleet-wide
  /// floor. Any finite or infinite value — including negative ones —
  /// overrides it.
  double recovery_floor = std::numeric_limits<double>::quiet_NaN();
};

struct MarketPlan {
  MarketId market = 0;
  std::vector<traffic::PlannedUpgrade> upgrades;  ///< scheduled only
  std::vector<double> recoveries;                 ///< parallel to upgrades
  traffic::CampaignSchedule schedule;
  /// Upgrades dropped for missing the recovery floor, as (site id,
  /// predicted recovery) pairs.
  std::vector<std::pair<std::int32_t, double>> deferred;
  double min_recovery = 1.0;  ///< over scheduled upgrades (1 when none)
  /// FNV-1a over every scheduled upgrade's C_after settings and recovery —
  /// the cheap identity witness the fleet bench compares across byte
  /// budgets and against standalone single-market planning.
  std::uint64_t fingerprint = 0;
  bool db_rebuilt = false;  ///< this plan's acquire rebuilt the database
};

struct FleetWavePlan {
  std::vector<MarketPlan> markets;  ///< request order
  traffic::WavePlan wave;

  [[nodiscard]] std::size_t upgrades_total() const;
  /// FNV-1a chain over every market's fingerprint, in market-id order —
  /// one number that must survive eviction/reload of any market.
  [[nodiscard]] std::uint64_t fleet_fingerprint() const;
};

struct FleetExecutionOptions {
  exec::CampaignOptions campaign;  ///< seed acts as the fleet seed
  /// Directory for per-market journals (market_<id>.journal); empty =
  /// unjournaled.
  std::string journal_dir;
  bool resume = false;  ///< replay each market's journal before running
  /// Optional per-market fault-injector factory (returns the per-upgrade
  /// factory exec::CampaignEnv expects); empty = fault-free execution.
  std::function<
      std::function<std::unique_ptr<exec::FaultInjector>(std::size_t)>(
          MarketId)>
      injectors;
};

struct MarketExecution {
  MarketId market = 0;
  exec::CampaignResult result;
};

struct FleetExecutionResult {
  std::vector<MarketExecution> markets;  ///< wave order
  std::size_t upgrades_completed = 0;
  std::size_t upgrades_rolled_back = 0;
  std::size_t upgrades_skipped = 0;
  int quarantine_events = 0;
  bool completed = false;
};

/// The per-upgrade target sets plan() uses for a market: one upgrade per
/// site, lowest `max_sites` site ids, each upgrade = that site's sectors.
/// Exposed so tests and benches can reproduce a market's plan standalone.
[[nodiscard]] std::vector<std::vector<net::SectorId>> upgrade_targets_for(
    const net::Network& network, std::size_t max_sites);

/// Fingerprint of one planned upgrade's outcome, chainable across a
/// market's upgrades (same scheme as MarketPlan::fingerprint).
[[nodiscard]] std::uint64_t plan_fingerprint(
    const net::Configuration& c_after, double recovery,
    std::uint64_t hash = 0xCBF29CE484222325ULL);

class WavePlanner {
 public:
  /// `store` must outlive the planner.
  WavePlanner(MarketStore* store, WavePlannerOptions options);

  /// Plans every requested market and composes the fleet wave. Markets are
  /// planned in request order; each one is acquired, planned, and released
  /// before the next (the store's LRU decides what stays resident).
  [[nodiscard]] FleetWavePlan plan(
      std::span<const MarketUpgradeRequest> requests);

  /// Executes a planned wave market by market (wave first-appearance
  /// order), re-acquiring each market through the store — possibly
  /// rematerializing it if evicted since planning, which is safe because
  /// rematerialization is bit-identical.
  [[nodiscard]] FleetExecutionResult execute(
      const FleetWavePlan& plan, const FleetExecutionOptions& options = {});

  [[nodiscard]] MarketStore& store() { return *store_; }
  [[nodiscard]] const WavePlannerOptions& options() const { return options_; }
  [[nodiscard]] util::ThreadPool& pool() { return *pool_; }

 private:
  /// Plans one market (acquired handle) — the body of plan()'s loop.
  [[nodiscard]] MarketPlan plan_market(const MarketUpgradeRequest& request);

  MarketStore* store_;
  WavePlannerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace magus::fleet
