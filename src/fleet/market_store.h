// MarketStore: the fleet's lazy, byte-budgeted cache of materialized
// markets.
//
// A fleet has hundreds of markets but the driver only ever works on a few
// at a time, and one market's resident footprint (path-loss windows +
// linear twins + coverage index) runs to tens of megabytes. The store owns
// the per-market path-loss database *paths* and materializes a market —
// topology regenerated from its seed, database loaded from disk (or built
// once from the full propagation stack and saved), analysis model bound on
// top — only when acquired, behind an LRU cache charged against a
// configurable byte budget.
//
// Eviction is safe because materialization is deterministic: the market
// topology regenerates bit-identically from its seed, and the PR-5
// database format guarantees save/load round-trips bit-identically for
// any thread count — so an evicted market that is re-acquired later
// produces byte-identical footprints, and therefore identical plans, to
// the first materialization. Handles are handed out as shared_ptr: an
// eviction drops the cache's reference, but a handle the caller still
// holds stays fully usable until released.
//
// Thread-safety: driver-thread only. The store is not internally
// synchronized — the fleet WavePlanner acquires markets sequentially and
// parallelizes *inside* a market (shared evaluation pool), not across
// markets.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/experiment.h"

namespace magus::fleet {

/// Fleet-wide market key; dense 0-based in specs_from_fleet fleets.
using MarketId = std::int32_t;

struct MarketSpec {
  MarketId id = 0;
  data::MarketParams params;
};

/// One MarketSpec per market of a generated fleet, ids 0..markets-1 in
/// generation order.
[[nodiscard]] std::vector<MarketSpec> specs_from_fleet(
    const data::FleetParams& params);

struct StoreOptions {
  /// Directory holding one path-loss database file per market
  /// (market_<id>.pldb); created if missing.
  std::string db_dir;
  /// Resident-byte budget across cached markets; 0 = unbounded. The
  /// budget is a high-water target, not a hard cap: the most recently
  /// acquired market is always admitted, even when it alone exceeds the
  /// budget (a cache that cannot hold the working market is useless).
  std::size_t byte_budget = 0;
  /// Workers for database load / rebuild / save (0 = hardware).
  std::size_t threads = 0;
  /// Tilt indices every market's database must cover. Power-mode planning
  /// only reads tilt 0 (the deployment default), which keeps fleet-scale
  /// databases small.
  std::vector<radio::TiltIndex> tilts = {0};
  /// Model/propagation options used when a database must be rebuilt and
  /// when binding the analysis model.
  data::ExperimentOptions experiment;
};

/// One materialized market: regenerated topology, loaded (or rebuilt)
/// path-loss database, and an analysis model bound over both. Non-movable:
/// the model holds pointers into the network and database.
class MarketHandle {
 public:
  MarketHandle(const MarketSpec& spec, const StoreOptions& options,
               std::string db_path);
  MarketHandle(const MarketHandle&) = delete;
  MarketHandle& operator=(const MarketHandle&) = delete;

  [[nodiscard]] MarketId id() const { return spec_.id; }
  [[nodiscard]] const MarketSpec& spec() const { return spec_; }
  [[nodiscard]] const data::Market& market() const { return market_; }
  [[nodiscard]] const net::Network& network() const {
    return market_.network;
  }
  [[nodiscard]] pathloss::PathLossDatabase& db() { return *db_; }
  [[nodiscard]] model::AnalysisModel& model() { return *model_; }

  /// True when the database file was unusable (missing, corrupt, wrong
  /// grid, or incomplete for this market's sectors/tilts) and had to be
  /// rebuilt from the propagation stack.
  [[nodiscard]] bool rebuilt() const { return rebuilt_; }
  /// The load failure that forced the rebuild, empty otherwise.
  [[nodiscard]] const std::string& load_error() const { return load_error_; }

  /// Heap bytes this market pins while resident: database footprints plus
  /// the model's market half (frozen UE density + coverage index). Grows
  /// after a parallel evaluator builds the coverage index, so the store
  /// re-samples it on every acquire.
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  MarketSpec spec_;
  data::Market market_;
  std::string db_path_;
  bool rebuilt_ = false;
  std::string load_error_;
  std::unique_ptr<pathloss::PathLossDatabase> db_;
  std::unique_ptr<model::AnalysisModel> model_;
};

class MarketStore {
 public:
  /// Takes the full fleet roster up front; markets materialize lazily.
  /// Creates options.db_dir if missing. Throws std::invalid_argument on
  /// duplicate market ids.
  MarketStore(std::vector<MarketSpec> specs, StoreOptions options);

  /// The handle for `id`, materializing (and possibly evicting others) on
  /// a miss. Throws std::out_of_range for an unknown id. The returned
  /// handle stays valid for the caller even if the store evicts it later.
  [[nodiscard]] std::shared_ptr<MarketHandle> acquire(MarketId id);

  /// Drops every cached handle (outstanding shared_ptrs stay valid).
  void clear();

  [[nodiscard]] bool resident(MarketId id) const {
    return resident_.contains(id);
  }
  [[nodiscard]] std::size_t resident_count() const {
    return resident_.size();
  }
  /// Bytes currently charged against the budget (last-sampled sizes).
  [[nodiscard]] std::size_t resident_bytes() const { return charged_; }
  /// Largest value resident_bytes() has reached — what an unbounded run
  /// would need, and the natural reference for choosing a budget.
  [[nodiscard]] std::size_t peak_resident_bytes() const { return peak_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  [[nodiscard]] const std::vector<MarketSpec>& specs() const {
    return specs_;
  }
  [[nodiscard]] const MarketSpec& spec(MarketId id) const;
  [[nodiscard]] const StoreOptions& options() const { return options_; }
  /// This market's database file path (exists only once materialized).
  [[nodiscard]] std::string db_path(MarketId id) const;

 private:
  struct Resident {
    std::shared_ptr<MarketHandle> handle;
    std::list<MarketId>::iterator lru_it;  ///< position in lru_
    std::size_t charged = 0;               ///< bytes last sampled
  };

  /// Re-samples one resident's bytes and updates the charge accounting.
  void resample(Resident& entry);
  /// Evicts least-recently-used residents (never `keep`) until the charge
  /// fits the budget or nothing else is evictable.
  void evict_to_fit(MarketId keep);

  std::vector<MarketSpec> specs_;
  std::map<MarketId, std::size_t> spec_index_;
  StoreOptions options_;

  std::list<MarketId> lru_;  ///< front = most recently used
  std::map<MarketId, Resident> resident_;
  std::size_t charged_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace magus::fleet
