// MarketStore: the fleet's lazy, byte-budgeted cache of materialized
// markets, with footprint-granular residency.
//
// A fleet has hundreds of markets but the driver only ever works on a few
// at a time, and one market's resident footprint (path-loss windows +
// linear twins + coverage index) runs to tens of megabytes. The store owns
// the per-market path-loss database *paths* and materializes a market —
// topology regenerated from its seed, database opened zero-copy from a v3
// file (or loaded/migrated from v2, or built once from the full
// propagation stack and saved as v3), analysis model bound on top — only
// when acquired, behind an LRU cache charged against a configurable byte
// budget.
//
// The accounting unit is the *footprint* (sector x tilt), not the market:
// a streaming market (MappedPathLossDatabase) charges only the heap its
// touched footprints pin — linear twins plus the model's market half —
// while the dB gain planes stay file-backed in the mapping, and the
// budget has two enforcement rungs. Rung 1 releases the path-loss heap of
// cold streaming markets (release_db_residency), which keeps the market's
// topology, model and coverage index warm; a later acquire re-touches the
// released planes bit-identically at their stable addresses (refresh()).
// Rung 2 evicts whole markets LRU-first, as before. A market bigger than
// the whole budget can therefore still plan under it: only the footprints
// a plan actually touches are ever heap-resident at once.
//
// Eviction at either rung is safe because materialization is
// deterministic: the topology regenerates bit-identically from its seed,
// the database formats round-trip bit-identically for any thread count,
// and the mapped provider rematerializes released entries bit-identically
// at the same address — so re-acquired markets produce byte-identical
// footprints, and therefore identical plans, to the first
// materialization. Handles are handed out as shared_ptr: an eviction
// drops the cache's reference, but a handle the caller still holds stays
// fully usable until released (after a rung-1 release, usable again once
// refresh() runs — acquire() does this automatically).
//
// Thread-safety: driver-thread only. The store is not internally
// synchronized — the fleet WavePlanner acquires markets sequentially and
// parallelizes *inside* a market (shared evaluation pool), not across
// markets.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/experiment.h"
#include "pathloss/mapped_database.h"

namespace magus::fleet {

/// Fleet-wide market key; dense 0-based in specs_from_fleet fleets.
using MarketId = std::int32_t;

struct MarketSpec {
  MarketId id = 0;
  data::MarketParams params;
};

/// One MarketSpec per market of a generated fleet, ids 0..markets-1 in
/// generation order.
[[nodiscard]] std::vector<MarketSpec> specs_from_fleet(
    const data::FleetParams& params);

struct StoreOptions {
  /// Directory holding one path-loss database file per market
  /// (market_<id>.pldb); created if missing.
  std::string db_dir;
  /// Resident-byte budget across cached markets; 0 = unbounded. The
  /// budget is a high-water target, not a hard cap: the most recently
  /// acquired market is always admitted, even when it alone exceeds the
  /// budget (a cache that cannot hold the working market is useless).
  std::size_t byte_budget = 0;
  /// Workers for database load / rebuild / save (0 = hardware).
  std::size_t threads = 0;
  /// Tilt indices every market's database must cover. Power-mode planning
  /// only reads tilt 0 (the deployment default), which keeps fleet-scale
  /// databases small.
  std::vector<radio::TiltIndex> tilts = {0};
  /// Open markets through the zero-copy streaming provider
  /// (pathloss::MappedPathLossDatabase) when possible: a v3 file maps
  /// directly; a sound v2 file is eagerly loaded once, migrated to v3 in
  /// place (best-effort) and reopened mapped. false forces the eager
  /// PathLossDatabase everywhere (plans are bit-identical either way —
  /// the fleet tests assert it).
  bool prefer_mapped = true;
  /// Model/propagation options used when a database must be rebuilt and
  /// when binding the analysis model.
  data::ExperimentOptions experiment;
};

/// One materialized market: regenerated topology, a path-loss provider
/// (zero-copy streaming MappedPathLossDatabase when the file is v3 and
/// StoreOptions::prefer_mapped holds, eager PathLossDatabase otherwise),
/// and an analysis model bound over both. Non-movable: the model holds
/// pointers into the network and provider.
class MarketHandle {
 public:
  MarketHandle(const MarketSpec& spec, const StoreOptions& options,
               std::string db_path);
  MarketHandle(const MarketHandle&) = delete;
  MarketHandle& operator=(const MarketHandle&) = delete;

  [[nodiscard]] MarketId id() const { return spec_.id; }
  [[nodiscard]] const MarketSpec& spec() const { return spec_; }
  [[nodiscard]] const data::Market& market() const { return market_; }
  [[nodiscard]] const net::Network& network() const {
    return market_.network;
  }
  /// The bound path-loss provider (mapped or eager — see streaming()).
  [[nodiscard]] pathloss::PathLossProvider& provider();
  [[nodiscard]] model::AnalysisModel& model() { return *model_; }

  /// True when this market runs on the zero-copy streaming provider.
  [[nodiscard]] bool streaming() const { return mapped_db_ != nullptr; }
  /// Entries in the bound database (either provider kind).
  [[nodiscard]] std::size_t db_entry_count() const;
  /// Heap bytes the bound database currently pins. For a streaming market
  /// this is only the touched footprints' linear twins — the dB planes
  /// live in the file mapping and never count.
  [[nodiscard]] std::size_t db_resident_bytes() const;

  /// True when the database file was unusable (missing, corrupt, wrong
  /// grid, or incomplete for this market's sectors/tilts) and had to be
  /// rebuilt from the propagation stack.
  [[nodiscard]] bool rebuilt() const { return rebuilt_; }
  /// True when a sound v2 file was re-saved as v3 (and reopened mapped)
  /// during materialization.
  [[nodiscard]] bool migrated() const { return migrated_; }
  /// The load failure that forced the rebuild, empty otherwise.
  [[nodiscard]] const std::string& load_error() const { return load_error_; }

  /// Heap bytes this market pins while resident: database heap (see
  /// db_resident_bytes) plus the model's market half (frozen UE density +
  /// coverage index). Grows after a parallel evaluator builds the
  /// coverage index or a touch materializes a footprint, so the store
  /// re-samples it on every acquire.
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Rung-1 residency release: frees the streaming provider's touched
  /// heap (linear twins) and marks the handle stale; returns bytes freed
  /// (0 for eager markets — their footprints are their storage). The
  /// model must not be used again until refresh() runs.
  std::size_t release_db_residency();
  /// Rematerializes released footprints (bit-identically, at their stable
  /// addresses) by re-touching every sector's current-tilt plane through
  /// the model. No-op unless a release happened since the last refresh.
  void refresh();

 private:
  MarketSpec spec_;
  data::Market market_;
  std::string db_path_;
  bool rebuilt_ = false;
  bool migrated_ = false;
  bool stale_ = false;  ///< released since last refresh()
  std::string load_error_;
  /// Exactly one of these is set; provider() returns it.
  std::unique_ptr<pathloss::PathLossDatabase> db_;
  std::unique_ptr<pathloss::MappedPathLossDatabase> mapped_db_;
  std::unique_ptr<model::AnalysisModel> model_;
};

class MarketStore {
 public:
  /// Takes the full fleet roster up front; markets materialize lazily.
  /// Creates options.db_dir if missing. Throws std::invalid_argument on
  /// duplicate market ids.
  MarketStore(std::vector<MarketSpec> specs, StoreOptions options);

  /// The handle for `id`, materializing (and possibly evicting others) on
  /// a miss. Throws std::out_of_range for an unknown id. The returned
  /// handle stays valid for the caller even if the store evicts it later.
  [[nodiscard]] std::shared_ptr<MarketHandle> acquire(MarketId id);

  /// Drops every cached handle (outstanding shared_ptrs stay valid).
  void clear();

  [[nodiscard]] bool resident(MarketId id) const {
    return resident_.contains(id);
  }
  [[nodiscard]] std::size_t resident_count() const {
    return resident_.size();
  }
  /// Bytes currently charged against the budget (last-sampled sizes).
  [[nodiscard]] std::size_t resident_bytes() const { return charged_; }
  /// Largest value resident_bytes() has reached — what an unbounded run
  /// would need, and the natural reference for choosing a budget.
  [[nodiscard]] std::size_t peak_resident_bytes() const { return peak_; }
  /// Largest charge left standing *after* budget enforcement — what the
  /// run actually held. Under a budget this stays at (or near) it even
  /// when peak_resident_bytes() reports the transient pre-enforcement
  /// spike; the streaming acceptance gate asserts on this one.
  [[nodiscard]] std::size_t enforced_peak_bytes() const {
    return enforced_peak_;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Rung-1 enforcement actions: cold streaming markets whose path-loss
  /// heap was released without evicting the market.
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

  /// Re-samples every resident's bytes and re-enforces the budget. The
  /// fleet WavePlanner calls this after planning each market: the
  /// coverage index built and footprints touched *during* planning grow a
  /// market past what acquire() charged, and waiting for the next acquire
  /// would let the overshoot linger across a whole market's planning.
  void enforce_budget();

  [[nodiscard]] const std::vector<MarketSpec>& specs() const {
    return specs_;
  }
  [[nodiscard]] const MarketSpec& spec(MarketId id) const;
  [[nodiscard]] const StoreOptions& options() const { return options_; }
  /// This market's database file path (exists only once materialized).
  [[nodiscard]] std::string db_path(MarketId id) const;

 private:
  struct Resident {
    std::shared_ptr<MarketHandle> handle;
    std::list<MarketId>::iterator lru_it;  ///< position in lru_
    std::size_t charged = 0;               ///< bytes last sampled
  };

  /// Re-samples one resident's bytes and updates the charge accounting.
  void resample(Resident& entry);
  /// Re-samples every resident (footprint touches and index builds grow
  /// markets between acquires; rung-1 releases shrink them).
  void resample_all();
  /// Two-rung budget enforcement, never touching `keep`: releases the
  /// path-loss heap of cold streaming markets LRU-back-first (rung 1),
  /// then evicts whole markets LRU-back-first (rung 2) until the charge
  /// fits or nothing else is actionable. Updates enforced_peak_.
  void evict_to_fit(MarketId keep);

  std::vector<MarketSpec> specs_;
  std::map<MarketId, std::size_t> spec_index_;
  StoreOptions options_;

  std::list<MarketId> lru_;  ///< front = most recently used
  std::map<MarketId, Resident> resident_;
  std::size_t charged_ = 0;
  std::size_t peak_ = 0;
  std::size_t enforced_peak_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace magus::fleet
