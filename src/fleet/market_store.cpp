#include "fleet/market_store.h"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace magus::fleet {

namespace {

struct StoreMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& resident_bytes;
  obs::Histogram& load_latency_us;

  [[nodiscard]] static StoreMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static StoreMetrics metrics{
        registry.counter("fleet.store.hits"),
        registry.counter("fleet.store.misses"),
        registry.counter("fleet.store.evictions"),
        registry.gauge("fleet.store.resident_bytes"),
        registry.histogram("fleet.store.load_latency_us",
                           obs::exponential_bounds(1'000.0, 4.0, 12)),
    };
    return metrics;
  }
};

}  // namespace

std::vector<MarketSpec> specs_from_fleet(const data::FleetParams& params) {
  const std::vector<data::MarketParams> fleet = data::generate_fleet(params);
  std::vector<MarketSpec> specs;
  specs.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    specs.push_back({static_cast<MarketId>(i), fleet[i]});
  }
  return specs;
}

MarketHandle::MarketHandle(const MarketSpec& spec, const StoreOptions& options,
                           std::string db_path)
    : spec_(spec),
      market_(data::generate_market(spec.params)),
      db_path_(std::move(db_path)) {
  // Fast path: a structurally sound file that covers this market loads
  // without ever touching terrain or the propagation model.
  const auto is_complete = [&](pathloss::PathLossDatabase& db) {
    const geo::GridMap expected{market_.region, market_.params.cell_size_m};
    if (db.grid().cols() != expected.cols() ||
        db.grid().rows() != expected.rows() ||
        db.grid().cell_size_m() != expected.cell_size_m()) {
      return false;
    }
    for (const auto& sector : market_.network.sectors()) {
      for (const radio::TiltIndex tilt : options.tilts) {
        if (!db.contains(sector.id, tilt)) return false;
      }
    }
    return true;
  };

  const auto probe = pathloss::PathLossDatabase::probe(db_path_);
  if (probe.ok) {
    try {
      auto db = pathloss::PathLossDatabase::load(db_path_, options.threads);
      if (is_complete(db)) {
        db_ = std::make_unique<pathloss::PathLossDatabase>(std::move(db));
      } else {
        load_error_ = "database incomplete for this market";
      }
    } catch (const std::runtime_error& e) {
      load_error_ = e.what();
    }
  } else {
    load_error_ = probe.error;
  }

  if (db_ == nullptr) {
    // Slow path: materialize the full stack once; open_footprint_db
    // rebuilds every (sector x tilt) matrix and best-effort re-saves, so
    // the next acquire takes the fast path.
    data::Experiment experiment{spec_.params, options.experiment};
    pathloss::PathLossDatabase::LoadReport report;
    db_ = std::make_unique<pathloss::PathLossDatabase>(
        experiment.open_footprint_db(db_path_, options.tilts, options.threads,
                                     &report));
    rebuilt_ = true;
    if (load_error_.empty()) load_error_ = report.error;
  }
  model_ = std::make_unique<model::AnalysisModel>(&market_.network, db_.get(),
                                                  options.experiment.model);
}

std::size_t MarketHandle::resident_bytes() const {
  return db_->resident_bytes() + model_->market_context().resident_bytes();
}

MarketStore::MarketStore(std::vector<MarketSpec> specs, StoreOptions options)
    : specs_(std::move(specs)), options_(std::move(options)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!spec_index_.emplace(specs_[i].id, i).second) {
      throw std::invalid_argument("MarketStore: duplicate market id " +
                                  std::to_string(specs_[i].id));
    }
  }
  if (!options_.db_dir.empty()) {
    std::filesystem::create_directories(options_.db_dir);
  }
}

const MarketSpec& MarketStore::spec(MarketId id) const {
  const auto it = spec_index_.find(id);
  if (it == spec_index_.end()) {
    throw std::out_of_range("MarketStore: unknown market " +
                            std::to_string(id));
  }
  return specs_[it->second];
}

std::string MarketStore::db_path(MarketId id) const {
  return (std::filesystem::path{options_.db_dir} /
          ("market_" + std::to_string(id) + ".pldb"))
      .string();
}

void MarketStore::resample(Resident& entry) {
  const std::size_t now = entry.handle->resident_bytes();
  charged_ += now - entry.charged;
  entry.charged = now;
}

void MarketStore::evict_to_fit(MarketId keep) {
  if (options_.byte_budget == 0) return;
  while (charged_ > options_.byte_budget && lru_.size() > 1) {
    const MarketId victim = lru_.back();
    if (victim == keep) break;  // never evict the working market
    const auto it = resident_.find(victim);
    charged_ -= it->second.charged;
    lru_.erase(it->second.lru_it);
    resident_.erase(it);
    ++evictions_;
    StoreMetrics::get().evictions.add(1);
  }
}

std::shared_ptr<MarketHandle> MarketStore::acquire(MarketId id) {
  StoreMetrics& metrics = StoreMetrics::get();
  if (const auto it = resident_.find(id); it != resident_.end()) {
    ++hits_;
    metrics.hits.add(1);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    // The handle may have grown since last seen (coverage index builds
    // lazily); keep the charge honest and re-enforce the budget.
    resample(it->second);
    peak_ = std::max(peak_, charged_);
    evict_to_fit(id);
    metrics.resident_bytes.set(static_cast<double>(charged_));
    return it->second.handle;
  }

  const MarketSpec& market_spec = spec(id);  // throws on unknown id
  ++misses_;
  metrics.misses.add(1);
  std::shared_ptr<MarketHandle> handle;
  {
    const obs::ScopedTimerUs timer{metrics.load_latency_us};
    handle =
        std::make_shared<MarketHandle>(market_spec, options_, db_path(id));
  }
  lru_.push_front(id);
  Resident entry{handle, lru_.begin(), handle->resident_bytes()};
  charged_ += entry.charged;
  resident_.emplace(id, std::move(entry));
  peak_ = std::max(peak_, charged_);
  evict_to_fit(id);
  metrics.resident_bytes.set(static_cast<double>(charged_));
  return handle;
}

void MarketStore::clear() {
  resident_.clear();
  lru_.clear();
  charged_ = 0;
  StoreMetrics::get().resident_bytes.set(0.0);
}

}  // namespace magus::fleet
