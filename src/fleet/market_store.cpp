#include "fleet/market_store.h"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace magus::fleet {

namespace {

struct StoreMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& releases;
  obs::Gauge& resident_bytes;
  obs::Histogram& load_latency_us;

  [[nodiscard]] static StoreMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static StoreMetrics metrics{
        registry.counter("fleet.store.hits"),
        registry.counter("fleet.store.misses"),
        registry.counter("fleet.store.evictions"),
        registry.counter("fleet.store.releases"),
        registry.gauge("fleet.store.resident_bytes"),
        registry.histogram("fleet.store.load_latency_us",
                           obs::exponential_bounds(1'000.0, 4.0, 12)),
    };
    return metrics;
  }
};

}  // namespace

std::vector<MarketSpec> specs_from_fleet(const data::FleetParams& params) {
  const std::vector<data::MarketParams> fleet = data::generate_fleet(params);
  std::vector<MarketSpec> specs;
  specs.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    specs.push_back({static_cast<MarketId>(i), fleet[i]});
  }
  return specs;
}

MarketHandle::MarketHandle(const MarketSpec& spec, const StoreOptions& options,
                           std::string db_path)
    : spec_(spec),
      market_(data::generate_market(spec.params)),
      db_path_(std::move(db_path)) {
  // A usable database must sit on this market's grid and cover every
  // (sector x tilt) the store promises. Checked against whichever
  // provider kind opened the file.
  const geo::GridMap expected{market_.region, market_.params.cell_size_m};
  const auto is_complete = [&](const auto& db) {
    if (db.grid().cols() != expected.cols() ||
        db.grid().rows() != expected.rows() ||
        db.grid().cell_size_m() != expected.cell_size_m()) {
      return false;
    }
    for (const auto& sector : market_.network.sectors()) {
      for (const radio::TiltIndex tilt : options.tilts) {
        if (!db.contains(sector.id, tilt)) return false;
      }
    }
    return true;
  };
  // Best-effort streaming open of a v3 file; leaves mapped_db_ unset (and
  // load_error_ explaining why) when the file is unusable.
  const auto try_open_mapped = [&] {
    try {
      auto mapped = std::make_unique<pathloss::MappedPathLossDatabase>(
          db_path_);
      if (is_complete(*mapped)) {
        mapped_db_ = std::move(mapped);
      } else {
        load_error_ = "database incomplete for this market";
      }
    } catch (const std::runtime_error& e) {
      load_error_ = e.what();
    }
  };

  const auto probe = pathloss::PathLossDatabase::probe(db_path_);
  if (probe.ok && probe.version == pathloss::format::kVersionMapped &&
      options.prefer_mapped) {
    // Fast path, streaming flavor: open the directory, map the planes,
    // materialize nothing.
    try_open_mapped();
  } else if (probe.ok) {
    // Fast path, eager flavor: a structurally sound file that covers this
    // market loads without ever touching terrain or the propagation
    // model. A v2 file under prefer_mapped is migrated in place
    // (best-effort) and reopened through the mapping so every later
    // acquire of this market streams.
    try {
      auto db = pathloss::PathLossDatabase::load(db_path_, options.threads);
      if (is_complete(db)) {
        if (options.prefer_mapped) {
          try {
            db.save_v3(db_path_, options.threads);
            try_open_mapped();
            if (mapped_db_ != nullptr) {
              migrated_ = true;
              obs::MetricsRegistry::global()
                  .counter("pathloss.db.migrations")
                  .add(1);
            }
          } catch (const std::runtime_error&) {
            // Unwritable db_dir: keep the eager database, stay on v2.
          }
        }
        if (mapped_db_ == nullptr) {
          db_ = std::make_unique<pathloss::PathLossDatabase>(std::move(db));
        }
      } else {
        load_error_ = "database incomplete for this market";
      }
    } catch (const std::runtime_error& e) {
      load_error_ = e.what();
    }
  } else {
    load_error_ = probe.error;
  }

  if (mapped_db_ == nullptr && db_ == nullptr) {
    // Slow path: materialize the full stack once; open_footprint_db
    // rebuilds every (sector x tilt) matrix and best-effort re-saves (as
    // v3), so the next acquire takes the fast path. When the re-save
    // landed and streaming is wanted, reopen through the mapping.
    data::Experiment experiment{spec_.params, options.experiment};
    pathloss::PathLossDatabase::LoadReport report;
    db_ = std::make_unique<pathloss::PathLossDatabase>(
        experiment.open_footprint_db(db_path_, options.tilts, options.threads,
                                     &report));
    rebuilt_ = true;
    if (load_error_.empty()) load_error_ = report.error;
    if (options.prefer_mapped && report.resaved) {
      const std::string rebuild_error = load_error_;
      try_open_mapped();
      load_error_ = rebuild_error;  // keep the *rebuild* cause
      if (mapped_db_ != nullptr) db_.reset();
    }
  }
  model_ = std::make_unique<model::AnalysisModel>(
      &market_.network, &provider(), options.experiment.model);
}

pathloss::PathLossProvider& MarketHandle::provider() {
  if (mapped_db_ != nullptr) return *mapped_db_;
  return *db_;
}

std::size_t MarketHandle::db_entry_count() const {
  return mapped_db_ != nullptr ? mapped_db_->entry_count()
                               : db_->entry_count();
}

std::size_t MarketHandle::db_resident_bytes() const {
  return mapped_db_ != nullptr ? mapped_db_->resident_bytes()
                               : db_->resident_bytes();
}

std::size_t MarketHandle::resident_bytes() const {
  return db_resident_bytes() + model_->market_context().resident_bytes();
}

std::size_t MarketHandle::release_db_residency() {
  if (mapped_db_ == nullptr) return 0;
  const std::size_t freed = mapped_db_->release_residency();
  if (freed > 0) stale_ = true;
  return freed;
}

void MarketHandle::refresh() {
  if (!stale_) return;
  model_->retouch_footprints();
  stale_ = false;
}

MarketStore::MarketStore(std::vector<MarketSpec> specs, StoreOptions options)
    : specs_(std::move(specs)), options_(std::move(options)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!spec_index_.emplace(specs_[i].id, i).second) {
      throw std::invalid_argument("MarketStore: duplicate market id " +
                                  std::to_string(specs_[i].id));
    }
  }
  if (!options_.db_dir.empty()) {
    std::filesystem::create_directories(options_.db_dir);
  }
}

const MarketSpec& MarketStore::spec(MarketId id) const {
  const auto it = spec_index_.find(id);
  if (it == spec_index_.end()) {
    throw std::out_of_range("MarketStore: unknown market " +
                            std::to_string(id));
  }
  return specs_[it->second];
}

std::string MarketStore::db_path(MarketId id) const {
  return (std::filesystem::path{options_.db_dir} /
          ("market_" + std::to_string(id) + ".pldb"))
      .string();
}

void MarketStore::resample(Resident& entry) {
  const std::size_t now = entry.handle->resident_bytes();
  charged_ += now - entry.charged;
  entry.charged = now;
}

void MarketStore::resample_all() {
  for (auto& [id, entry] : resident_) resample(entry);
}

void MarketStore::evict_to_fit(MarketId keep) {
  if (options_.byte_budget == 0) {
    // Unbounded: nothing to enforce, but the settled charge is still the
    // post-enforcement peak (== peak_resident_bytes here).
    enforced_peak_ = std::max(enforced_peak_, charged_);
    return;
  }
  // Rung 1: strip cold streaming markets down to their mapped planes +
  // model half, coldest first. The market stays resident and warm — a
  // later acquire re-touches its footprints bit-identically — so this is
  // much cheaper to undo than an eviction.
  for (auto it = lru_.rbegin();
       it != lru_.rend() && charged_ > options_.byte_budget; ++it) {
    if (*it == keep) continue;
    Resident& entry = resident_.find(*it)->second;
    const std::size_t freed = entry.handle->release_db_residency();
    if (freed == 0) continue;  // eager, or nothing materialized
    resample(entry);
    ++releases_;
    StoreMetrics::get().releases.add(1);
  }
  // Rung 2: whole-market eviction, LRU-back first (never `keep`).
  while (charged_ > options_.byte_budget && lru_.size() > 1) {
    const MarketId victim = lru_.back();
    if (victim == keep) break;  // never evict the working market
    const auto it = resident_.find(victim);
    charged_ -= it->second.charged;
    lru_.erase(it->second.lru_it);
    resident_.erase(it);
    ++evictions_;
    StoreMetrics::get().evictions.add(1);
  }
  enforced_peak_ = std::max(enforced_peak_, charged_);
}

void MarketStore::enforce_budget() {
  resample_all();
  peak_ = std::max(peak_, charged_);
  const MarketId keep = lru_.empty() ? MarketId{-1} : lru_.front();
  evict_to_fit(keep);
  StoreMetrics::get().resident_bytes.set(static_cast<double>(charged_));
}

std::shared_ptr<MarketHandle> MarketStore::acquire(MarketId id) {
  StoreMetrics& metrics = StoreMetrics::get();
  if (const auto it = resident_.find(id); it != resident_.end()) {
    ++hits_;
    metrics.hits.add(1);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    // A rung-1 release may have stripped this market's footprints since
    // last acquire; re-touch them before handing the model out.
    it->second.handle->refresh();
    // Residents grow between acquires (coverage index builds lazily,
    // touches materialize footprints) and shrink under rung-1 releases;
    // keep every charge honest and re-enforce the budget.
    resample_all();
    peak_ = std::max(peak_, charged_);
    evict_to_fit(id);
    metrics.resident_bytes.set(static_cast<double>(charged_));
    return it->second.handle;
  }

  const MarketSpec& market_spec = spec(id);  // throws on unknown id
  ++misses_;
  metrics.misses.add(1);
  std::shared_ptr<MarketHandle> handle;
  {
    const obs::ScopedTimerUs timer{metrics.load_latency_us};
    handle =
        std::make_shared<MarketHandle>(market_spec, options_, db_path(id));
  }
  lru_.push_front(id);
  Resident entry{handle, lru_.begin(), handle->resident_bytes()};
  charged_ += entry.charged;
  resident_.emplace(id, std::move(entry));
  resample_all();
  peak_ = std::max(peak_, charged_);
  evict_to_fit(id);
  metrics.resident_bytes.set(static_cast<double>(charged_));
  return handle;
}

void MarketStore::clear() {
  resident_.clear();
  lru_.clear();
  charged_ = 0;
  StoreMetrics::get().resident_bytes.set(0.0);
}

}  // namespace magus::fleet
