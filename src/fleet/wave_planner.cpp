#include "fleet/wave_planner.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/checksum.h"

namespace magus::fleet {

namespace {

struct WaveMetrics {
  obs::Counter& markets_planned;
  obs::Counter& upgrades_planned;
  obs::Counter& upgrades_deferred;
  obs::Histogram& market_plan_latency_us;

  [[nodiscard]] static WaveMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static WaveMetrics metrics{
        registry.counter("fleet.plan.markets"),
        registry.counter("fleet.plan.upgrades"),
        registry.counter("fleet.plan.deferred"),
        registry.histogram("fleet.plan.market_latency_us",
                           obs::exponential_bounds(10'000.0, 4.0, 12)),
    };
    return metrics;
  }
};

}  // namespace

std::vector<std::vector<net::SectorId>> upgrade_targets_for(
    const net::Network& network, std::size_t max_sites) {
  std::vector<net::SiteId> sites = network.sites();
  std::sort(sites.begin(), sites.end());
  if (sites.size() > max_sites) sites.resize(max_sites);
  std::vector<std::vector<net::SectorId>> targets;
  targets.reserve(sites.size());
  for (const net::SiteId site : sites) {
    targets.push_back(network.sectors_at_site(site));
  }
  return targets;
}

std::uint64_t plan_fingerprint(const net::Configuration& c_after,
                               double recovery, std::uint64_t hash) {
  for (std::size_t i = 0; i < c_after.size(); ++i) {
    const net::SectorSetting& s = c_after[static_cast<net::SectorId>(i)];
    hash = util::fnv1a(&s.power_dbm, sizeof(s.power_dbm), hash);
    hash = util::fnv1a(&s.tilt, sizeof(s.tilt), hash);
    const std::uint8_t active = s.active ? 1 : 0;
    hash = util::fnv1a(&active, sizeof(active), hash);
  }
  return util::fnv1a(&recovery, sizeof(recovery), hash);
}

std::size_t FleetWavePlan::upgrades_total() const {
  std::size_t total = 0;
  for (const MarketPlan& m : markets) total += m.upgrades.size();
  return total;
}

std::uint64_t FleetWavePlan::fleet_fingerprint() const {
  std::vector<const MarketPlan*> ordered;
  ordered.reserve(markets.size());
  for (const MarketPlan& m : markets) ordered.push_back(&m);
  std::sort(ordered.begin(), ordered.end(),
            [](const MarketPlan* a, const MarketPlan* b) {
              return a->market < b->market;
            });
  std::uint64_t hash = util::kFnv1aOffsetBasis;
  for (const MarketPlan* m : ordered) {
    hash = util::fnv1a(&m->market, sizeof(m->market), hash);
    hash = util::fnv1a(&m->fingerprint, sizeof(m->fingerprint), hash);
  }
  return hash;
}

WavePlanner::WavePlanner(MarketStore* store, WavePlannerOptions options)
    : store_(store), options_(std::move(options)) {
  if (store_ == nullptr) {
    throw std::invalid_argument("WavePlanner: store must not be null");
  }
  if (options_.crew_cap == 0) {
    throw std::invalid_argument("WavePlanner: crew_cap must be positive");
  }
  pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  options_.planner.shared_pool = pool_.get();
}

MarketPlan WavePlanner::plan_market(const MarketUpgradeRequest& request) {
  WaveMetrics& metrics = WaveMetrics::get();
  const obs::ScopedTimerUs timer{metrics.market_plan_latency_us};
  MAGUS_TRACE_SPAN("fleet.plan_market", "fleet");
  // Nested per-market span: the profile timeline shows which market each
  // planning slice belonged to.
  const obs::DynamicSpan market_span{
      "fleet.plan_market." + std::to_string(request.market), "fleet"};

  const std::shared_ptr<MarketHandle> handle = store_->acquire(request.market);
  core::Evaluator evaluator{&handle->model(), options_.utility};
  const core::MagusPlanner planner{&evaluator, options_.planner};

  const double floor = std::isnan(request.recovery_floor)
                           ? options_.recovery_floor
                           : request.recovery_floor;
  MarketPlan plan;
  plan.market = request.market;
  plan.db_rebuilt = handle->rebuilt();
  plan.fingerprint = util::kFnv1aOffsetBasis;

  for (const std::vector<net::SectorId>& targets :
       upgrade_targets_for(handle->network(), request.max_sites)) {
    const core::MitigationPlan site_plan = planner.plan_upgrade(targets);
    if (site_plan.recovery < floor) {
      plan.deferred.emplace_back(handle->network().sector(targets.front()).site,
                                 site_plan.recovery);
      metrics.upgrades_deferred.add(1);
      continue;
    }
    traffic::PlannedUpgrade upgrade;
    upgrade.targets = site_plan.targets;
    upgrade.involved = site_plan.involved;
    plan.upgrades.push_back(std::move(upgrade));
    plan.recoveries.push_back(site_plan.recovery);
    plan.min_recovery = std::min(plan.min_recovery, site_plan.recovery);
    plan.fingerprint = plan_fingerprint(site_plan.search.config,
                                        site_plan.recovery, plan.fingerprint);
    metrics.upgrades_planned.add(1);
  }
  plan.schedule =
      traffic::schedule_campaign(plan.upgrades, options_.max_windows_per_market);
  metrics.markets_planned.add(1);
  // Planning grew this market well past what acquire() charged (coverage
  // index built, footprints touched); settle the store's accounting and
  // budget now, not at the next acquire — this is what keeps the enforced
  // peak at the budget line during a fleet sweep.
  store_->enforce_budget();
  return plan;
}

FleetWavePlan WavePlanner::plan(
    std::span<const MarketUpgradeRequest> requests) {
  MAGUS_TRACE_SPAN("fleet.plan", "fleet");
  FleetWavePlan plan;
  plan.markets.reserve(requests.size());
  std::vector<traffic::MarketWaveInput> chains;
  chains.reserve(requests.size());
  for (const MarketUpgradeRequest& request : requests) {
    MarketPlan market_plan = plan_market(request);
    chains.push_back({market_plan.market, market_plan.schedule.window_count()});
    plan.markets.push_back(std::move(market_plan));
  }
  plan.wave = traffic::compose_wave(chains, options_.crew_cap);
  return plan;
}

FleetExecutionResult WavePlanner::execute(const FleetWavePlan& plan,
                                          const FleetExecutionOptions& options) {
  MAGUS_TRACE_SPAN("fleet.execute", "fleet");
  if (!options.journal_dir.empty()) {
    std::filesystem::create_directories(options.journal_dir);
  }
  // Markets run in wave first-appearance order: the order crews would
  // actually light up under the composed schedule.
  std::vector<MarketId> order;
  for (const traffic::WaveSlot& slot : plan.wave.slots) {
    for (const auto& [market, window] : slot.assignments) {
      if (std::find(order.begin(), order.end(), market) == order.end()) {
        order.push_back(market);
      }
    }
  }

  const exec::FleetRunner runner{options.campaign};
  FleetExecutionResult result;
  for (const MarketId market : order) {
    const auto it =
        std::find_if(plan.markets.begin(), plan.markets.end(),
                     [&](const MarketPlan& m) { return m.market == market; });
    if (it == plan.markets.end() || it->upgrades.empty()) continue;
    const obs::DynamicSpan market_span{
        "fleet.exec_market." + std::to_string(market), "fleet"};

    const std::shared_ptr<MarketHandle> handle = store_->acquire(market);
    core::Evaluator evaluator{&handle->model(), options_.utility};
    const core::MagusPlanner planner{&evaluator, options_.planner};

    exec::MarketCampaignRefs refs;
    refs.market_key = market;
    refs.upgrades = it->upgrades;
    refs.schedule = &it->schedule;
    refs.evaluator = &evaluator;
    refs.planner = &planner;
    if (options.injectors) refs.injector_factory = options.injectors(market);
    if (!options.journal_dir.empty()) {
      refs.journal_path =
          (std::filesystem::path{options.journal_dir} /
           ("market_" + std::to_string(market) + ".journal"))
              .string();
    }
    MarketExecution exec_entry;
    exec_entry.market = market;
    exec_entry.result = runner.run_market(refs, options.resume);

    for (const exec::UpgradeResult& upgrade : exec_entry.result.upgrades) {
      switch (upgrade.outcome) {
        case exec::UpgradeOutcome::kCompleted:
          ++result.upgrades_completed;
          break;
        case exec::UpgradeOutcome::kRolledBack:
          ++result.upgrades_rolled_back;
          break;
        case exec::UpgradeOutcome::kSkippedQuarantined:
          ++result.upgrades_skipped;
          break;
      }
    }
    result.quarantine_events += exec_entry.result.quarantine_events;
    result.markets.push_back(std::move(exec_entry));
    store_->enforce_budget();  // same settling as after planning
  }
  result.completed = true;
  return result;
}

}  // namespace magus::fleet
