// Deterministic 2-D value noise with fractal Brownian motion.
//
// Used to synthesize terrain elevation, clutter layouts, and correlated
// shadowing fields that stand in for the Atoll terrain database (DESIGN.md
// §1). Every sample is a pure function of (seed, x, y): evaluation order
// never affects results.
#pragma once

#include <cstdint>

namespace magus::terrain {

class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) : seed_(seed) {}

  /// Smooth noise in [0, 1] at feature scale 1.0 (lattice spacing).
  [[nodiscard]] double sample(double x, double y) const;

  /// Fractal Brownian motion: `octaves` layers, each doubling frequency and
  /// halving amplitude. Output normalized to [0, 1].
  [[nodiscard]] double fbm(double x, double y, int octaves) const;

 private:
  /// Lattice value in [0, 1] at integer coordinates.
  [[nodiscard]] double lattice(std::int64_t ix, std::int64_t iy) const;

  std::uint64_t seed_;
};

}  // namespace magus::terrain
