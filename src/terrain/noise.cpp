#include "terrain/noise.h"

#include <cmath>

#include "util/rng.h"

namespace magus::terrain {

namespace {
/// Quintic smoothstep (Perlin's fade curve): C2-continuous interpolation.
[[nodiscard]] double fade(double t) {
  return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

[[nodiscard]] double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}
}  // namespace

double ValueNoise::lattice(std::int64_t ix, std::int64_t iy) const {
  return util::hash_to_unit_double(util::hash_coords(seed_, ix, iy));
}

double ValueNoise::sample(double x, double y) const {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const double tx = fade(x - fx);
  const double ty = fade(y - fy);
  const double v00 = lattice(ix, iy);
  const double v10 = lattice(ix + 1, iy);
  const double v01 = lattice(ix, iy + 1);
  const double v11 = lattice(ix + 1, iy + 1);
  return lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty);
}

double ValueNoise::fbm(double x, double y, int octaves) const {
  double amplitude = 1.0;
  double frequency = 1.0;
  double total = 0.0;
  double normalizer = 0.0;
  for (int i = 0; i < octaves; ++i) {
    // Offset each octave so lattice artifacts do not align across octaves.
    const double offset = 31.7 * i;
    total += amplitude * sample(x * frequency + offset, y * frequency - offset);
    normalizer += amplitude;
    amplitude *= 0.5;
    frequency *= 2.0;
  }
  return normalizer > 0.0 ? total / normalizer : 0.0;
}

}  // namespace magus::terrain
