// Procedural terrain and land-use (clutter) model.
//
// Substitutes for the Atoll terrain/clutter database that drives the paper's
// operational path-loss matrices. Three deterministic fields are exposed,
// each a pure function of (seed, location):
//
//   - elevation_m:   rolling terrain from fBm noise,
//   - clutter class: water / open / forest / residential / urban / dense
//                    urban, derived from noise fields plus an "urban core"
//                    density gradient so that markets have downtowns,
//   - shadowing_db:  spatially correlated log-normal shadowing (the grid-
//                    to-grid irregularity visible in the paper's Figure 3).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "geo/grid_map.h"
#include "geo/point.h"
#include "terrain/noise.h"

namespace magus::terrain {

enum class ClutterClass : std::uint8_t {
  kWater = 0,
  kOpen = 1,
  kForest = 2,
  kResidential = 3,
  kUrban = 4,
  kDenseUrban = 5,
};

[[nodiscard]] std::string_view clutter_name(ClutterClass c);

/// Additional path loss (dB, non-negative) a link suffers when its endpoint
/// sits in the given clutter class. Values follow the usual ordering of
/// empirical corrections (open < forest < residential < urban < dense urban).
[[nodiscard]] double clutter_loss_db(ClutterClass c);

struct TerrainParams {
  double elevation_range_m = 120.0;   ///< peak-to-valley amplitude
  double elevation_scale_m = 4000.0;  ///< feature size of hills
  double clutter_scale_m = 900.0;     ///< feature size of land-use patches
  double shadowing_stddev_db = 6.0;   ///< log-normal shadowing sigma
  double shadowing_scale_m = 250.0;   ///< shadowing decorrelation distance
  /// Center of the market's dense-urban core; clutter densifies toward it.
  geo::Point urban_core{0.0, 0.0};
  /// Radius within which dense-urban / urban clutter dominates (0 disables
  /// the core gradient, giving homogeneous countryside).
  double urban_core_radius_m = 0.0;
};

class Terrain {
 public:
  Terrain(std::uint64_t seed, TerrainParams params);

  [[nodiscard]] const TerrainParams& params() const { return params_; }

  /// Ground elevation above the reference plane, in meters.
  [[nodiscard]] double elevation_m(geo::Point p) const;

  [[nodiscard]] ClutterClass clutter_at(geo::Point p) const;

  /// Zero-mean correlated shadowing term in dB (sigma = params.shadowing_
  /// stddev_db). Positive values mean *less* loss (constructive).
  [[nodiscard]] double shadowing_db(geo::Point p) const;

  /// Terrain-profile obstruction between two points: a crude knife-edge
  /// check sampling the straight-line profile. Returns extra loss in dB
  /// (non-negative), zero when the first Fresnel zone is clear.
  [[nodiscard]] double diffraction_loss_db(geo::Point a, double height_a_m,
                                           geo::Point b,
                                           double height_b_m) const;

 private:
  TerrainParams params_;
  ValueNoise elevation_noise_;
  ValueNoise clutter_noise_;
  ValueNoise urbanization_noise_;
  ValueNoise shadow_noise_;
};

/// Precomputed terrain fields over an analysis grid.
//
/// Evaluating the noise fields per (sector, cell) pair during path-loss
/// matrix construction is the dominant cost at market scale; the cache
/// samples each field once per cell and serves lookups from flat arrays.
/// Elevation supports bilinear interpolation at arbitrary points (used by
/// the diffraction profile sampler).
class TerrainGridCache {
 public:
  TerrainGridCache(const Terrain& terrain, const geo::GridMap& grid);

  [[nodiscard]] const geo::GridMap& grid() const { return grid_; }

  [[nodiscard]] double elevation_of(geo::GridIndex g) const {
    return elevation_[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] double clutter_loss_of(geo::GridIndex g) const {
    return clutter_loss_[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] double shadowing_of(geo::GridIndex g) const {
    return shadowing_[static_cast<std::size_t>(g)];
  }

  /// Raw per-cell arrays (grid-indexed, contiguous, float like the
  /// members) for the SIMD row passes, which read runs of consecutive
  /// cells with vector loads and widen to double per lane — matching the
  /// scalar accessors' float -> double promotion exactly.
  [[nodiscard]] const float* clutter_loss_data() const {
    return clutter_loss_.data();
  }
  [[nodiscard]] const float* shadowing_data() const {
    return shadowing_.data();
  }

  /// Bilinear elevation at an arbitrary point, clamped to the grid.
  [[nodiscard]] double elevation_at(geo::Point p) const;

  /// Bilinear elevations along the compass ray leaving `origin` at
  /// `bearing_deg`: out[k] = elevation_at(origin + (k+1)*step_m toward the
  /// bearing), i.e. the first sample sits one step from the origin. The
  /// batched footprint kernel fills whole diffraction rays through this
  /// instead of resampling the profile per receiver cell.
  void sample_ray_elevations(geo::Point origin, double bearing_deg,
                             double step_m, std::span<float> out) const;

 private:
  geo::GridMap grid_;
  std::vector<float> elevation_;
  std::vector<float> clutter_loss_;
  std::vector<float> shadowing_;
};

}  // namespace magus::terrain
