#include "terrain/terrain.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace magus::terrain {

std::string_view clutter_name(ClutterClass c) {
  switch (c) {
    case ClutterClass::kWater:
      return "water";
    case ClutterClass::kOpen:
      return "open";
    case ClutterClass::kForest:
      return "forest";
    case ClutterClass::kResidential:
      return "residential";
    case ClutterClass::kUrban:
      return "urban";
    case ClutterClass::kDenseUrban:
      return "dense-urban";
  }
  return "?";
}

double clutter_loss_db(ClutterClass c) {
  switch (c) {
    case ClutterClass::kWater:
      return 0.0;
    case ClutterClass::kOpen:
      return 2.0;
    case ClutterClass::kForest:
      return 10.0;
    case ClutterClass::kResidential:
      return 8.0;
    case ClutterClass::kUrban:
      return 14.0;
    case ClutterClass::kDenseUrban:
      return 20.0;
  }
  return 0.0;
}

Terrain::Terrain(std::uint64_t seed, TerrainParams params)
    : params_(params),
      elevation_noise_(util::mix64(seed ^ 0x01)),
      clutter_noise_(util::mix64(seed ^ 0x02)),
      urbanization_noise_(util::mix64(seed ^ 0x03)),
      shadow_noise_(util::mix64(seed ^ 0x04)) {}

double Terrain::elevation_m(geo::Point p) const {
  const double nx = p.x_m / params_.elevation_scale_m;
  const double ny = p.y_m / params_.elevation_scale_m;
  return params_.elevation_range_m * elevation_noise_.fbm(nx, ny, 4);
}

ClutterClass Terrain::clutter_at(geo::Point p) const {
  const double nx = p.x_m / params_.clutter_scale_m;
  const double ny = p.y_m / params_.clutter_scale_m;
  const double patch = clutter_noise_.fbm(nx, ny, 3);  // in [0, 1]

  // Urbanization in [0, 1]: 1 at the core center, falling off radially,
  // modulated by noise so the city edge is ragged.
  double urbanization = 0.0;
  if (params_.urban_core_radius_m > 0.0) {
    const double d = geo::distance_m(p, params_.urban_core);
    const double radial =
        std::clamp(1.0 - d / (2.0 * params_.urban_core_radius_m), 0.0, 1.0);
    const double texture = urbanization_noise_.fbm(nx * 0.5, ny * 0.5, 3);
    urbanization = std::clamp(radial * (0.7 + 0.6 * texture), 0.0, 1.0);
  }

  if (urbanization > 0.75) return ClutterClass::kDenseUrban;
  if (urbanization > 0.55) return ClutterClass::kUrban;
  if (urbanization > 0.35) return ClutterClass::kResidential;
  // Countryside: patch noise decides between water, open land and forest.
  if (patch < 0.08) return ClutterClass::kWater;
  if (patch < 0.55) return ClutterClass::kOpen;
  if (patch < 0.80) return ClutterClass::kForest;
  return ClutterClass::kResidential;
}

double Terrain::shadowing_db(geo::Point p) const {
  const double nx = p.x_m / params_.shadowing_scale_m;
  const double ny = p.y_m / params_.shadowing_scale_m;
  // fbm is in [0, 1] with mean ~0.5; rescale to zero mean. The fBm sum of
  // uniforms is close enough to Gaussian for a shadowing proxy; calibrate
  // the spread so the empirical sigma matches params (fbm(3 octaves) has
  // stddev ~0.12).
  const double centered = shadow_noise_.fbm(nx, ny, 3) - 0.5;
  return centered / 0.12 * params_.shadowing_stddev_db;
}

double Terrain::diffraction_loss_db(geo::Point a, double height_a_m,
                                    geo::Point b, double height_b_m) const {
  const double total_distance = geo::distance_m(a, b);
  if (total_distance < 1.0) return 0.0;
  const double elev_a = elevation_m(a) + height_a_m;
  const double elev_b = elevation_m(b) + height_b_m;

  // Sample the profile at ~200 m intervals (at least 8 samples) and find the
  // largest obstruction of the direct ray.
  const int samples = std::max(8, static_cast<int>(total_distance / 200.0));
  double worst_obstruction_m = 0.0;
  for (int i = 1; i < samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const geo::Point p{a.x_m + (b.x_m - a.x_m) * t,
                       a.y_m + (b.y_m - a.y_m) * t};
    const double ray_height = elev_a + (elev_b - elev_a) * t;
    const double obstruction = elevation_m(p) - ray_height;
    worst_obstruction_m = std::max(worst_obstruction_m, obstruction);
  }
  if (worst_obstruction_m <= 0.0) return 0.0;
  // Simplified single knife-edge loss: 6 dB at grazing plus a logarithmic
  // growth with obstruction depth, capped to keep the field realistic.
  const double loss = 6.0 + 8.0 * std::log2(1.0 + worst_obstruction_m / 10.0);
  return std::min(loss, 30.0);
}

TerrainGridCache::TerrainGridCache(const Terrain& terrain,
                                   const geo::GridMap& grid)
    : grid_(grid) {
  const auto cells = static_cast<std::size_t>(grid_.cell_count());
  elevation_.resize(cells);
  clutter_loss_.resize(cells);
  shadowing_.resize(cells);
  for (geo::GridIndex g = 0; g < grid_.cell_count(); ++g) {
    const geo::Point center = grid_.center_of(g);
    const auto i = static_cast<std::size_t>(g);
    elevation_[i] = static_cast<float>(terrain.elevation_m(center));
    clutter_loss_[i] =
        static_cast<float>(clutter_loss_db(terrain.clutter_at(center)));
    shadowing_[i] = static_cast<float>(terrain.shadowing_db(center));
  }
}

double TerrainGridCache::elevation_at(geo::Point p) const {
  // Continuous cell coordinates of p relative to cell centers.
  const double fx = (p.x_m - grid_.area().min.x_m) / grid_.cell_size_m() - 0.5;
  const double fy = (p.y_m - grid_.area().min.y_m) / grid_.cell_size_m() - 0.5;
  const auto clamp_col = [&](std::int32_t c) {
    return std::clamp(c, 0, grid_.cols() - 1);
  };
  const auto clamp_row = [&](std::int32_t r) {
    return std::clamp(r, 0, grid_.rows() - 1);
  };
  const auto c0 = clamp_col(static_cast<std::int32_t>(std::floor(fx)));
  const auto r0 = clamp_row(static_cast<std::int32_t>(std::floor(fy)));
  const auto c1 = clamp_col(c0 + 1);
  const auto r1 = clamp_row(r0 + 1);
  const double tx = std::clamp(fx - c0, 0.0, 1.0);
  const double ty = std::clamp(fy - r0, 0.0, 1.0);
  const auto at = [&](std::int32_t c, std::int32_t r) {
    return static_cast<double>(
        elevation_[static_cast<std::size_t>(grid_.at(c, r))]);
  };
  const double top = at(c0, r1) * (1.0 - tx) + at(c1, r1) * tx;
  const double bottom = at(c0, r0) * (1.0 - tx) + at(c1, r0) * tx;
  return bottom * (1.0 - ty) + top * ty;
}

void TerrainGridCache::sample_ray_elevations(geo::Point origin,
                                             double bearing_deg, double step_m,
                                             std::span<float> out) const {
  const double rad = bearing_deg * std::numbers::pi / 180.0;
  const double dx = std::sin(rad) * step_m;  // compass bearing: 0 = north
  const double dy = std::cos(rad) * step_m;
  double x = origin.x_m;
  double y = origin.y_m;
  for (float& v : out) {
    x += dx;
    y += dy;
    v = static_cast<float>(elevation_at({x, y}));
  }
}

}  // namespace magus::terrain
