#include "testbed/testbed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lte/amc.h"
#include "radio/noise_floor.h"
#include "util/units.h"

namespace magus::testbed {

Testbed::Testbed(TestbedParams params, std::uint64_t seed)
    : params_(params), propagation_(params.indoor, seed) {
  noise_mw_ = util::dbm_to_mw(radio::noise_floor_dbm(
      lte::occupied_hz(params_.bandwidth), params_.noise_figure_db));
}

int Testbed::add_enodeb(geo::Point position) {
  enodebs_.push_back(EnodeB{position, params_.max_attenuation, true});
  return static_cast<int>(enodebs_.size()) - 1;
}

int Testbed::add_ue(geo::Point position) {
  ues_.push_back(position);
  return static_cast<int>(ues_.size()) - 1;
}

int Testbed::enodeb_count() const { return static_cast<int>(enodebs_.size()); }

int Testbed::ue_count() const { return static_cast<int>(ues_.size()); }

void Testbed::set_attenuation(int enodeb, int level) {
  enodebs_.at(static_cast<std::size_t>(enodeb)).attenuation =
      std::clamp(level, params_.min_attenuation, params_.max_attenuation);
}

int Testbed::attenuation(int enodeb) const {
  return enodebs_.at(static_cast<std::size_t>(enodeb)).attenuation;
}

void Testbed::set_online(int enodeb, bool online) {
  enodebs_.at(static_cast<std::size_t>(enodeb)).online = online;
}

bool Testbed::online(int enodeb) const {
  return enodebs_.at(static_cast<std::size_t>(enodeb)).online;
}

double Testbed::tx_power_dbm(int enodeb) const {
  const auto& enb = enodebs_.at(static_cast<std::size_t>(enodeb));
  // L = 1 -> full power; each unit above 1 attenuates one step.
  return params_.max_tx_power_dbm -
         (enb.attenuation - params_.min_attenuation) *
             params_.attenuation_step_db;
}

std::uint64_t Testbed::link_id(int enodeb, int ue) const {
  return static_cast<std::uint64_t>(enodeb) * 1000 +
         static_cast<std::uint64_t>(ue);
}

double Testbed::rsrp_dbm(int enodeb, int ue) const {
  const auto& enb = enodebs_.at(static_cast<std::size_t>(enodeb));
  const geo::Point ue_pos = ues_.at(static_cast<std::size_t>(ue));
  return tx_power_dbm(enodeb) +
         propagation_.path_gain_db(enb.position, ue_pos, link_id(enodeb, ue));
}

int Testbed::serving_enodeb(int ue) const {
  int best = -1;
  double best_rsrp = params_.attach_rsrp_dbm;
  for (int b = 0; b < enodeb_count(); ++b) {
    if (!enodebs_[static_cast<std::size_t>(b)].online) continue;
    const double rsrp = rsrp_dbm(b, ue);
    if (rsrp > best_rsrp) {
      best_rsrp = rsrp;
      best = b;
    }
  }
  return best;
}

double Testbed::sinr_db(int ue) const {
  const int serving = serving_enodeb(ue);
  if (serving < 0) return -std::numeric_limits<double>::infinity();
  double interference_mw = 0.0;
  double signal_dbm = 0.0;
  for (int b = 0; b < enodeb_count(); ++b) {
    if (!enodebs_[static_cast<std::size_t>(b)].online) continue;
    const double rsrp = rsrp_dbm(b, ue);
    if (b == serving) {
      signal_dbm = rsrp;
    } else {
      interference_mw += util::dbm_to_mw(rsrp);
    }
  }
  return signal_dbm - util::mw_to_dbm(noise_mw_ + interference_mw);
}

double Testbed::tcp_throughput_mbps(int ue) const {
  const int serving = serving_enodeb(ue);
  if (serving < 0) return 0.0;
  const double phy_bps = lte::max_rate_bps(sinr_db(ue), params_.bandwidth);
  if (phy_bps <= 0.0) return 0.0;
  // Equal sharing among the UEs attached to the same cell (§3: simultaneous
  // iperf sessions; PF scheduling shares airtime evenly in the long run).
  int attached = 0;
  for (int u = 0; u < ue_count(); ++u) {
    if (serving_enodeb(u) == serving) ++attached;
  }
  return phy_bps * params_.tcp_efficiency / attached / 1e6;
}

double Testbed::utility() const {
  double total = 0.0;
  for (int u = 0; u < ue_count(); ++u) {
    const double rate = tcp_throughput_mbps(u);
    if (rate > 0.0) total += std::log10(rate);
  }
  return total;
}

double Testbed::utility_for(std::span<const int> attenuations) {
  if (attenuations.size() != enodebs_.size()) {
    throw std::invalid_argument("Testbed::utility_for: size mismatch");
  }
  for (std::size_t b = 0; b < enodebs_.size(); ++b) {
    set_attenuation(static_cast<int>(b), attenuations[b]);
  }
  return utility();
}

Testbed::BestConfig Testbed::exhaustive_best(std::span<const int> tunable,
                                             std::span<const int> levels) {
  if (tunable.empty() || levels.empty()) {
    throw std::invalid_argument("Testbed::exhaustive_best: empty inputs");
  }
  BestConfig best;
  best.utility = -std::numeric_limits<double>::infinity();

  std::vector<std::size_t> counter(tunable.size(), 0);
  const auto advance = [&]() -> bool {
    for (auto& c : counter) {
      if (++c < levels.size()) return true;
      c = 0;
    }
    return false;
  };

  do {
    for (std::size_t i = 0; i < tunable.size(); ++i) {
      set_attenuation(tunable[i], levels[counter[i]]);
    }
    const double value = utility();
    ++best.combinations;
    if (value > best.utility) {
      best.utility = value;
      best.attenuations.assign(enodebs_.size(), 0);
      for (std::size_t b = 0; b < enodebs_.size(); ++b) {
        best.attenuations[b] = enodebs_[b].attenuation;
      }
    }
  } while (advance());

  // Leave the testbed at the winning configuration.
  for (std::size_t b = 0; b < enodebs_.size(); ++b) {
    set_attenuation(static_cast<int>(b), best.attenuations[b]);
  }
  return best;
}

}  // namespace magus::testbed
