#include "testbed/indoor_propagation.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace magus::testbed {

IndoorPropagation::IndoorPropagation(IndoorParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

double IndoorPropagation::path_gain_db(geo::Point a, geo::Point b,
                                       std::uint64_t link_id) const {
  const double distance_m =
      std::max(geo::distance_m(a, b), params_.min_distance_m);
  const double log_distance_loss =
      params_.reference_loss_db +
      10.0 * params_.path_loss_exponent * std::log10(distance_m);
  const double walls = std::floor(distance_m / params_.wall_spacing_m);
  const double wall_loss = walls * params_.wall_loss_db;

  // Deterministic zero-mean multipath term per link: map two independent
  // uniform hashes through a crude normal approximation (sum of uniforms).
  const std::uint64_t h1 = util::hash_coords(seed_, 0x6C696E6B,
                                             static_cast<std::int64_t>(link_id));
  const std::uint64_t h2 = util::hash_coords(seed_ ^ 0x5A5A5A5A, 0x70617468,
                                             static_cast<std::int64_t>(link_id));
  const double u =
      util::hash_to_unit_double(h1) + util::hash_to_unit_double(h2) - 1.0;
  const double multipath = u * params_.multipath_stddev_db * 2.45;  // ~N(0,s)

  return -(log_distance_loss + wall_loss) + multipath;
}

}  // namespace magus::testbed
