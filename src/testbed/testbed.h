// Emulation of the paper's §3 LTE testbed: re-programmable small-cell
// eNodeBs with software attenuators (L in [1, 30]; 30 = max attenuation /
// min power, 1 = max power, tunable in steps of 1), omni antennas, 10 MHz
// band-7 carrier, and iperf-style downlink TCP throughput per UE.
//
// Utility is the paper's §3 metric: f(C) = sum over UEs of log10 of the
// downlink TCP rate in Mbit/s (sum-log-rate; Mbps + log10 reproduce the
// paper's utility magnitudes of ~2-5 for a handful of UEs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lte/bandwidth.h"
#include "testbed/indoor_propagation.h"

namespace magus::testbed {

struct TestbedParams {
  double max_tx_power_dbm = 21.0;     ///< ~125 mW (Cavium daughterboard)
  double attenuation_step_db = 1.0;   ///< dB per attenuation unit
  int min_attenuation = 1;
  int max_attenuation = 30;
  lte::Bandwidth bandwidth = lte::Bandwidth::kMhz10;
  double noise_figure_db = 7.0;
  double tcp_efficiency = 0.88;       ///< TCP goodput / PHY rate
  double attach_rsrp_dbm = -115.0;    ///< below this a UE has no service
  IndoorParams indoor;
};

class Testbed {
 public:
  explicit Testbed(TestbedParams params = {}, std::uint64_t seed = 1);

  /// Adds an eNodeB at max attenuation (min power), online; returns its id.
  int add_enodeb(geo::Point position);
  /// Adds a UE; returns its id.
  int add_ue(geo::Point position);

  [[nodiscard]] int enodeb_count() const;
  [[nodiscard]] int ue_count() const;

  /// Sets the software attenuator (clamped to [min, max]).
  void set_attenuation(int enodeb, int level);
  [[nodiscard]] int attenuation(int enodeb) const;
  void set_online(int enodeb, bool online);
  [[nodiscard]] bool online(int enodeb) const;

  /// Transmit power implied by the current attenuation setting.
  [[nodiscard]] double tx_power_dbm(int enodeb) const;

  /// Received power at a UE from an eNodeB (dBm).
  [[nodiscard]] double rsrp_dbm(int enodeb, int ue) const;
  /// Serving eNodeB (strongest online RSRP above the attach threshold),
  /// or -1 when the UE has no service.
  [[nodiscard]] int serving_enodeb(int ue) const;
  [[nodiscard]] double sinr_db(int ue) const;
  /// Downlink TCP throughput, sharing the serving cell equally among its
  /// attached UEs (Mbit/s; 0 when out of service).
  [[nodiscard]] double tcp_throughput_mbps(int ue) const;

  /// f(C): sum of log10(rate_mbps) over UEs with positive rate.
  [[nodiscard]] double utility() const;

  /// Applies one attenuation level per eNodeB (size must match), then
  /// returns utility(). Offline eNodeBs keep their setting but stay dark.
  double utility_for(std::span<const int> attenuations);

  struct BestConfig {
    std::vector<int> attenuations;
    double utility = 0.0;
    long combinations = 0;
  };
  /// Exhaustively tries every combination of `levels` on the eNodeBs in
  /// `tunable` (others keep their settings); applies and returns the best.
  BestConfig exhaustive_best(std::span<const int> tunable,
                             std::span<const int> levels);

 private:
  struct EnodeB {
    geo::Point position;
    int attenuation;
    bool online = true;
  };

  [[nodiscard]] std::uint64_t link_id(int enodeb, int ue) const;

  TestbedParams params_;
  IndoorPropagation propagation_;
  std::vector<EnodeB> enodebs_;
  std::vector<geo::Point> ues_;
  double noise_mw_;
};

}  // namespace magus::testbed
