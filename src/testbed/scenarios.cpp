#include "testbed/scenarios.h"

#include <algorithm>
#include <numeric>

namespace magus::testbed {

namespace {
/// All attenuation unit levels [1, 30].
[[nodiscard]] std::vector<int> full_levels() {
  std::vector<int> levels(30);
  std::iota(levels.begin(), levels.end(), 1);
  return levels;
}

/// eNodeB ids other than the target.
[[nodiscard]] std::vector<int> survivors(const Testbed& testbed, int target) {
  std::vector<int> ids;
  for (int b = 0; b < testbed.enodeb_count(); ++b) {
    if (b != target) ids.push_back(b);
  }
  return ids;
}

[[nodiscard]] std::vector<int> current_attenuations(const Testbed& testbed) {
  std::vector<int> atts(static_cast<std::size_t>(testbed.enodeb_count()));
  for (int b = 0; b < testbed.enodeb_count(); ++b) {
    atts[static_cast<std::size_t>(b)] = testbed.attenuation(b);
  }
  return atts;
}
}  // namespace

Testbed make_scenario1(std::uint64_t seed, int* target) {
  // One floor, ~40 m x 25 m. eNodeB-1 west, eNodeB-2 east; UE-1 near
  // eNodeB-1, UE-3 central, UE-4 near eNodeB-2 (paper's sketch).
  Testbed testbed{TestbedParams{}, seed};
  testbed.add_enodeb({5.0, 12.0});   // eNodeB-1
  testbed.add_enodeb({35.0, 12.0});  // eNodeB-2 (target)
  testbed.add_ue({8.0, 10.0});       // UE-1
  testbed.add_ue({21.0, 14.0});      // UE-3
  testbed.add_ue({32.0, 9.0});       // UE-4
  *target = 1;
  return testbed;
}

Testbed make_scenario2(std::uint64_t seed, int* target) {
  // Three eNodeBs in a row; the middle one goes down. Five UEs spread over
  // the floor (paper: UE-1, UE-3, UE-5, UE-6, UE-8).
  Testbed testbed{TestbedParams{}, seed};
  testbed.add_enodeb({5.0, 12.0});   // eNodeB-1
  testbed.add_enodeb({22.0, 14.0});  // eNodeB-2 (target)
  testbed.add_enodeb({40.0, 12.0});  // eNodeB-3
  testbed.add_ue({7.0, 8.0});        // UE-1
  testbed.add_ue({15.0, 16.0});      // UE-3
  testbed.add_ue({22.0, 10.0});      // UE-5
  testbed.add_ue({30.0, 15.0});      // UE-6
  testbed.add_ue({38.0, 9.0});       // UE-8
  *target = 1;
  return testbed;
}

ScenarioTimelines run_scenario(Testbed testbed, int target,
                               const std::string& name,
                               const ScenarioOptions& options) {
  const std::vector<int> levels =
      options.levels.empty() ? full_levels() : options.levels;

  ScenarioTimelines out;
  out.name = name;

  // Optimal C_before: tune everyone, everything online.
  std::vector<int> all_enbs(static_cast<std::size_t>(testbed.enodeb_count()));
  std::iota(all_enbs.begin(), all_enbs.end(), 0);
  const auto before = testbed.exhaustive_best(all_enbs, levels);
  out.f_before = before.utility;
  out.attenuation_before = before.attenuations;

  // f(C_upgrade): target off, survivors still at C_before settings.
  testbed.set_online(target, false);
  out.f_upgrade = testbed.utility();

  // Optimal C_after: tune the survivors with the target off.
  const auto surviving = survivors(testbed, target);
  const auto after = testbed.exhaustive_best(surviving, levels);
  out.f_after = after.utility;
  out.attenuation_after = after.attenuations;

  // Timelines.
  for (int s = -options.pre_steps; s <= options.post_steps; ++s) {
    out.time_steps.push_back(s);
    out.no_tuning.push_back(s < 0 ? out.f_before : out.f_upgrade);
    out.proactive.push_back(s < 0 ? out.f_before : out.f_after);
  }

  // Reactive: after the upgrade, walk the survivors' attenuations toward
  // the optimum a few units per step (progressive power increase).
  testbed.set_online(target, true);
  testbed.utility_for(out.attenuation_before);
  testbed.set_online(target, false);
  std::vector<int> atts = current_attenuations(testbed);
  for (int s = -options.pre_steps; s <= options.post_steps; ++s) {
    if (s < 0) {
      out.reactive.push_back(out.f_before);
      continue;
    }
    if (s > 0) {
      for (const int b : surviving) {
        const auto i = static_cast<std::size_t>(b);
        const int goal = out.attenuation_after[i];
        const int delta = std::clamp(goal - atts[i],
                                     -options.reactive_units_per_step,
                                     options.reactive_units_per_step);
        atts[i] += delta;
      }
    }
    out.reactive.push_back(testbed.utility_for(atts));
  }

  return out;
}

}  // namespace magus::testbed
