// The two §3 measurement scenarios and the Figure 2 strategy timelines.
//
// Scenario 1: 2 eNodeBs, 3 UEs; eNodeB-2 is taken offline. With no
// interferer left, the optimum is simply maximum power on the survivor.
//
// Scenario 2: 3 eNodeBs, 5 UEs; eNodeB-2 (the middle one) is taken
// offline. Interference between the survivors makes the optimal
// attenuations non-trivial.
#pragma once

#include <string>
#include <vector>

#include "testbed/testbed.h"

namespace magus::testbed {

struct ScenarioTimelines {
  std::string name;
  std::vector<int> time_steps;        ///< e.g. -3..+3, upgrade at 0
  std::vector<double> no_tuning;      ///< utility per step
  std::vector<double> reactive;
  std::vector<double> proactive;
  double f_before = 0.0;
  double f_upgrade = 0.0;
  double f_after = 0.0;
  std::vector<int> attenuation_before;  ///< optimal C_before
  std::vector<int> attenuation_after;   ///< optimal C_after (target off)
};

struct ScenarioOptions {
  std::uint64_t seed = 7;
  /// Attenuation levels enumerated when optimizing (full [1,30] in unit
  /// steps by default).
  std::vector<int> levels;
  /// Attenuation units a reactive tuner moves per time step after the
  /// upgrade (the paper's "progressive" power increase).
  int reactive_units_per_step = 10;
  int pre_steps = 3;
  int post_steps = 3;
};

/// Builds the 2-eNodeB testbed of Scenario 1. Returns the testbed with
/// eNodeBs {0, 1} and UEs laid out as in the paper's sketch; `target` is
/// set to the eNodeB to take offline (eNodeB-2, id 1).
[[nodiscard]] Testbed make_scenario1(std::uint64_t seed, int* target);

/// Builds the 3-eNodeB testbed of Scenario 2; the target is the middle
/// eNodeB (id 1).
[[nodiscard]] Testbed make_scenario2(std::uint64_t seed, int* target);

/// Runs the full §3 methodology on a scenario: find optimal C_before by
/// exhaustive search, take the target offline, find optimal C_after, and
/// produce the no-tuning / reactive / proactive utility timelines.
[[nodiscard]] ScenarioTimelines run_scenario(Testbed testbed, int target,
                                             const std::string& name,
                                             const ScenarioOptions& options);

}  // namespace magus::testbed
