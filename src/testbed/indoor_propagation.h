// Indoor propagation for the LTE small-cell testbed (paper §3.1).
//
// The physical testbed lives on one floor of a corporate building: log-
// distance path loss with an indoor exponent, a per-wall penetration loss,
// and a deterministic per-link multipath term seeded per (eNodeB, UE) pair
// so the emulation is exactly reproducible.
#pragma once

#include <cstdint>

#include "geo/point.h"

namespace magus::testbed {

struct IndoorParams {
  double reference_loss_db = 45.0;  ///< at 1 m, ~2.6 GHz (band 7)
  double path_loss_exponent = 3.0;  ///< indoor office, through clutter
  double wall_spacing_m = 8.0;      ///< one wall every ~8 m of path
  double wall_loss_db = 4.0;
  double multipath_stddev_db = 3.0;  ///< per-link lognormal term
  double min_distance_m = 0.5;
};

class IndoorPropagation {
 public:
  IndoorPropagation(IndoorParams params, std::uint64_t seed);

  /// Path *gain* in dB (negative): -(log-distance loss + walls) +
  /// deterministic per-link multipath drawn from (seed, link_id).
  [[nodiscard]] double path_gain_db(geo::Point a, geo::Point b,
                                    std::uint64_t link_id) const;

  [[nodiscard]] const IndoorParams& params() const { return params_; }

 private:
  IndoorParams params_;
  std::uint64_t seed_;
};

}  // namespace magus::testbed
