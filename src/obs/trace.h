// Hierarchical tracing with Chrome trace-event JSON export.
//
// ScopedSpan records one complete ("ph":"X") event per wrapped scope:
// wall-clock start relative to the collector's epoch, duration, the small
// dense thread id shared with obs/metrics, and the nesting depth of the
// span on its thread. Spans nest naturally — chrome://tracing / Perfetto
// stack same-thread events by timestamp containment — and the recorded
// depth lets tests assert the hierarchy without a viewer.
//
// Cost model, in order:
//   * MAGUS_TRACE=0 (compile time)  — the macros expand to ((void)0);
//     instrumented code carries no trace code at all. This is the
//     compile-out contract the evaluator hot path relies on.
//   * collector inactive (runtime)  — one relaxed atomic load + branch.
//   * collector active              — two steady_clock reads and one
//     push_back into a per-thread buffer (its mutex is uncontended; only
//     the merge in events()/export takes it from another thread).
//
// Events are collected process-wide by TraceCollector::global(); the
// --trace flag (obs/session.h) starts it and writes the JSON artifact.
#pragma once

#ifndef MAGUS_TRACE
#define MAGUS_TRACE 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace magus::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';     ///< 'X' complete span, 'i' instant
  double ts_us = 0.0;   ///< start, µs since the collector epoch
  double dur_us = 0.0;  ///< span duration (0 for instants)
  int thread_id = 0;    ///< dense id (see obs/metrics.h)
  int depth = 0;        ///< span nesting depth on its thread (0 = root)
};

class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Starts collection (idempotent). Previously collected events are kept;
  /// call clear() first for a fresh window.
  void start();
  void stop();
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Detail mode gates the high-volume instrumentation sites (per-candidate
  /// evaluation spans — MAGUS_TRACE_SPAN_FINE). --trace leaves it off so
  /// trace artifacts stay per-batch sized; --profile turns it on because
  /// self-time attribution needs the per-task compute spans.
  void set_detail(bool detail) {
    detail_.store(detail, std::memory_order_relaxed);
  }
  [[nodiscard]] bool detail_active() const {
    return active() && detail_.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's buffer. Callers normally go
  /// through ScopedSpan / trace_instant, which check active() first.
  void record(TraceEvent event);

  /// Merged copy of every thread's events, sorted by (ts, dur descending)
  /// so parents precede their children.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace-event format: {"displayTimeUnit": "ms",
  /// "traceEvents": [...]} — load the file in chrome://tracing or
  /// https://ui.perfetto.dev.
  [[nodiscard]] util::JsonObject to_chrome_json() const;
  void write_file(const std::string& path) const;

  /// µs since the collector's epoch (process start, effectively).
  [[nodiscard]] double now_us() const;

  /// Converts a monotonic_now_ns() timestamp to epoch-relative µs, so
  /// instrumentation that measured an interval with raw clock reads (the
  /// thread-pool wait hook) can emit events on the span timeline.
  [[nodiscard]] double us_since_epoch(std::uint64_t monotonic_ns) const;

  [[nodiscard]] static TraceCollector& global();

 private:
  struct Buffer {
    std::mutex mutex;  ///< guards events: owner thread vs merging reader
    std::vector<TraceEvent> events;
  };

  [[nodiscard]] Buffer& local_buffer();

  std::atomic<bool> active_{false};
  std::atomic<bool> detail_{false};
  std::uint64_t epoch_ns_;
  mutable std::mutex mutex_;  ///< guards buffers_
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// Depth of the innermost open span on this thread (0 = none). Exposed for
/// the nesting tests.
[[nodiscard]] int current_span_depth();

/// The calling thread's dense trace id (shared numbering with the metrics
/// shards). For instrumentation that records TraceEvents directly.
[[nodiscard]] int trace_thread_id();

class ScopedSpan {
 public:
  /// Both strings must outlive the span (string literals in practice —
  /// nothing is copied unless the collector is active at entry).
  ScopedSpan(const char* name, const char* category);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  int depth_ = 0;
  bool active_;
};

/// ScopedSpan gated on detail_active(): the span is only recorded in
/// profile mode. For high-volume sites (one span per candidate evaluation)
/// where a plain --trace artifact would balloon.
class FineScopedSpan {
 public:
  FineScopedSpan(const char* name, const char* category);
  ~FineScopedSpan();
  FineScopedSpan(const FineScopedSpan&) = delete;
  FineScopedSpan& operator=(const FineScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  int depth_ = 0;
  bool active_;
};

/// ScopedSpan with a runtime-built name (per-market timelines and other
/// low-volume sites where the label carries an id). The name is copied, so
/// it need not outlive the span; use the literal-name classes on hot paths.
class DynamicSpan {
 public:
  DynamicSpan(std::string name, const char* category);
  ~DynamicSpan();
  DynamicSpan(const DynamicSpan&) = delete;
  DynamicSpan& operator=(const DynamicSpan&) = delete;

 private:
  std::string name_;
  const char* category_;
  double start_us_ = 0.0;
  int depth_ = 0;
  bool active_;
};

/// Records a zero-duration instant event (collector active only).
void trace_instant(const char* name, const char* category);

}  // namespace magus::obs

// Compile-out macro path: with -DMAGUS_TRACE=0 every instrumentation site
// vanishes entirely (zero code, zero branches). Span names/categories must
// be string literals.
#if MAGUS_TRACE
#define MAGUS_TRACE_CONCAT_INNER(a, b) a##b
#define MAGUS_TRACE_CONCAT(a, b) MAGUS_TRACE_CONCAT_INNER(a, b)
#define MAGUS_TRACE_SPAN(name, category)                        \
  ::magus::obs::ScopedSpan MAGUS_TRACE_CONCAT(magus_trace_span_, \
                                              __COUNTER__) {     \
    (name), (category)                                           \
  }
#define MAGUS_TRACE_SPAN_FINE(name, category)                        \
  ::magus::obs::FineScopedSpan MAGUS_TRACE_CONCAT(magus_trace_fine_, \
                                                  __COUNTER__) {     \
    (name), (category)                                               \
  }
#define MAGUS_TRACE_INSTANT(name, category) \
  ::magus::obs::trace_instant((name), (category))
#else
#define MAGUS_TRACE_SPAN(name, category) ((void)0)
#define MAGUS_TRACE_SPAN_FINE(name, category) ((void)0)
#define MAGUS_TRACE_INSTANT(name, category) ((void)0)
#endif
