// ObsSession: the shared --metrics / --trace / --profile wiring for
// benches and examples.
//
// Construct it right after ArgParser::parse (the flags come from
// util::add_obs_flags). A non-empty --trace starts the global
// TraceCollector for the run; --profile additionally enables detail-mode
// spans (per-task compute attribution) and the thread-pool wait hook.
// finish() — called automatically from the destructor — writes the
// metrics snapshot, the Chrome trace-event file, and the profiler
// artifacts (JSON report, <path>.folded stacks, summary table on stdout),
// turning every bench/example run into machine-readable artifacts.
#pragma once

#include <string>

#include "util/args.h"

namespace magus::obs {

class ObsSession {
 public:
  /// Reads the --metrics/--trace/--profile values; starts collection when
  /// either of the latter two is set.
  explicit ObsSession(const util::ArgParser& args);

  /// Explicit paths (empty = disabled); same semantics as the flag form.
  ObsSession(std::string metrics_path, std::string trace_path,
             std::string profile_path = "");

  /// Best-effort finish(); errors are reported to stderr, not thrown.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes the requested artifacts (idempotent; throws on I/O failure).
  void finish();

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string profile_path_;
  bool finished_ = false;
};

}  // namespace magus::obs
