#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace magus::obs {

namespace {

/// Per-thread open-span depth; spans restore it on exit, so it tracks the
/// hierarchy even when the collector toggles mid-run.
thread_local int t_span_depth = 0;

/// Dense trace thread id, shared numbering with metrics shard slots'
/// source so worker N means the same thread everywhere.
[[nodiscard]] int this_thread_trace_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

int current_span_depth() { return t_span_depth; }

int trace_thread_id() { return this_thread_trace_id(); }

TraceCollector::TraceCollector() : epoch_ns_(monotonic_now_ns()) {}

void TraceCollector::start() {
  active_.store(true, std::memory_order_relaxed);
}

void TraceCollector::stop() {
  active_.store(false, std::memory_order_relaxed);
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<Buffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

TraceCollector::Buffer& TraceCollector::local_buffer() {
  // One buffer per (collector, thread). The collector keeps a shared_ptr,
  // so buffers outlive their threads and survive until clear()/shutdown.
  thread_local const TraceCollector* t_owner = nullptr;
  thread_local std::shared_ptr<Buffer> t_buffer;
  if (t_owner != this || !t_buffer) {
    t_buffer = std::make_shared<Buffer>();
    t_owner = this;
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(t_buffer);
  }
  return *t_buffer;
}

void TraceCollector::record(TraceEvent event) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> merged;
  for (const std::shared_ptr<Buffer>& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return merged;
}

util::JsonObject TraceCollector::to_chrome_json() const {
  util::JsonArray trace_events;
  for (const TraceEvent& event : events()) {
    util::JsonObject e;
    e.set("name", event.name)
        .set("cat", event.category)
        .set("ph", std::string(1, event.phase))
        .set("ts", event.ts_us)
        .set("pid", static_cast<std::int64_t>(1))
        .set("tid", static_cast<std::int64_t>(event.thread_id));
    if (event.phase == 'X') e.set("dur", event.dur_us);
    if (event.phase == 'i') e.set("s", "t");  // instant scope: thread
    util::JsonObject args;
    args.set("depth", static_cast<std::int64_t>(event.depth));
    e.set("args", std::move(args));
    trace_events.push_back(std::move(e));
  }
  util::JsonObject out;
  out.set("displayTimeUnit", "ms");
  out.set("traceEvents", std::move(trace_events));
  return out;
}

void TraceCollector::write_file(const std::string& path) const {
  to_chrome_json().write_file(path);
}

double TraceCollector::now_us() const {
  return static_cast<double>(monotonic_now_ns() - epoch_ns_) / 1000.0;
}

double TraceCollector::us_since_epoch(std::uint64_t monotonic_ns) const {
  return (static_cast<double>(monotonic_ns) -
          static_cast<double>(epoch_ns_)) /
         1000.0;
}

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name),
      category_(category),
      active_(TraceCollector::global().active()) {
  if (!active_) return;
  depth_ = t_span_depth++;
  start_us_ = TraceCollector::global().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  TraceCollector& collector = TraceCollector::global();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = collector.now_us() - start_us_;
  event.thread_id = this_thread_trace_id();
  event.depth = depth_;
  collector.record(std::move(event));
}

FineScopedSpan::FineScopedSpan(const char* name, const char* category)
    : name_(name),
      category_(category),
      active_(TraceCollector::global().detail_active()) {
  if (!active_) return;
  depth_ = t_span_depth++;
  start_us_ = TraceCollector::global().now_us();
}

FineScopedSpan::~FineScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  TraceCollector& collector = TraceCollector::global();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = collector.now_us() - start_us_;
  event.thread_id = this_thread_trace_id();
  event.depth = depth_;
  collector.record(std::move(event));
}

DynamicSpan::DynamicSpan(std::string name, const char* category)
    : name_(std::move(name)),
      category_(category),
      active_(TraceCollector::global().active()) {
  if (!active_) return;
  depth_ = t_span_depth++;
  start_us_ = TraceCollector::global().now_us();
}

DynamicSpan::~DynamicSpan() {
  if (!active_) return;
  --t_span_depth;
  TraceCollector& collector = TraceCollector::global();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = collector.now_us() - start_us_;
  event.thread_id = this_thread_trace_id();
  event.depth = depth_;
  collector.record(std::move(event));
}

void trace_instant(const char* name, const char* category) {
  TraceCollector& collector = TraceCollector::global();
  if (!collector.active()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_us = collector.now_us();
  event.thread_id = this_thread_trace_id();
  event.depth = t_span_depth;
  collector.record(std::move(event));
}

}  // namespace magus::obs
