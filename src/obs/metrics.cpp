#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/profiler.h"
#include "util/table.h"

namespace magus::obs {

namespace {

/// Dense thread ids for shard selection; assigned on first use per thread.
[[nodiscard]] std::size_t next_thread_index() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t this_thread_metric_slot() {
  thread_local const std::size_t slot =
      next_thread_index() & (kMetricShards - 1);
  return slot;
}

std::uint64_t monotonic_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::add(double delta) noexcept { atomic_add_double(value_, delta); }

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow = size()
  Shard& shard = shards_[this_thread_metric_slot()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(shard.sum, value);
}

double HistogramSnapshot::quantile(double q) const {
  return quantile_with_overflow(q).value;
}

HistogramSnapshot::QuantileValue HistogramSnapshot::quantile_with_overflow(
    double q) const {
  if (count == 0 || bounds.empty()) return {0.0, false};
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      if (b >= bounds.size()) {
        // Overflow bucket: no upper edge to interpolate against, so the
        // last finite edge is reported as a saturated lower bound.
        return {bounds.back(), true};
      }
      const double upper = bounds[b];
      const double lower = b == 0 ? std::min(0.0, upper) : bounds[b - 1];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return {lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0),
              false};
    }
    cumulative += in_bucket;
  }
  return {bounds.back(), true};
}

std::string HistogramSnapshot::quantile_label(double q) const {
  const QuantileValue v = quantile_with_overflow(q);
  std::string label = util::TablePrinter::num(v.value, 3);
  if (v.saturated) label += '+';
  return label;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

util::JsonObject MetricsSnapshot::to_json() const {
  util::JsonObject counters_json;
  for (const auto& [name, value] : counters) {
    counters_json.set(name, static_cast<std::int64_t>(value));
  }
  util::JsonObject gauges_json;
  for (const auto& [name, value] : gauges) {
    gauges_json.set(name, value);
  }
  util::JsonObject histograms_json;
  for (const auto& [name, h] : histograms) {
    util::JsonArray bounds;
    for (const double edge : h.bounds) bounds.push_back(edge);
    util::JsonArray buckets;
    for (const std::uint64_t b : h.buckets) {
      buckets.push_back(static_cast<std::int64_t>(b));
    }
    util::JsonObject entry;
    entry.set("bounds", std::move(bounds))
        .set("buckets", std::move(buckets))
        .set("count", static_cast<std::int64_t>(h.count))
        .set("sum", h.sum)
        .set("mean", h.mean());
    constexpr std::pair<const char*, double> kQuantiles[] = {
        {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
    for (const auto& [key, q] : kQuantiles) {
      const HistogramSnapshot::QuantileValue v = h.quantile_with_overflow(q);
      entry.set(key, v.value);
      // Saturated quantiles are lower bounds (the mass sits in the
      // unbounded overflow bucket); consumers must not read them as
      // point estimates.
      entry.set(std::string(key) + "_saturated", v.saturated);
    }
    histograms_json.set(name, std::move(entry));
  }
  util::JsonObject out;
  out.set("meta", run_metadata_json())
      .set("counters", std::move(counters_json))
      .set("gauges", std::move(gauges_json))
      .set("histograms", std::move(histograms_json));
  return out;
}

std::string MetricsSnapshot::to_table() const {
  std::ostringstream out;
  if (!counters.empty()) {
    out << "counters:\n";
    util::TablePrinter table({"name", "value"});
    for (const auto& [name, value] : counters) {
      table.add_row({name, std::to_string(value)});
    }
    table.print(out);
  }
  if (!gauges.empty()) {
    out << "gauges:\n";
    util::TablePrinter table({"name", "value"});
    for (const auto& [name, value] : gauges) {
      table.add_row({name, util::TablePrinter::num(value, 4)});
    }
    table.print(out);
  }
  if (!histograms.empty()) {
    out << "histograms:\n";
    util::TablePrinter table({"name", "count", "mean", "p50", "p95", "p99"});
    for (const auto& [name, h] : histograms) {
      table.add_row({name, std::to_string(h.count),
                     util::TablePrinter::num(h.mean(), 3),
                     h.quantile_label(0.50), h.quantile_label(0.95),
                     h.quantile_label(0.99)});
    }
    table.print(out);
  }
  return out.str();
}

MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name) {
  for (auto& [n, entry] : entries_) {
    if (n == name) return &entry;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name)) {
    if (!entry->counter) {
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " exists with a different kind");
    }
    return *entry->counter;
  }
  Entry entry;
  entry.counter = std::make_unique<Counter>();
  entries_.emplace_back(name, std::move(entry));
  return *entries_.back().second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name)) {
    if (!entry->gauge) {
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " exists with a different kind");
    }
    return *entry->gauge;
  }
  Entry entry;
  entry.gauge = std::make_unique<Gauge>();
  entries_.emplace_back(name, std::move(entry));
  return *entries_.back().second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = find(name)) {
    if (!entry->histogram) {
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " exists with a different kind");
    }
    if (!std::equal(bounds.begin(), bounds.end(),
                    entry->histogram->bounds().begin(),
                    entry->histogram->bounds().end())) {
      throw std::invalid_argument("MetricsRegistry: " + name +
                                  " exists with different bounds");
    }
    return *entry->histogram;
  }
  Entry entry;
  entry.histogram = std::make_unique<Histogram>(bounds);
  entries_.emplace_back(name, std::move(entry));
  return *entries_.back().second.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) {
      snap.counters.emplace_back(name, entry.counter->value());
    } else if (entry.gauge) {
      snap.gauges.emplace_back(name, entry.gauge->value());
    } else if (entry.histogram) {
      HistogramSnapshot h;
      h.bounds = entry.histogram->bounds();
      h.buckets.assign(h.bounds.size() + 1, 0);
      for (const Histogram::Shard& shard : entry.histogram->shards_) {
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
        }
        h.count += shard.count.load(std::memory_order_relaxed);
        h.sum += shard.sum.load(std::memory_order_relaxed);
      }
      snap.histograms.emplace_back(name, std::move(h));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::vector<double> exponential_bounds(double first, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

ScopedTimerUs::ScopedTimerUs(Histogram& histogram)
    : histogram_(histogram), start_ns_(monotonic_now_ns()) {}

ScopedTimerUs::~ScopedTimerUs() {
  histogram_.observe(
      static_cast<double>(monotonic_now_ns() - start_ns_) / 1000.0);
}

}  // namespace magus::obs
