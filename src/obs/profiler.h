// Post-hoc time-attribution profiler over the TraceCollector span stream.
//
// The tracer answers "what happened"; this answers "what dominated". From
// one merged event stream the Profiler derives, per worker thread:
//
//   * self-time attribution into wait-state buckets — compute, queue wait
//     (pool task-dequeue waits, evaluator hand-off), barrier/join wait,
//     shard-lock wait, DB/journal I/O — plus an `idle` residual for wall
//     time no span covers. The buckets partition the worker's wall span
//     exactly: sum(buckets) == last_span_end - first_span_start.
//   * per-phase utilization: for every root-span name on the driver
//     thread, how many of the observed threads were busy while it ran.
//   * the critical path: starting from the longest root span, repeatedly
//     descend into the child (same-thread direct child or a contained
//     other-thread root) that *ends last* — the chain that bounds the
//     phase makespan. Each step carries its contribution (the tail of the
//     parent after the chosen child ends; the leaf contributes its whole
//     duration) and its slack (how much earlier the step could end before
//     a sibling becomes critical). Contributions plus the lead-in gap sum
//     to the root duration by construction.
//   * folded stacks ("t0;parent;child self_us") for flamegraph tooling.
//
// Buckets are keyed by span *category* prefix, so new instrumentation
// joins the taxonomy by picking the right category string — no profiler
// change needed:
//
//   "wait.queue"   -> queue_wait     "wait.barrier" -> barrier
//   "wait.lock"    -> lock_wait      "io*"          -> db_io
//   anything else  -> compute
//
// The ObsSession --profile flag wires this up for every bench/example:
// it enables detail-mode tracing (per-candidate compute spans), and on
// exit writes the JSON report, a .folded sibling, and the text table.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"

namespace magus::obs {

enum class TimeBucket {
  kCompute = 0,
  kQueueWait,
  kBarrier,
  kLockWait,
  kDbIo,
  kIdle,
};
inline constexpr std::size_t kTimeBucketCount = 6;

/// Stable snake_case label ("queue_wait", ...), used in reports and JSON.
[[nodiscard]] const char* time_bucket_name(TimeBucket bucket);

/// Category-prefix mapping described above. kIdle is never returned — it
/// exists only as the uncovered-wall residual.
[[nodiscard]] TimeBucket bucket_for_category(std::string_view category);

/// One worker thread's wall-time decomposition over its active window
/// (first span start to last span end).
struct WorkerProfile {
  int thread_id = 0;
  double first_us = 0.0;
  double last_us = 0.0;
  double wall_us = 0.0;  ///< last_us - first_us
  /// Self time per bucket, kIdle last; sums to wall_us exactly.
  std::array<double, kTimeBucketCount> bucket_us{};
  std::uint64_t span_count = 0;

  [[nodiscard]] double busy_us() const {
    return wall_us - bucket_us[static_cast<std::size_t>(TimeBucket::kIdle)];
  }
};

/// Busy-worker utilization while instances of one driver-thread root span
/// name were running.
struct PhaseUtilization {
  std::string name;
  std::uint64_t instances = 0;
  double wall_us = 0.0;  ///< summed instance durations
  double busy_us = 0.0;  ///< summed busy time across all threads inside them
  /// busy_us / (wall_us * thread_count): 1.0 = every observed thread busy
  /// for the phase's whole duration.
  double utilization = 0.0;
};

struct CriticalPathStep {
  std::string name;
  std::string category;
  int thread_id = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  /// Share of the makespan this step explains: parent tail after its
  /// critical child ends; the leaf contributes its full duration.
  double contribution_us = 0.0;
  /// How much earlier this span could have ended before the runner-up
  /// sibling (or the parent's start, if it has no sibling) became the
  /// binding chain instead.
  double slack_us = 0.0;
};

/// One aggregated folded-stack line: "t<thread>;outer;inner" -> self µs.
struct FoldedStack {
  std::string stack;
  double self_us = 0.0;
};

struct ProfileReport {
  std::vector<WorkerProfile> workers;
  std::vector<PhaseUtilization> phases;

  std::string root_name;        ///< longest root span = the analyzed phase
  double makespan_us = 0.0;     ///< its duration
  std::vector<CriticalPathStep> critical_path;
  double critical_path_us = 0.0;  ///< lead_in + contributions == makespan
  double lead_in_us = 0.0;        ///< root start to leaf start, uncovered

  /// Largest attributed bucket totalled across the non-driver threads
  /// (all threads when the trace is single-threaded), idle excluded (idle
  /// names no mechanism) — the driver dispatches the work, so its serial
  /// compute is not a parallelism sink. This is the ranked answer to
  /// "where does the speedup go": queue_wait / barrier / lock_wait /
  /// db_io / compute.
  std::string top_time_sink;
  double top_time_sink_us = 0.0;
  /// All five attributed buckets plus idle, totalled across workers.
  std::array<double, kTimeBucketCount> total_bucket_us{};

  int thread_count = 0;
  std::uint64_t event_count = 0;
  std::vector<FoldedStack> folded;  ///< sorted by self time, descending

  /// {"meta": run_metadata_json(), "workers": [...], "phases": [...],
  ///  "critical_path": [...], "makespan_us", "top_time_sink", ...}.
  [[nodiscard]] util::JsonObject to_json() const;
  /// Fixed-width tables: worker attribution, phase utilization, critical
  /// path. The walkthrough artifact for humans.
  [[nodiscard]] std::string to_table() const;
  /// flamegraph.pl-compatible folded stacks, one line per stack, integer
  /// microsecond counts.
  [[nodiscard]] std::string to_folded() const;
};

class Profiler {
 public:
  /// `events` is a merged span stream, e.g. TraceCollector::events().
  /// Instant events are ignored; only complete ('X') spans attribute time.
  explicit Profiler(std::vector<TraceEvent> events);

  [[nodiscard]] ProfileReport analyze() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Run provenance for self-describing artifacts: ISO-8601 UTC timestamp,
/// hardware thread count, build type and git SHA (compile-time stamped,
/// "unknown" when unavailable). Every metrics snapshot, BENCH_*.json and
/// profile report embeds this under a "meta" key.
[[nodiscard]] util::JsonObject run_metadata_json();

/// Installs the util::ThreadPool wait hook that turns task-dequeue waits
/// into "pool.task_wait" (wait.queue) spans and run()'s join wait into
/// "pool.join" (wait.barrier) spans whenever the collector is active.
/// Idempotent; ObsSession calls it when tracing or profiling is on.
void install_pool_wait_instrumentation();

}  // namespace magus::obs
