// MetricsRegistry: named counters, gauges and fixed-bucket histograms for
// the planner/evaluator/executor hot paths.
//
// Hot-path writes are lock-free: every counter and histogram is sharded
// across kMetricShards cache-line-padded atomic slots, indexed by a small
// dense per-thread id, so the evaluator worker threads never contend on
// one cache line. snapshot() merges the shards into plain numbers (a
// consistent-enough view: each shard is read atomically, concurrent
// updates may or may not be included). Metric registration takes a mutex
// and returns a reference that stays valid for the registry's lifetime —
// instrumentation sites look metrics up once (static local) and then only
// pay the relaxed atomic add.
//
// Naming convention (see DESIGN.md §9): dot-separated
// "subsystem.object.metric", counters are monotonic event totals,
// histograms carry a unit suffix ("_us", "_s", "_bytes").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <mutex>

#include "util/json.h"

namespace magus::obs {

/// Shards per metric; a power of two so the thread-id fold is a mask.
inline constexpr std::size_t kMetricShards = 16;

/// Small dense id of the calling thread (0 = first thread that asked),
/// folded into [0, kMetricShards) for shard selection. Also used by the
/// trace layer, so spans and metrics agree on worker identity.
[[nodiscard]] std::size_t this_thread_metric_slot();

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[this_thread_metric_slot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum of all shards (exact once writers are quiescent).
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins scalar (not sharded: gauges record state, not events).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order; one implicit overflow bucket catches everything above
/// the last edge. observe() is a branch-free-ish binary search plus three
/// relaxed atomic updates on the caller's shard.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  ///< bounds+1
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Merged, plain-value view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper edges (ascending)
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Bucket-interpolated quantile, q in [0, 1]. The overflow bucket has no
  /// upper edge, so values there report the last finite edge.
  [[nodiscard]] double quantile(double q) const;

  /// quantile() plus whether the quantile landed in the overflow bucket.
  /// A saturated value is a lower bound, not an estimate — interpolating
  /// inside the unbounded bucket would fabricate a midpoint; reports must
  /// mark it instead (see quantile_label).
  struct QuantileValue {
    double value = 0.0;
    bool saturated = false;
  };
  [[nodiscard]] QuantileValue quantile_with_overflow(double q) const;

  /// Display form: "12.5", or "250+" when the quantile saturated into the
  /// overflow bucket. Used by to_table and by callers printing quantiles.
  [[nodiscard]] std::string quantile_label(double q) const;
};

/// Point-in-time merge of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of a counter, 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {bounds,
  /// buckets, count, sum, mean, p50, p95, p99}}}.
  [[nodiscard]] util::JsonObject to_json() const;

  /// Human-readable fixed-width table (one section per metric kind).
  [[nodiscard]] std::string to_table() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Looks up or creates the named metric. References stay valid for the
  /// registry's lifetime (metrics are never deleted). Requesting an
  /// existing name with a different kind (or different histogram bounds)
  /// throws std::invalid_argument.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::span<const double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The process-wide registry every instrumentation site records into.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;  ///< insertion order

  [[nodiscard]] Entry* find(const std::string& name);
};

/// Exponential bucket edges: `first, first*factor, ...` (`count` edges).
/// The canonical bounds for the latency histograms.
[[nodiscard]] std::vector<double> exponential_bounds(double first,
                                                     double factor,
                                                     std::size_t count);

/// RAII timer: observes the elapsed microseconds into `histogram` on
/// destruction. Wrap a scope to get a latency distribution for free.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& histogram);
  ~ScopedTimerUs();
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.
[[nodiscard]] std::uint64_t monotonic_now_ns();

}  // namespace magus::obs
