#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/thread_pool.h"

// Build provenance, stamped by src/CMakeLists.txt; the fallbacks keep
// out-of-tree builds (tests compiling this file directly) working.
#ifndef MAGUS_BUILD_TYPE
#define MAGUS_BUILD_TYPE "unknown"
#endif
#ifndef MAGUS_GIT_SHA
#define MAGUS_GIT_SHA "unknown"
#endif

namespace magus::obs {

namespace {

/// Containment tolerance for timestamps that were computed from the same
/// clock but through different float paths (hook ns conversion vs now_us).
constexpr double kEpsUs = 1e-9;

constexpr std::size_t kIdleIndex =
    static_cast<std::size_t>(TimeBucket::kIdle);

/// Busy (root-span-covered) time of one thread inside [begin, end). The
/// intervals are the thread's root spans: disjoint and sorted, so both
/// starts and ends are monotonic and the first overlap candidate is the
/// first interval ending after `begin`.
double busy_within(const std::vector<std::pair<double, double>>& intervals,
                   double begin, double end) {
  auto it = std::lower_bound(
      intervals.begin(), intervals.end(), begin,
      [](const std::pair<double, double>& iv, double t) {
        return iv.second <= t;
      });
  double busy = 0.0;
  for (; it != intervals.end() && it->first < end; ++it) {
    busy += std::max(0.0, std::min(it->second, end) -
                              std::max(it->first, begin));
  }
  return busy;
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, std::min<std::size_t>(
                                  static_cast<std::size_t>(written),
                                  sizeof(buffer) - 1));
}

}  // namespace

const char* time_bucket_name(TimeBucket bucket) {
  switch (bucket) {
    case TimeBucket::kCompute: return "compute";
    case TimeBucket::kQueueWait: return "queue_wait";
    case TimeBucket::kBarrier: return "barrier";
    case TimeBucket::kLockWait: return "lock_wait";
    case TimeBucket::kDbIo: return "db_io";
    case TimeBucket::kIdle: return "idle";
  }
  return "unknown";
}

TimeBucket bucket_for_category(std::string_view category) {
  if (category.rfind("wait.queue", 0) == 0) return TimeBucket::kQueueWait;
  if (category.rfind("wait.barrier", 0) == 0) return TimeBucket::kBarrier;
  if (category.rfind("wait.lock", 0) == 0) return TimeBucket::kLockWait;
  if (category.rfind("io", 0) == 0) return TimeBucket::kDbIo;
  return TimeBucket::kCompute;
}

Profiler::Profiler(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  // TraceCollector::events() is already ordered, but hand-built event
  // lists (tests) need not be: (ts, dur desc, depth) puts parents before
  // their children on each thread.
  std::sort(events_.begin(), events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.depth < b.depth;
            });
}

ProfileReport Profiler::analyze() const {
  ProfileReport report;

  std::vector<const TraceEvent*> spans;
  spans.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    if (event.phase == 'X') spans.push_back(&event);
  }
  report.event_count = spans.size();
  if (spans.empty()) return report;

  std::map<int, std::vector<int>> by_thread;  // global order preserved
  for (int i = 0; i < static_cast<int>(spans.size()); ++i) {
    by_thread[spans[i]->thread_id].push_back(i);
  }

  // --- Per-thread stack sweep: self times, buckets, folded stacks,
  // parent/child links, root intervals. A span's self time is its
  // duration minus its direct children's durations, so summing self over
  // a thread telescopes to the summed root durations — which makes
  // buckets + idle equal the thread's wall span identically.
  std::vector<std::vector<int>> children(spans.size());
  std::vector<std::pair<double, double>> root_spans_sorted;  // filled below
  std::vector<int> root_indices;  // ts-sorted (global order)
  std::map<int, std::vector<std::pair<double, double>>> roots_by_thread;
  std::unordered_map<std::string, double> folded;

  struct OpenFrame {
    int idx;
    double end_us;
    double child_us;
    std::string stack;
  };

  for (const auto& [thread_id, indices] : by_thread) {
    WorkerProfile worker;
    worker.thread_id = thread_id;
    worker.first_us = spans[indices.front()]->ts_us;
    worker.span_count = indices.size();

    const std::string thread_prefix = "t" + std::to_string(thread_id) + ";";
    std::vector<OpenFrame> open;
    double last_us = worker.first_us;
    double root_total_us = 0.0;

    const auto finalize = [&](const OpenFrame& frame) {
      const TraceEvent& event = *spans[frame.idx];
      const double self = event.dur_us - frame.child_us;
      worker.bucket_us[static_cast<std::size_t>(
          bucket_for_category(event.category))] += self;
      folded[thread_prefix + frame.stack] += self;
    };

    for (const int i : indices) {
      const TraceEvent& event = *spans[i];
      const double end_us = event.ts_us + event.dur_us;
      last_us = std::max(last_us, end_us);
      while (!open.empty() && open.back().end_us <= event.ts_us + kEpsUs) {
        finalize(open.back());
        open.pop_back();
      }
      if (!open.empty()) {
        OpenFrame& parent = open.back();
        parent.child_us += event.dur_us;
        children[parent.idx].push_back(i);
        open.push_back({i, end_us, 0.0, parent.stack + ";" + event.name});
      } else {
        root_total_us += event.dur_us;
        root_indices.push_back(i);
        roots_by_thread[thread_id].emplace_back(event.ts_us, end_us);
        open.push_back({i, end_us, 0.0, event.name});
      }
    }
    while (!open.empty()) {
      finalize(open.back());
      open.pop_back();
    }

    worker.last_us = last_us;
    worker.wall_us = last_us - worker.first_us;
    worker.bucket_us[kIdleIndex] = worker.wall_us - root_total_us;
    report.workers.push_back(worker);
  }
  // root_indices was filled thread by thread; restore global ts order for
  // the containment scans below.
  std::sort(root_indices.begin(), root_indices.end(),
            [&](int a, int b) { return spans[a]->ts_us < spans[b]->ts_us; });

  report.thread_count = static_cast<int>(report.workers.size());
  for (const WorkerProfile& worker : report.workers) {
    for (std::size_t b = 0; b < kTimeBucketCount; ++b) {
      report.total_bucket_us[b] += worker.bucket_us[b];
    }
  }

  // --- Folded stacks, heaviest first.
  report.folded.reserve(folded.size());
  for (auto& [stack, self_us] : folded) {
    report.folded.push_back({stack, self_us});
  }
  std::sort(report.folded.begin(), report.folded.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.stack < b.stack;
            });

  // --- Overall root: the longest root span anywhere defines the analyzed
  // phase and its makespan.
  int overall_root = root_indices.front();
  for (const int r : root_indices) {
    if (spans[r]->dur_us > spans[overall_root]->dur_us) overall_root = r;
  }
  report.root_name = spans[overall_root]->name;
  report.makespan_us = spans[overall_root]->dur_us;

  // --- Top time sink: largest attributed bucket, idle excluded (idle is
  // a residual, not a mechanism someone can fix). Ranked over the worker
  // threads only — the driver is busy by definition (it dispatches the
  // work), so its serial compute would mask the worker-side waits that
  // actually explain a speedup gap. Single-threaded traces fall back to
  // the lone thread.
  std::array<double, kTimeBucketCount> sink_us{};
  bool have_worker_threads = false;
  for (const WorkerProfile& worker : report.workers) {
    if (worker.thread_id == spans[overall_root]->thread_id) continue;
    have_worker_threads = true;
    for (std::size_t b = 0; b < kTimeBucketCount; ++b) {
      sink_us[b] += worker.bucket_us[b];
    }
  }
  if (!have_worker_threads) sink_us = report.total_bucket_us;
  std::size_t top = 0;
  for (std::size_t b = 1; b < kIdleIndex; ++b) {
    if (sink_us[b] > sink_us[top]) top = b;
  }
  report.top_time_sink = time_bucket_name(static_cast<TimeBucket>(top));
  report.top_time_sink_us = sink_us[top];

  // --- Phase utilization: driver-thread root spans, grouped by name;
  // busy time = root-span coverage of every observed thread inside each
  // instance window.
  const int driver_thread = spans[overall_root]->thread_id;
  std::map<std::string, PhaseUtilization> phases;
  for (const int r : root_indices) {
    const TraceEvent& event = *spans[r];
    if (event.thread_id != driver_thread) continue;
    PhaseUtilization& phase = phases[event.name];
    phase.name = event.name;
    ++phase.instances;
    phase.wall_us += event.dur_us;
    for (const auto& [tid, intervals] : roots_by_thread) {
      phase.busy_us += busy_within(intervals, event.ts_us,
                                   event.ts_us + event.dur_us);
    }
  }
  for (auto& [name, phase] : phases) {
    phase.utilization =
        phase.wall_us > 0.0
            ? phase.busy_us / (phase.wall_us * report.thread_count)
            : 0.0;
    report.phases.push_back(std::move(phase));
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseUtilization& a, const PhaseUtilization& b) {
              return a.wall_us > b.wall_us;
            });

  // --- Critical path: from the overall root, repeatedly descend into the
  // child that ends last — same-thread direct children plus root spans of
  // other threads contained in the current span (a worker task is a child
  // of the batch that dispatched it). The parent's tail after the chosen
  // child is its contribution; the chain plus the leaf's start lead-in
  // telescopes to the root duration exactly.
  const auto contained_other_thread_roots = [&](int s) {
    std::vector<int> out;
    const TraceEvent& parent = *spans[s];
    const double parent_end = parent.ts_us + parent.dur_us;
    auto it = std::lower_bound(
        root_indices.begin(), root_indices.end(), parent.ts_us - kEpsUs,
        [&](int idx, double t) { return spans[idx]->ts_us < t; });
    for (; it != root_indices.end() && spans[*it]->ts_us <= parent_end;
         ++it) {
      const TraceEvent& root = *spans[*it];
      if (root.thread_id == parent.thread_id) continue;
      if (root.ts_us + root.dur_us <= parent_end + kEpsUs) {
        out.push_back(*it);
      }
    }
    return out;
  };

  int current = overall_root;
  double slack_of_current = 0.0;  // the root has no competing sibling
  while (true) {
    const TraceEvent& event = *spans[current];
    const double current_end = event.ts_us + event.dur_us;

    std::vector<int> kids = children[current];
    const std::vector<int> remote = contained_other_thread_roots(current);
    kids.insert(kids.end(), remote.begin(), remote.end());

    CriticalPathStep step;
    step.name = event.name;
    step.category = event.category;
    step.thread_id = event.thread_id;
    step.ts_us = event.ts_us;
    step.dur_us = event.dur_us;
    step.slack_us = slack_of_current;

    if (kids.empty()) {
      step.contribution_us = event.dur_us;  // the leaf is pure self time
      report.critical_path.push_back(std::move(step));
      break;
    }

    int chosen = kids.front();
    double chosen_end =
        spans[chosen]->ts_us + spans[chosen]->dur_us;
    double runner_up_end = event.ts_us;  // fallback: no other sibling
    for (std::size_t k = 1; k < kids.size(); ++k) {
      const double end = spans[kids[k]]->ts_us + spans[kids[k]]->dur_us;
      if (end > chosen_end) {
        runner_up_end = chosen_end;
        chosen = kids[k];
        chosen_end = end;
      } else if (end > runner_up_end) {
        runner_up_end = end;
      }
    }

    step.contribution_us = current_end - chosen_end;
    report.critical_path.push_back(std::move(step));
    slack_of_current = chosen_end - runner_up_end;
    current = chosen;
  }

  const CriticalPathStep& leaf = report.critical_path.back();
  report.lead_in_us = leaf.ts_us - spans[overall_root]->ts_us;
  double contributions = 0.0;
  for (const CriticalPathStep& step : report.critical_path) {
    contributions += step.contribution_us;
  }
  report.critical_path_us = contributions + report.lead_in_us;

  return report;
}

util::JsonObject ProfileReport::to_json() const {
  util::JsonObject out;
  out.set("meta", run_metadata_json());
  out.set("thread_count", static_cast<std::int64_t>(thread_count));
  out.set("span_count", static_cast<std::int64_t>(event_count));
  out.set("root_name", root_name);
  out.set("makespan_us", makespan_us);
  out.set("critical_path_us", critical_path_us);
  out.set("lead_in_us", lead_in_us);
  out.set("top_time_sink", top_time_sink);
  out.set("top_time_sink_us", top_time_sink_us);

  util::JsonObject totals;
  for (std::size_t b = 0; b < kTimeBucketCount; ++b) {
    totals.set(time_bucket_name(static_cast<TimeBucket>(b)),
               total_bucket_us[b]);
  }
  out.set("total_bucket_us", std::move(totals));

  util::JsonArray worker_array;
  for (const WorkerProfile& worker : workers) {
    util::JsonObject w;
    w.set("thread", static_cast<std::int64_t>(worker.thread_id));
    w.set("first_us", worker.first_us);
    w.set("last_us", worker.last_us);
    w.set("wall_us", worker.wall_us);
    w.set("busy_us", worker.busy_us());
    w.set("span_count", static_cast<std::int64_t>(worker.span_count));
    util::JsonObject buckets;
    for (std::size_t b = 0; b < kTimeBucketCount; ++b) {
      buckets.set(time_bucket_name(static_cast<TimeBucket>(b)),
                  worker.bucket_us[b]);
    }
    w.set("bucket_us", std::move(buckets));
    worker_array.push_back(std::move(w));
  }
  out.set("workers", std::move(worker_array));

  util::JsonArray phase_array;
  for (const PhaseUtilization& phase : phases) {
    util::JsonObject p;
    p.set("name", phase.name);
    p.set("instances", static_cast<std::int64_t>(phase.instances));
    p.set("wall_us", phase.wall_us);
    p.set("busy_us", phase.busy_us);
    p.set("utilization", phase.utilization);
    phase_array.push_back(std::move(p));
  }
  out.set("phases", std::move(phase_array));

  util::JsonArray path_array;
  for (const CriticalPathStep& step : critical_path) {
    util::JsonObject s;
    s.set("name", step.name);
    s.set("category", step.category);
    s.set("thread", static_cast<std::int64_t>(step.thread_id));
    s.set("ts_us", step.ts_us);
    s.set("dur_us", step.dur_us);
    s.set("contribution_us", step.contribution_us);
    s.set("slack_us", step.slack_us);
    path_array.push_back(std::move(s));
  }
  out.set("critical_path", std::move(path_array));

  util::JsonArray folded_array;
  for (const FoldedStack& line : folded) {
    util::JsonObject f;
    f.set("stack", line.stack);
    f.set("self_us", line.self_us);
    folded_array.push_back(std::move(f));
  }
  out.set("folded", std::move(folded_array));
  return out;
}

std::string ProfileReport::to_table() const {
  std::string out;
  append_fmt(out, "== worker time attribution (ms) ==\n");
  append_fmt(out,
             "%-8s %10s %10s %11s %9s %10s %8s %9s %6s\n", "thread",
             "wall", "compute", "queue_wait", "barrier", "lock_wait",
             "db_io", "idle", "busy%");
  for (const WorkerProfile& worker : workers) {
    const double busy_pct =
        worker.wall_us > 0.0 ? 100.0 * worker.busy_us() / worker.wall_us
                             : 0.0;
    append_fmt(
        out, "t%-7d %10.2f %10.2f %11.2f %9.2f %10.2f %8.2f %9.2f %6.1f\n",
        worker.thread_id, worker.wall_us / 1000.0,
        worker.bucket_us[0] / 1000.0, worker.bucket_us[1] / 1000.0,
        worker.bucket_us[2] / 1000.0, worker.bucket_us[3] / 1000.0,
        worker.bucket_us[4] / 1000.0, worker.bucket_us[5] / 1000.0,
        busy_pct);
  }

  append_fmt(out, "\n== phase utilization (%d threads) ==\n", thread_count);
  append_fmt(out, "%-36s %8s %12s %6s\n", "phase", "n", "wall_ms", "util%");
  for (const PhaseUtilization& phase : phases) {
    append_fmt(out, "%-36.36s %8llu %12.2f %6.1f\n", phase.name.c_str(),
               static_cast<unsigned long long>(phase.instances),
               phase.wall_us / 1000.0, 100.0 * phase.utilization);
  }

  append_fmt(out, "\n== critical path (root %s, makespan %.2f ms) ==\n",
             root_name.c_str(), makespan_us / 1000.0);
  append_fmt(out, "%3s %-7s %-36s %10s %11s %9s\n", "#", "thread", "span",
             "dur_ms", "contrib_ms", "slack_ms");
  for (std::size_t i = 0; i < critical_path.size(); ++i) {
    const CriticalPathStep& step = critical_path[i];
    append_fmt(out, "%3zu t%-6d %-36.36s %10.2f %11.2f %9.2f\n", i,
               step.thread_id, step.name.c_str(), step.dur_us / 1000.0,
               step.contribution_us / 1000.0, step.slack_us / 1000.0);
  }
  append_fmt(out,
             "lead-in %.2f ms; critical path total %.2f ms (%.1f%% of "
             "makespan)\n",
             lead_in_us / 1000.0, critical_path_us / 1000.0,
             makespan_us > 0.0 ? 100.0 * critical_path_us / makespan_us
                               : 0.0);
  append_fmt(out, "top time sink (worker threads): %s (%.2f ms)\n",
             top_time_sink.c_str(), top_time_sink_us / 1000.0);
  return out;
}

std::string ProfileReport::to_folded() const {
  std::string out;
  for (const FoldedStack& line : folded) {
    const long long count = std::llround(line.self_us);
    if (count <= 0) continue;  // flamegraph counts are positive integers
    out += line.stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

util::JsonObject run_metadata_json() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char timestamp[32];
  std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);

  util::JsonObject meta;
  meta.set("timestamp_utc", timestamp);
  meta.set("hardware_threads",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  meta.set("build_type", MAGUS_BUILD_TYPE);
  meta.set("git_sha", MAGUS_GIT_SHA);
  return meta;
}

void install_pool_wait_instrumentation() {
  util::ThreadPool::set_wait_hook([](util::ThreadPool::WaitKind kind,
                                     std::uint64_t start_ns,
                                     std::uint64_t end_ns) {
    TraceCollector& collector = TraceCollector::global();
    if (!collector.active() || end_ns <= start_ns) return;
    TraceEvent event;
    const bool task_wait = kind == util::ThreadPool::WaitKind::kTaskWait;
    event.name = task_wait ? "pool.task_wait" : "pool.join";
    event.category = task_wait ? "wait.queue" : "wait.barrier";
    event.phase = 'X';
    event.ts_us = collector.us_since_epoch(start_ns);
    event.dur_us = static_cast<double>(end_ns - start_ns) / 1000.0;
    event.thread_id = trace_thread_id();
    event.depth = current_span_depth();
    collector.record(std::move(event));
  });
}

}  // namespace magus::obs
