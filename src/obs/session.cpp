#include "obs/session.h"

#include <exception>
#include <iostream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magus::obs {

ObsSession::ObsSession(const util::ArgParser& args)
    : ObsSession(args.get_string("metrics"), args.get_string("trace")) {}

ObsSession::ObsSession(std::string metrics_path, std::string trace_path)
    : metrics_path_(std::move(metrics_path)),
      trace_path_(std::move(trace_path)) {
  if (!trace_path_.empty()) {
    TraceCollector::global().start();
  }
}

ObsSession::~ObsSession() {
  try {
    finish();
  } catch (const std::exception& error) {
    std::cerr << "ObsSession: " << error.what() << '\n';
  }
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (!metrics_path_.empty()) {
    MetricsRegistry::global().snapshot().to_json().write_file(metrics_path_);
    std::cout << "metrics snapshot written to " << metrics_path_ << '\n';
  }
  if (!trace_path_.empty()) {
    TraceCollector& collector = TraceCollector::global();
    collector.stop();
    collector.write_file(trace_path_);
    std::cout << "trace written to " << trace_path_ << '\n';
  }
}

}  // namespace magus::obs
