#include "obs/session.h"

#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace magus::obs {

ObsSession::ObsSession(const util::ArgParser& args)
    : ObsSession(args.get_string("metrics"), args.get_string("trace"),
                 args.get_string("profile")) {}

ObsSession::ObsSession(std::string metrics_path, std::string trace_path,
                       std::string profile_path)
    : metrics_path_(std::move(metrics_path)),
      trace_path_(std::move(trace_path)),
      profile_path_(std::move(profile_path)) {
  if (!trace_path_.empty() || !profile_path_.empty()) {
    TraceCollector& collector = TraceCollector::global();
    collector.start();
    if (!profile_path_.empty()) {
      // Attribution needs the high-volume per-task spans and the pool
      // wait intervals; a plain --trace stays per-batch sized without
      // them.
      collector.set_detail(true);
      install_pool_wait_instrumentation();
    }
  }
}

ObsSession::~ObsSession() {
  try {
    finish();
  } catch (const std::exception& error) {
    std::cerr << "ObsSession: " << error.what() << '\n';
  }
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (!metrics_path_.empty()) {
    MetricsRegistry::global().snapshot().to_json().write_file(metrics_path_);
    std::cout << "metrics snapshot written to " << metrics_path_ << '\n';
  }
  if (trace_path_.empty() && profile_path_.empty()) return;

  TraceCollector& collector = TraceCollector::global();
  collector.stop();
  collector.set_detail(false);
  if (!trace_path_.empty()) {
    collector.write_file(trace_path_);
    std::cout << "trace written to " << trace_path_ << '\n';
  }
  if (!profile_path_.empty()) {
    const ProfileReport report = Profiler(collector.events()).analyze();
    report.to_json().write_file(profile_path_);
    const std::string folded_path = profile_path_ + ".folded";
    std::ofstream folded(folded_path);
    folded << report.to_folded();
    if (!folded) {
      throw std::runtime_error("ObsSession: cannot write " + folded_path);
    }
    std::cout << report.to_table();
    std::cout << "profile report written to " << profile_path_
              << " (folded stacks: " << folded_path << ")\n";
  }
}

}  // namespace magus::obs
