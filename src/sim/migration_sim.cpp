#include "sim/migration_sim.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magus::sim {

namespace {

struct SimMetrics {
  obs::Counter& runs;
  obs::Counter& transitions;
  obs::Gauge& last_handover_ues;
  obs::Gauge& last_outage_ue_seconds;
  obs::Histogram& step_handover_ues;

  [[nodiscard]] static SimMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static SimMetrics metrics{
        registry.counter("sim.migration.runs"),
        registry.counter("sim.migration.transitions"),
        registry.gauge("sim.migration.last_handover_ues"),
        registry.gauge("sim.migration.last_outage_ue_seconds"),
        registry.histogram("sim.migration.step_handover_ues",
                           obs::exponential_bounds(1.0, 4.0, 10)),
    };
    return metrics;
  }
};

}  // namespace

MigrationSimulator::MigrationSimulator(HandoverTimings timings)
    : procedure_(timings) {}

MigrationSimResult MigrationSimulator::simulate(
    std::span<const ServiceSnapshot> snapshots,
    std::span<const double> ue_density, double step_interval_s) const {
  if (snapshots.empty()) {
    throw std::invalid_argument("MigrationSimulator: no snapshots");
  }
  MAGUS_TRACE_SPAN("sim.migrate", "sim");
  SimMetrics& metrics = SimMetrics::get();
  metrics.runs.add(1);
  MigrationSimResult result;
  EventQueue queue;
  SignalingCounters counters;
  std::vector<HandoverOutcome> outcomes;

  for (std::size_t step = 1; step < snapshots.size(); ++step) {
    const auto& prev = snapshots[step - 1];
    const auto& next = snapshots[step];
    if (prev.service_map.size() != ue_density.size() ||
        next.service_map.size() != ue_density.size()) {
      throw std::invalid_argument("MigrationSimulator: size mismatch");
    }
    const SimTime step_start = (step - 1) * step_interval_s;
    queue.run_until(step_start);

    const SignalingCounters counters_before = counters;
    MigrationStepTrace trace;
    trace.start_s = step_start;
    trace.utility = next.utility;

    // Schedule one weighted procedure per changed cell. `next.on_air`
    // reflects which source sectors are still transmitting during this
    // transition (a sector being shut down in this very step is off).
    for (std::size_t i = 0; i < ue_density.size(); ++i) {
      const net::SectorId src = prev.service_map[i];
      const net::SectorId dst = next.service_map[i];
      if (src == dst || src == net::kInvalidSector) continue;
      const double ues = ue_density[i];
      if (ues <= 0.0) continue;
      if (dst == net::kInvalidSector) {
        // Service denial, not a handover: no procedure runs; the UEs go
        // dark (the coverage loss shows up in the utility, not here).
        trace.lost_service_ues += ues;
        continue;
      }
      const bool src_alive =
          static_cast<std::size_t>(src) < next.on_air.size() &&
          next.on_air[static_cast<std::size_t>(src)];
      const HandoverKind kind =
          src_alive ? HandoverKind::kSeamless : HandoverKind::kHard;
      if (kind == HandoverKind::kSeamless) {
        trace.seamless_ues += ues;
      } else {
        trace.hard_ues += ues;
      }
      procedure_.start(queue, kind, ues, &counters, &outcomes);
    }
    trace.simultaneous_ues = trace.seamless_ues + trace.hard_ues;

    // Drain this step's procedures before the next transition so per-step
    // signaling is attributable (steps are minutes apart in practice, far
    // longer than a handover).
    queue.run();
    trace.signaling = counters;
    trace.signaling.measurement_reports -= counters_before.measurement_reports;
    trace.signaling.handover_requests -= counters_before.handover_requests;
    trace.signaling.handover_acks -= counters_before.handover_acks;
    trace.signaling.rrc_messages -= counters_before.rrc_messages;
    trace.signaling.path_switches -= counters_before.path_switches;
    trace.signaling.reattach_attempts -= counters_before.reattach_attempts;

    result.steps.push_back(trace);
  }

  result.total_signaling = counters;
  result.makespan_s = queue.now();
  double seamless_total = 0.0;
  for (const auto& step : result.steps) {
    result.total_handover_ues += step.simultaneous_ues;
    result.max_simultaneous_ues =
        std::max(result.max_simultaneous_ues, step.simultaneous_ues);
    seamless_total += step.seamless_ues;
    metrics.step_handover_ues.observe(step.simultaneous_ues);
  }
  result.seamless_fraction = result.total_handover_ues > 0.0
                                 ? seamless_total / result.total_handover_ues
                                 : 1.0;
  for (const auto& outcome : outcomes) {
    result.total_outage_ue_seconds += outcome.ue_weight * outcome.outage_s;
  }
  metrics.transitions.add(result.steps.size());
  metrics.last_handover_ues.set(result.total_handover_ues);
  metrics.last_outage_ue_seconds.set(result.total_outage_ue_seconds);
  return result;
}

}  // namespace magus::sim
