// LTE X2 handover procedure state machine with signaling accounting.
//
// A seamless handover (source eNodeB still on-air) walks the standard X2
// phases: measurement report -> handover request/ack -> RRC connection
// reconfiguration -> path switch -> complete. A hard handover (source
// already off-air, as happens to UEs still attached when the upgrade
// starts) first burns a radio-link-failure timer, then performs a full
// reattach (RRC re-establishment + attach signaling), which costs more
// messages and a service gap. Weights are fractional UE counts, so one
// procedure instance can represent all UEs of a grid cell.
//
// Procedures can fail: when an RNG stream is supplied and
// HandoverTimings::failure_probability is positive, each attempt's
// request/reattach phase may be rejected (admission-control denial, X2
// timeout). Failed seamless attempts are re-tried after retry_timeout_s up
// to max_attempts total; once seamless attempts are exhausted the UE drops
// to a radio-link failure and completes via the hard-handover path, whose
// reattach retries on the same policy. Failure and retry totals land in
// SignalingCounters so storms are visible to the execution layer.
#pragma once

#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace magus::sim {

struct HandoverTimings {
  double measurement_report_s = 0.05;
  double handover_request_s = 0.02;  ///< X2 request + admission control
  double rrc_reconfiguration_s = 0.03;
  double path_switch_s = 0.02;
  double rlf_detection_s = 0.5;  ///< hard HO: radio-link-failure timer
  double reattach_s = 0.3;       ///< hard HO: RRC re-establishment + attach
  /// Probability that one attempt's request/reattach phase fails. Only
  /// consulted when an RNG is passed to HandoverProcedure::start; 0 keeps
  /// the procedure fully deterministic.
  double failure_probability = 0.0;
  double retry_timeout_s = 0.2;  ///< wait before re-attempting after a failure
  int max_attempts = 3;          ///< total attempts per phase, including the first
};

/// Weighted signaling-message counters (UE-weighted: one UE contributes
/// 1.0 to each message it sends/receives).
struct SignalingCounters {
  double measurement_reports = 0.0;
  double handover_requests = 0.0;
  double handover_acks = 0.0;
  double rrc_messages = 0.0;
  double path_switches = 0.0;
  double reattach_attempts = 0.0;
  /// UE-weighted procedure attempts that failed / were re-tried. Not part
  /// of total(): they count procedures, not messages on the wire.
  double failed_procedures = 0.0;
  double retried_procedures = 0.0;

  [[nodiscard]] double total() const {
    return measurement_reports + handover_requests + handover_acks +
           rrc_messages + path_switches + reattach_attempts;
  }

  SignalingCounters& operator+=(const SignalingCounters& other);
};

enum class HandoverKind { kSeamless, kHard };

struct HandoverOutcome {
  HandoverKind kind = HandoverKind::kSeamless;
  double ue_weight = 0.0;
  SimTime started_at = 0.0;
  SimTime completed_at = 0.0;
  /// Time the UEs had no service (zero for seamless handovers).
  double outage_s = 0.0;
  /// Procedure attempts spent (1 = first try succeeded).
  int attempts = 1;
  /// True when every allowed attempt failed and the UEs were abandoned to
  /// idle-mode reselection (service restored out-of-band; the full window
  /// still counts as outage).
  bool gave_up = false;
};

class HandoverProcedure {
 public:
  explicit HandoverProcedure(HandoverTimings timings = {});

  /// Schedules a weighted handover starting at queue.now(); `counters` and
  /// `outcomes` accumulate results when the queue runs, and `rng` (when
  /// non-null) must stay alive through it — the scheduled events hold
  /// copies of the timings, so the procedure object itself need not.
  /// `rng` enables failure injection per
  /// HandoverTimings::failure_probability; with nullptr (the default) the
  /// procedure never fails and behaves exactly as before.
  void start(EventQueue& queue, HandoverKind kind, double ue_weight,
             SignalingCounters* counters,
             std::vector<HandoverOutcome>* outcomes,
             util::Xoshiro256ss* rng = nullptr) const;

  /// Total latency of one fault-free procedure of the given kind.
  [[nodiscard]] double duration_s(HandoverKind kind) const;

  [[nodiscard]] const HandoverTimings& timings() const { return timings_; }

 private:
  HandoverTimings timings_;
};

}  // namespace magus::sim
