// Plays a sequence of network configurations through the handover signaling
// simulator, producing the per-step handover counts and signaling load of
// the paper's Figure 11.
//
// Input: an ordered list of service snapshots (the serving map, the on-air
// flags, and the model utility at each point of the tuning schedule). The
// simulator diffs consecutive snapshots, schedules one weighted handover
// procedure per changed grid cell, and reports simultaneity and signaling
// totals.
#pragma once

#include <span>
#include <vector>

#include "model/handover_delta.h"
#include "sim/handover_fsm.h"

namespace magus::sim {

struct ServiceSnapshot {
  std::vector<net::SectorId> service_map;
  std::vector<bool> on_air;  ///< per sector, at the moment of the transition
  double utility = 0.0;
};

struct MigrationStepTrace {
  SimTime start_s = 0.0;
  double utility = 0.0;  ///< utility reached after this transition
  /// UEs forced to change servers at this transition ("simultaneous"
  /// handovers in the paper's terminology).
  double simultaneous_ues = 0.0;
  double seamless_ues = 0.0;
  double hard_ues = 0.0;
  /// UEs that lost service entirely at this transition (not handovers).
  double lost_service_ues = 0.0;
  SignalingCounters signaling;
};

struct MigrationSimResult {
  std::vector<MigrationStepTrace> steps;
  SignalingCounters total_signaling;
  double total_handover_ues = 0.0;
  double max_simultaneous_ues = 0.0;
  double seamless_fraction = 0.0;  ///< of all handover UEs
  double total_outage_ue_seconds = 0.0;
  SimTime makespan_s = 0.0;
};

class MigrationSimulator {
 public:
  explicit MigrationSimulator(HandoverTimings timings = {});

  /// `snapshots.front()` is the starting state; each later snapshot is one
  /// tuning step, applied `step_interval_s` apart. `ue_density` is the
  /// frozen per-grid UE density. Requires >= 1 snapshot with consistent
  /// sizes.
  [[nodiscard]] MigrationSimResult simulate(
      std::span<const ServiceSnapshot> snapshots,
      std::span<const double> ue_density, double step_interval_s) const;

 private:
  HandoverProcedure procedure_;
};

}  // namespace magus::sim
