#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace magus::sim {

void EventQueue::schedule_at(SimTime t, Handler handler) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  events_.push(Event{t, next_sequence_++, std::move(handler)});
}

void EventQueue::schedule_in(double delay, Handler handler) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue: negative delay");
  }
  schedule_at(now_ + delay, std::move(handler));
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // Copy out before pop: the handler may schedule more events.
  Event event = events_.top();
  events_.pop();
  now_ = event.time;
  event.handler();
  return true;
}

std::size_t EventQueue::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t EventQueue::run_until(SimTime t) {
  std::size_t count = 0;
  while (!events_.empty() && events_.top().time <= t) {
    step();
    ++count;
  }
  now_ = std::max(now_, t);
  return count;
}

}  // namespace magus::sim
