// Discrete-event simulation engine.
//
// A minimal calendar queue: handlers scheduled at absolute or relative
// simulated times, executed in time order (FIFO among equal timestamps).
// Used by the handover signaling simulator to play out UE migrations.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace magus::sim {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  /// Schedules `handler` at absolute time `t`. Requires t >= now().
  void schedule_at(SimTime t, Handler handler);

  /// Schedules `handler` `delay` seconds from now. Requires delay >= 0.
  void schedule_in(double delay, Handler handler);

  /// Runs the earliest event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue drains; returns how many ran.
  std::size_t run();

  /// Runs events with time <= `t`, then advances the clock to `t`.
  std::size_t run_until(SimTime t);

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace magus::sim
