#include "sim/handover_fsm.h"

#include <stdexcept>
#include <vector>

namespace magus::sim {
namespace {

// The continuation chain below captures the timings by value and never the
// procedure object: callers routinely start() from a temporary, and the
// scheduled events outlive it.
bool attempt_fails(const HandoverTimings& t, util::Xoshiro256ss* rng) {
  if (rng == nullptr || t.failure_probability <= 0.0) return false;
  return rng->uniform() < t.failure_probability;
}

void attempt_hard(HandoverTimings t, EventQueue& queue, double ue_weight,
                  SimTime started, int attempt, int prior_attempts,
                  SignalingCounters* counters,
                  std::vector<HandoverOutcome>* outcomes,
                  util::Xoshiro256ss* rng);

void attempt_seamless(HandoverTimings t, EventQueue& queue, double ue_weight,
                      SimTime started, int attempt,
                      SignalingCounters* counters,
                      std::vector<HandoverOutcome>* outcomes,
                      util::Xoshiro256ss* rng) {
  // measurement report -> HO request/ack -> RRC reconfig -> path switch.
  queue.schedule_in(t.measurement_report_s, [=, &queue] {
    counters->measurement_reports += ue_weight;
    queue.schedule_in(t.handover_request_s, [=, &queue] {
      counters->handover_requests += ue_weight;
      if (attempt_fails(t, rng)) {
        // Admission denied / X2 timeout: no ack. Retry after the timeout,
        // or drop to a radio-link failure once attempts run out.
        counters->failed_procedures += ue_weight;
        if (attempt < t.max_attempts) {
          queue.schedule_in(t.retry_timeout_s, [=, &queue] {
            counters->retried_procedures += ue_weight;
            attempt_seamless(t, queue, ue_weight, started, attempt + 1,
                             counters, outcomes, rng);
          });
        } else {
          queue.schedule_in(t.retry_timeout_s, [=, &queue] {
            attempt_hard(t, queue, ue_weight, started, 1, attempt, counters,
                         outcomes, rng);
          });
        }
        return;
      }
      counters->handover_acks += ue_weight;
      queue.schedule_in(t.rrc_reconfiguration_s, [=, &queue] {
        counters->rrc_messages += ue_weight;
        queue.schedule_in(t.path_switch_s, [=, &queue] {
          counters->path_switches += ue_weight;
          outcomes->push_back(HandoverOutcome{HandoverKind::kSeamless,
                                              ue_weight, started, queue.now(),
                                              0.0, attempt, false});
        });
      });
    });
  });
}

void attempt_hard(HandoverTimings t, EventQueue& queue, double ue_weight,
                  SimTime started, int attempt, int prior_attempts,
                  SignalingCounters* counters,
                  std::vector<HandoverOutcome>* outcomes,
                  util::Xoshiro256ss* rng) {
  // Radio link failure -> reattach -> RRC -> path switch. The UE is in
  // outage from the moment the source went dark (or the seamless attempts
  // gave out) until the reattach completes. The RLF timer burns only on
  // the first attempt; retries go straight back to reattach.
  const double lead_in = attempt == 1 ? t.rlf_detection_s : 0.0;
  queue.schedule_in(lead_in, [=, &queue] {
    queue.schedule_in(t.reattach_s, [=, &queue] {
      counters->reattach_attempts += ue_weight;
      if (attempt_fails(t, rng)) {
        counters->failed_procedures += ue_weight;
        if (attempt < t.max_attempts) {
          queue.schedule_in(t.retry_timeout_s, [=, &queue] {
            counters->retried_procedures += ue_weight;
            attempt_hard(t, queue, ue_weight, started, attempt + 1,
                         prior_attempts, counters, outcomes, rng);
          });
        } else {
          // All reattach attempts failed: abandon to idle-mode reselection.
          queue.schedule_in(t.retry_timeout_s, [=, &queue] {
            const SimTime done = queue.now();
            outcomes->push_back(HandoverOutcome{
                HandoverKind::kHard, ue_weight, started, done, done - started,
                prior_attempts + attempt, true});
          });
        }
        return;
      }
      queue.schedule_in(t.rrc_reconfiguration_s, [=, &queue] {
        counters->rrc_messages += ue_weight;
        queue.schedule_in(t.path_switch_s, [=, &queue] {
          counters->path_switches += ue_weight;
          const SimTime done = queue.now();
          outcomes->push_back(HandoverOutcome{
              HandoverKind::kHard, ue_weight, started, done, done - started,
              prior_attempts + attempt, false});
        });
      });
    });
  });
}

}  // namespace

SignalingCounters& SignalingCounters::operator+=(
    const SignalingCounters& other) {
  measurement_reports += other.measurement_reports;
  handover_requests += other.handover_requests;
  handover_acks += other.handover_acks;
  rrc_messages += other.rrc_messages;
  path_switches += other.path_switches;
  reattach_attempts += other.reattach_attempts;
  failed_procedures += other.failed_procedures;
  retried_procedures += other.retried_procedures;
  return *this;
}

HandoverProcedure::HandoverProcedure(HandoverTimings timings)
    : timings_(timings) {
  if (timings_.max_attempts < 1) {
    throw std::invalid_argument("HandoverProcedure: max_attempts must be >= 1");
  }
  if (timings_.failure_probability < 0.0 ||
      timings_.failure_probability > 1.0) {
    throw std::invalid_argument(
        "HandoverProcedure: failure_probability outside [0, 1]");
  }
}

double HandoverProcedure::duration_s(HandoverKind kind) const {
  if (kind == HandoverKind::kSeamless) {
    return timings_.measurement_report_s + timings_.handover_request_s +
           timings_.rrc_reconfiguration_s + timings_.path_switch_s;
  }
  return timings_.rlf_detection_s + timings_.reattach_s +
         timings_.rrc_reconfiguration_s + timings_.path_switch_s;
}

void HandoverProcedure::start(EventQueue& queue, HandoverKind kind,
                              double ue_weight, SignalingCounters* counters,
                              std::vector<HandoverOutcome>* outcomes,
                              util::Xoshiro256ss* rng) const {
  if (counters == nullptr || outcomes == nullptr) {
    throw std::invalid_argument("HandoverProcedure: null output sinks");
  }
  if (ue_weight <= 0.0) return;
  if (kind == HandoverKind::kSeamless) {
    attempt_seamless(timings_, queue, ue_weight, queue.now(), 1, counters,
                     outcomes, rng);
  } else {
    attempt_hard(timings_, queue, ue_weight, queue.now(), 1, 0, counters,
                 outcomes, rng);
  }
}

}  // namespace magus::sim
