#include "sim/handover_fsm.h"

#include <stdexcept>
#include <vector>

namespace magus::sim {

SignalingCounters& SignalingCounters::operator+=(
    const SignalingCounters& other) {
  measurement_reports += other.measurement_reports;
  handover_requests += other.handover_requests;
  handover_acks += other.handover_acks;
  rrc_messages += other.rrc_messages;
  path_switches += other.path_switches;
  reattach_attempts += other.reattach_attempts;
  return *this;
}

HandoverProcedure::HandoverProcedure(HandoverTimings timings)
    : timings_(timings) {}

double HandoverProcedure::duration_s(HandoverKind kind) const {
  if (kind == HandoverKind::kSeamless) {
    return timings_.measurement_report_s + timings_.handover_request_s +
           timings_.rrc_reconfiguration_s + timings_.path_switch_s;
  }
  return timings_.rlf_detection_s + timings_.reattach_s +
         timings_.rrc_reconfiguration_s + timings_.path_switch_s;
}

void HandoverProcedure::start(EventQueue& queue, HandoverKind kind,
                              double ue_weight, SignalingCounters* counters,
                              std::vector<HandoverOutcome>* outcomes) const {
  if (counters == nullptr || outcomes == nullptr) {
    throw std::invalid_argument("HandoverProcedure: null output sinks");
  }
  if (ue_weight <= 0.0) return;
  const SimTime started = queue.now();
  const HandoverTimings t = timings_;

  if (kind == HandoverKind::kSeamless) {
    // measurement report -> HO request/ack -> RRC reconfig -> path switch.
    queue.schedule_in(t.measurement_report_s, [=, &queue] {
      counters->measurement_reports += ue_weight;
      queue.schedule_in(t.handover_request_s, [=, &queue] {
        counters->handover_requests += ue_weight;
        counters->handover_acks += ue_weight;
        queue.schedule_in(t.rrc_reconfiguration_s, [=, &queue] {
          counters->rrc_messages += ue_weight;
          queue.schedule_in(t.path_switch_s, [=, &queue] {
            counters->path_switches += ue_weight;
            outcomes->push_back(HandoverOutcome{
                HandoverKind::kSeamless, ue_weight, started, queue.now(),
                0.0});
          });
        });
      });
    });
    return;
  }

  // Hard handover: radio link failure -> reattach -> RRC -> path switch.
  // The UE is in outage from the moment the source went dark until the
  // reattach completes.
  queue.schedule_in(t.rlf_detection_s, [=, &queue] {
    queue.schedule_in(t.reattach_s, [=, &queue] {
      counters->reattach_attempts += ue_weight;
      queue.schedule_in(t.rrc_reconfiguration_s, [=, &queue] {
        counters->rrc_messages += ue_weight;
        queue.schedule_in(t.path_switch_s, [=, &queue] {
          counters->path_switches += ue_weight;
          const SimTime done = queue.now();
          outcomes->push_back(HandoverOutcome{HandoverKind::kHard, ue_weight,
                                              started, done, done - started});
        });
      });
    });
  });
}

}  // namespace magus::sim
