#include "exec/quarantine.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace magus::exec {

namespace {

struct QuarantineMetrics {
  obs::Counter& faults_recorded;
  obs::Counter& quarantines;

  [[nodiscard]] static QuarantineMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static QuarantineMetrics metrics{
        registry.counter("exec.quarantine.faults_recorded"),
        registry.counter("exec.quarantine.quarantines"),
    };
    return metrics;
  }
};

}  // namespace

SectorQuarantine::SectorQuarantine(QuarantineOptions options)
    : options_(options) {
  if (options_.fault_threshold < 1) {
    throw std::invalid_argument("SectorQuarantine: threshold must be >= 1");
  }
}

bool SectorQuarantine::record_faults(net::SectorId sector, int count,
                                     std::size_t window) {
  if (count <= 0 || sector == net::kInvalidSector) return false;
  QuarantineMetrics::get().faults_recorded.add(
      static_cast<std::uint64_t>(count));
  State& state = sectors_[sector];
  if (state.quarantined && window <= state.until_window) {
    return false;  // already fenced off; don't extend from its own faults
  }
  state.fault_count += count;
  if (state.fault_count < options_.fault_threshold) return false;
  state.quarantined = true;
  state.ever = true;
  state.until_window = window + options_.cooloff_windows;
  state.fault_count = 0;  // clean slate when the cool-off expires
  ++quarantine_events_;
  QuarantineMetrics::get().quarantines.add(1);
  return true;
}

bool SectorQuarantine::is_quarantined(net::SectorId sector,
                                      std::size_t window) const {
  const auto it = sectors_.find(sector);
  return it != sectors_.end() && it->second.quarantined &&
         window <= it->second.until_window;
}

std::vector<net::SectorId> SectorQuarantine::active(
    std::size_t window) const {
  std::vector<net::SectorId> out;
  for (const auto& [sector, state] : sectors_) {
    if (state.quarantined && window <= state.until_window) {
      out.push_back(sector);
    }
  }
  return out;  // map iteration order is already ascending
}

std::vector<net::SectorId> SectorQuarantine::ever_quarantined() const {
  std::vector<net::SectorId> out;
  for (const auto& [sector, state] : sectors_) {
    if (state.ever) out.push_back(sector);
  }
  return out;
}

}  // namespace magus::exec
