// Fault taxonomy and pluggable injectors for the migration executor.
//
// The planner assumes every step of a GradualPlan lands perfectly; real
// migration windows do not (paper §8: unplanned outages handled via
// precomputed contingencies). Three fault classes cover the failure modes
// the execution layer must survive:
//
//   kSectorOutage      — a sector (typically a neighbor the plan relies
//                        on) drops off-air unplanned and stays down.
//   kHandoverFailure   — a signaling storm: handover procedures fail with
//                        elevated probability during one step, absorbed by
//                        the FSM's retry/backoff machinery.
//   kConfigPushReject  — the OSS rejects the step's configuration push
//                        (stale write); the push is re-attempted under a
//                        capped exponential backoff.
//
// Injectors are polled once per plan step. ScriptedFaultInjector replays
// an exact fault list (tests, benches); RandomFaultInjector draws faults
// from a seeded util::rng stream so soak runs stay reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "net/sector.h"
#include "util/rng.h"

namespace magus::exec {

enum class FaultKind {
  kSectorOutage,
  kHandoverFailure,
  kConfigPushReject,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kSectorOutage;
  int step = -1;  ///< plan step index (1-based transition) the fault hits
  /// kSectorOutage: the sector that goes dark.
  net::SectorId sector = net::kInvalidSector;
  /// kHandoverFailure: per-attempt failure probability during this step.
  double handover_failure_probability = 0.0;
  /// kConfigPushReject: how many consecutive push attempts the OSS
  /// rejects before accepting (a transiently stale write).
  int reject_attempts = 1;
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Faults that strike just before the executor applies `step`.
  [[nodiscard]] virtual std::vector<FaultEvent> faults_for_step(int step) = 0;
};

/// Replays a fixed fault list — the deterministic backbone of exec_test
/// and the recovery bench.
class ScriptedFaultInjector final : public FaultInjector {
 public:
  void add(FaultEvent event) { events_.push_back(event); }

  [[nodiscard]] std::vector<FaultEvent> faults_for_step(int step) override;

 private:
  std::vector<FaultEvent> events_;
};

struct RandomFaultOptions {
  double outage_probability_per_step = 0.0;
  double storm_probability_per_step = 0.0;
  double push_reject_probability_per_step = 0.0;
  double storm_failure_probability = 0.5;
  int reject_attempts = 1;
  /// Sectors eligible to drop (usually the plan's involved set). Empty
  /// disables outage injection regardless of the probability.
  std::vector<net::SectorId> outage_candidates;
};

/// Draws faults independently per step from a seeded xoshiro stream.
class RandomFaultInjector final : public FaultInjector {
 public:
  RandomFaultInjector(std::uint64_t seed, RandomFaultOptions options);

  [[nodiscard]] std::vector<FaultEvent> faults_for_step(int step) override;

 private:
  util::Xoshiro256ss rng_;
  RandomFaultOptions options_;
};

}  // namespace magus::exec
