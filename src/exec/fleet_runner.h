// Fleet execution: one crash-safe CampaignRunner per market, sharing a
// base CampaignOptions but deriving an independent campaign seed and an
// independent write-ahead journal per market.
//
// The runner deliberately knows nothing about the fleet layer's market
// store or wave composition — it takes plain references to one market's
// already-materialized planning state (MarketCampaignRefs), so it sits
// below `fleet` in the module order, and so any caller that can produce
// an evaluator + planner + schedule can execute crash-safely. Journals
// are per market: a crash while market 17 is mid-window only replays
// market 17's journal; every other market's file is untouched.
#pragma once

#include <cstdint>
#include <string>

#include "exec/campaign_runner.h"

namespace magus::exec {

/// Everything needed to execute one market's campaign. All pointers are
/// borrowed and must outlive the run_market call.
struct MarketCampaignRefs {
  /// Caller-chosen market key (the fleet layer passes its MarketId); folded
  /// into the per-market campaign seed and useful for log attribution.
  std::int32_t market_key = 0;
  std::span<const traffic::PlannedUpgrade> upgrades;
  const traffic::CampaignSchedule* schedule = nullptr;
  core::Evaluator* evaluator = nullptr;
  const core::MagusPlanner* planner = nullptr;
  const core::ContingencyTable* contingencies = nullptr;
  /// Deterministic per-upgrade fault injector factory (may be empty).
  std::function<std::unique_ptr<FaultInjector>(std::size_t)> injector_factory;
  /// Path for this market's write-ahead journal; empty = run unjournaled.
  std::string journal_path;
};

/// Deterministic per-market campaign seed (splitmix64 over the fleet seed
/// and market key) — every market replays the same faults and schedules
/// regardless of fleet composition or execution order.
[[nodiscard]] std::uint64_t market_campaign_seed(std::uint64_t fleet_seed,
                                                 std::int32_t market_key);

class FleetRunner {
 public:
  /// `base.seed` acts as the fleet seed; each market's CampaignRunner gets
  /// market_campaign_seed(base.seed, market_key) instead.
  explicit FleetRunner(CampaignOptions base = {}) : base_(base) {}

  /// Executes (or, with resume=true, resumes from the market's journal)
  /// one market's campaign. With resume, the journal's longest valid
  /// prefix is replayed and the file reopened in kContinue mode; without,
  /// any existing journal is truncated. Propagates JournalCrash from an
  /// armed crash point, like CampaignRunner::run.
  [[nodiscard]] CampaignResult run_market(const MarketCampaignRefs& refs,
                                          bool resume = false) const;

  [[nodiscard]] const CampaignOptions& base_options() const { return base_; }

 private:
  CampaignOptions base_;
};

}  // namespace magus::exec
