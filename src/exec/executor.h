// Fault-aware migration executor.
//
// The planner's GradualPlan is a schedule, not a guarantee: the seed code
// simply replayed it through the signaling simulator and assumed every
// step landed. MigrationExecutor instead *plays* the plan step-by-step
// against the live AnalysisModel while a pluggable FaultInjector knocks
// sectors off-air, storms the handover plane, or rejects configuration
// pushes. After every step the realized utility is compared against the
// plan's expectation; on divergence past the configured tolerance the
// executor escalates through a graceful-degradation ladder:
//
//   1. retry       — re-push the intended configuration under the capped
//                    exponential backoff (absorbs transient OSS rejects).
//   2. contingency — on an unplanned outage, push the matching (or
//                    nearest-match) precomputed ContingencyTable entry:
//                    the paper's §8 reactive model-based response with
//                    zero computation delay. A success supersedes the now
//                    stale ramp; the executor completes the upgrade with
//                    one final push of the stored configuration with the
//                    migration targets (and all failed sectors) off-air.
//   3. re-plan     — MagusPlanner::replan_from_current: a bounded local
//                    search from the *faulted* state that completes the
//                    migration in one emergency push.
//   4. rollback    — restore the last configuration that was within
//                    tolerance (C_before if none) and abort the window.
//
// Everything is recorded in a structured ExecutionTrace (per-step outcome,
// fault events, recovery actions, utility-floor violations, signaling and
// lost-service accounting) which bench_fault_recovery consumes to extend
// the paper's Table 1 story to faults *during* the migration window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/contingency.h"
#include "core/evaluator.h"
#include "core/gradual.h"
#include "core/planner.h"
#include "exec/fault_injector.h"
#include "sim/handover_fsm.h"
#include "util/backoff.h"
#include "util/json.h"

namespace magus::exec {

enum class RecoveryAction { kRetry, kContingency, kReplan, kRollback };

[[nodiscard]] const char* recovery_action_name(RecoveryAction action);

enum class StepStatus {
  kApplied,     ///< landed within tolerance, no recovery needed
  kRecovered,   ///< diverged, but a ladder rung restored the utility
  kReplanned,   ///< completed early via an emergency re-plan
  kRolledBack,  ///< unrecoverable; the window was aborted
};

[[nodiscard]] const char* step_status_name(StepStatus status);

struct StepRecord {
  int step = -1;  ///< index into GradualPlan::steps (1 = first transition)
  StepStatus status = StepStatus::kApplied;
  std::vector<FaultEvent> faults;            ///< faults that struck this step
  std::vector<RecoveryAction> actions;       ///< ladder rungs taken, in order
  double planned_utility = 0.0;              ///< what the plan promised
  double realized_utility = 0.0;             ///< measured after the push
  double utility_after_recovery = 0.0;       ///< measured after the ladder
  bool floor_violated = false;  ///< ended below floor - tolerance band
  int push_attempts = 1;        ///< OSS pushes spent (retries via backoff)
  double backoff_wait_s = 0.0;  ///< wall-clock spent waiting between pushes
  double seamless_ues = 0.0;
  double hard_ues = 0.0;
  double lost_service_ues = 0.0;  ///< UEs with no server after this step
  double handover_failures = 0.0;
  double handover_retries = 0.0;
  double lost_service_ue_seconds = 0.0;
};

struct ExecutionTrace {
  std::vector<StepRecord> steps;
  std::vector<FaultEvent> fault_events;  ///< all faults, flattened
  std::vector<net::SectorId> failed_sectors;  ///< unplanned outages (sorted)
  sim::SignalingCounters signaling;
  int retries = 0;
  int contingency_applies = 0;
  int replans = 0;
  int rollbacks = 0;
  int floor_violations = 0;
  bool completed = false;    ///< the targets ended off-air as intended
  bool rolled_back = false;  ///< the window was aborted
  double floor_utility = 0.0;  ///< the plan's guaranteed floor f(C_after)
  double final_utility = 0.0;
  double total_lost_service_ue_seconds = 0.0;
  double makespan_s = 0.0;

  [[nodiscard]] int recovery_action_count() const {
    return retries + contingency_applies + replans + rollbacks;
  }

  /// Full structured export: window outcome + counters, the flattened
  /// fault list, and one record per step (status, faults, ladder actions,
  /// utilities, signaling). The machine-readable form of the recovery
  /// story — bench_fault_recovery emits it and exec_test asserts on it.
  [[nodiscard]] util::JsonObject to_json() const;
};

struct ExecutorOptions {
  /// Relative divergence band: a step diverges when the realized utility
  /// falls more than tolerance * |expectation| below the expectation (the
  /// per-step planned utility, or the rebased floor after a structural
  /// fault). The same band bounds acceptable utility-floor violations.
  double utility_tolerance = 0.05;
  double step_interval_s = 60.0;  ///< wall-clock between plan steps
  util::BackoffPolicy push_backoff;  ///< OSS configuration-push retries
  sim::HandoverTimings handover;     ///< includes FSM failure/retry policy
  bool allow_retry = true;
  bool allow_contingency = true;
  bool allow_replan = true;
};

class MigrationExecutor {
 public:
  /// `evaluator` must outlive the executor; its model is the live network
  /// the plan is executed against.
  explicit MigrationExecutor(core::Evaluator* evaluator,
                             ExecutorOptions options = {});

  /// Plays `plan` (targets ramping down toward off-air) on the live
  /// model. The model is reset to the plan's first-step configuration on
  /// entry; the UE density must already be frozen (plan_upgrade leaves it
  /// so). `seed` drives all stochastic fault outcomes (handover failures)
  /// deterministically. `injector` may be null for a fault-free run;
  /// `contingencies` and `replanner` arm ladder rungs 2 and 3 — a null
  /// pointer (or the corresponding allow_* option) disables the rung and
  /// the ladder skips to the next one.
  [[nodiscard]] ExecutionTrace execute(
      const core::GradualPlan& plan, std::span<const net::SectorId> targets,
      std::uint64_t seed, FaultInjector* injector = nullptr,
      const core::ContingencyTable* contingencies = nullptr,
      const core::MagusPlanner* replanner = nullptr) const;

  [[nodiscard]] const ExecutorOptions& options() const { return options_; }

 private:
  core::Evaluator* evaluator_;
  ExecutorOptions options_;
};

}  // namespace magus::exec
