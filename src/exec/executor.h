// Fault-aware migration executor.
//
// The planner's GradualPlan is a schedule, not a guarantee: the seed code
// simply replayed it through the signaling simulator and assumed every
// step landed. MigrationExecutor instead *plays* the plan step-by-step
// against the live AnalysisModel while a pluggable FaultInjector knocks
// sectors off-air, storms the handover plane, or rejects configuration
// pushes. After every step the realized utility is compared against the
// plan's expectation; on divergence past the configured tolerance the
// executor escalates through a graceful-degradation ladder:
//
//   1. retry       — re-push the intended configuration under the capped
//                    exponential backoff (absorbs transient OSS rejects).
//   2. contingency — on an unplanned outage, push the matching (or
//                    nearest-match) precomputed ContingencyTable entry:
//                    the paper's §8 reactive model-based response with
//                    zero computation delay. A success supersedes the now
//                    stale ramp; the executor completes the upgrade with
//                    one final push of the stored configuration with the
//                    migration targets (and all failed sectors) off-air.
//   3. re-plan     — MagusPlanner::replan_from_current: a bounded local
//                    search from the *faulted* state that completes the
//                    migration in one emergency push.
//   4. rollback    — restore the last configuration that was within
//                    tolerance (C_before if none) and abort the window.
//
// Two cross-cutting policies gate the ladder:
//
//   deadline watchdog — each window carries a simulated time budget
//   (ExecutionEnv::time_budget_s, from traffic::window_time_budget_s);
//   before entering a rung the executor checks the rung's worst-case cost
//   (backoff total wait, contingency push, replan bound) against the
//   remaining budget and skips rungs that no longer fit, recording
//   kDeadlineSkip. Rollback is the safety rung and always runs.
//
//   quarantine — sectors fenced off by the campaign's circuit breaker
//   (ExecutionEnv::quarantined) are pinned: every push holds their live
//   settings, contingency entries referencing them are vetoed, and
//   re-planning excludes them from the tuned set.
//
// When an exec::Journal is attached, every externally visible action is
// written ahead: a kStepIntent before each push, kFault / kRecovery /
// kDeadlineSkip as they happen, and a kStepConfirm carrying the complete
// post-step state (step record, live + last-safe configurations, RNG
// state, cumulative counters, next step index). recover_window_state()
// rebuilds a WindowResumeState from a replayed journal; execute() with
// ExecutionEnv::resume continues idempotently from the first unconfirmed
// step — a confirmed configuration is never pushed again, and the final
// trace is bit-identical to an uninterrupted run.
//
// Everything is recorded in a structured ExecutionTrace (per-step outcome,
// fault events, recovery actions, utility-floor violations, signaling and
// lost-service accounting) which bench_fault_recovery consumes to extend
// the paper's Table 1 story to faults *during* the migration window.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/contingency.h"
#include "core/evaluator.h"
#include "core/gradual.h"
#include "core/planner.h"
#include "exec/fault_injector.h"
#include "exec/journal.h"
#include "sim/handover_fsm.h"
#include "util/backoff.h"
#include "util/json.h"

namespace magus::exec {

enum class RecoveryAction {
  kRetry,
  kContingency,
  kReplan,
  kRollback,
  kDeadlineSkip,  ///< a rung the deadline watchdog refused to enter
};

[[nodiscard]] const char* recovery_action_name(RecoveryAction action);

enum class StepStatus {
  kApplied,     ///< landed within tolerance, no recovery needed
  kRecovered,   ///< diverged, but a ladder rung restored the utility
  kReplanned,   ///< completed early via an emergency re-plan
  kRolledBack,  ///< unrecoverable; the window was aborted
};

[[nodiscard]] const char* step_status_name(StepStatus status);

struct StepRecord {
  int step = -1;  ///< index into GradualPlan::steps (1 = first transition)
  StepStatus status = StepStatus::kApplied;
  std::vector<FaultEvent> faults;            ///< faults that struck this step
  std::vector<RecoveryAction> actions;       ///< ladder rungs taken, in order
  double planned_utility = 0.0;              ///< what the plan promised
  double realized_utility = 0.0;             ///< measured after the push
  double utility_after_recovery = 0.0;       ///< measured after the ladder
  bool floor_violated = false;  ///< ended below floor - tolerance band
  int push_attempts = 1;        ///< OSS pushes spent (retries via backoff)
  double backoff_wait_s = 0.0;  ///< wall-clock spent waiting between pushes
  double seamless_ues = 0.0;
  double hard_ues = 0.0;
  double lost_service_ues = 0.0;  ///< UEs with no server after this step
  double handover_failures = 0.0;
  double handover_retries = 0.0;
  double lost_service_ue_seconds = 0.0;
};

struct ExecutionTrace {
  std::vector<StepRecord> steps;
  std::vector<FaultEvent> fault_events;  ///< all faults, flattened
  std::vector<net::SectorId> failed_sectors;  ///< unplanned outages (sorted)
  std::vector<net::SectorId> quarantined_sectors;  ///< pinned this window
  sim::SignalingCounters signaling;
  int retries = 0;
  int contingency_applies = 0;
  int replans = 0;
  int rollbacks = 0;
  int floor_violations = 0;
  int deadline_skips = 0;  ///< ladder rungs skipped by the watchdog
  bool completed = false;    ///< the targets ended off-air as intended
  bool rolled_back = false;  ///< the window was aborted
  double floor_utility = 0.0;  ///< the plan's guaranteed floor f(C_after)
  double final_utility = 0.0;
  double total_lost_service_ue_seconds = 0.0;
  double makespan_s = 0.0;
  /// Steps replayed from a journal rather than executed (resume
  /// bookkeeping; deliberately *not* exported by to_json so a resumed
  /// window serializes identically to an uninterrupted one).
  int resumed_steps = 0;

  [[nodiscard]] int recovery_action_count() const {
    return retries + contingency_applies + replans + rollbacks;
  }

  /// Full structured export: window outcome + counters, the flattened
  /// fault list, and one record per step (status, faults, ladder actions,
  /// utilities, signaling). The machine-readable form of the recovery
  /// story — bench_fault_recovery emits it and exec_test asserts on it.
  [[nodiscard]] util::JsonObject to_json() const;
};

struct ExecutorOptions {
  /// Relative divergence band: a step diverges when the realized utility
  /// falls more than tolerance * |expectation| below the expectation (the
  /// per-step planned utility, or the rebased floor after a structural
  /// fault). The same band bounds acceptable utility-floor violations.
  double utility_tolerance = 0.05;
  double step_interval_s = 60.0;  ///< wall-clock between plan steps
  util::BackoffPolicy push_backoff;  ///< OSS configuration-push retries
  sim::HandoverTimings handover;     ///< includes FSM failure/retry policy
  bool allow_retry = true;
  bool allow_contingency = true;
  bool allow_replan = true;
  /// Simulated cost the deadline watchdog charges a contingency push and a
  /// bounded re-plan (the replan bound covers the emergency local search).
  double contingency_cost_s = 1.0;
  double replan_cost_s = 30.0;
};

/// Checkpoint decoded from a journal's kStepConfirm records: everything
/// execute() needs to continue a window as if it never stopped.
struct WindowResumeState {
  bool has_progress = false;  ///< at least one step was confirmed
  std::size_t next_k = 1;     ///< first unconfirmed plan step
  std::vector<StepRecord> steps;
  std::vector<FaultEvent> fault_events;
  std::vector<net::SectorId> failed;
  net::Configuration live_config;
  net::Configuration last_safe;
  std::array<std::uint64_t, 4> rng_state{};
  double clock_s = 0.0;
  double effective_floor = 0.0;
  bool finish_mode = false;
  bool aborted = false;
  bool replanned = false;
  sim::SignalingCounters signaling;
  int retries = 0;
  int contingency_applies = 0;
  int replans = 0;
  int rollbacks = 0;
  int floor_violations = 0;
  int deadline_skips = 0;
};

/// Rebuilds the checkpoint from a replayed record span (one window's
/// records, in order). Only kStepConfirm records carry state; the
/// intent/fault/recovery records of an unconfirmed step are ignored — that
/// step re-executes deterministically from the previous confirm. Records
/// of other types (campaign layer) are skipped. Throws std::runtime_error
/// only on a record that replay() validated but this version cannot decode
/// (an encoder/decoder mismatch, not a torn file).
[[nodiscard]] WindowResumeState recover_window_state(
    std::span<const JournalRecord> records);

/// Execution-time dependencies of one window. Everything is optional: a
/// null injector runs fault-free, null contingencies/replanner disarm
/// ladder rungs 2 and 3 (as do the allow_* options), a null journal runs
/// without write-ahead logging, time_budget_s <= 0 disables the deadline
/// watchdog, an empty quarantined span pins nothing, and a null resume
/// starts the window from the plan's first step.
struct ExecutionEnv {
  FaultInjector* injector = nullptr;
  const core::ContingencyTable* contingencies = nullptr;
  const core::MagusPlanner* replanner = nullptr;
  Journal* journal = nullptr;
  double time_budget_s = 0.0;  ///< simulated budget; <= 0 means unlimited
  std::span<const net::SectorId> quarantined;  ///< sorted; pinned sectors
  const WindowResumeState* resume = nullptr;
};

class MigrationExecutor {
 public:
  /// `evaluator` must outlive the executor; its model is the live network
  /// the plan is executed against.
  explicit MigrationExecutor(core::Evaluator* evaluator,
                             ExecutorOptions options = {});

  /// Plays `plan` (targets ramping down toward off-air) on the live
  /// model. The model is reset to the plan's first-step configuration on
  /// entry (or the resume checkpoint's live configuration); the UE density
  /// must already be frozen (plan_upgrade leaves it so). `seed` drives all
  /// stochastic fault outcomes (handover failures) deterministically and
  /// must match the original run when resuming. Propagates JournalCrash
  /// from an armed crash point — the model is then mid-flight and must be
  /// reconstructed via resume.
  [[nodiscard]] ExecutionTrace execute(const core::GradualPlan& plan,
                                       std::span<const net::SectorId> targets,
                                       std::uint64_t seed,
                                       const ExecutionEnv& env) const;

  /// Legacy convenience overload (no journal, watchdog, or quarantine).
  [[nodiscard]] ExecutionTrace execute(
      const core::GradualPlan& plan, std::span<const net::SectorId> targets,
      std::uint64_t seed, FaultInjector* injector = nullptr,
      const core::ContingencyTable* contingencies = nullptr,
      const core::MagusPlanner* replanner = nullptr) const;

  [[nodiscard]] const ExecutorOptions& options() const { return options_; }

 private:
  core::Evaluator* evaluator_;
  ExecutorOptions options_;
};

}  // namespace magus::exec
