#include "exec/journal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/checksum.h"

namespace magus::exec {

namespace {

constexpr std::uint64_t kMagic = 0x4D41475553574C31ULL;  // "MAGUSWL1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = sizeof(kMagic) + sizeof(kVersion);
// Record header: payload_size + type + sequence; trailer: checksum.
constexpr std::uint64_t kRecordHeaderBytes = 4 + 4 + 8;
constexpr std::uint64_t kRecordTrailerBytes = 8;
// Far above any real payload (configs of a few hundred sectors are ~KB);
// bounds memory when a torn length field reads as garbage.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

struct JournalMetrics {
  obs::Counter& appends;
  obs::Counter& append_bytes;
  obs::Counter& replays;
  obs::Counter& replayed_records;
  obs::Counter& torn_tails;

  [[nodiscard]] static JournalMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static JournalMetrics metrics{
        registry.counter("exec.journal.appends"),
        registry.counter("exec.journal.append_bytes"),
        registry.counter("exec.journal.replays"),
        registry.counter("exec.journal.replayed_records"),
        registry.counter("exec.journal.torn_tails"),
    };
    return metrics;
  }
};

[[nodiscard]] std::uint64_t record_checksum(std::uint32_t payload_size,
                                            std::uint32_t type,
                                            std::uint64_t sequence,
                                            std::span<const char> payload) {
  const std::uint32_t header32[] = {payload_size, type};
  std::uint64_t hash = util::fnv1a(header32, sizeof(header32));
  hash = util::fnv1a(&sequence, sizeof(sequence), hash);
  return util::fnv1a(payload.data(), payload.size(), hash);
}

}  // namespace

const char* journal_record_type_name(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kCampaignStart:
      return "campaign-start";
    case JournalRecordType::kUpgradeStart:
      return "upgrade-start";
    case JournalRecordType::kStepIntent:
      return "step-intent";
    case JournalRecordType::kFault:
      return "fault";
    case JournalRecordType::kRecovery:
      return "recovery";
    case JournalRecordType::kDeadlineSkip:
      return "deadline-skip";
    case JournalRecordType::kStepConfirm:
      return "step-confirm";
    case JournalRecordType::kQuarantine:
      return "quarantine";
    case JournalRecordType::kUpgradeEnd:
      return "upgrade-end";
    case JournalRecordType::kWindowEnd:
      return "window-end";
    case JournalRecordType::kCampaignEnd:
      return "campaign-end";
  }
  return "?";
}

Journal::Journal(std::string path, Mode mode) : path_(std::move(path)) {
  if (mode == Mode::kTruncate) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("Journal: cannot create " + path_);
    }
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    out.flush();
    if (!out) {
      throw std::runtime_error("Journal: cannot write header to " + path_);
    }
    return;
  }
  // kContinue: keep the longest valid prefix, chop any torn tail so the
  // next append starts at a record boundary.
  const Replay recovered = replay(path_);
  if (recovered.valid_bytes == 0) {
    // Missing or headerless file: start fresh.
    *this = Journal{path_, Mode::kTruncate};
    return;
  }
  if (recovered.file_bytes > recovered.valid_bytes) {
    std::filesystem::resize_file(path_, recovered.valid_bytes);
  }
  sequence_ = recovered.records.size();
}

void Journal::append(JournalRecordType type, std::vector<char> payload) {
  MAGUS_TRACE_SPAN("journal.append", "io.journal");
  if (sequence_ >= crash_after_) {
    throw JournalCrash{sequence_};
  }
  if (payload.size() > kMaxPayloadBytes) {
    throw std::runtime_error("Journal: payload too large");
  }
  const auto payload_size = static_cast<std::uint32_t>(payload.size());
  const auto type_raw = static_cast<std::uint32_t>(type);
  const std::uint64_t checksum =
      record_checksum(payload_size, type_raw, sequence_, payload);

  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("Journal: cannot open " + path_ +
                             " for append");
  }
  out.write(reinterpret_cast<const char*>(&payload_size),
            sizeof(payload_size));
  out.write(reinterpret_cast<const char*>(&type_raw), sizeof(type_raw));
  out.write(reinterpret_cast<const char*>(&sequence_), sizeof(sequence_));
  out.write(payload.data(),
            static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    throw std::runtime_error("Journal: write failed on " + path_);
  }
  ++sequence_;
  JournalMetrics& metrics = JournalMetrics::get();
  metrics.appends.add(1);
  metrics.append_bytes.add(kRecordHeaderBytes + payload.size() +
                           kRecordTrailerBytes);
}

Journal::Replay Journal::replay(const std::string& path) {
  JournalMetrics& metrics = JournalMetrics::get();
  metrics.replays.add(1);
  Replay result;

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    result.error = "journal missing or unreadable";
    return result;
  }
  const auto size = static_cast<std::uint64_t>(in.tellg());
  result.file_bytes = size;
  in.seekg(0);
  std::vector<char> bytes(size);
  if (size > 0) in.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!in) {
    result.error = "journal read failed";
    return result;
  }

  const auto tear = [&](const char* why) {
    result.torn_tail = true;
    result.error = why;
    metrics.torn_tails.add(1);
  };

  if (size < kHeaderBytes) {
    if (size > 0) tear("short header");
    return result;
  }
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::copy_n(bytes.data(), sizeof(magic), reinterpret_cast<char*>(&magic));
  std::copy_n(bytes.data() + sizeof(magic), sizeof(version),
              reinterpret_cast<char*>(&version));
  if (magic != kMagic || version != kVersion) {
    result.error = "bad journal magic or version";
    return result;
  }

  std::uint64_t off = kHeaderBytes;
  result.valid_bytes = off;
  while (off < size) {
    if (size - off < kRecordHeaderBytes) {
      tear("short record header");
      break;
    }
    std::uint32_t payload_size = 0;
    std::uint32_t type_raw = 0;
    std::uint64_t sequence = 0;
    std::copy_n(bytes.data() + off, sizeof(payload_size),
                reinterpret_cast<char*>(&payload_size));
    std::copy_n(bytes.data() + off + 4, sizeof(type_raw),
                reinterpret_cast<char*>(&type_raw));
    std::copy_n(bytes.data() + off + 8, sizeof(sequence),
                reinterpret_cast<char*>(&sequence));
    if (payload_size > kMaxPayloadBytes ||
        size - off - kRecordHeaderBytes <
            payload_size + kRecordTrailerBytes) {
      tear("short record body");
      break;
    }
    const std::span<const char> payload{
        bytes.data() + off + kRecordHeaderBytes, payload_size};
    std::uint64_t stored_checksum = 0;
    std::copy_n(bytes.data() + off + kRecordHeaderBytes + payload_size,
                sizeof(stored_checksum),
                reinterpret_cast<char*>(&stored_checksum));
    if (stored_checksum !=
        record_checksum(payload_size, type_raw, sequence, payload)) {
      tear("record checksum mismatch");
      break;
    }
    if (sequence != result.records.size()) {
      tear("record sequence gap");
      break;
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type_raw);
    record.sequence = sequence;
    record.payload.assign(payload.begin(), payload.end());
    result.records.push_back(std::move(record));
    off += kRecordHeaderBytes + payload_size + kRecordTrailerBytes;
    result.valid_bytes = off;
  }
  metrics.replayed_records.add(result.records.size());
  return result;
}

// ---- Payload encoding ----------------------------------------------------

void PayloadWriter::sectors(std::span<const net::SectorId> ids) {
  u32(static_cast<std::uint32_t>(ids.size()));
  for (const net::SectorId id : ids) i32(id);
}

void PayloadWriter::config(const net::Configuration& config) {
  u32(static_cast<std::uint32_t>(config.size()));
  for (std::size_t i = 0; i < config.size(); ++i) {
    const net::SectorSetting& s = config[static_cast<net::SectorId>(i)];
    f64(s.power_dbm);
    i32(s.tilt);
    b(s.active);
  }
}

void PayloadWriter::rng_state(const std::array<std::uint64_t, 4>& state) {
  for (const std::uint64_t word : state) u64(word);
}

std::vector<net::SectorId> PayloadReader::sectors() {
  const std::uint32_t count = u32();
  std::vector<net::SectorId> ids;
  ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ids.push_back(i32());
  return ids;
}

net::Configuration PayloadReader::config() {
  const std::uint32_t count = u32();
  net::Configuration config{count};
  for (std::uint32_t i = 0; i < count; ++i) {
    net::SectorSetting& s = config[static_cast<net::SectorId>(i)];
    s.power_dbm = f64();
    s.tilt = static_cast<radio::TiltIndex>(i32());
    s.active = b();
  }
  return config;
}

std::array<std::uint64_t, 4> PayloadReader::rng_state() {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) word = u64();
  return state;
}

}  // namespace magus::exec
