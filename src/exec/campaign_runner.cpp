#include "exec/campaign_runner.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "traffic/window_planner.h"

namespace magus::exec {

namespace {

struct CampaignMetrics {
  obs::Counter& campaigns;
  obs::Counter& campaign_resumes;
  obs::Counter& upgrades_executed;
  obs::Counter& upgrades_replayed;
  obs::Counter& upgrades_skipped;

  [[nodiscard]] static CampaignMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static CampaignMetrics metrics{
        registry.counter("exec.campaign.runs"),
        registry.counter("exec.campaign.resumes"),
        registry.counter("exec.campaign.upgrades_executed"),
        registry.counter("exec.campaign.upgrades_replayed"),
        registry.counter("exec.campaign.upgrades_skipped"),
    };
    return metrics;
  }
};

[[nodiscard]] std::vector<char> campaign_start_payload(
    std::uint64_t seed, std::uint64_t upgrade_count,
    std::uint64_t window_count, bool resumed) {
  PayloadWriter w;
  w.u64(seed);
  w.u64(upgrade_count);
  w.u64(window_count);
  w.b(resumed);
  return w.take();
}

void append_upgrade_end(Journal& journal, const UpgradeResult& entry,
                        const net::Configuration& final_config) {
  PayloadWriter w;
  w.u64(entry.upgrade);
  w.u64(entry.window);
  w.u8(static_cast<std::uint8_t>(entry.outcome));
  w.b(entry.trace.completed);
  w.b(entry.trace.rolled_back);
  w.f64(entry.trace.floor_utility);
  w.f64(entry.trace.final_utility);
  w.f64(entry.trace.makespan_s);
  w.sectors(entry.trace.quarantined_sectors);
  w.config(final_config);
  journal.append(JournalRecordType::kUpgradeEnd, w.take());
}

/// Rebuilds a finished upgrade's result from its kUpgradeEnd record plus
/// the step records between its start and end — the resume path's
/// replacement for re-executing it.
[[nodiscard]] UpgradeResult decode_upgrade_end(
    const JournalRecord& record, std::span<const JournalRecord> step_records) {
  PayloadReader r{record.payload};
  UpgradeResult out;
  out.upgrade = static_cast<std::size_t>(r.u64());
  out.window = static_cast<std::size_t>(r.u64());
  out.outcome = static_cast<UpgradeOutcome>(r.u8());
  const bool completed = r.b();
  const bool rolled_back = r.b();
  const double floor_utility = r.f64();
  const double final_utility = r.f64();
  const double makespan_s = r.f64();
  std::vector<net::SectorId> quarantined = r.sectors();
  (void)r.config();  // final configuration: diagnostics, not resume state
  if (out.outcome == UpgradeOutcome::kSkippedQuarantined) return out;

  WindowResumeState state = recover_window_state(step_records);
  ExecutionTrace& trace = out.trace;
  trace.steps = std::move(state.steps);
  trace.fault_events = std::move(state.fault_events);
  trace.failed_sectors = std::move(state.failed);
  trace.quarantined_sectors = std::move(quarantined);
  trace.signaling = state.signaling;
  trace.retries = state.retries;
  trace.contingency_applies = state.contingency_applies;
  trace.replans = state.replans;
  trace.rollbacks = state.rollbacks;
  trace.floor_violations = state.floor_violations;
  trace.deadline_skips = state.deadline_skips;
  trace.completed = completed;
  trace.rolled_back = rolled_back;
  trace.floor_utility = floor_utility;
  trace.final_utility = final_utility;
  trace.makespan_s = makespan_s;
  for (const StepRecord& rec : trace.steps) {
    trace.total_lost_service_ue_seconds += rec.lost_service_ue_seconds;
  }
  return out;
}

}  // namespace

const char* upgrade_outcome_name(UpgradeOutcome outcome) {
  switch (outcome) {
    case UpgradeOutcome::kCompleted:
      return "completed";
    case UpgradeOutcome::kRolledBack:
      return "rolled_back";
    case UpgradeOutcome::kSkippedQuarantined:
      return "skipped_quarantined";
  }
  return "?";
}

std::uint64_t upgrade_seed(std::uint64_t campaign_seed,
                           std::size_t upgrade_index) {
  std::uint64_t z = campaign_seed + 0x9E3779B97F4A7C15ULL *
                                        (static_cast<std::uint64_t>(
                                             upgrade_index) +
                                         1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

util::JsonObject CampaignResult::to_json() const {
  util::JsonObject out;
  out.set("completed", completed);
  out.set("windows_total", static_cast<std::int64_t>(windows_total));
  out.set("windows_completed", static_cast<std::int64_t>(windows_completed));
  out.set("resumes", static_cast<std::int64_t>(resumes));
  out.set("quarantine_events", static_cast<std::int64_t>(quarantine_events));
  out.set("deadline_skips", static_cast<std::int64_t>(deadline_skips));

  std::int64_t completed_count = 0;
  std::int64_t rolled_back_count = 0;
  std::int64_t skipped_count = 0;
  std::int64_t retries = 0;
  std::int64_t contingency_applies = 0;
  std::int64_t replans = 0;
  std::int64_t rollbacks = 0;
  for (const UpgradeResult& entry : upgrades) {
    switch (entry.outcome) {
      case UpgradeOutcome::kCompleted:
        ++completed_count;
        break;
      case UpgradeOutcome::kRolledBack:
        ++rolled_back_count;
        break;
      case UpgradeOutcome::kSkippedQuarantined:
        ++skipped_count;
        break;
    }
    retries += entry.trace.retries;
    contingency_applies += entry.trace.contingency_applies;
    replans += entry.trace.replans;
    rollbacks += entry.trace.rollbacks;
  }
  out.set("upgrades_completed", completed_count);
  out.set("upgrades_rolled_back", rolled_back_count);
  out.set("upgrades_skipped_quarantined", skipped_count);
  out.set("retries", retries);
  out.set("contingency_applies", contingency_applies);
  out.set("replans", replans);
  out.set("rollbacks", rollbacks);

  util::JsonArray fenced;
  for (const net::SectorId s : quarantined_sectors) {
    fenced.push_back(static_cast<std::int64_t>(s));
  }
  out.set("quarantined_sectors", std::move(fenced));

  util::JsonArray entries;
  for (const UpgradeResult& entry : upgrades) {
    util::JsonObject item;
    item.set("upgrade", static_cast<std::int64_t>(entry.upgrade));
    item.set("window", static_cast<std::int64_t>(entry.window));
    item.set("outcome", upgrade_outcome_name(entry.outcome));
    item.set("resumed", entry.resumed);
    if (entry.outcome != UpgradeOutcome::kSkippedQuarantined) {
      item.set("trace", entry.trace.to_json());
    }
    entries.push_back(std::move(item));
  }
  out.set("upgrades", std::move(entries));
  return out;
}

CampaignRunner::CampaignRunner(core::Evaluator* evaluator,
                               const core::MagusPlanner* planner,
                               CampaignOptions options)
    : evaluator_(evaluator), planner_(planner), options_(options) {
  if (evaluator_ == nullptr || planner_ == nullptr) {
    throw std::invalid_argument(
        "CampaignRunner: evaluator and planner must not be null");
  }
  if (options_.window_utilization <= 0.0 ||
      options_.window_utilization > 1.0) {
    throw std::invalid_argument(
        "CampaignRunner: window_utilization outside (0, 1]");
  }
}

CampaignResult CampaignRunner::run(
    std::span<const traffic::PlannedUpgrade> upgrades,
    const traffic::CampaignSchedule& schedule, const CampaignEnv& env) const {
  MAGUS_TRACE_SPAN("exec.campaign", "exec");
  CampaignMetrics& metrics = CampaignMetrics::get();
  CampaignResult result;
  result.windows_total = schedule.window_count();
  SectorQuarantine quarantine{options_.quarantine};

  // The quarantine set each window sees is snapshotted at the window's
  // *first* upgrade — breaker trips mid-window take effect next window.
  // Replay mirrors the snapshot point (the first kUpgradeStart of the
  // window) so a resumed campaign re-derives the identical fencing.
  std::size_t snap_window = static_cast<std::size_t>(-1);
  std::vector<net::SectorId> snap_active;
  const auto active_for_window =
      [&](std::size_t w) -> const std::vector<net::SectorId>& {
    if (w != snap_window) {
      snap_active = quarantine.active(w);
      snap_window = w;
    }
    return snap_active;
  };

  // Fault attribution happens once per finished upgrade, from its trace's
  // flattened fault events — identical whether the trace was executed live
  // or rebuilt from the journal, which is what makes resume deterministic.
  const auto feed_quarantine = [&](const ExecutionTrace& trace,
                                   std::size_t window, Journal* journal) {
    std::map<net::SectorId, int> counts;
    for (const FaultEvent& event : trace.fault_events) {
      if (event.sector != net::kInvalidSector) ++counts[event.sector];
    }
    for (const auto& [sector, count] : counts) {
      if (quarantine.record_faults(sector, count, window) &&
          journal != nullptr) {
        PayloadWriter w;
        w.i32(sector);
        w.u64(window);
        w.u64(window + quarantine.options().cooloff_windows);
        journal->append(JournalRecordType::kQuarantine, w.take());
      }
    }
  };

  // ---- Replay phase: rebuild campaign state from recovered records ----
  std::map<std::size_t, UpgradeResult> replayed;
  std::set<std::size_t> windows_ended;
  bool campaign_ended = false;
  bool upgrade_open = false;
  std::size_t open_upgrade = 0;
  std::size_t open_window = 0;
  std::size_t open_begin = 0;
  std::optional<WindowResumeState> inflight_state;
  std::size_t inflight_upgrade = 0;
  std::size_t inflight_window = 0;

  const std::span<const JournalRecord> recovered = env.recovered;
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    const JournalRecord& record = recovered[i];
    switch (record.type) {
      case JournalRecordType::kCampaignStart: {
        PayloadReader r{record.payload};
        const std::uint64_t seed = r.u64();
        const std::uint64_t upgrade_count = r.u64();
        const std::uint64_t window_count = r.u64();
        const bool was_resume = r.b();
        if (seed != options_.seed || upgrade_count != upgrades.size() ||
            window_count != schedule.window_count()) {
          throw std::runtime_error(
              "CampaignRunner: journal does not match this campaign");
        }
        if (was_resume) ++result.resumes;
        break;
      }
      case JournalRecordType::kUpgradeStart: {
        PayloadReader r{record.payload};
        const auto u = static_cast<std::size_t>(r.u64());
        const auto w = static_cast<std::size_t>(r.u64());
        const std::uint64_t seed = r.u64();
        if (u >= upgrades.size() || w >= schedule.window_count() ||
            seed != upgrade_seed(options_.seed, u)) {
          throw std::runtime_error(
              "CampaignRunner: journal upgrade does not match this campaign");
        }
        (void)active_for_window(w);
        upgrade_open = true;
        open_upgrade = u;
        open_window = w;
        open_begin = i + 1;
        break;
      }
      case JournalRecordType::kUpgradeEnd: {
        if (!upgrade_open) {
          throw std::runtime_error(
              "CampaignRunner: journal upgrade-end without start");
        }
        UpgradeResult done = decode_upgrade_end(
            record, recovered.subspan(open_begin, i - open_begin));
        if (done.upgrade != open_upgrade || done.window != open_window) {
          throw std::runtime_error(
              "CampaignRunner: journal upgrade-end does not match start");
        }
        if (done.outcome != UpgradeOutcome::kSkippedQuarantined) {
          feed_quarantine(done.trace, done.window, nullptr);
        }
        metrics.upgrades_replayed.add(1);
        replayed.emplace(done.upgrade, std::move(done));
        upgrade_open = false;
        break;
      }
      case JournalRecordType::kQuarantine:
        // Observability only: the breaker state is re-derived from the
        // fault events fed at each kUpgradeEnd.
        break;
      case JournalRecordType::kWindowEnd: {
        PayloadReader r{record.payload};
        windows_ended.insert(static_cast<std::size_t>(r.u64()));
        break;
      }
      case JournalRecordType::kCampaignEnd:
        campaign_ended = true;
        break;
      default:
        // Executor step records inside the open upgrade's span.
        break;
    }
  }
  if (upgrade_open) {
    inflight_upgrade = open_upgrade;
    inflight_window = open_window;
    inflight_state = recover_window_state(recovered.subspan(open_begin));
  }
  metrics.campaigns.add(1);
  if (!recovered.empty()) {
    ++result.resumes;
    metrics.campaign_resumes.add(1);
  }
  if (env.journal != nullptr && !campaign_ended) {
    env.journal->append(
        JournalRecordType::kCampaignStart,
        campaign_start_payload(options_.seed, upgrades.size(),
                               schedule.window_count(), !recovered.empty()));
  }

  // ---- Execution phase ----
  const MigrationExecutor executor{evaluator_, options_.executor};
  for (std::size_t w = 0; w < schedule.window_count(); ++w) {
    for (const std::size_t u : schedule.windows[w]) {
      if (const auto it = replayed.find(u); it != replayed.end()) {
        result.upgrades.push_back(std::move(it->second));
        continue;
      }
      const std::vector<net::SectorId>& quarantined_now =
          active_for_window(w);
      const traffic::PlannedUpgrade& spec = upgrades[u];
      UpgradeResult entry;
      entry.upgrade = u;
      entry.window = w;

      if (traffic::targets_quarantined(spec, quarantined_now)) {
        // A fenced-off target cannot be upgraded this campaign: skip it
        // instead of pushing configuration at dead equipment.
        entry.outcome = UpgradeOutcome::kSkippedQuarantined;
        metrics.upgrades_skipped.add(1);
        if (env.journal != nullptr) {
          PayloadWriter pw;
          pw.u64(u);
          pw.u64(w);
          pw.u64(upgrade_seed(options_.seed, u));
          env.journal->append(JournalRecordType::kUpgradeStart, pw.take());
          append_upgrade_end(*env.journal, entry,
                             evaluator_->model().configuration());
        }
        result.upgrades.push_back(std::move(entry));
        continue;
      }

      const bool resuming =
          inflight_state.has_value() && inflight_upgrade == u;
      if (resuming && inflight_window != w) {
        throw std::runtime_error(
            "CampaignRunner: in-flight upgrade recovered in wrong window");
      }
      if (!resuming && env.journal != nullptr) {
        PayloadWriter pw;
        pw.u64(u);
        pw.u64(w);
        pw.u64(upgrade_seed(options_.seed, u));
        env.journal->append(JournalRecordType::kUpgradeStart, pw.take());
      }

      // The plan is recomputed on the reduced sector set; a resumed
      // campaign re-derives the identical plan because the quarantine
      // snapshot, targets, and model inputs are identical.
      const core::MitigationPlan plan =
          planner_->plan_upgrade(spec.targets, quarantined_now);
      std::unique_ptr<FaultInjector> injector;
      if (env.injector_factory) injector = env.injector_factory(u);

      ExecutionEnv xenv;
      xenv.injector = injector.get();
      xenv.contingencies = env.contingencies;
      xenv.replanner = planner_;
      xenv.journal = env.journal;
      if (options_.enforce_deadline) {
        xenv.time_budget_s = traffic::window_time_budget_s(
            spec.duration_hours, options_.window_utilization);
      }
      xenv.quarantined = quarantined_now;
      if (resuming) xenv.resume = &*inflight_state;

      entry.resumed = resuming;
      entry.trace = executor.execute(plan.gradual, plan.targets,
                                     upgrade_seed(options_.seed, u), xenv);
      if (resuming) inflight_state.reset();
      entry.outcome = entry.trace.rolled_back ? UpgradeOutcome::kRolledBack
                                              : UpgradeOutcome::kCompleted;
      metrics.upgrades_executed.add(1);
      feed_quarantine(entry.trace, w, env.journal);
      if (env.journal != nullptr) {
        append_upgrade_end(*env.journal, entry,
                           evaluator_->model().configuration());
      }
      result.upgrades.push_back(std::move(entry));
    }
    if (env.journal != nullptr && !windows_ended.contains(w)) {
      PayloadWriter pw;
      pw.u64(w);
      env.journal->append(JournalRecordType::kWindowEnd, pw.take());
    }
    ++result.windows_completed;
  }
  if (env.journal != nullptr && !campaign_ended) {
    env.journal->append(JournalRecordType::kCampaignEnd, {});
  }

  result.completed = true;
  result.quarantine_events = quarantine.quarantine_events();
  result.quarantined_sectors = quarantine.ever_quarantined();
  for (const UpgradeResult& entry : result.upgrades) {
    result.deadline_skips += entry.trace.deadline_skips;
  }
  return result;
}

}  // namespace magus::exec
