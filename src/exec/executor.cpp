#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/search_types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace magus::exec {

namespace {

struct ExecMetrics {
  obs::Counter& windows;
  obs::Counter& steps;
  obs::Counter& retries;
  obs::Counter& contingency_applies;
  obs::Counter& replans;
  obs::Counter& rollbacks;
  obs::Counter& fault_injections;
  obs::Counter& floor_violations;
  obs::Counter& deadline_skips;
  obs::Counter& resumed_windows;
  obs::Histogram& step_duration_s;  ///< simulated wall-clock per step
  obs::Histogram& push_attempts;

  [[nodiscard]] static ExecMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static ExecMetrics metrics{
        registry.counter("exec.windows"),
        registry.counter("exec.steps"),
        registry.counter("exec.retries"),
        registry.counter("exec.contingency_applies"),
        registry.counter("exec.replans"),
        registry.counter("exec.rollbacks"),
        registry.counter("exec.fault_injections"),
        registry.counter("exec.floor_violations"),
        registry.counter("exec.deadline_skips"),
        registry.counter("exec.resumed_windows"),
        registry.histogram("exec.step_duration_s",
                           obs::exponential_bounds(1.0, 2.0, 12)),
        registry.histogram("exec.push_attempts",
                           obs::exponential_bounds(1.0, 2.0, 6)),
    };
    return metrics;
  }
};

[[nodiscard]] double band(double reference, double tolerance) {
  return tolerance * std::max(std::abs(reference), 1e-9);
}

/// The step configuration with every known-failed sector forced off-air:
/// plan steps were computed before the fault and would otherwise resurrect
/// a dead sector on the next push.
[[nodiscard]] net::Configuration masked(
    net::Configuration config, std::span<const net::SectorId> failed) {
  for (const net::SectorId s : failed) {
    config[s].active = false;
  }
  return config;
}

void sort_unique(std::vector<net::SectorId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

[[nodiscard]] util::JsonObject fault_json(const FaultEvent& event) {
  util::JsonObject out;
  out.set("kind", fault_kind_name(event.kind));
  out.set("step", static_cast<std::int64_t>(event.step));
  out.set("sector", static_cast<std::int64_t>(event.sector));
  if (event.kind == FaultKind::kHandoverFailure) {
    out.set("handover_failure_probability",
            event.handover_failure_probability);
  }
  if (event.kind == FaultKind::kConfigPushReject) {
    out.set("reject_attempts", static_cast<std::int64_t>(event.reject_attempts));
  }
  return out;
}

[[nodiscard]] util::JsonObject signaling_json(
    const sim::SignalingCounters& counters) {
  util::JsonObject out;
  out.set("measurement_reports", counters.measurement_reports);
  out.set("handover_requests", counters.handover_requests);
  out.set("handover_acks", counters.handover_acks);
  out.set("rrc_messages", counters.rrc_messages);
  out.set("path_switches", counters.path_switches);
  out.set("reattach_attempts", counters.reattach_attempts);
  out.set("failed_procedures", counters.failed_procedures);
  out.set("retried_procedures", counters.retried_procedures);
  out.set("total", counters.total());
  return out;
}

// ---- Journal payload codecs ----------------------------------------------

void encode_fault(PayloadWriter& w, const FaultEvent& event) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.i32(event.step);
  w.i32(event.sector);
  w.f64(event.handover_failure_probability);
  w.i32(event.reject_attempts);
}

[[nodiscard]] FaultEvent decode_fault(PayloadReader& r) {
  FaultEvent event;
  event.kind = static_cast<FaultKind>(r.u8());
  event.step = r.i32();
  event.sector = r.i32();
  event.handover_failure_probability = r.f64();
  event.reject_attempts = r.i32();
  return event;
}

void encode_step_record(PayloadWriter& w, const StepRecord& rec) {
  w.i32(rec.step);
  w.u8(static_cast<std::uint8_t>(rec.status));
  w.u32(static_cast<std::uint32_t>(rec.faults.size()));
  for (const FaultEvent& event : rec.faults) encode_fault(w, event);
  w.u32(static_cast<std::uint32_t>(rec.actions.size()));
  for (const RecoveryAction action : rec.actions) {
    w.u8(static_cast<std::uint8_t>(action));
  }
  w.f64(rec.planned_utility);
  w.f64(rec.realized_utility);
  w.f64(rec.utility_after_recovery);
  w.b(rec.floor_violated);
  w.i32(rec.push_attempts);
  w.f64(rec.backoff_wait_s);
  w.f64(rec.seamless_ues);
  w.f64(rec.hard_ues);
  w.f64(rec.lost_service_ues);
  w.f64(rec.handover_failures);
  w.f64(rec.handover_retries);
  w.f64(rec.lost_service_ue_seconds);
}

[[nodiscard]] StepRecord decode_step_record(PayloadReader& r) {
  StepRecord rec;
  rec.step = r.i32();
  rec.status = static_cast<StepStatus>(r.u8());
  const std::uint32_t fault_count = r.u32();
  rec.faults.reserve(fault_count);
  for (std::uint32_t i = 0; i < fault_count; ++i) {
    rec.faults.push_back(decode_fault(r));
  }
  const std::uint32_t action_count = r.u32();
  rec.actions.reserve(action_count);
  for (std::uint32_t i = 0; i < action_count; ++i) {
    rec.actions.push_back(static_cast<RecoveryAction>(r.u8()));
  }
  rec.planned_utility = r.f64();
  rec.realized_utility = r.f64();
  rec.utility_after_recovery = r.f64();
  rec.floor_violated = r.b();
  rec.push_attempts = r.i32();
  rec.backoff_wait_s = r.f64();
  rec.seamless_ues = r.f64();
  rec.hard_ues = r.f64();
  rec.lost_service_ues = r.f64();
  rec.handover_failures = r.f64();
  rec.handover_retries = r.f64();
  rec.lost_service_ue_seconds = r.f64();
  return rec;
}

void encode_signaling(PayloadWriter& w, const sim::SignalingCounters& c) {
  w.f64(c.measurement_reports);
  w.f64(c.handover_requests);
  w.f64(c.handover_acks);
  w.f64(c.rrc_messages);
  w.f64(c.path_switches);
  w.f64(c.reattach_attempts);
  w.f64(c.failed_procedures);
  w.f64(c.retried_procedures);
}

[[nodiscard]] sim::SignalingCounters decode_signaling(PayloadReader& r) {
  sim::SignalingCounters c;
  c.measurement_reports = r.f64();
  c.handover_requests = r.f64();
  c.handover_acks = r.f64();
  c.rrc_messages = r.f64();
  c.path_switches = r.f64();
  c.reattach_attempts = r.f64();
  c.failed_procedures = r.f64();
  c.retried_procedures = r.f64();
  return c;
}

}  // namespace

const char* recovery_action_name(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kRetry:
      return "retry";
    case RecoveryAction::kContingency:
      return "contingency";
    case RecoveryAction::kReplan:
      return "replan";
    case RecoveryAction::kRollback:
      return "rollback";
    case RecoveryAction::kDeadlineSkip:
      return "deadline_skip";
  }
  return "?";
}

const char* step_status_name(StepStatus status) {
  switch (status) {
    case StepStatus::kApplied:
      return "applied";
    case StepStatus::kRecovered:
      return "recovered";
    case StepStatus::kReplanned:
      return "replanned";
    case StepStatus::kRolledBack:
      return "rolled_back";
  }
  return "?";
}

util::JsonObject ExecutionTrace::to_json() const {
  util::JsonObject out;
  out.set("completed", completed);
  out.set("rolled_back", rolled_back);
  out.set("floor_utility", floor_utility);
  out.set("final_utility", final_utility);
  out.set("total_lost_service_ue_seconds", total_lost_service_ue_seconds);
  out.set("makespan_s", makespan_s);
  out.set("retries", static_cast<std::int64_t>(retries));
  out.set("contingency_applies", static_cast<std::int64_t>(contingency_applies));
  out.set("replans", static_cast<std::int64_t>(replans));
  out.set("rollbacks", static_cast<std::int64_t>(rollbacks));
  out.set("floor_violations", static_cast<std::int64_t>(floor_violations));
  out.set("deadline_skips", static_cast<std::int64_t>(deadline_skips));
  out.set("recovery_action_count",
          static_cast<std::int64_t>(recovery_action_count()));

  util::JsonArray failed;
  for (const net::SectorId s : failed_sectors) {
    failed.push_back(static_cast<std::int64_t>(s));
  }
  out.set("failed_sectors", std::move(failed));

  util::JsonArray quarantined;
  for (const net::SectorId s : quarantined_sectors) {
    quarantined.push_back(static_cast<std::int64_t>(s));
  }
  out.set("quarantined_sectors", std::move(quarantined));

  util::JsonArray faults;
  for (const FaultEvent& event : fault_events) {
    faults.push_back(fault_json(event));
  }
  out.set("fault_events", std::move(faults));

  out.set("signaling", signaling_json(signaling));

  util::JsonArray step_records;
  for (const StepRecord& rec : steps) {
    util::JsonObject step;
    step.set("step", static_cast<std::int64_t>(rec.step));
    step.set("status", step_status_name(rec.status));
    util::JsonArray step_faults;
    for (const FaultEvent& event : rec.faults) {
      step_faults.push_back(fault_json(event));
    }
    step.set("faults", std::move(step_faults));
    util::JsonArray actions;
    for (const RecoveryAction action : rec.actions) {
      actions.push_back(recovery_action_name(action));
    }
    step.set("actions", std::move(actions));
    step.set("planned_utility", rec.planned_utility);
    step.set("realized_utility", rec.realized_utility);
    step.set("utility_after_recovery", rec.utility_after_recovery);
    step.set("floor_violated", rec.floor_violated);
    step.set("push_attempts", static_cast<std::int64_t>(rec.push_attempts));
    step.set("backoff_wait_s", rec.backoff_wait_s);
    step.set("seamless_ues", rec.seamless_ues);
    step.set("hard_ues", rec.hard_ues);
    step.set("lost_service_ues", rec.lost_service_ues);
    step.set("handover_failures", rec.handover_failures);
    step.set("handover_retries", rec.handover_retries);
    step.set("lost_service_ue_seconds", rec.lost_service_ue_seconds);
    step_records.push_back(std::move(step));
  }
  out.set("steps", std::move(step_records));
  return out;
}

WindowResumeState recover_window_state(
    std::span<const JournalRecord> records) {
  WindowResumeState state;
  for (const JournalRecord& record : records) {
    // Only confirms carry state. The intent/fault/recovery records of an
    // unconfirmed step are deliberately skipped: that step re-executes
    // deterministically from the previous confirm's checkpoint.
    if (record.type != JournalRecordType::kStepConfirm) continue;
    PayloadReader r{record.payload};
    StepRecord rec = decode_step_record(r);
    for (const FaultEvent& event : rec.faults) {
      state.fault_events.push_back(event);
    }
    state.steps.push_back(std::move(rec));
    state.failed = r.sectors();
    state.live_config = r.config();
    state.last_safe = r.config();
    state.rng_state = r.rng_state();
    state.clock_s = r.f64();
    state.effective_floor = r.f64();
    state.finish_mode = r.b();
    state.aborted = r.b();
    state.replanned = r.b();
    state.next_k = r.u64();
    state.signaling = decode_signaling(r);
    state.retries = r.i32();
    state.contingency_applies = r.i32();
    state.replans = r.i32();
    state.rollbacks = r.i32();
    state.floor_violations = r.i32();
    state.deadline_skips = r.i32();
    if (!r.done()) {
      throw std::runtime_error("recover_window_state: trailing bytes");
    }
    state.has_progress = true;
  }
  return state;
}

MigrationExecutor::MigrationExecutor(core::Evaluator* evaluator,
                                     ExecutorOptions options)
    : evaluator_(evaluator), options_(options) {
  if (evaluator_ == nullptr) {
    throw std::invalid_argument("MigrationExecutor: evaluator must not be null");
  }
  if (options_.utility_tolerance < 0.0) {
    throw std::invalid_argument("MigrationExecutor: negative tolerance");
  }
  if (options_.step_interval_s <= 0.0) {
    throw std::invalid_argument("MigrationExecutor: step interval must be > 0");
  }
  if (options_.contingency_cost_s < 0.0 || options_.replan_cost_s < 0.0) {
    throw std::invalid_argument("MigrationExecutor: negative rung cost");
  }
}

ExecutionTrace MigrationExecutor::execute(
    const core::GradualPlan& plan, std::span<const net::SectorId> targets,
    std::uint64_t seed, FaultInjector* injector,
    const core::ContingencyTable* contingencies,
    const core::MagusPlanner* replanner) const {
  ExecutionEnv env;
  env.injector = injector;
  env.contingencies = contingencies;
  env.replanner = replanner;
  return execute(plan, targets, seed, env);
}

ExecutionTrace MigrationExecutor::execute(const core::GradualPlan& plan,
                                          std::span<const net::SectorId> targets,
                                          std::uint64_t seed,
                                          const ExecutionEnv& env) const {
  if (plan.steps.empty()) {
    throw std::invalid_argument("MigrationExecutor: empty plan");
  }
  MAGUS_TRACE_SPAN("exec.execute", "exec");
  ExecMetrics& metrics = ExecMetrics::get();
  metrics.windows.add(1);
  model::AnalysisModel& model = evaluator_->model();
  const double tol = options_.utility_tolerance;

  ExecutionTrace trace;
  trace.floor_utility = plan.floor_utility;
  trace.quarantined_sectors.assign(env.quarantined.begin(),
                                   env.quarantined.end());
  sort_unique(trace.quarantined_sectors);

  // Entry state: the plan's C_before. The planner leaves the model at
  // C_after, so re-arm it explicitly; the UE density stays as frozen. The
  // baseline rates are captured here even when resuming — they are a
  // function of the entry configuration, so re-deriving them beats
  // journaling them.
  model.set_configuration(plan.steps.front().config);
  const std::vector<double> baseline_rates = core::capture_rates(model);
  net::Configuration last_safe = plan.steps.front().config;

  util::Xoshiro256ss rng{seed};
  std::vector<net::SectorId> failed;  // unplanned outages so far, sorted
  double clock_s = 0.0;
  // After a successful contingency apply the remaining ramp is stale; the
  // executor switches to finish mode and completes with one masked push of
  // the stored configuration. effective_floor is the rebased expectation.
  bool finish_mode = false;
  bool completion_pending = false;
  double effective_floor = plan.floor_utility;
  bool aborted = false;
  bool replanned = false;
  const std::size_t n = plan.steps.size();
  std::size_t k = 1;

  if (env.resume != nullptr && env.resume->has_progress) {
    // Re-enter exactly where the last confirmed step left the window. The
    // journal's checkpoint carries everything downstream of the entry
    // state; a confirmed configuration is restored, never re-pushed.
    const WindowResumeState& rs = *env.resume;
    metrics.resumed_windows.add(1);
    trace.steps = rs.steps;
    trace.fault_events = rs.fault_events;
    trace.signaling = rs.signaling;
    trace.retries = rs.retries;
    trace.contingency_applies = rs.contingency_applies;
    trace.replans = rs.replans;
    trace.rollbacks = rs.rollbacks;
    trace.floor_violations = rs.floor_violations;
    trace.deadline_skips = rs.deadline_skips;
    trace.resumed_steps = static_cast<int>(rs.steps.size());
    failed = rs.failed;
    clock_s = rs.clock_s;
    effective_floor = rs.effective_floor;
    finish_mode = rs.finish_mode;
    aborted = rs.aborted;
    replanned = rs.replanned;
    k = rs.next_k;
    model.set_configuration(rs.live_config);
    last_safe = rs.last_safe;
    rng.set_state(rs.rng_state);
    // Positional injectors (RandomFaultInjector draws one batch per poll)
    // must be wound forward through the confirmed steps so the next poll
    // lands where the original run's would have.
    if (env.injector != nullptr) {
      for (const StepRecord& rec : rs.steps) {
        (void)env.injector->faults_for_step(rec.step);
      }
    }
  }

  std::vector<net::SectorId> prev_service = model.service_map();

  // Quarantined sectors are pinned: every push holds their live settings.
  // Migration targets are exempt — a quarantined target is the campaign
  // layer's problem (it skips the upgrade), not a pinning concern.
  std::vector<net::SectorId> pinned(env.quarantined.begin(),
                                    env.quarantined.end());
  {
    std::vector<net::SectorId> sorted_targets(targets.begin(), targets.end());
    std::sort(sorted_targets.begin(), sorted_targets.end());
    std::erase_if(pinned, [&](net::SectorId s) {
      return std::binary_search(sorted_targets.begin(), sorted_targets.end(),
                                s);
    });
  }
  sort_unique(pinned);
  const auto pin_quarantined = [&](net::Configuration config) {
    const net::Configuration& live = model.configuration();
    for (const net::SectorId q : pinned) config[q] = live[q];
    return config;
  };

  // Deadline watchdog: a ladder rung only runs when its worst-case cost
  // still fits the remaining simulated budget. Rollback is the safety rung
  // and is never gated.
  const double budget = env.time_budget_s;
  const auto rung_fits = [&](double worst_cost) {
    return budget <= 0.0 || clock_s + worst_cost <= budget;
  };

  while (k < n && !aborted && !replanned) {
    MAGUS_TRACE_SPAN("exec.step", "exec");
    metrics.steps.add(1);
    const double step_clock_start = clock_s;
    StepRecord rec;
    rec.step = static_cast<int>(k);
    rec.planned_utility = plan.steps[k].utility;

    if (env.journal != nullptr) {
      PayloadWriter w;
      w.i32(rec.step);
      w.b(finish_mode);
      w.f64(clock_s);
      env.journal->append(JournalRecordType::kStepIntent, w.take());
    }
    const auto journal_recovery = [&](RecoveryAction action) {
      if (env.journal == nullptr) return;
      PayloadWriter w;
      w.i32(rec.step);
      w.u8(static_cast<std::uint8_t>(action));
      env.journal->append(JournalRecordType::kRecovery, w.take());
    };
    const auto skip_rung = [&](RecoveryAction rung, double worst_cost) {
      rec.actions.push_back(RecoveryAction::kDeadlineSkip);
      ++trace.deadline_skips;
      metrics.deadline_skips.add(1);
      if (env.journal != nullptr) {
        PayloadWriter w;
        w.i32(rec.step);
        w.u8(static_cast<std::uint8_t>(rung));
        w.f64(worst_cost);
        w.f64(budget - clock_s);
        env.journal->append(JournalRecordType::kDeadlineSkip, w.take());
      }
    };

    // ---- Faults striking this step ----
    double storm_probability = 0.0;
    int rejects_remaining = 0;
    if (env.injector != nullptr) {
      for (const FaultEvent& event :
           env.injector->faults_for_step(static_cast<int>(k))) {
        rec.faults.push_back(event);
        trace.fault_events.push_back(event);
        if (env.journal != nullptr) {
          PayloadWriter w;
          encode_fault(w, event);
          env.journal->append(JournalRecordType::kFault, w.take());
        }
        switch (event.kind) {
          case FaultKind::kSectorOutage:
            if (event.sector != net::kInvalidSector &&
                !std::binary_search(failed.begin(), failed.end(),
                                    event.sector)) {
              model.set_active(event.sector, false);
              failed.push_back(event.sector);
              sort_unique(failed);
            }
            break;
          case FaultKind::kHandoverFailure:
            storm_probability = std::max(
                storm_probability, event.handover_failure_probability);
            break;
          case FaultKind::kConfigPushReject:
            rejects_remaining += std::max(1, event.reject_attempts);
            break;
        }
      }
    }
    const bool structural = !failed.empty();

    // ---- Configuration push (with backoff against OSS rejects) ----
    net::Configuration intended;
    if (finish_mode) {
      // Completion push: hold the contingency configuration, take the
      // migration targets (and everything failed) off-air.
      intended = model.configuration();
      for (const net::SectorId t : targets) intended[t].active = false;
      intended = masked(std::move(intended), failed);
    } else {
      intended = masked(pin_quarantined(plan.steps[k].config), failed);
    }
    bool pushed = false;
    for (int attempt = 0; attempt < options_.push_backoff.max_attempts;
         ++attempt) {
      const double wait =
          options_.push_backoff.delay_before_attempt_s(attempt);
      rec.backoff_wait_s += wait;
      clock_s += wait;
      rec.push_attempts = attempt + 1;
      if (rejects_remaining > 0) {
        --rejects_remaining;
        continue;
      }
      model.set_configuration(intended);
      pushed = true;
      break;
    }
    if (rec.push_attempts > 1) {
      // The backoff loop itself is the first ladder rung in action.
      rec.actions.push_back(RecoveryAction::kRetry);
      journal_recovery(RecoveryAction::kRetry);
      ++trace.retries;
    }

    // ---- Handover signaling for this transition ----
    const std::vector<net::SectorId> cur_service = model.service_map();
    const net::Configuration& live = model.configuration();
    sim::HandoverTimings timings = options_.handover;
    timings.failure_probability =
        std::max(timings.failure_probability, storm_probability);
    const sim::HandoverProcedure procedure{timings};
    sim::EventQueue queue;
    sim::SignalingCounters counters;
    std::vector<sim::HandoverOutcome> outcomes;
    const std::span<const double> density = model.ue_density();
    for (std::size_t i = 0; i < prev_service.size(); ++i) {
      const net::SectorId src = prev_service[i];
      const net::SectorId dst = cur_service[i];
      if (src == dst || src == net::kInvalidSector) continue;
      const double ues = density.empty() ? 0.0 : density[i];
      if (ues <= 0.0) continue;
      if (dst == net::kInvalidSector) {
        rec.lost_service_ues += ues;
        continue;
      }
      const bool src_alive = live[src].active;
      const sim::HandoverKind kind = src_alive ? sim::HandoverKind::kSeamless
                                               : sim::HandoverKind::kHard;
      if (src_alive) {
        rec.seamless_ues += ues;
      } else {
        rec.hard_ues += ues;
      }
      procedure.start(queue, kind, ues, &counters, &outcomes, &rng);
    }
    queue.run();
    rec.handover_failures = counters.failed_procedures;
    rec.handover_retries = counters.retried_procedures;
    if (counters.retried_procedures > 0.0) {
      // FSM-level retry/backoff absorbed handover failures: record it as
      // a recovery action so storms are visible in the trace.
      if (rec.actions.empty() ||
          rec.actions.back() != RecoveryAction::kRetry) {
        rec.actions.push_back(RecoveryAction::kRetry);
      }
      journal_recovery(RecoveryAction::kRetry);
      ++trace.retries;
    }
    trace.signaling += counters;
    double outage_ue_seconds = 0.0;
    for (const sim::HandoverOutcome& outcome : outcomes) {
      outage_ue_seconds += outcome.ue_weight * outcome.outage_s;
    }
    // UEs pushed out of service stay dark at least until the next push.
    rec.lost_service_ue_seconds =
        rec.lost_service_ues * options_.step_interval_s + outage_ue_seconds;
    clock_s += options_.step_interval_s;

    // ---- Utility monitoring and the degradation ladder ----
    double realized = evaluator_->evaluate();
    rec.realized_utility = realized;
    // The plan's per-step utility is the expectation — it is what makes a
    // fault *detectable*. Only in finish mode (the ramp already superseded
    // by a contingency) does the rebased floor replace it.
    const double expectation =
        finish_mode ? effective_floor : rec.planned_utility;
    const double bar = expectation - band(expectation, tol);
    // The completion push's utility cost is intrinsic — the targets go
    // off-air in a faulted network, and no precomputed expectation covers
    // that state. Only a failed push (or, when a re-planner is armed, a
    // result below the rebased floor) counts as divergence there.
    const bool diverged =
        finish_mode ? (!pushed || (options_.allow_replan &&
                                   env.replanner != nullptr && realized < bar))
                    : (!pushed || realized < bar);
    bool recovered = !diverged;

    if (diverged && options_.allow_retry && !recovered) {
      // Rung 1: one more push of the intended configuration. Cheap, and
      // the only rung transient faults need. Worst case per the watchdog:
      // the policy's full capped backoff schedule.
      const double retry_worst =
          options_.push_backoff.worst_case_total_delay_s();
      if (!rung_fits(retry_worst)) {
        skip_rung(RecoveryAction::kRetry, retry_worst);
      } else {
        const double wait = options_.push_backoff.delay_before_attempt_s(1);
        rec.backoff_wait_s += wait;
        clock_s += wait;
        ++rec.push_attempts;
        if (rejects_remaining > 0) {
          --rejects_remaining;
        } else {
          model.set_configuration(intended);
          pushed = true;
        }
        rec.actions.push_back(RecoveryAction::kRetry);
        journal_recovery(RecoveryAction::kRetry);
        ++trace.retries;
        realized = evaluator_->evaluate();
        recovered = pushed && realized >= bar;
      }
    }

    if (diverged && !recovered && !finish_mode && options_.allow_contingency &&
        env.contingencies != nullptr && structural) {
      if (!rung_fits(options_.contingency_cost_s)) {
        skip_rung(RecoveryAction::kContingency, options_.contingency_cost_s);
      } else {
        // Rung 2: precomputed contingency, exact or nearest-match.
        // Quarantined sectors veto entries that reference them and are
        // pinned through the push.
        const core::ContingencyTable::NearestMatch match =
            env.contingencies->lookup_nearest(failed, pinned);
        if (match.plan != nullptr &&
            env.contingencies->apply(model, failed, /*allow_nearest=*/true,
                                     pinned)) {
          clock_s += options_.contingency_cost_s;
          rec.actions.push_back(RecoveryAction::kContingency);
          journal_recovery(RecoveryAction::kContingency);
          ++trace.contingency_applies;
          realized = evaluator_->evaluate();
          const double promised = match.plan->f_after;
          if (realized >= promised - band(promised, tol) || realized >= bar) {
            recovered = true;
            finish_mode = true;
            completion_pending = true;
            effective_floor = std::min(effective_floor, realized);
            pushed = true;
          }
        }
      }
    }

    if (diverged && !recovered && options_.allow_replan &&
        env.replanner != nullptr) {
      if (!rung_fits(options_.replan_cost_s)) {
        skip_rung(RecoveryAction::kReplan, options_.replan_cost_s);
      } else {
        // Rung 3: bounded local re-plan from the faulted state. Completes
        // the migration in one emergency push (targets and failures off).
        std::vector<net::SectorId> replan_targets(targets.begin(),
                                                  targets.end());
        replan_targets.insert(replan_targets.end(), failed.begin(),
                              failed.end());
        sort_unique(replan_targets);
        const core::MitigationPlan rplan = env.replanner->replan_from_current(
            replan_targets, baseline_rates, pinned);
        clock_s += options_.replan_cost_s;
        rec.actions.push_back(RecoveryAction::kReplan);
        journal_recovery(RecoveryAction::kReplan);
        ++trace.replans;
        realized = evaluator_->evaluate();
        // Accept unless the re-plan somehow made things worse than doing
        // nothing from the faulted state.
        if (realized >= rplan.f_upgrade - band(rplan.f_upgrade, tol)) {
          recovered = true;
          replanned = true;
          pushed = true;
        }
      }
    }

    if (diverged && !recovered) {
      // Rung 4: roll back to the last configuration that was in
      // tolerance and abort the window. The safety rung — never gated by
      // the deadline watchdog.
      model.set_configuration(masked(last_safe, failed));
      rec.actions.push_back(RecoveryAction::kRollback);
      journal_recovery(RecoveryAction::kRollback);
      ++trace.rollbacks;
      realized = evaluator_->evaluate();
      aborted = true;
    }

    rec.utility_after_recovery = realized;
    rec.floor_violated =
        realized < plan.floor_utility - band(plan.floor_utility, tol);
    if (rec.floor_violated) ++trace.floor_violations;
    if (aborted) {
      rec.status = StepStatus::kRolledBack;
    } else if (replanned) {
      rec.status = StepStatus::kReplanned;
    } else if (diverged) {
      rec.status = StepStatus::kRecovered;
    } else {
      rec.status = StepStatus::kApplied;
    }
    if (!diverged && !finish_mode) last_safe = intended;
    prev_service = model.service_map();
    metrics.step_duration_s.observe(clock_s - step_clock_start);
    metrics.push_attempts.observe(rec.push_attempts);

    // A stale ramp is not worth walking: after a successful contingency
    // the final step index re-runs as the completion push, then the loop
    // exits.
    std::size_t next_k = k + 1;
    if (completion_pending && !aborted && !replanned) {
      completion_pending = false;
      next_k = n - 1;
    }

    if (env.journal != nullptr) {
      // The confirm is the checkpoint: this step's record plus the full
      // cumulative state a resume needs to continue from next_k.
      PayloadWriter w;
      encode_step_record(w, rec);
      w.sectors(failed);
      w.config(model.configuration());
      w.config(last_safe);
      w.rng_state(rng.state());
      w.f64(clock_s);
      w.f64(effective_floor);
      w.b(finish_mode);
      w.b(aborted);
      w.b(replanned);
      w.u64(next_k);
      encode_signaling(w, trace.signaling);
      w.i32(trace.retries);
      w.i32(trace.contingency_applies);
      w.i32(trace.replans);
      w.i32(trace.rollbacks);
      w.i32(trace.floor_violations);
      w.i32(trace.deadline_skips);
      env.journal->append(JournalRecordType::kStepConfirm, w.take());
    }
    trace.steps.push_back(std::move(rec));
    k = next_k;
  }

  trace.failed_sectors = failed;
  trace.rolled_back = aborted;
  trace.completed = !aborted;
  trace.final_utility = evaluator_->evaluate();
  trace.makespan_s = clock_s;
  for (const StepRecord& rec : trace.steps) {
    trace.total_lost_service_ue_seconds += rec.lost_service_ue_seconds;
  }
  metrics.retries.add(static_cast<std::uint64_t>(trace.retries));
  metrics.contingency_applies.add(
      static_cast<std::uint64_t>(trace.contingency_applies));
  metrics.replans.add(static_cast<std::uint64_t>(trace.replans));
  metrics.rollbacks.add(static_cast<std::uint64_t>(trace.rollbacks));
  metrics.floor_violations.add(
      static_cast<std::uint64_t>(trace.floor_violations));
  metrics.fault_injections.add(trace.fault_events.size());
  return trace;
}

}  // namespace magus::exec
