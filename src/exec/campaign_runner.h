// Crash-safe campaign execution: many planned upgrades, scheduled into
// conflict-free maintenance windows (traffic::schedule_campaign), played
// window by window through the fault-aware MigrationExecutor.
//
// The runner owns the campaign-level durability protocol on top of the
// executor's per-step write-ahead records:
//
//   kCampaignStart  seed + shape (validated on resume; a resume appends a
//                   marker copy so restart counts survive restarts)
//   kUpgradeStart   upgrade index, window, derived per-upgrade seed
//     ... executor step records (intent / fault / recovery / confirm) ...
//   kUpgradeEnd     outcome + window summary + final configuration
//   kQuarantine     a sector's circuit breaker tripped
//   kWindowEnd      every upgrade of the window reached an outcome
//   kCampaignEnd
//
// run() with CampaignEnv::recovered (the journal's replayed records)
// resumes idempotently: completed upgrades are rebuilt from their
// kStepConfirm + kUpgradeEnd records — never re-planned, never re-pushed —
// the in-flight upgrade continues from its last confirmed step via the
// executor's WindowResumeState, and everything after runs normally. The
// quarantine breaker is re-derived from the replayed fault events in the
// original window order, so the resumed campaign sees the exact sector
// fencing the uninterrupted one would.
//
// Degradation policies applied per window:
//   - sectors quarantined by the breaker are excluded from the planner's
//     involved set, pinned against pushes, and veto contingency entries;
//   - an upgrade whose *targets* are quarantined is skipped this campaign
//     (kSkippedQuarantined) rather than executed against dead equipment;
//   - each window carries a simulated time budget (window_time_budget_s of
//     its duration) enforced by the executor's deadline watchdog.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/contingency.h"
#include "core/evaluator.h"
#include "core/planner.h"
#include "exec/executor.h"
#include "exec/fault_injector.h"
#include "exec/journal.h"
#include "exec/quarantine.h"
#include "traffic/campaign.h"
#include "util/json.h"

namespace magus::exec {

enum class UpgradeOutcome {
  kCompleted,
  kRolledBack,
  kSkippedQuarantined,  ///< a target sector was fenced off this window
};

[[nodiscard]] const char* upgrade_outcome_name(UpgradeOutcome outcome);

struct UpgradeResult {
  std::size_t upgrade = 0;  ///< index into the input upgrade list
  std::size_t window = 0;
  UpgradeOutcome outcome = UpgradeOutcome::kCompleted;
  /// True when this run continued the upgrade from a journal checkpoint
  /// (bookkeeping only; replayed-complete upgrades are not "resumed").
  bool resumed = false;
  ExecutionTrace trace;  ///< default-constructed for kSkippedQuarantined
};

struct CampaignResult {
  std::vector<UpgradeResult> upgrades;  ///< window order, schedule order
  std::size_t windows_total = 0;
  std::size_t windows_completed = 0;
  int resumes = 0;  ///< journal-continue restarts, including prior runs
  int quarantine_events = 0;
  int deadline_skips = 0;
  std::vector<net::SectorId> quarantined_sectors;  ///< ever fenced, sorted
  bool completed = false;

  /// Campaign-level summary + one entry per upgrade (outcome and full
  /// execution trace) — what bench_fault_recovery --json emits.
  [[nodiscard]] util::JsonObject to_json() const;
};

struct CampaignOptions {
  ExecutorOptions executor;
  QuarantineOptions quarantine;
  std::uint64_t seed = 1;  ///< campaign seed; per-upgrade seeds derive
  /// Fraction of a window's wall-clock usable for configuration work —
  /// the argument to traffic::window_time_budget_s.
  double window_utilization = 0.25;
  bool enforce_deadline = true;  ///< false disables the watchdog entirely
};

/// Per-campaign dependencies; all optional. For a resumed run, `recovered`
/// holds Journal::replay(path).records (kept alive by the caller) and
/// `journal` is the same file reopened with Mode::kContinue.
struct CampaignEnv {
  const core::ContingencyTable* contingencies = nullptr;
  /// Builds the fault injector for one upgrade index. Must be
  /// deterministic per index (a fresh injector from a derived seed) so a
  /// resumed campaign replays the same faults.
  std::function<std::unique_ptr<FaultInjector>(std::size_t)> injector_factory;
  Journal* journal = nullptr;
  std::span<const JournalRecord> recovered;
};

/// Deterministic per-upgrade seed (splitmix64 of the campaign seed and
/// upgrade index) — stored in kUpgradeStart and validated on resume.
[[nodiscard]] std::uint64_t upgrade_seed(std::uint64_t campaign_seed,
                                         std::size_t upgrade_index);

class CampaignRunner {
 public:
  /// `evaluator` and `planner` must outlive the runner; the planner doubles
  /// as the executor's emergency re-planner.
  CampaignRunner(core::Evaluator* evaluator, const core::MagusPlanner* planner,
                 CampaignOptions options = {});

  /// Executes (or resumes) the campaign. Throws std::runtime_error when
  /// the recovered journal does not match this campaign (different seed,
  /// upgrade count, or per-upgrade seed); propagates JournalCrash from an
  /// armed crash point.
  [[nodiscard]] CampaignResult run(
      std::span<const traffic::PlannedUpgrade> upgrades,
      const traffic::CampaignSchedule& schedule,
      const CampaignEnv& env = {}) const;

  [[nodiscard]] const CampaignOptions& options() const { return options_; }

 private:
  core::Evaluator* evaluator_;
  const core::MagusPlanner* planner_;
  CampaignOptions options_;
};

}  // namespace magus::exec
