// Write-ahead journal for crash-safe campaign execution.
//
// An append-only, per-record-checksummed log (the DB-v2 FNV-1a scheme from
// src/pathloss/database.cpp, hoisted into util/checksum.h) that the
// migration executor and campaign runner write *before and after* every
// externally visible action: step intents, configuration-push confirms,
// fault events, recovery-ladder actions, deadline skips, quarantine
// decisions, window boundaries. A process crash at any point loses at most
// the record being written; recovery replays the longest valid prefix —
// torn or truncated tails are detected by the checksum (or a short read)
// and discarded, never replayed partially.
//
// On-disk layout:
//
//   header: u64 magic "MAGUSWL1" | u32 version
//   record: u32 payload_size | u32 type | u64 sequence
//           | payload bytes | u64 checksum
//
// The checksum covers the record header fields and the payload, so a
// flipped bit anywhere in a record invalidates exactly that record and
// everything after it (sequences are dense, 0-based: a valid-looking
// record with the wrong sequence is also a torn tail). Payloads are
// encoded with PayloadWriter / PayloadReader — plain little-endian PODs,
// length-prefixed vectors — by the layer that owns the record type.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/configuration.h"

namespace magus::exec {

enum class JournalRecordType : std::uint32_t {
  kCampaignStart = 1,
  kUpgradeStart = 2,
  kStepIntent = 3,     ///< written before the step's configuration push
  kFault = 4,          ///< one injected fault event
  kRecovery = 5,       ///< one recovery-ladder action taken
  kDeadlineSkip = 6,   ///< a ladder rung skipped by the deadline watchdog
  kStepConfirm = 7,    ///< written after the step completes (full state)
  kQuarantine = 8,     ///< a sector entered quarantine
  kUpgradeEnd = 9,
  kWindowEnd = 10,
  kCampaignEnd = 11,
};

[[nodiscard]] const char* journal_record_type_name(JournalRecordType type);

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kStepIntent;
  std::uint64_t sequence = 0;
  std::vector<char> payload;
};

/// Thrown by Journal::append when a crash point armed via set_crash_after
/// fires — the crash-injection harness's stand-in for SIGKILL at a record
/// boundary. Nothing is written for the crashing append.
struct JournalCrash : std::runtime_error {
  explicit JournalCrash(std::uint64_t after_records)
      : std::runtime_error("injected crash after " +
                           std::to_string(after_records) +
                           " journal records") {}
};

class Journal {
 public:
  enum class Mode {
    kTruncate,  ///< start a fresh journal (existing file discarded)
    kContinue,  ///< resume: keep the longest valid prefix, drop torn tail
  };

  Journal(std::string path, Mode mode);

  /// Appends one checksummed record and flushes it to the OS. Throws
  /// JournalCrash when an armed crash point fires, std::runtime_error on
  /// I/O failure.
  void append(JournalRecordType type, std::vector<char> payload);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_written() const { return sequence_; }

  /// Arms the crash-injection harness: the (n+1)-th append from *now*
  /// (counting every append over the journal's lifetime, including records
  /// recovered by kContinue) throws JournalCrash without writing. Pass
  /// from the test harness only.
  void set_crash_after(std::uint64_t total_records) {
    crash_after_ = total_records;
  }

  struct Replay {
    std::vector<JournalRecord> records;
    std::uint64_t valid_bytes = 0;  ///< header + longest valid record prefix
    std::uint64_t file_bytes = 0;
    bool torn_tail = false;  ///< trailing bytes were discarded
    std::string error;       ///< why the tail (or whole file) was rejected
  };

  /// Replays the longest valid prefix of `path`. Never throws on torn,
  /// truncated, or corrupted files — a missing or empty file yields zero
  /// records, a damaged one yields every record up to the damage. A partial
  /// record is never surfaced.
  [[nodiscard]] static Replay replay(const std::string& path);

 private:
  std::string path_;
  std::uint64_t sequence_ = 0;  ///< next sequence to write
  std::uint64_t crash_after_ = ~std::uint64_t{0};
};

// ---- Payload encoding ----------------------------------------------------

/// Little-endian POD accumulator for record payloads.
class PayloadWriter {
 public:
  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t off = bytes_.size();
    bytes_.resize(off + sizeof(T));
    std::memcpy(bytes_.data() + off, &value, sizeof(T));
  }

  void u8(std::uint8_t v) { pod(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { pod(v); }
  void i32(std::int32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void f64(double v) { pod(v); }

  void sectors(std::span<const net::SectorId> ids);
  void config(const net::Configuration& config);
  void rng_state(const std::array<std::uint64_t, 4>& state);

  [[nodiscard]] std::vector<char> take() { return std::move(bytes_); }

 private:
  std::vector<char> bytes_;
};

/// Cursor over a record payload. Throws std::runtime_error on overrun —
/// which recovery treats as a torn record (checksummed payloads only
/// overrun when a decoder and encoder disagree).
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const char> bytes) : bytes_(bytes) {}

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes_.size() - off_ < sizeof(T)) {
      throw std::runtime_error("Journal payload: truncated field");
    }
    T value;
    std::copy_n(bytes_.data() + off_, sizeof(T),
                reinterpret_cast<char*>(&value));
    off_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::uint8_t u8() { return pod<std::uint8_t>(); }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32() { return pod<std::uint32_t>(); }
  [[nodiscard]] std::int32_t i32() { return pod<std::int32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return pod<std::uint64_t>(); }
  [[nodiscard]] double f64() { return pod<double>(); }

  [[nodiscard]] std::vector<net::SectorId> sectors();
  [[nodiscard]] net::Configuration config();
  [[nodiscard]] std::array<std::uint64_t, 4> rng_state();

  [[nodiscard]] bool done() const { return off_ == bytes_.size(); }

 private:
  std::span<const char> bytes_;
  std::size_t off_ = 0;
};

}  // namespace magus::exec
