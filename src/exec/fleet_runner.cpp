#include "exec/fleet_runner.h"

#include <optional>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace magus::exec {

std::uint64_t market_campaign_seed(std::uint64_t fleet_seed,
                                   std::int32_t market_key) {
  std::uint64_t z =
      fleet_seed + 0x9E3779B97F4A7C15ULL *
                       (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(market_key)) +
                        0x464C54ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

CampaignResult FleetRunner::run_market(const MarketCampaignRefs& refs,
                                       bool resume) const {
  if (refs.schedule == nullptr || refs.evaluator == nullptr ||
      refs.planner == nullptr) {
    throw std::invalid_argument(
        "FleetRunner: schedule, evaluator and planner must not be null");
  }
  const obs::DynamicSpan market_span{
      "exec.run_market." + std::to_string(refs.market_key), "exec"};
  CampaignOptions options = base_;
  options.seed = market_campaign_seed(base_.seed, refs.market_key);
  const CampaignRunner runner{refs.evaluator, refs.planner, options};

  CampaignEnv env;
  env.contingencies = refs.contingencies;
  env.injector_factory = refs.injector_factory;

  // The replayed records must stay alive across run(): keep them (and the
  // reopened journal) in scope here.
  Journal::Replay replay;
  std::optional<Journal> journal;
  if (!refs.journal_path.empty()) {
    if (resume) {
      replay = Journal::replay(refs.journal_path);
      journal.emplace(refs.journal_path, Journal::Mode::kContinue);
      env.recovered = replay.records;
    } else {
      journal.emplace(refs.journal_path, Journal::Mode::kTruncate);
    }
    env.journal = &*journal;
  }
  return runner.run(refs.upgrades, *refs.schedule, env);
}

}  // namespace magus::exec
