// Sector circuit breaker: quarantine repeatedly-faulting equipment.
//
// A sector that keeps faulting across steps and windows (flapping
// transport, failing power amplifier) would otherwise burn every window's
// retry budget: each window re-tunes it, re-pushes to it, and re-escalates
// when it falls over again. The campaign layer instead counts faults per
// sector and, past a threshold, *quarantines* the sector for a cool-off
// span of windows: it is excluded from PlannedUpgrade::involved tuning
// sets, pinned against configuration pushes, and contingency entries that
// rely on it are passed over (ContingencyTable::lookup_nearest's excluded
// set) — graceful degradation on a reduced sector set instead of rollback.
// After the cool-off the sector re-enters service with a clean slate.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "net/sector.h"

namespace magus::exec {

struct QuarantineOptions {
  /// Fault events attributed to one sector before it is quarantined.
  int fault_threshold = 2;
  /// Windows the quarantine lasts, counted from the window *after* the one
  /// that tripped the breaker.
  std::size_t cooloff_windows = 2;
};

class SectorQuarantine {
 public:
  explicit SectorQuarantine(QuarantineOptions options = {});

  /// Attributes `count` fault events to `sector` during `window`. Returns
  /// true when this call tripped the breaker (the sector just entered
  /// quarantine, lasting through window + cooloff_windows).
  bool record_faults(net::SectorId sector, int count, std::size_t window);

  [[nodiscard]] bool is_quarantined(net::SectorId sector,
                                    std::size_t window) const;

  /// Sectors quarantined during `window`, sorted ascending.
  [[nodiscard]] std::vector<net::SectorId> active(std::size_t window) const;

  /// Every sector that has ever been quarantined, sorted ascending.
  [[nodiscard]] std::vector<net::SectorId> ever_quarantined() const;

  /// Total breaker trips so far.
  [[nodiscard]] int quarantine_events() const { return quarantine_events_; }

  [[nodiscard]] const QuarantineOptions& options() const { return options_; }

 private:
  struct State {
    int fault_count = 0;
    /// Quarantined through this window inclusive; below any real window
    /// index when not quarantined.
    std::size_t until_window = 0;
    bool quarantined = false;
    bool ever = false;
  };

  QuarantineOptions options_;
  std::map<net::SectorId, State> sectors_;
  int quarantine_events_ = 0;
};

}  // namespace magus::exec
