#include "exec/fault_injector.h"

#include <stdexcept>

namespace magus::exec {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSectorOutage:
      return "sector-outage";
    case FaultKind::kHandoverFailure:
      return "handover-failure";
    case FaultKind::kConfigPushReject:
      return "config-push-reject";
  }
  return "?";
}

std::vector<FaultEvent> ScriptedFaultInjector::faults_for_step(int step) {
  std::vector<FaultEvent> hits;
  for (const FaultEvent& event : events_) {
    if (event.step == step) hits.push_back(event);
  }
  return hits;
}

RandomFaultInjector::RandomFaultInjector(std::uint64_t seed,
                                         RandomFaultOptions options)
    : rng_(seed), options_(std::move(options)) {
  const auto check_probability = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("RandomFaultInjector: ") + name +
                                  " outside [0, 1]");
    }
  };
  check_probability(options_.outage_probability_per_step,
                    "outage_probability_per_step");
  check_probability(options_.storm_probability_per_step,
                    "storm_probability_per_step");
  check_probability(options_.push_reject_probability_per_step,
                    "push_reject_probability_per_step");
  check_probability(options_.storm_failure_probability,
                    "storm_failure_probability");
}

std::vector<FaultEvent> RandomFaultInjector::faults_for_step(int step) {
  std::vector<FaultEvent> hits;
  if (!options_.outage_candidates.empty() &&
      rng_.uniform() < options_.outage_probability_per_step) {
    FaultEvent event;
    event.kind = FaultKind::kSectorOutage;
    event.step = step;
    event.sector = options_.outage_candidates[static_cast<std::size_t>(
        rng_.uniform_int(0,
                         static_cast<std::int64_t>(
                             options_.outage_candidates.size()) -
                             1))];
    hits.push_back(event);
  }
  if (rng_.uniform() < options_.storm_probability_per_step) {
    FaultEvent event;
    event.kind = FaultKind::kHandoverFailure;
    event.step = step;
    event.handover_failure_probability = options_.storm_failure_probability;
    hits.push_back(event);
  }
  if (rng_.uniform() < options_.push_reject_probability_per_step) {
    FaultEvent event;
    event.kind = FaultKind::kConfigPushReject;
    event.step = step;
    event.reject_attempts = options_.reject_attempts;
    hits.push_back(event);
  }
  return hits;
}

}  // namespace magus::exec
