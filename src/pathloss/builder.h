// Builds per-sector footprints from the propagation model — the synthetic
// stand-in for the Atoll path-loss feed.
//
// Construction runs on the batched row pipeline (radio::SiteContext +
// RadialProfileTable + isotropic_row_cached / apply_antenna_row): per-site
// constants are hoisted once, terrain diffraction profiles are sampled once
// per radial ray instead of once per cell, and the per-cell work splits
// into a tilt-invariant isotropic pass plus a cheap per-tilt antenna pass,
// so build_tilts() amortizes everything but the antenna arithmetic across
// a sector's whole tilt matrix. The legacy per-cell kernel is kept as
// build_reference(): the measured serial baseline and the exactness
// reference the batched path is tested against.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "geo/grid_map.h"
#include "net/sector.h"
#include "pathloss/footprint.h"
#include "radio/propagation.h"
#include "terrain/terrain.h"

namespace magus::pathloss {

class FootprintBuilder {
 public:
  /// Reusable per-thread scratch for the batched pipeline: the radial
  /// diffraction profiles plus the full-grid isotropic / geometry / gain
  /// planes. One instance per worker thread avoids reallocating ~5 planes
  /// per matrix; contents are overwritten by every build.
  struct Scratch {
    radio::RadialProfileTable profiles;
    std::vector<float> iso_db;
    std::vector<float> azimuth_off_deg;
    std::vector<float> elevation_deg;
    std::vector<float> total_db;
    /// In-range cells chunked into maximal same-row runs (first, count).
    std::vector<std::pair<geo::GridIndex, std::int32_t>> runs;
  };

  /// `model` and `cache` must outlive the builder; the cache's grid defines
  /// the analysis grid. `max_range_m` bounds each sector's reach: cells
  /// farther than that from the site are skipped outright (their loss is
  /// far past the floor), which also bounds footprint memory.
  FootprintBuilder(const radio::PropagationModel* model,
                   const terrain::TerrainGridCache* cache,
                   double max_range_m = 30'000.0);

  [[nodiscard]] const geo::GridMap& grid() const { return cache_->grid(); }
  [[nodiscard]] double max_range_m() const { return max_range_m_; }

  /// Evaluates the propagation model at every in-range grid cell for this
  /// sector and tilt, on the batched kernel. Equivalent to
  /// build_tilts(sector, {tilt})[0].
  [[nodiscard]] SectorFootprint build(const net::Sector& sector,
                                      radio::TiltIndex tilt) const;

  /// Builds one footprint per requested tilt, sharing the sector's radial
  /// profiles and isotropic/geometry planes across all of them — the
  /// per-tilt marginal cost is just the antenna pass. Results are bitwise
  /// identical to calling build() per tilt. `scratch` may be null (a local
  /// one is used); passing a per-thread instance avoids reallocation.
  /// Deterministic and safe to call concurrently with distinct scratch.
  [[nodiscard]] std::vector<SectorFootprint> build_tilts(
      const net::Sector& sector, std::span<const radio::TiltIndex> tilts,
      Scratch* scratch = nullptr) const;

  /// The pre-batching kernel: one virtual path_gain_db_cached call per cell,
  /// resampling the terrain diffraction profile each time. Kept as the
  /// serial baseline benches measure against and as the exactness reference
  /// for the batched kernel's tests; not used in production paths.
  [[nodiscard]] SectorFootprint build_reference(const net::Sector& sector,
                                                radio::TiltIndex tilt) const;

 private:
  const radio::PropagationModel* model_;
  const terrain::TerrainGridCache* cache_;
  double max_range_m_;
};

}  // namespace magus::pathloss
