// Builds per-sector footprints from the propagation model — the synthetic
// stand-in for the Atoll path-loss feed.
#pragma once

#include "geo/grid_map.h"
#include "net/sector.h"
#include "pathloss/footprint.h"
#include "radio/propagation.h"
#include "terrain/terrain.h"

namespace magus::pathloss {

class FootprintBuilder {
 public:
  /// `model` and `cache` must outlive the builder; the cache's grid defines
  /// the analysis grid. `max_range_m` bounds each sector's reach: cells
  /// farther than that from the site are skipped outright (their loss is
  /// far past the floor), which also bounds footprint memory.
  FootprintBuilder(const radio::PropagationModel* model,
                   const terrain::TerrainGridCache* cache,
                   double max_range_m = 30'000.0);

  [[nodiscard]] const geo::GridMap& grid() const { return cache_->grid(); }
  [[nodiscard]] double max_range_m() const { return max_range_m_; }

  /// Evaluates the propagation model at every in-range grid cell for this
  /// sector and tilt.
  [[nodiscard]] SectorFootprint build(const net::Sector& sector,
                                      radio::TiltIndex tilt) const;

 private:
  const radio::PropagationModel* model_;
  const terrain::TerrainGridCache* cache_;
  double max_range_m_;
};

}  // namespace magus::pathloss
