// On-disk layout of the path-loss database formats, shared by the eager
// loader (database.cpp), the mmap provider (mapped_database.cpp) and the
// db tool.
//
// v2 ("MAGUSPL1", version 2) is the eager stream format: header, then
// entry records of geometry + checksum + gain floats back to back. Loading
// it means reading, checksumming and copying every gain plane.
//
// v3 ("MAGUSPL1", version 3) is the mappable section-table format:
//
//   [ header  | v2 prefix + directory checksum + payload end        ]
//   [ directory | entry_count x { 6 geometry i32, data_offset u64,  ]
//   [             entry checksum u64 }                              ]
//   [ ...zero padding to a 4096-byte page boundary...               ]
//   [ gain plane 0 | raw little-endian floats                       ]
//   [ ...zero padding...                                            ]
//   [ gain plane 1 ]  ...
//
// The header + directory are a few KB and are parsed (and their checksum
// verified) eagerly at open; gain planes start on page boundaries so an
// mmap can alias them zero-copy and the OS faults exactly the touched
// pages. Structural corruption — a truncated directory, a torn last page
// (file shorter than the payload end the header promises), trailing bytes
// — is caught at open, before any mapping is dereferenced (no SIGBUS on a
// short file); a bit flip *inside* a gain plane is only caught by the
// per-entry checksum on first touch, which is the deal that makes open
// O(directory) instead of O(file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/checksum.h"

namespace magus::pathloss::format {

inline constexpr std::uint64_t kMagic = 0x4D41475553504C31ULL;  // "MAGUSPL1"
inline constexpr std::uint32_t kVersionEager = 2;
inline constexpr std::uint32_t kVersionMapped = 3;

/// Header prefix shared by v2 and v3: magic, version, min_x, min_y,
/// cell_size, cols, rows, entry_count.
inline constexpr std::size_t kHeaderPrefixBytes =
    8 + 4 + 8 + 8 + 8 + 4 + 4 + 8;
/// v3 appends the directory checksum and the payload end offset.
inline constexpr std::size_t kHeaderBytesV3 = kHeaderPrefixBytes + 8 + 8;
/// One v3 directory record: sector, tilt, col0, row0, window_cols,
/// window_rows, data_offset, entry checksum.
inline constexpr std::size_t kDirEntryBytes = 6 * 4 + 8 + 8;
/// Gain planes start on page boundaries.
inline constexpr std::size_t kPageBytes = 4096;

[[nodiscard]] constexpr std::uint64_t align_up_page(std::uint64_t offset) {
  return (offset + (kPageBytes - 1)) & ~std::uint64_t{kPageBytes - 1};
}

/// FNV-1a over an entry's geometry ints then its raw gain bytes — the same
/// value for the same entry in a v2 and a v3 file, which is what makes the
/// two formats' integrity stories interchangeable.
[[nodiscard]] inline std::uint64_t entry_checksum_raw(
    std::int32_t sector, std::int32_t tilt, std::int32_t col0,
    std::int32_t row0, std::int32_t window_cols, std::int32_t window_rows,
    const void* window, std::size_t window_bytes) {
  const std::int32_t geometry[] = {sector,      tilt,        col0,
                                   row0,        window_cols, window_rows};
  return util::fnv1a(window, window_bytes,
                     util::fnv1a(geometry, sizeof(geometry)));
}

/// One parsed v3 directory record. data_offset is 0 for empty windows
/// (no plane bytes exist for them).
struct V3Entry {
  std::int32_t sector = 0;
  std::int32_t tilt = 0;
  std::int32_t col0 = 0;
  std::int32_t row0 = 0;
  std::int32_t window_cols = 0;
  std::int32_t window_rows = 0;
  std::uint64_t data_offset = 0;
  std::uint64_t checksum = 0;
  std::size_t window_bytes = 0;
};

struct V3Directory {
  double min_x = 0.0;
  double min_y = 0.0;
  double cell_size_m = 0.0;
  std::int32_t cols = 0;
  std::int32_t rows = 0;
  std::uint64_t entry_count = 0;
  /// Total file size the header promises (end of the last gain plane).
  std::uint64_t payload_end = 0;
  std::vector<V3Entry> entries;
};

/// Parses and structurally validates a v3 header + directory. `data` must
/// hold at least the header and directory bytes (callers that stream only
/// the front of the file read kHeaderBytesV3, then the directory);
/// `file_size` is the real on-disk size. Validates the magic/version/grid,
/// the directory checksum, that every plane's extent lies inside
/// [directory end, payload_end] on a page boundary, and that payload_end
/// equals file_size — so a truncated directory, a torn last page and
/// trailing garbage all fail here, at open. Throws std::runtime_error with
/// the database's usual "PathLossDatabase: ..." messages.
[[nodiscard]] V3Directory parse_v3(const char* data, std::size_t available,
                                   std::uint64_t file_size,
                                   const std::string& path);

}  // namespace magus::pathloss::format
