#include "pathloss/database.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magus::pathloss {

namespace {

struct DbMetrics {
  obs::Counter& loads;
  obs::Counter& load_bytes;
  obs::Counter& load_failures;
  obs::Counter& rebuilds;
  obs::Counter& resaves;

  [[nodiscard]] static DbMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static DbMetrics metrics{
        registry.counter("pathloss.db.loads"),
        registry.counter("pathloss.db.load_bytes"),
        registry.counter("pathloss.db.load_failures"),
        registry.counter("pathloss.db.rebuilds"),
        registry.counter("pathloss.db.resaves"),
    };
    return metrics;
  }
};
constexpr std::uint64_t kMagic = 0x4D41475553504C31ULL;  // "MAGUSPL1"
constexpr std::uint32_t kVersion = 2;  // v2 adds per-entry checksums

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value, const std::string& context) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("PathLossDatabase: " + context);
}

/// FNV-1a over a byte range, chainable via `hash`.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                  std::uint64_t hash = 0xCBF29CE484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Checksum of one database entry: geometry ints then raw gain bytes, so a
/// flipped bit anywhere in the entry is caught.
[[nodiscard]] std::uint64_t entry_checksum(std::int32_t sector,
                                           std::int32_t tilt,
                                           const SectorFootprint& footprint) {
  const std::int32_t geometry[] = {sector,
                                   tilt,
                                   footprint.col0(),
                                   footprint.row0(),
                                   footprint.window_cols(),
                                   footprint.window_rows()};
  std::uint64_t hash = fnv1a(geometry, sizeof(geometry));
  const auto window = footprint.window();
  return fnv1a(window.data(), window.size() * sizeof(float), hash);
}
}  // namespace

PathLossDatabase::PathLossDatabase(geo::GridMap grid)
    : grid_(std::move(grid)) {}

void PathLossDatabase::insert(net::SectorId sector, radio::TiltIndex tilt,
                              SectorFootprint footprint) {
  if (footprint.cell_count() !=
      static_cast<std::size_t>(grid_.cell_count())) {
    throw std::invalid_argument(
        "PathLossDatabase::insert: footprint does not match grid");
  }
  entries_.insert_or_assign(Key{sector, tilt}, std::move(footprint));
}

bool PathLossDatabase::contains(net::SectorId sector,
                                radio::TiltIndex tilt) const {
  return entries_.contains(Key{sector, tilt});
}

const SectorFootprint& PathLossDatabase::footprint(net::SectorId sector,
                                                   radio::TiltIndex tilt) {
  const auto it = entries_.find(Key{sector, tilt});
  if (it == entries_.end()) {
    throw std::out_of_range("PathLossDatabase: missing matrix for sector " +
                            std::to_string(sector) + " tilt " +
                            std::to_string(tilt));
  }
  return it->second;
}

void PathLossDatabase::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, grid_.area().min.x_m);
  write_pod(out, grid_.area().min.y_m);
  write_pod(out, grid_.cell_size_m());
  write_pod(out, grid_.cols());
  write_pod(out, grid_.rows());
  write_pod(out, static_cast<std::uint64_t>(entries_.size()));
  for (const auto& [key, footprint] : entries_) {
    write_pod(out, key.first);
    write_pod(out, key.second);
    write_pod(out, footprint.col0());
    write_pod(out, footprint.row0());
    write_pod(out, footprint.window_cols());
    write_pod(out, footprint.window_rows());
    write_pod(out, entry_checksum(key.first, key.second, footprint));
    const auto window = footprint.window();
    out.write(reinterpret_cast<const char*>(window.data()),
              static_cast<std::streamsize>(window.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("PathLossDatabase: write failed");
}

PathLossDatabase PathLossDatabase::load(const std::string& path) {
  MAGUS_TRACE_SPAN("pathloss.db_load", "pathloss");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  DbMetrics::get().loads.add(1);
  if (const std::streamoff size = in.tellg(); size > 0) {
    DbMetrics::get().load_bytes.add(static_cast<std::uint64_t>(size));
  }
  in.seekg(0, std::ios::beg);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  read_pod(in, magic, "truncated header in " + path);
  read_pod(in, version, "truncated header in " + path);
  if (magic != kMagic) {
    throw std::runtime_error("PathLossDatabase: bad magic in " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error("PathLossDatabase: unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + ") in " + path);
  }
  double min_x = 0.0;
  double min_y = 0.0;
  double cell = 0.0;
  std::int32_t cols = 0;
  std::int32_t rows = 0;
  read_pod(in, min_x, "truncated header in " + path);
  read_pod(in, min_y, "truncated header in " + path);
  read_pod(in, cell, "truncated header in " + path);
  read_pod(in, cols, "truncated header in " + path);
  read_pod(in, rows, "truncated header in " + path);
  if (!(cell > 0.0) || cols <= 0 || rows <= 0) {
    throw std::runtime_error("PathLossDatabase: invalid grid geometry in " +
                             path);
  }
  const geo::Rect area{{min_x, min_y},
                       {min_x + cols * cell, min_y + rows * cell}};
  PathLossDatabase db{geo::GridMap{area, cell}};
  std::uint64_t entry_count = 0;
  read_pod(in, entry_count, "truncated header in " + path);
  for (std::uint64_t e = 0; e < entry_count; ++e) {
    const std::string entry_context =
        "entry " + std::to_string(e) + " of " + std::to_string(entry_count);
    std::int32_t sector = 0;
    std::int32_t tilt = 0;
    std::int32_t col0 = 0;
    std::int32_t row0 = 0;
    std::int32_t window_cols = 0;
    std::int32_t window_rows = 0;
    std::uint64_t stored_checksum = 0;
    read_pod(in, sector, "truncated " + entry_context + " in " + path);
    read_pod(in, tilt, "truncated " + entry_context + " in " + path);
    read_pod(in, col0, "truncated " + entry_context + " in " + path);
    read_pod(in, row0, "truncated " + entry_context + " in " + path);
    read_pod(in, window_cols, "truncated " + entry_context + " in " + path);
    read_pod(in, window_rows, "truncated " + entry_context + " in " + path);
    read_pod(in, stored_checksum,
             "truncated " + entry_context + " in " + path);
    // Bound the window before allocating: a corrupted size field must not
    // turn into a multi-gigabyte allocation or a silent overlap.
    if (window_cols < 0 || window_rows < 0 || window_cols > cols ||
        window_rows > rows) {
      throw std::runtime_error("PathLossDatabase: oversized window (" +
                               entry_context + ") in " + path);
    }
    std::vector<float> window(static_cast<std::size_t>(window_cols) *
                              static_cast<std::size_t>(window_rows));
    in.read(reinterpret_cast<char*>(window.data()),
            static_cast<std::streamsize>(window.size() * sizeof(float)));
    if (!in) {
      throw std::runtime_error("PathLossDatabase: truncated " + entry_context +
                               " in " + path);
    }
    SectorFootprint footprint;
    try {
      footprint = SectorFootprint{cols,        rows,        col0,
                                  row0,        window_cols, window_rows,
                                  std::move(window)};
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("PathLossDatabase: " + entry_context +
                               " does not fit the grid in " + path);
    }
    if (entry_checksum(sector, tilt, footprint) != stored_checksum) {
      throw std::runtime_error(
          "PathLossDatabase: checksum mismatch (" + entry_context +
          ", sector " + std::to_string(sector) + " tilt " +
          std::to_string(tilt) + ") in " + path);
    }
    db.entries_.insert_or_assign(Key{sector, tilt}, std::move(footprint));
  }
  // The header promised exactly entry_count entries; anything further is
  // corruption (e.g. a concatenated or doubly-written file).
  if (in.peek() != std::ifstream::traits_type::eof()) {
    throw std::runtime_error("PathLossDatabase: trailing bytes after " +
                             std::to_string(entry_count) + " entries in " +
                             path);
  }
  return db;
}

PathLossDatabase PathLossDatabase::load_or_rebuild(
    const std::string& path, PathLossProvider& fallback,
    std::span<const net::SectorId> sectors,
    std::span<const radio::TiltIndex> tilts, LoadReport* report) {
  MAGUS_TRACE_SPAN("pathloss.db_load_or_rebuild", "pathloss");
  LoadReport local;
  LoadReport& out = report != nullptr ? *report : local;
  out = LoadReport{};
  try {
    PathLossDatabase db = load(path);
    const geo::GridMap& expected = fallback.grid();
    if (db.grid_.cols() != expected.cols() ||
        db.grid_.rows() != expected.rows() ||
        db.grid_.cell_size_m() != expected.cell_size_m()) {
      throw std::runtime_error(
          "PathLossDatabase: grid mismatch (file " +
          std::to_string(db.grid_.cols()) + "x" +
          std::to_string(db.grid_.rows()) + " @ " +
          std::to_string(db.grid_.cell_size_m()) + " m, expected " +
          std::to_string(expected.cols()) + "x" +
          std::to_string(expected.rows()) + " @ " +
          std::to_string(expected.cell_size_m()) + " m) in " + path);
    }
    return db;
  } catch (const std::runtime_error& error) {
    out.rebuilt = true;
    out.error = error.what();
    DbMetrics::get().load_failures.add(1);
  }
  MAGUS_TRACE_SPAN("pathloss.db_rebuild", "pathloss");
  DbMetrics::get().rebuilds.add(1);
  PathLossDatabase db{fallback.grid()};
  for (const net::SectorId sector : sectors) {
    for (const radio::TiltIndex tilt : tilts) {
      db.insert(sector, tilt, fallback.footprint(sector, tilt));
    }
  }
  try {
    db.save(path);
    out.resaved = true;
    DbMetrics::get().resaves.add(1);
  } catch (const std::runtime_error&) {
    out.resaved = false;  // a read-only location is fine; stay in memory
  }
  return db;
}

BuildingProvider::BuildingProvider(const net::Network* network,
                                   FootprintBuilder builder)
    : network_(network), builder_(std::move(builder)) {
  if (network_ == nullptr) {
    throw std::invalid_argument("BuildingProvider: network must not be null");
  }
}

const SectorFootprint& BuildingProvider::footprint(net::SectorId sector,
                                                   radio::TiltIndex tilt) {
  // Serializes concurrent callers (worker threads share this provider).
  // A miss builds the matrix while holding the lock: footprints for a
  // given (sector, tilt) are deterministic, so which thread builds one
  // does not matter, only that it is built exactly once.
  const std::lock_guard lock{mutex_};
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto [inserted, _] =
      cache_.emplace(key, builder_.build(network_->sector(sector), tilt));
  return inserted->second;
}

ApproxTiltProvider::ApproxTiltProvider(PathLossProvider* inner,
                                       const net::Network* network,
                                       TiltDeltaModel delta_model)
    : inner_(inner), network_(network), delta_model_(delta_model) {
  if (inner_ == nullptr || network_ == nullptr) {
    throw std::invalid_argument(
        "ApproxTiltProvider: inner provider and network must not be null");
  }
}

const SectorFootprint& ApproxTiltProvider::footprint(net::SectorId sector,
                                                     radio::TiltIndex tilt) {
  if (tilt == 0) return inner_->footprint(sector, 0);
  // Serializes concurrent cache access; the inner provider has its own
  // lock, taken strictly after this one (no cycle).
  const std::lock_guard lock{mutex_};
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const SectorFootprint& base = inner_->footprint(sector, 0);
  const geo::Point site = network_->sector(sector).position;
  const geo::GridMap& map = grid();
  std::vector<float> window(base.window().begin(), base.window().end());
  for (std::int32_t row = 0; row < base.window_rows(); ++row) {
    for (std::int32_t col = 0; col < base.window_cols(); ++col) {
      auto& value =
          window[static_cast<std::size_t>(row) * base.window_cols() + col];
      if (std::isnan(value)) continue;
      const geo::GridIndex g =
          map.at(base.col0() + col, base.row0() + row);
      const double d = geo::distance_m(map.center_of(g), site);
      value += static_cast<float>(delta_model_.delta_db(d, 0, tilt));
    }
  }
  auto [inserted, _] = cache_.emplace(
      key, SectorFootprint{base.grid_cols(), base.grid_rows(), base.col0(),
                           base.row0(), base.window_cols(), base.window_rows(),
                           std::move(window)});
  return inserted->second;
}

}  // namespace magus::pathloss
