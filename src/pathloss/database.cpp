#include "pathloss/database.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

namespace magus::pathloss {

namespace {
constexpr std::uint64_t kMagic = 0x4D41475553504C31ULL;  // "MAGUSPL1"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("PathLossDatabase: truncated file");
}
}  // namespace

PathLossDatabase::PathLossDatabase(geo::GridMap grid)
    : grid_(std::move(grid)) {}

void PathLossDatabase::insert(net::SectorId sector, radio::TiltIndex tilt,
                              SectorFootprint footprint) {
  if (footprint.cell_count() !=
      static_cast<std::size_t>(grid_.cell_count())) {
    throw std::invalid_argument(
        "PathLossDatabase::insert: footprint does not match grid");
  }
  entries_.insert_or_assign(Key{sector, tilt}, std::move(footprint));
}

bool PathLossDatabase::contains(net::SectorId sector,
                                radio::TiltIndex tilt) const {
  return entries_.contains(Key{sector, tilt});
}

const SectorFootprint& PathLossDatabase::footprint(net::SectorId sector,
                                                   radio::TiltIndex tilt) {
  const auto it = entries_.find(Key{sector, tilt});
  if (it == entries_.end()) {
    throw std::out_of_range("PathLossDatabase: missing matrix for sector " +
                            std::to_string(sector) + " tilt " +
                            std::to_string(tilt));
  }
  return it->second;
}

void PathLossDatabase::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, grid_.area().min.x_m);
  write_pod(out, grid_.area().min.y_m);
  write_pod(out, grid_.cell_size_m());
  write_pod(out, grid_.cols());
  write_pod(out, grid_.rows());
  write_pod(out, static_cast<std::uint64_t>(entries_.size()));
  for (const auto& [key, footprint] : entries_) {
    write_pod(out, key.first);
    write_pod(out, key.second);
    write_pod(out, footprint.col0());
    write_pod(out, footprint.row0());
    write_pod(out, footprint.window_cols());
    write_pod(out, footprint.window_rows());
    const auto window = footprint.window();
    out.write(reinterpret_cast<const char*>(window.data()),
              static_cast<std::streamsize>(window.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("PathLossDatabase: write failed");
}

PathLossDatabase PathLossDatabase::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  read_pod(in, magic);
  read_pod(in, version);
  if (magic != kMagic) {
    throw std::runtime_error("PathLossDatabase: bad magic in " + path);
  }
  if (version != kVersion) {
    throw std::runtime_error("PathLossDatabase: unsupported version");
  }
  double min_x = 0.0;
  double min_y = 0.0;
  double cell = 0.0;
  std::int32_t cols = 0;
  std::int32_t rows = 0;
  read_pod(in, min_x);
  read_pod(in, min_y);
  read_pod(in, cell);
  read_pod(in, cols);
  read_pod(in, rows);
  const geo::Rect area{{min_x, min_y},
                       {min_x + cols * cell, min_y + rows * cell}};
  PathLossDatabase db{geo::GridMap{area, cell}};
  std::uint64_t entry_count = 0;
  read_pod(in, entry_count);
  for (std::uint64_t e = 0; e < entry_count; ++e) {
    std::int32_t sector = 0;
    std::int32_t tilt = 0;
    std::int32_t col0 = 0;
    std::int32_t row0 = 0;
    std::int32_t window_cols = 0;
    std::int32_t window_rows = 0;
    read_pod(in, sector);
    read_pod(in, tilt);
    read_pod(in, col0);
    read_pod(in, row0);
    read_pod(in, window_cols);
    read_pod(in, window_rows);
    if (window_cols < 0 || window_rows < 0) {
      throw std::runtime_error("PathLossDatabase: negative window");
    }
    std::vector<float> window(static_cast<std::size_t>(window_cols) *
                              static_cast<std::size_t>(window_rows));
    in.read(reinterpret_cast<char*>(window.data()),
            static_cast<std::streamsize>(window.size() * sizeof(float)));
    if (!in) throw std::runtime_error("PathLossDatabase: truncated file");
    db.entries_.insert_or_assign(
        Key{sector, tilt},
        SectorFootprint{db.grid_.cols(), db.grid_.rows(), col0, row0,
                        window_cols, window_rows, std::move(window)});
  }
  return db;
}

BuildingProvider::BuildingProvider(const net::Network* network,
                                   FootprintBuilder builder)
    : network_(network), builder_(std::move(builder)) {
  if (network_ == nullptr) {
    throw std::invalid_argument("BuildingProvider: network must not be null");
  }
}

const SectorFootprint& BuildingProvider::footprint(net::SectorId sector,
                                                   radio::TiltIndex tilt) {
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto [inserted, _] =
      cache_.emplace(key, builder_.build(network_->sector(sector), tilt));
  return inserted->second;
}

ApproxTiltProvider::ApproxTiltProvider(PathLossProvider* inner,
                                       const net::Network* network,
                                       TiltDeltaModel delta_model)
    : inner_(inner), network_(network), delta_model_(delta_model) {
  if (inner_ == nullptr || network_ == nullptr) {
    throw std::invalid_argument(
        "ApproxTiltProvider: inner provider and network must not be null");
  }
}

const SectorFootprint& ApproxTiltProvider::footprint(net::SectorId sector,
                                                     radio::TiltIndex tilt) {
  if (tilt == 0) return inner_->footprint(sector, 0);
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const SectorFootprint& base = inner_->footprint(sector, 0);
  const geo::Point site = network_->sector(sector).position;
  const geo::GridMap& map = grid();
  std::vector<float> window(base.window().begin(), base.window().end());
  for (std::int32_t row = 0; row < base.window_rows(); ++row) {
    for (std::int32_t col = 0; col < base.window_cols(); ++col) {
      auto& value =
          window[static_cast<std::size_t>(row) * base.window_cols() + col];
      if (std::isnan(value)) continue;
      const geo::GridIndex g =
          map.at(base.col0() + col, base.row0() + row);
      const double d = geo::distance_m(map.center_of(g), site);
      value += static_cast<float>(delta_model_.delta_db(d, 0, tilt));
    }
  }
  auto [inserted, _] = cache_.emplace(
      key, SectorFootprint{base.grid_cols(), base.grid_rows(), base.col0(),
                           base.row0(), base.window_cols(), base.window_rows(),
                           std::move(window)});
  return inserted->second;
}

}  // namespace magus::pathloss
