#include "pathloss/database.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pathloss/format.h"
#include "util/checksum.h"
#include "util/thread_pool.h"

namespace magus::pathloss {

namespace {

struct DbMetrics {
  obs::Counter& loads;
  obs::Counter& load_bytes;
  obs::Counter& load_failures;
  obs::Counter& rebuilds;
  obs::Counter& resaves;
  obs::Counter& migrations;

  [[nodiscard]] static DbMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static DbMetrics metrics{
        registry.counter("pathloss.db.loads"),
        registry.counter("pathloss.db.load_bytes"),
        registry.counter("pathloss.db.load_failures"),
        registry.counter("pathloss.db.rebuilds"),
        registry.counter("pathloss.db.resaves"),
        registry.counter("pathloss.db.migrations"),
    };
    return metrics;
  }
};

struct CacheMetrics {
  obs::Counter& lookups;
  obs::Counter& builds;
  obs::Counter& shard_waits;

  [[nodiscard]] static CacheMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static CacheMetrics metrics{
        registry.counter("pathloss.cache.lookups"),
        registry.counter("pathloss.cache.builds"),
        registry.counter("pathloss.cache.shard_waits"),
    };
    return metrics;
  }
};

constexpr std::uint64_t kMagic = format::kMagic;
constexpr std::uint32_t kVersion = format::kVersionEager;  // save() default

/// The pool's wake/handoff overhead beats the per-entry checksum work at
/// small entry counts — BENCH_pathloss.json's 495-entry DB parallel-loaded
/// ~18% slower than serial — so load() stays serial below this many
/// entries. (Measured crossover on the bench box; results are identical
/// either way, only the wall clock moves.)
constexpr std::size_t kSerialLoadCutoff =
    PathLossDatabase::kParallelLoadThreshold;

[[nodiscard]] std::size_t load_threads(std::size_t entries,
                                       std::size_t threads) {
  return entries < kSerialLoadCutoff ? 1 : threads;
}

/// The file's format version, or 0 when unreadable / not a magus db.
[[nodiscard]] std::uint32_t sniff_version(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != format::kMagic) return 0;
  return version;
}

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void append_pod(std::vector<char>& out, const T& value) {
  const auto* p = reinterpret_cast<const char*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// In-memory cursor over a fully read file. Mirrors the stream read_pod's
/// error contract so the parallel loader's messages match the serial ones.
struct ByteReader {
  const char* data = nullptr;
  std::size_t size = 0;
  std::size_t off = 0;

  [[nodiscard]] std::size_t remaining() const { return size - off; }

  template <typename T>
  void read(T& value, const std::string& context) {
    if (remaining() < sizeof(T)) {
      throw std::runtime_error("PathLossDatabase: " + context);
    }
    std::memcpy(&value, data + off, sizeof(T));
    off += sizeof(T);
  }
};

using util::fnv1a;

/// Checksum of one database entry: geometry ints then raw gain bytes, so a
/// flipped bit anywhere in the entry is caught.
[[nodiscard]] std::uint64_t entry_checksum(std::int32_t sector,
                                           std::int32_t tilt,
                                           const SectorFootprint& footprint) {
  const auto window = footprint.window();
  return format::entry_checksum_raw(
      sector, tilt, footprint.col0(), footprint.row0(),
      footprint.window_cols(), footprint.window_rows(), window.data(),
      window.size() * sizeof(float));
}
}  // namespace

PathLossDatabase::PathLossDatabase(geo::GridMap grid)
    : grid_(std::move(grid)) {}

void PathLossDatabase::insert(net::SectorId sector, radio::TiltIndex tilt,
                              SectorFootprint footprint) {
  if (footprint.cell_count() !=
      static_cast<std::size_t>(grid_.cell_count())) {
    throw std::invalid_argument(
        "PathLossDatabase::insert: footprint does not match grid");
  }
  entries_.insert_or_assign(Key{sector, tilt}, std::move(footprint));
}

bool PathLossDatabase::contains(net::SectorId sector,
                                radio::TiltIndex tilt) const {
  return entries_.contains(Key{sector, tilt});
}

const SectorFootprint& PathLossDatabase::footprint(net::SectorId sector,
                                                   radio::TiltIndex tilt) {
  const auto it = entries_.find(Key{sector, tilt});
  if (it == entries_.end()) {
    throw std::out_of_range("PathLossDatabase: missing matrix for sector " +
                            std::to_string(sector) + " tilt " +
                            std::to_string(tilt));
  }
  return it->second;
}

std::size_t PathLossDatabase::resident_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [key, footprint] : entries_) {
    bytes += footprint.resident_bytes();
  }
  return bytes;
}

PathLossDatabase::Probe PathLossDatabase::probe(const std::string& path) {
  Probe result;
  try {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      throw std::runtime_error("PathLossDatabase: cannot open " + path);
    }
    const std::streamoff file_size = in.tellg();
    result.file_bytes = file_size > 0 ? static_cast<std::size_t>(file_size) : 0;
    in.seekg(0, std::ios::beg);

    const auto read_pod = [&](auto& value, const std::string& context) {
      in.read(reinterpret_cast<char*>(&value), sizeof(value));
      if (!in) throw std::runtime_error("PathLossDatabase: " + context);
    };
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    read_pod(magic, "truncated header in " + path);
    read_pod(version, "truncated header in " + path);
    if (magic != kMagic) {
      throw std::runtime_error("PathLossDatabase: bad magic in " + path);
    }
    if (version != kVersion && version != format::kVersionMapped) {
      throw std::runtime_error("PathLossDatabase: unsupported version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kVersion) + " or " +
                               std::to_string(format::kVersionMapped) +
                               ") in " + path);
    }
    if (version == format::kVersionMapped) {
      // v3: the header + directory alone size the file — no payload scan,
      // the same O(directory) work a mapped open does.
      const auto fsize = static_cast<std::uint64_t>(result.file_bytes);
      std::vector<char> front(
          static_cast<std::size_t>(std::min<std::uint64_t>(
              fsize, format::kHeaderBytesV3)));
      in.seekg(0, std::ios::beg);
      in.read(front.data(), static_cast<std::streamsize>(front.size()));
      if (!in) {
        throw std::runtime_error("PathLossDatabase: read failed in " + path);
      }
      if (front.size() >= format::kHeaderBytesV3) {
        // Peek the entry count to size the directory read; a nonsensical
        // count is left for parse_v3 to reject as a truncated directory.
        std::uint64_t count = 0;
        std::memcpy(&count, front.data() + 44, sizeof(count));
        if (count <= (fsize - front.size()) / format::kDirEntryBytes) {
          const std::size_t dir_bytes =
              static_cast<std::size_t>(count) * format::kDirEntryBytes;
          const std::size_t head = front.size();
          front.resize(head + dir_bytes);
          in.read(front.data() + head,
                  static_cast<std::streamsize>(dir_bytes));
          if (!in) {
            throw std::runtime_error("PathLossDatabase: read failed in " +
                                     path);
          }
        }
      }
      const format::V3Directory dir =
          format::parse_v3(front.data(), front.size(), fsize, path);
      result.version = format::kVersionMapped;
      result.cols = dir.cols;
      result.rows = dir.rows;
      result.cell_size_m = dir.cell_size_m;
      result.entry_count = dir.entry_count;
      for (const format::V3Entry& entry : dir.entries) {
        result.mapped_bytes_estimate += entry.window_bytes;  // dB planes
        result.heap_bytes_estimate += entry.window_bytes;    // linear twins
      }
      result.resident_bytes_estimate =
          result.mapped_bytes_estimate + result.heap_bytes_estimate;
      result.ok = true;
      return result;
    }
    result.version = kVersion;
    double min_x = 0.0;
    double min_y = 0.0;
    read_pod(min_x, "truncated header in " + path);
    read_pod(min_y, "truncated header in " + path);
    read_pod(result.cell_size_m, "truncated header in " + path);
    read_pod(result.cols, "truncated header in " + path);
    read_pod(result.rows, "truncated header in " + path);
    if (!(result.cell_size_m > 0.0) || result.cols <= 0 || result.rows <= 0) {
      throw std::runtime_error("PathLossDatabase: invalid grid geometry in " +
                               path);
    }
    read_pod(result.entry_count, "truncated header in " + path);

    // Structural scan only: entry geometry is read, gain bytes are seeked
    // over. Mirrors load()'s front-to-back validation order and messages.
    for (std::uint64_t e = 0; e < result.entry_count; ++e) {
      const std::string entry_context = "entry " + std::to_string(e) + " of " +
                                        std::to_string(result.entry_count);
      std::int32_t geometry[6] = {};  // sector, tilt, col0, row0, wcols, wrows
      std::uint64_t checksum = 0;
      for (std::int32_t& field : geometry) {
        read_pod(field, "truncated " + entry_context + " in " + path);
      }
      read_pod(checksum, "truncated " + entry_context + " in " + path);
      const std::int32_t window_cols = geometry[4];
      const std::int32_t window_rows = geometry[5];
      if (window_cols < 0 || window_rows < 0 || window_cols > result.cols ||
          window_rows > result.rows) {
        throw std::runtime_error("PathLossDatabase: oversized window (" +
                                 entry_context + ") in " + path);
      }
      const std::size_t window_bytes = static_cast<std::size_t>(window_cols) *
                                       static_cast<std::size_t>(window_rows) *
                                       sizeof(float);
      in.seekg(static_cast<std::streamoff>(window_bytes), std::ios::cur);
      if (!in || static_cast<std::streamoff>(in.tellg()) > file_size) {
        throw std::runtime_error("PathLossDatabase: truncated " +
                                 entry_context + " in " + path);
      }
      // Window + the linear twin SectorFootprint precomputes on load.
      result.resident_bytes_estimate += 2 * window_bytes;
    }
    if (static_cast<std::streamoff>(in.tellg()) != file_size) {
      throw std::runtime_error("PathLossDatabase: trailing bytes after " +
                               std::to_string(result.entry_count) +
                               " entries in " + path);
    }
    // An eager v2 load copies every window into the heap alongside its
    // linear twin; nothing is served from a mapping.
    result.heap_bytes_estimate = result.resident_bytes_estimate;
    result.ok = true;
  } catch (const std::runtime_error& error) {
    result.ok = false;
    result.error = error.what();
  }
  return result;
}

void PathLossDatabase::save(const std::string& path,
                            std::size_t threads) const {
  MAGUS_TRACE_SPAN("pathloss.db_save", "io.db");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, grid_.area().min.x_m);
  write_pod(out, grid_.area().min.y_m);
  write_pod(out, grid_.cell_size_m());
  write_pod(out, grid_.cols());
  write_pod(out, grid_.rows());
  write_pod(out, static_cast<std::uint64_t>(entries_.size()));

  // Serialize entries into independent per-entry buffers (the checksum is
  // the expensive part), then write the buffers in key order — the file's
  // bytes are identical for any thread count.
  std::vector<const std::pair<const Key, SectorFootprint>*> items;
  items.reserve(entries_.size());
  for (const auto& item : entries_) items.push_back(&item);
  std::vector<std::vector<char>> buffers(items.size());
  util::ThreadPool pool{threads};
  pool.run(items.size(), [&](std::size_t /*worker*/, std::size_t i) {
    const auto& [key, footprint] = *items[i];
    const auto window = footprint.window();
    std::vector<char>& buf = buffers[i];
    buf.reserve(6 * sizeof(std::int32_t) + sizeof(std::uint64_t) +
                window.size() * sizeof(float));
    append_pod(buf, key.first);
    append_pod(buf, key.second);
    append_pod(buf, footprint.col0());
    append_pod(buf, footprint.row0());
    append_pod(buf, footprint.window_cols());
    append_pod(buf, footprint.window_rows());
    append_pod(buf, entry_checksum(key.first, key.second, footprint));
    const auto* p = reinterpret_cast<const char*>(window.data());
    buf.insert(buf.end(), p, p + window.size() * sizeof(float));
  });
  for (const auto& buf : buffers) {
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  if (!out) throw std::runtime_error("PathLossDatabase: write failed");
}

void PathLossDatabase::save_v3(const std::string& path,
                               std::size_t threads) const {
  MAGUS_TRACE_SPAN("pathloss.db_save", "io.db");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("PathLossDatabase: cannot open " + path);

  std::vector<const std::pair<const Key, SectorFootprint>*> items;
  items.reserve(entries_.size());
  for (const auto& item : entries_) items.push_back(&item);

  // Plane layout in key order: each non-empty gain plane starts on the
  // next page boundary after the previous one (empty windows get no plane
  // and offset 0). Pure arithmetic, so the layout — like the checksums
  // below — is identical for any thread count.
  const std::uint64_t dir_end =
      format::kHeaderBytesV3 + items.size() * format::kDirEntryBytes;
  std::vector<std::uint64_t> offsets(items.size(), 0);
  std::uint64_t payload_end = dir_end;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::size_t window_bytes =
        items[i]->second.window().size() * sizeof(float);
    if (window_bytes == 0) continue;
    offsets[i] = format::align_up_page(payload_end);
    payload_end = offsets[i] + window_bytes;
  }

  // The checksums are the expensive part; fan them out per entry.
  std::vector<std::uint64_t> checksums(items.size(), 0);
  util::ThreadPool pool{threads};
  pool.run(items.size(), [&](std::size_t /*worker*/, std::size_t i) {
    const auto& [key, footprint] = *items[i];
    checksums[i] = entry_checksum(key.first, key.second, footprint);
  });

  std::vector<char> directory;
  directory.reserve(items.size() * format::kDirEntryBytes);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& [key, footprint] = *items[i];
    append_pod(directory, key.first);
    append_pod(directory, key.second);
    append_pod(directory, footprint.col0());
    append_pod(directory, footprint.row0());
    append_pod(directory, footprint.window_cols());
    append_pod(directory, footprint.window_rows());
    append_pod(directory, offsets[i]);
    append_pod(directory, checksums[i]);
  }
  const std::uint64_t directory_checksum =
      fnv1a(directory.data(), directory.size());

  write_pod(out, kMagic);
  write_pod(out, format::kVersionMapped);
  write_pod(out, grid_.area().min.x_m);
  write_pod(out, grid_.area().min.y_m);
  write_pod(out, grid_.cell_size_m());
  write_pod(out, grid_.cols());
  write_pod(out, grid_.rows());
  write_pod(out, static_cast<std::uint64_t>(items.size()));
  write_pod(out, directory_checksum);
  write_pod(out, payload_end);
  out.write(directory.data(), static_cast<std::streamsize>(directory.size()));

  const std::vector<char> zeros(format::kPageBytes, 0);
  std::uint64_t written = dir_end;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto window = items[i]->second.window();
    if (window.empty()) continue;
    std::uint64_t pad = offsets[i] - written;
    while (pad > 0) {
      const auto chunk = static_cast<std::streamsize>(
          std::min<std::uint64_t>(pad, zeros.size()));
      out.write(zeros.data(), chunk);
      pad -= static_cast<std::uint64_t>(chunk);
    }
    out.write(reinterpret_cast<const char*>(window.data()),
              static_cast<std::streamsize>(window.size() * sizeof(float)));
    written = offsets[i] + window.size() * sizeof(float);
  }
  if (!out) throw std::runtime_error("PathLossDatabase: write failed");
}

PathLossDatabase PathLossDatabase::load(const std::string& path,
                                        std::size_t threads) {
  // io.db: the profiler buckets this span as DB I/O (see obs/profiler.h).
  MAGUS_TRACE_SPAN("pathloss.db_load", "io.db");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  DbMetrics::get().loads.add(1);
  const std::streamoff file_size = in.tellg();
  if (file_size > 0) {
    DbMetrics::get().load_bytes.add(static_cast<std::uint64_t>(file_size));
  }
  std::vector<char> bytes(file_size > 0 ? static_cast<std::size_t>(file_size)
                                        : 0);
  in.seekg(0, std::ios::beg);
  if (!bytes.empty()) {
    in.read(bytes.data(), file_size);
    if (!in) {
      throw std::runtime_error("PathLossDatabase: read failed in " + path);
    }
  }
  ByteReader reader{bytes.data(), bytes.size()};

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  reader.read(magic, "truncated header in " + path);
  reader.read(version, "truncated header in " + path);
  if (magic != kMagic) {
    throw std::runtime_error("PathLossDatabase: bad magic in " + path);
  }
  if (version != kVersion && version != format::kVersionMapped) {
    throw std::runtime_error("PathLossDatabase: unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + " or " +
                             std::to_string(format::kVersionMapped) +
                             ") in " + path);
  }
  if (version == format::kVersionMapped) {
    // Eager v3 load: directory-driven instead of a streaming scan, same
    // first-touch semantics as the mapped provider (raw-byte checksum,
    // then construction), same fully-owned result as a v2 load.
    const format::V3Directory dir =
        format::parse_v3(bytes.data(), bytes.size(), bytes.size(), path);
    const geo::Rect v3_area{
        {dir.min_x, dir.min_y},
        {dir.min_x + dir.cols * dir.cell_size_m,
         dir.min_y + dir.rows * dir.cell_size_m}};
    PathLossDatabase db{geo::GridMap{v3_area, dir.cell_size_m}};
    const std::size_t n = dir.entries.size();
    std::vector<SectorFootprint> built(n);
    std::vector<std::string> entry_errors(n);
    util::ThreadPool pool{load_threads(n, threads)};
    pool.run(n, [&](std::size_t /*worker*/, std::size_t i) {
      const format::V3Entry& e = dir.entries[i];
      const std::string entry_context =
          "entry " + std::to_string(i) + " of " + std::to_string(n);
      if (format::entry_checksum_raw(e.sector, e.tilt, e.col0, e.row0,
                                     e.window_cols, e.window_rows,
                                     bytes.data() + e.data_offset,
                                     e.window_bytes) != e.checksum) {
        entry_errors[i] = "PathLossDatabase: checksum mismatch (" +
                          entry_context + ", sector " +
                          std::to_string(e.sector) + " tilt " +
                          std::to_string(e.tilt) + ") in " + path;
        return;
      }
      std::vector<float> window(e.window_bytes / sizeof(float));
      std::memcpy(window.data(), bytes.data() + e.data_offset,
                  e.window_bytes);
      try {
        built[i] = SectorFootprint{dir.cols,      dir.rows,      e.col0,
                                   e.row0,        e.window_cols, e.window_rows,
                                   std::move(window)};
      } catch (const std::invalid_argument&) {
        entry_errors[i] = "PathLossDatabase: " + entry_context +
                          " does not fit the grid in " + path;
      }
    });
    for (const std::string& error : entry_errors) {
      if (!error.empty()) throw std::runtime_error(error);
    }
    for (std::size_t i = 0; i < n; ++i) {
      db.entries_.insert_or_assign(
          Key{dir.entries[i].sector, dir.entries[i].tilt},
          std::move(built[i]));
    }
    return db;
  }
  double min_x = 0.0;
  double min_y = 0.0;
  double cell = 0.0;
  std::int32_t cols = 0;
  std::int32_t rows = 0;
  reader.read(min_x, "truncated header in " + path);
  reader.read(min_y, "truncated header in " + path);
  reader.read(cell, "truncated header in " + path);
  reader.read(cols, "truncated header in " + path);
  reader.read(rows, "truncated header in " + path);
  if (!(cell > 0.0) || cols <= 0 || rows <= 0) {
    throw std::runtime_error("PathLossDatabase: invalid grid geometry in " +
                             path);
  }
  const geo::Rect area{{min_x, min_y},
                       {min_x + cols * cell, min_y + rows * cell}};
  PathLossDatabase db{geo::GridMap{area, cell}};
  std::uint64_t entry_count = 0;
  reader.read(entry_count, "truncated header in " + path);

  // Phase 1, sequential: structural scan. Geometry bounds and truncation
  // are position-dependent (a bad size field shifts every later entry), so
  // they are validated front to back, with the same per-entry check order
  // and messages as the historical streaming loader: oversized window
  // before allocation, then truncation.
  struct PendingEntry {
    std::int32_t sector = 0;
    std::int32_t tilt = 0;
    std::int32_t col0 = 0;
    std::int32_t row0 = 0;
    std::int32_t window_cols = 0;
    std::int32_t window_rows = 0;
    std::uint64_t checksum = 0;
    std::size_t data_off = 0;  ///< window bytes within the file buffer
  };
  std::vector<PendingEntry> pending;
  pending.reserve(entry_count < 1024 ? static_cast<std::size_t>(entry_count)
                                     : 1024);
  for (std::uint64_t e = 0; e < entry_count; ++e) {
    const std::string entry_context =
        "entry " + std::to_string(e) + " of " + std::to_string(entry_count);
    PendingEntry p;
    reader.read(p.sector, "truncated " + entry_context + " in " + path);
    reader.read(p.tilt, "truncated " + entry_context + " in " + path);
    reader.read(p.col0, "truncated " + entry_context + " in " + path);
    reader.read(p.row0, "truncated " + entry_context + " in " + path);
    reader.read(p.window_cols, "truncated " + entry_context + " in " + path);
    reader.read(p.window_rows, "truncated " + entry_context + " in " + path);
    reader.read(p.checksum, "truncated " + entry_context + " in " + path);
    // Bound the window before allocating: a corrupted size field must not
    // turn into a multi-gigabyte allocation or a silent overlap.
    if (p.window_cols < 0 || p.window_rows < 0 || p.window_cols > cols ||
        p.window_rows > rows) {
      throw std::runtime_error("PathLossDatabase: oversized window (" +
                               entry_context + ") in " + path);
    }
    const std::size_t window_bytes = static_cast<std::size_t>(p.window_cols) *
                                     static_cast<std::size_t>(p.window_rows) *
                                     sizeof(float);
    if (reader.remaining() < window_bytes) {
      throw std::runtime_error("PathLossDatabase: truncated " + entry_context +
                               " in " + path);
    }
    p.data_off = reader.off;
    reader.off += window_bytes;
    pending.push_back(p);
  }
  // The header promised exactly entry_count entries; anything further is
  // corruption (e.g. a concatenated or doubly-written file).
  if (reader.remaining() != 0) {
    throw std::runtime_error("PathLossDatabase: trailing bytes after " +
                             std::to_string(entry_count) + " entries in " +
                             path);
  }

  // Phase 2, parallel: per-entry fit check, checksum validation and
  // footprint construction (which precomputes the linear-gain twin) are
  // independent thanks to the per-entry checksums. Failures are captured
  // per entry and the lowest-index one is reported, matching the serial
  // front-to-back scan for any thread count.
  std::vector<SectorFootprint> built(pending.size());
  std::vector<std::string> entry_errors(pending.size());
  util::ThreadPool pool{load_threads(pending.size(), threads)};
  pool.run(pending.size(), [&](std::size_t /*worker*/, std::size_t i) {
    const PendingEntry& p = pending[i];
    const std::string entry_context =
        "entry " + std::to_string(i) + " of " + std::to_string(entry_count);
    std::vector<float> window(static_cast<std::size_t>(p.window_cols) *
                              static_cast<std::size_t>(p.window_rows));
    std::memcpy(window.data(), bytes.data() + p.data_off,
                window.size() * sizeof(float));
    SectorFootprint footprint;
    try {
      footprint = SectorFootprint{cols,          rows,          p.col0,
                                  p.row0,        p.window_cols, p.window_rows,
                                  std::move(window)};
    } catch (const std::invalid_argument&) {
      entry_errors[i] = "PathLossDatabase: " + entry_context +
                        " does not fit the grid in " + path;
      return;
    }
    if (entry_checksum(p.sector, p.tilt, footprint) != p.checksum) {
      entry_errors[i] = "PathLossDatabase: checksum mismatch (" +
                        entry_context + ", sector " +
                        std::to_string(p.sector) + " tilt " +
                        std::to_string(p.tilt) + ") in " + path;
      return;
    }
    built[i] = std::move(footprint);
  });
  for (const std::string& error : entry_errors) {
    if (!error.empty()) throw std::runtime_error(error);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    db.entries_.insert_or_assign(Key{pending[i].sector, pending[i].tilt},
                                 std::move(built[i]));
  }
  return db;
}

PathLossDatabase PathLossDatabase::load_or_rebuild(
    const std::string& path, PathLossProvider& fallback,
    std::span<const net::SectorId> sectors,
    std::span<const radio::TiltIndex> tilts, LoadReport* report,
    std::size_t threads) {
  MAGUS_TRACE_SPAN("pathloss.db_load_or_rebuild", "pathloss");
  LoadReport local;
  LoadReport& out = report != nullptr ? *report : local;
  out = LoadReport{};
  try {
    PathLossDatabase db = load(path, threads);
    const geo::GridMap& expected = fallback.grid();
    if (db.grid_.cols() != expected.cols() ||
        db.grid_.rows() != expected.rows() ||
        db.grid_.cell_size_m() != expected.cell_size_m()) {
      throw std::runtime_error(
          "PathLossDatabase: grid mismatch (file " +
          std::to_string(db.grid_.cols()) + "x" +
          std::to_string(db.grid_.rows()) + " @ " +
          std::to_string(db.grid_.cell_size_m()) + " m, expected " +
          std::to_string(expected.cols()) + "x" +
          std::to_string(expected.rows()) + " @ " +
          std::to_string(expected.cell_size_m()) + " m) in " + path);
    }
    if (sniff_version(path) == kVersion) {
      // v2 read compat + forward migration: re-save the pristine file in
      // place as v3 so the next open can be mapped. Best-effort — a
      // read-only location simply stays v2.
      try {
        db.save_v3(path, threads);
        out.migrated = true;
        DbMetrics::get().migrations.add(1);
      } catch (const std::runtime_error&) {
      }
    }
    return db;
  } catch (const std::runtime_error& error) {
    out.rebuilt = true;
    out.error = error.what();
    DbMetrics::get().load_failures.add(1);
  }
  MAGUS_TRACE_SPAN("pathloss.db_rebuild", "pathloss");
  DbMetrics::get().rebuilds.add(1);
  PathLossDatabase db{fallback.grid()};
  // Fan the footprint fetches out (the provider contract requires
  // concurrency-safe footprint()), then insert in deterministic
  // (sector, tilt) order so the rebuilt database matches the serial one.
  const std::size_t jobs = sectors.size() * tilts.size();
  std::vector<const SectorFootprint*> rebuilt(jobs, nullptr);
  util::ThreadPool pool{threads};
  pool.run(jobs, [&](std::size_t /*worker*/, std::size_t i) {
    const net::SectorId sector = sectors[i / tilts.size()];
    const radio::TiltIndex tilt = tilts[i % tilts.size()];
    rebuilt[i] = &fallback.footprint(sector, tilt);
  });
  for (std::size_t i = 0; i < jobs; ++i) {
    db.insert(sectors[i / tilts.size()], tilts[i % tilts.size()],
              *rebuilt[i]);
  }
  try {
    db.save_v3(path, threads);  // repaired files are written mappable
    out.resaved = true;
    DbMetrics::get().resaves.add(1);
  } catch (const std::runtime_error&) {
    out.resaved = false;  // a read-only location is fine; stay in memory
  }
  return db;
}

BuildingProvider::BuildingProvider(const net::Network* network,
                                   FootprintBuilder builder)
    : network_(network), builder_(std::move(builder)) {
  if (network_ == nullptr) {
    throw std::invalid_argument("BuildingProvider: network must not be null");
  }
}

BuildingProvider::Entry& BuildingProvider::entry_for(net::SectorId sector,
                                                     radio::TiltIndex tilt) {
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  // Mix both key halves so co-sited tilts spread across shards.
  const auto hash = static_cast<std::size_t>(sector) * 31u +
                    static_cast<std::size_t>(tilt + 64);
  Shard& shard = shards_[hash % kShardCount];
  std::unique_lock lock{shard.mutex, std::try_to_lock};
  if (!lock.owns_lock()) {
    CacheMetrics::get().shard_waits.add(1);
    // Contended path only: the span times how long this thread blocked on
    // the shard, and its wait.lock category routes it to the profiler's
    // lock_wait bucket.
    MAGUS_TRACE_SPAN("pathloss.shard_lock", "wait.lock");
    lock.lock();
  }
  return shard.map[key];  // std::map nodes are address-stable
}

const SectorFootprint& BuildingProvider::footprint(net::SectorId sector,
                                                   radio::TiltIndex tilt) {
  CacheMetrics::get().lookups.add(1);
  Entry& entry = entry_for(sector, tilt);
  // The build runs outside every shard lock: footprints for a given
  // (sector, tilt) are deterministic, so which thread builds one does not
  // matter, only that it is built exactly once — the entry's once_flag
  // guarantees that, and a failed build resets it so a later call retries.
  std::call_once(entry.once, [&] {
    if (build_hook_) build_hook_(sector, tilt);
    entry.footprint = builder_.build(network_->sector(sector), tilt);
    built_count_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().builds.add(1);
  });
  return entry.footprint;
}

void BuildingProvider::prebuild(std::span<const net::SectorId> sectors,
                                std::span<const radio::TiltIndex> tilts,
                                std::size_t threads) {
  MAGUS_TRACE_SPAN("pathloss.cache_prebuild", "pathloss");
  util::ThreadPool pool{threads};
  std::vector<FootprintBuilder::Scratch> scratch(pool.size());
  pool.run(sectors.size(), [&](std::size_t worker, std::size_t i) {
    const net::SectorId sector = sectors[i];
    auto footprints = builder_.build_tilts(network_->sector(sector), tilts,
                                           &scratch[worker]);
    for (std::size_t t = 0; t < tilts.size(); ++t) {
      Entry& entry = entry_for(sector, tilts[t]);
      // A lazily built entry wins the race; the values are identical
      // either way, so dropping the fresh copy is fine.
      std::call_once(entry.once, [&] {
        if (build_hook_) build_hook_(sector, tilts[t]);
        entry.footprint = std::move(footprints[t]);
        built_count_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().builds.add(1);
      });
    }
  });
}

ApproxTiltProvider::ApproxTiltProvider(PathLossProvider* inner,
                                       const net::Network* network,
                                       TiltDeltaModel delta_model)
    : inner_(inner), network_(network), delta_model_(delta_model) {
  if (inner_ == nullptr || network_ == nullptr) {
    throw std::invalid_argument(
        "ApproxTiltProvider: inner provider and network must not be null");
  }
}

const SectorFootprint& ApproxTiltProvider::footprint(net::SectorId sector,
                                                     radio::TiltIndex tilt) {
  if (tilt == 0) return inner_->footprint(sector, 0);
  // Serializes concurrent cache access; the inner provider has its own
  // locking, taken strictly after this one (no cycle).
  const std::lock_guard lock{mutex_};
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const SectorFootprint& base = inner_->footprint(sector, 0);
  const geo::Point site = network_->sector(sector).position;
  const geo::GridMap& map = grid();
  std::vector<float> window(base.window().begin(), base.window().end());
  for (std::int32_t row = 0; row < base.window_rows(); ++row) {
    for (std::int32_t col = 0; col < base.window_cols(); ++col) {
      auto& value =
          window[static_cast<std::size_t>(row) * base.window_cols() + col];
      if (std::isnan(value)) continue;
      const geo::GridIndex g =
          map.at(base.col0() + col, base.row0() + row);
      const double d = geo::distance_m(map.center_of(g), site);
      value += static_cast<float>(delta_model_.delta_db(d, 0, tilt));
    }
  }
  auto [inserted, _] = cache_.emplace(
      key, SectorFootprint{base.grid_cols(), base.grid_rows(), base.col0(),
                           base.row0(), base.window_cols(), base.window_rows(),
                           std::move(window)});
  return inserted->second;
}

}  // namespace magus::pathloss
