#include "pathloss/mapped_database.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#define MAGUS_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#define MAGUS_HAS_MMAP 0
#endif

namespace magus::pathloss {

namespace {

struct MmapMetrics {
  obs::Counter& opens;
  obs::Counter& first_touches;
  obs::Counter& touch_bytes;
  obs::Counter& checksum_failures;
  obs::Counter& releases;
  obs::Counter& released_bytes;
  obs::Gauge& resident_bytes;

  [[nodiscard]] static MmapMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static MmapMetrics metrics{
        registry.counter("pathloss.mmap.opens"),
        registry.counter("pathloss.mmap.first_touches"),
        registry.counter("pathloss.mmap.touch_bytes"),
        registry.counter("pathloss.mmap.checksum_failures"),
        registry.counter("pathloss.mmap.releases"),
        registry.counter("pathloss.mmap.released_bytes"),
        registry.gauge("pathloss.mmap.resident_bytes"),
    };
    return metrics;
  }
};

[[nodiscard]] bool mmap_disabled_by_env() {
  const char* env = std::getenv("MAGUS_NO_MMAP");
  return env != nullptr && *env != '\0' && *env != '0';
}

}  // namespace

format::V3Directory MappedPathLossDatabase::open_directory(
    const std::string& path, std::size_t& file_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("PathLossDatabase: cannot open " + path);
  const std::streamoff size = in.tellg();
  file_bytes = size > 0 ? static_cast<std::size_t>(size) : 0;
  in.seekg(0, std::ios::beg);

  // Stream in the header, peek the entry count, then the directory — the
  // only bytes an open ever reads. parse_v3 does all validation,
  // including rejecting a file too short for the directory it promises.
  std::vector<char> front(
      std::min<std::size_t>(file_bytes, format::kHeaderBytesV3));
  in.read(front.data(), static_cast<std::streamsize>(front.size()));
  if (!in) throw std::runtime_error("PathLossDatabase: read failed in " + path);
  if (front.size() >= format::kHeaderBytesV3) {
    std::uint64_t count = 0;
    std::memcpy(&count, front.data() + 44, sizeof(count));
    if (count <= (file_bytes - front.size()) / format::kDirEntryBytes) {
      const std::size_t head = front.size();
      const std::size_t dir_bytes =
          static_cast<std::size_t>(count) * format::kDirEntryBytes;
      front.resize(head + dir_bytes);
      in.read(front.data() + head, static_cast<std::streamsize>(dir_bytes));
      if (!in) {
        throw std::runtime_error("PathLossDatabase: read failed in " + path);
      }
    }
  }
  return format::parse_v3(front.data(), front.size(), file_bytes, path);
}

MappedPathLossDatabase::MappedPathLossDatabase(const std::string& path)
    : path_(path),
      dir_(open_directory(path_, file_bytes_)),
      grid_(geo::Rect{{dir_.min_x, dir_.min_y},
                      {dir_.min_x + dir_.cols * dir_.cell_size_m,
                       dir_.min_y + dir_.rows * dir_.cell_size_m}},
            dir_.cell_size_m) {
  MAGUS_TRACE_SPAN("pathloss.mmap_open", "io.db");
  try {
#if MAGUS_HAS_MMAP
    if (!mmap_disabled_by_env()) {
      const int fd = ::open(path_.c_str(), O_RDONLY);
      if (fd < 0) {
        throw std::runtime_error("PathLossDatabase: cannot open " + path_);
      }
      void* map =
          ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps the file alive
      if (map == MAP_FAILED) {
        throw std::runtime_error(
            "MappedPathLossDatabase: mmap failed for " + path_);
      }
      map_ = static_cast<const std::byte*>(map);
      map_length_ = file_bytes_;
    }
#endif
    count_ = dir_.entries.size();
    std::vector<std::size_t> order(count_);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const format::V3Entry& ea = dir_.entries[a];
      const format::V3Entry& eb = dir_.entries[b];
      return std::pair{ea.sector, ea.tilt} < std::pair{eb.sector, eb.tilt};
    });
    keys_.reserve(count_);
    entries_ = std::make_unique<Entry[]>(count_);
    for (std::size_t i = 0; i < count_; ++i) {
      const format::V3Entry& meta = dir_.entries[order[i]];
      keys_.emplace_back(meta.sector, meta.tilt);
      entries_[i].meta = meta;
      if (map_ != nullptr) mapped_bytes_ += meta.window_bytes;
    }
    for (std::size_t i = 1; i < count_; ++i) {
      if (keys_[i] == keys_[i - 1]) {
        throw std::runtime_error(
            "PathLossDatabase: duplicate entry for sector " +
            std::to_string(keys_[i].first) + " tilt " +
            std::to_string(keys_[i].second) + " in " + path_);
      }
    }
    dir_.entries.clear();
    dir_.entries.shrink_to_fit();
  } catch (...) {
    unmap();
    throw;
  }
  MmapMetrics::get().opens.add(1);
}

MappedPathLossDatabase::~MappedPathLossDatabase() { unmap(); }

void MappedPathLossDatabase::unmap() noexcept {
#if MAGUS_HAS_MMAP
  if (map_ != nullptr) {
    ::munmap(const_cast<void*>(static_cast<const void*>(map_)), map_length_);
  }
#endif
  map_ = nullptr;
  map_length_ = 0;
}

MappedPathLossDatabase::Entry* MappedPathLossDatabase::find(
    net::SectorId sector, radio::TiltIndex tilt) {
  const std::pair<std::int32_t, std::int32_t> key{sector, tilt};
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &entries_[static_cast<std::size_t>(it - keys_.begin())];
}

const MappedPathLossDatabase::Entry* MappedPathLossDatabase::find(
    net::SectorId sector, radio::TiltIndex tilt) const {
  return const_cast<MappedPathLossDatabase*>(this)->find(sector, tilt);
}

bool MappedPathLossDatabase::contains(net::SectorId sector,
                                      radio::TiltIndex tilt) const {
  return find(sector, tilt) != nullptr;
}

void MappedPathLossDatabase::materialize(Entry& entry) {
  if (entry.ready.load(std::memory_order_acquire)) return;
  const std::lock_guard lock{entry.mutex};
  if (entry.ready.load(std::memory_order_relaxed)) return;

  const format::V3Entry& meta = entry.meta;
  const float* plane = nullptr;
  if (map_ != nullptr) {
    plane = reinterpret_cast<const float*>(map_ + meta.data_offset);
  } else if (meta.window_bytes > 0) {
    // Positioned-read fallback: same laziness and validation order, the
    // plane just lives in an entry-owned heap buffer. A fresh stream per
    // touch keeps this path lock-free across entries.
    entry.fallback_plane.resize(meta.window_bytes / sizeof(float));
    std::ifstream in(path_, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(meta.data_offset));
    in.read(reinterpret_cast<char*>(entry.fallback_plane.data()),
            static_cast<std::streamsize>(meta.window_bytes));
    if (!in) {
      entry.fallback_plane = std::vector<float>{};
      throw std::runtime_error("PathLossDatabase: read failed in " + path_);
    }
    plane = entry.fallback_plane.data();
  }

  // First-touch integrity: the checksum runs over the raw (geometry +
  // gain) bytes exactly as save wrote them, before any footprint exists.
  if (format::entry_checksum_raw(meta.sector, meta.tilt, meta.col0,
                                 meta.row0, meta.window_cols,
                                 meta.window_rows, plane,
                                 meta.window_bytes) != meta.checksum) {
    MmapMetrics::get().checksum_failures.add(1);
    entry.fallback_plane = std::vector<float>{};
    throw std::runtime_error(
        "MappedPathLossDatabase: checksum mismatch (sector " +
        std::to_string(meta.sector) + " tilt " + std::to_string(meta.tilt) +
        ") in " + path_);
  }
  try {
    entry.fp = SectorFootprint{grid_.cols(),    grid_.rows(),
                               meta.col0,       meta.row0,
                               meta.window_cols, meta.window_rows,
                               plane};
  } catch (const std::invalid_argument& error) {
    entry.fallback_plane = std::vector<float>{};
    throw std::runtime_error("MappedPathLossDatabase: " +
                             std::string{error.what()} + " in " + path_);
  }

  const std::size_t bytes =
      entry.fp.resident_bytes() +
      entry.fallback_plane.capacity() * sizeof(float);
  const std::size_t now =
      heap_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  touched_.fetch_add(1, std::memory_order_relaxed);
  MmapMetrics& metrics = MmapMetrics::get();
  metrics.first_touches.add(1);
  metrics.touch_bytes.add(meta.window_bytes);
  metrics.resident_bytes.set(static_cast<double>(now));
  entry.ready.store(true, std::memory_order_release);
}

const SectorFootprint& MappedPathLossDatabase::footprint(
    net::SectorId sector, radio::TiltIndex tilt) {
  Entry* entry = find(sector, tilt);
  if (entry == nullptr) {
    throw std::out_of_range(
        "MappedPathLossDatabase: missing matrix for sector " +
        std::to_string(sector) + " tilt " + std::to_string(tilt));
  }
  materialize(*entry);
  return entry->fp;
}

std::size_t MappedPathLossDatabase::release_residency() {
  std::size_t freed = 0;
  std::size_t released_entries = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    Entry& entry = entries_[i];
    const std::lock_guard lock{entry.mutex};
    if (!entry.ready.load(std::memory_order_relaxed)) continue;
    entry.ready.store(false, std::memory_order_release);
    freed += entry.fp.resident_bytes() +
             entry.fallback_plane.capacity() * sizeof(float);
    entry.fp = SectorFootprint{};
    entry.fallback_plane = std::vector<float>{};
    ++released_entries;
  }
  if (released_entries == 0) return 0;
  touched_.fetch_sub(released_entries, std::memory_order_relaxed);
  const std::size_t now =
      heap_bytes_.fetch_sub(freed, std::memory_order_relaxed) - freed;
  MmapMetrics& metrics = MmapMetrics::get();
  metrics.releases.add(1);
  metrics.released_bytes.add(freed);
  metrics.resident_bytes.set(static_cast<double>(now));
  return freed;
}

}  // namespace magus::pathloss
