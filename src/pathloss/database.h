// Path-loss providers: the interface the analysis model consumes, plus an
// in-memory database with a versioned binary file format (our stand-in for
// the operator's Atoll feed, which is "refreshed periodically" — §4.2) and
// two computing providers (faithful per-tilt rebuild vs the paper's
// tilt-delta approximation).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "geo/grid_map.h"
#include "net/network.h"
#include "pathloss/builder.h"
#include "pathloss/footprint.h"
#include "pathloss/tilt_delta.h"

namespace magus::pathloss {

/// Source of L_b(T, g) matrices. Implementations may build lazily, so the
/// accessor is non-const; returned references stay valid for the provider's
/// lifetime. footprint() must be safe to call concurrently: a provider is
/// shared (via model::MarketContext) by every evaluation thread, so the
/// lazily-caching implementations serialize cache access internally.
class PathLossProvider {
 public:
  virtual ~PathLossProvider() = default;

  [[nodiscard]] virtual const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) = 0;
  [[nodiscard]] virtual const geo::GridMap& grid() const = 0;
};

/// Fully materialized database, e.g. loaded from disk.
class PathLossDatabase final : public PathLossProvider {
 public:
  explicit PathLossDatabase(geo::GridMap grid);

  /// Inserts or replaces the matrix for (sector, tilt). Throws
  /// std::invalid_argument if the footprint's cell count mismatches the grid.
  void insert(net::SectorId sector, radio::TiltIndex tilt,
              SectorFootprint footprint);

  [[nodiscard]] bool contains(net::SectorId sector,
                              radio::TiltIndex tilt) const;
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Throws std::out_of_range when the matrix is missing.
  [[nodiscard]] const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) override;

  [[nodiscard]] const geo::GridMap& grid() const override { return grid_; }

  /// Binary serialization (versioned, sparse, integrity-checked). The v2
  /// format carries a total entry count in the header and a per-entry
  /// FNV-1a checksum over the entry's geometry and gain bytes, so a
  /// truncated, bit-flipped or oversized file is rejected with a specific
  /// std::runtime_error message ("truncated header", "bad magic",
  /// "unsupported version", "oversized window", "checksum mismatch",
  /// "entry does not fit the grid", "truncated entry", "trailing bytes")
  /// instead of being silently mis-read into the model.
  void save(const std::string& path) const;
  [[nodiscard]] static PathLossDatabase load(const std::string& path);

  /// Outcome report for load_or_rebuild.
  struct LoadReport {
    bool rebuilt = false;    ///< true when the file was unusable
    bool resaved = false;    ///< true when the rebuilt db was written back
    std::string error;       ///< the load failure message, when rebuilt
  };

  /// Loads `path`; when the file is missing/corrupted/mismatched, falls
  /// back to recomputing every (sector, tilt) pair from `fallback` (e.g. a
  /// BuildingProvider over the propagation model) and best-effort re-saves
  /// the repaired database to `path`. A loaded file whose grid disagrees
  /// with `fallback.grid()` counts as mismatched and triggers the rebuild
  /// too. `report`, when non-null, says what happened.
  [[nodiscard]] static PathLossDatabase load_or_rebuild(
      const std::string& path, PathLossProvider& fallback,
      std::span<const net::SectorId> sectors,
      std::span<const radio::TiltIndex> tilts, LoadReport* report = nullptr);

 private:
  using Key = std::pair<std::int32_t, std::int32_t>;

  geo::GridMap grid_;
  std::map<Key, SectorFootprint> entries_;
};

/// Computes matrices on demand from the propagation model and caches them.
/// Faithful tilt handling: each (sector, tilt) gets a full rebuild.
class BuildingProvider final : public PathLossProvider {
 public:
  /// `network` must outlive the provider; `builder` is copied.
  BuildingProvider(const net::Network* network, FootprintBuilder builder);

  [[nodiscard]] const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) override;
  [[nodiscard]] const geo::GridMap& grid() const override {
    return builder_.grid();
  }

  /// Number of matrices built so far (for the ablation bench's cost story).
  [[nodiscard]] std::size_t built_count() const { return cache_.size(); }

 private:
  const net::Network* network_;
  FootprintBuilder builder_;
  /// Guards cache_; std::map node stability keeps returned references
  /// valid across later insertions.
  std::mutex mutex_;
  std::map<std::pair<std::int32_t, std::int32_t>, SectorFootprint> cache_;
};

/// Paper-mode tilt approximation: tilt 0 comes from the inner provider;
/// other tilts are derived by applying one global distance-indexed delta
/// (§5). Much cheaper than per-tilt rebuilds, slightly less accurate.
class ApproxTiltProvider final : public PathLossProvider {
 public:
  /// `inner` and `network` must outlive the provider.
  ApproxTiltProvider(PathLossProvider* inner, const net::Network* network,
                     TiltDeltaModel delta_model);

  [[nodiscard]] const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) override;
  [[nodiscard]] const geo::GridMap& grid() const override {
    return inner_->grid();
  }

 private:
  PathLossProvider* inner_;
  const net::Network* network_;
  TiltDeltaModel delta_model_;
  std::mutex mutex_;
  std::map<std::pair<std::int32_t, std::int32_t>, SectorFootprint> cache_;
};

}  // namespace magus::pathloss
