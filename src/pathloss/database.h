// Path-loss providers: the interface the analysis model consumes, plus an
// in-memory database with a versioned binary file format (our stand-in for
// the operator's Atoll feed, which is "refreshed periodically" — §4.2) and
// two computing providers (faithful per-tilt rebuild vs the paper's
// tilt-delta approximation).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "geo/grid_map.h"
#include "net/network.h"
#include "pathloss/builder.h"
#include "pathloss/footprint.h"
#include "pathloss/tilt_delta.h"

namespace magus::pathloss {

/// Source of L_b(T, g) matrices. Implementations may build lazily, so the
/// accessor is non-const; returned references stay valid for the provider's
/// lifetime. footprint() must be safe to call concurrently: a provider is
/// shared (via model::MarketContext) by every evaluation thread, so the
/// lazily-caching implementations serialize cache access internally.
class PathLossProvider {
 public:
  virtual ~PathLossProvider() = default;

  [[nodiscard]] virtual const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) = 0;
  [[nodiscard]] virtual const geo::GridMap& grid() const = 0;
};

/// Fully materialized database, e.g. loaded from disk.
class PathLossDatabase final : public PathLossProvider {
 public:
  explicit PathLossDatabase(geo::GridMap grid);

  /// Inserts or replaces the matrix for (sector, tilt). Throws
  /// std::invalid_argument if the footprint's cell count mismatches the grid.
  void insert(net::SectorId sector, radio::TiltIndex tilt,
              SectorFootprint footprint);

  [[nodiscard]] bool contains(net::SectorId sector,
                              radio::TiltIndex tilt) const;
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Heap bytes resident across all entries (gain windows + linear twins).
  /// This is what the fleet MarketStore accounts against its byte budget —
  /// a whole-fleet footprint never has to be resident at once.
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Throws std::out_of_range when the matrix is missing.
  [[nodiscard]] const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) override;

  [[nodiscard]] const geo::GridMap& grid() const override { return grid_; }

  /// Binary serialization (versioned, sparse, integrity-checked). The v2
  /// format carries a total entry count in the header and a per-entry
  /// FNV-1a checksum over the entry's geometry and gain bytes, so a
  /// truncated, bit-flipped or oversized file is rejected with a specific
  /// std::runtime_error message ("truncated header", "bad magic",
  /// "unsupported version", "oversized window", "checksum mismatch",
  /// "entry does not fit the grid", "truncated entry", "trailing bytes")
  /// instead of being silently mis-read into the model.
  ///
  /// `threads` parallelizes the per-entry work — checksum computation on
  /// save; checksum validation plus footprint construction (the 10^(g/10)
  /// precompute) on load — across a util::ThreadPool (0 = hardware
  /// concurrency). The per-entry checksums make entries independently
  /// verifiable, so validation fans out naturally. Saved bytes and loaded
  /// databases are identical for any thread count; when several entries
  /// are corrupted, the reported error is the lowest-index one, matching
  /// the serial scan.
  ///
  /// load() accepts both the v2 stream format and the v3 page-aligned
  /// format (see pathloss/format.h) and materializes either eagerly;
  /// save() writes v2, save_v3() writes v3. Below kParallelLoadThreshold
  /// entries load() runs single-threaded regardless of `threads`: at small
  /// entry counts the pool's wake/handoff overhead exceeds the checksum
  /// work (measured crossover on the bench box; BENCH_pathloss.json's 495
  /// entries parallel-loaded ~18% *slower* than serial before this).
  static constexpr std::size_t kParallelLoadThreshold = 1024;
  void save(const std::string& path, std::size_t threads = 1) const;
  /// Writes the v3 page-aligned format: header + checksummed directory +
  /// page-aligned raw gain planes. Byte-identical output for any thread
  /// count. The file loads eagerly via load() or zero-copy via
  /// MappedPathLossDatabase (mapped_database.h).
  void save_v3(const std::string& path, std::size_t threads = 1) const;
  [[nodiscard]] static PathLossDatabase load(const std::string& path,
                                             std::size_t threads = 1);

  /// Header-and-geometry summary of a database file, read without loading
  /// (or checksumming) any gain bytes. The fleet MarketStore's cheap
  /// "open" entry point: it sizes a market's resident footprint before
  /// deciding to load, and a probe that fails structurally predicts that
  /// load() would throw too (checksum corruption is only caught by the
  /// real load).
  struct Probe {
    bool ok = false;
    std::string error;        ///< load()'s message, when !ok
    std::uint32_t version = 0;  ///< file format version (2 or 3), when ok
    std::int32_t cols = 0;
    std::int32_t rows = 0;
    double cell_size_m = 0.0;
    std::uint64_t entry_count = 0;
    std::size_t file_bytes = 0;
    /// Sum of window bytes, doubled for the in-memory linear twins — what
    /// resident_bytes() of the eagerly loaded database will roughly be.
    std::size_t resident_bytes_estimate = 0;
    /// v3 split of the estimate: bytes a MappedPathLossDatabase would
    /// serve straight from the file mapping (the dB gain planes)...
    std::size_t mapped_bytes_estimate = 0;
    /// ...vs bytes it would heap-allocate at full residency (the linear
    /// twins). For v2 files heap == resident_bytes_estimate and mapped ==
    /// 0: an eager load copies everything.
    std::size_t heap_bytes_estimate = 0;
  };
  [[nodiscard]] static Probe probe(const std::string& path);

  /// Outcome report for load_or_rebuild.
  struct LoadReport {
    bool rebuilt = false;    ///< true when the file was unusable
    bool resaved = false;    ///< true when the rebuilt db was written back
    /// True when a pristine v2 file was loaded and re-written as v3 in
    /// place (read compat + forward migration; rebuilt stays false).
    bool migrated = false;
    std::string error;       ///< the load failure message, when rebuilt
  };

  /// Loads `path` (v2 or v3); when the file is missing/corrupted/
  /// mismatched, falls back to recomputing every (sector, tilt) pair from
  /// `fallback` (e.g. a BuildingProvider over the propagation model) and
  /// best-effort re-saves the repaired database to `path` — in the v3
  /// format, so the repaired file is mappable. A loaded file whose grid
  /// disagrees with `fallback.grid()` counts as mismatched and triggers
  /// the rebuild too. A *pristine* v2 file is migrated: re-saved as v3 in
  /// place (best-effort; report->migrated). `report`, when non-null, says
  /// what happened. `threads` applies to the load, the rebuild
  /// (fallback.footprint is required to be concurrency-safe, per the
  /// provider contract) and the re-save; the resulting database is
  /// identical for any thread count.
  [[nodiscard]] static PathLossDatabase load_or_rebuild(
      const std::string& path, PathLossProvider& fallback,
      std::span<const net::SectorId> sectors,
      std::span<const radio::TiltIndex> tilts, LoadReport* report = nullptr,
      std::size_t threads = 1);

 private:
  using Key = std::pair<std::int32_t, std::int32_t>;

  geo::GridMap grid_;
  std::map<Key, SectorFootprint> entries_;
};

/// Computes matrices on demand from the propagation model and caches them.
/// Faithful tilt handling: each (sector, tilt) gets a full rebuild.
//
/// The cache is sharded by key with per-entry build-once semantics: a
/// lookup takes its shard's mutex only long enough to pin the entry node
/// (std::map nodes are address-stable), then builds outside any lock under
/// the entry's std::once_flag. Concurrent fetches of *different* keys
/// never serialize behind one build — a cache miss on one sector used to
/// stall every evaluation worker behind a single global mutex.
class BuildingProvider final : public PathLossProvider {
 public:
  /// `network` must outlive the provider; `builder` is copied.
  BuildingProvider(const net::Network* network, FootprintBuilder builder);

  [[nodiscard]] const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) override;
  [[nodiscard]] const geo::GridMap& grid() const override {
    return builder_.grid();
  }

  /// Builds every (sector, tilt) matrix up front across `threads` workers
  /// (0 = hardware concurrency) and installs them in the cache, so later
  /// footprint() calls are pure lookups. Per-sector jobs share radial
  /// profiles and isotropic planes across tilts (FootprintBuilder::
  /// build_tilts); entries some thread already built lazily are kept —
  /// both paths produce bitwise-identical matrices.
  void prebuild(std::span<const net::SectorId> sectors,
                std::span<const radio::TiltIndex> tilts,
                std::size_t threads = 0);

  /// Number of matrices built so far (for the ablation bench's cost story).
  [[nodiscard]] std::size_t built_count() const {
    return built_count_.load(std::memory_order_relaxed);
  }

  /// Test hook, called at the start of every cache-miss build — outside
  /// all shard locks, before any work. Lets tests stall one key's build
  /// and verify other keys stay servable. Set before sharing the provider
  /// across threads; not synchronized itself.
  void set_build_hook(
      std::function<void(net::SectorId, radio::TiltIndex)> hook) {
    build_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    std::once_flag once;
    SectorFootprint footprint;
  };
  /// Cache-line-padded so concurrent lookups on different shards never
  /// false-share the mutexes.
  struct alignas(64) Shard {
    std::mutex mutex;
    std::map<std::pair<std::int32_t, std::int32_t>, Entry> map;
  };
  static constexpr std::size_t kShardCount = 16;

  /// Pins the (stable) cache node for a key, creating it if needed. Holds
  /// the shard mutex only for the map operation, never across a build.
  [[nodiscard]] Entry& entry_for(net::SectorId sector, radio::TiltIndex tilt);

  const net::Network* network_;
  FootprintBuilder builder_;
  std::function<void(net::SectorId, radio::TiltIndex)> build_hook_;
  std::atomic<std::size_t> built_count_{0};
  std::array<Shard, kShardCount> shards_;
};

/// Paper-mode tilt approximation: tilt 0 comes from the inner provider;
/// other tilts are derived by applying one global distance-indexed delta
/// (§5). Much cheaper than per-tilt rebuilds, slightly less accurate.
class ApproxTiltProvider final : public PathLossProvider {
 public:
  /// `inner` and `network` must outlive the provider.
  ApproxTiltProvider(PathLossProvider* inner, const net::Network* network,
                     TiltDeltaModel delta_model);

  [[nodiscard]] const SectorFootprint& footprint(
      net::SectorId sector, radio::TiltIndex tilt) override;
  [[nodiscard]] const geo::GridMap& grid() const override {
    return inner_->grid();
  }

 private:
  PathLossProvider* inner_;
  const net::Network* network_;
  TiltDeltaModel delta_model_;
  std::mutex mutex_;
  std::map<std::pair<std::int32_t, std::int32_t>, SectorFootprint> cache_;
};

}  // namespace magus::pathloss
