#include "pathloss/footprint.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/simd.h"

namespace magus::pathloss {

SectorFootprint::SectorFootprint(std::vector<float> full_dense,
                                 std::int32_t grid_cols,
                                 std::int32_t grid_rows)
    : grid_cols_(grid_cols), grid_rows_(grid_rows) {
  if (full_dense.size() != static_cast<std::size_t>(grid_cols) *
                               static_cast<std::size_t>(grid_rows)) {
    throw std::invalid_argument("SectorFootprint: dense size mismatch");
  }
  // Find the bounding window of covered cells.
  std::int32_t min_col = grid_cols;
  std::int32_t max_col = -1;
  std::int32_t min_row = grid_rows;
  std::int32_t max_row = -1;
  for (std::int32_t row = 0; row < grid_rows; ++row) {
    for (std::int32_t col = 0; col < grid_cols; ++col) {
      const float v =
          full_dense[static_cast<std::size_t>(row) * grid_cols + col];
      if (std::isnan(v) || v <= kFloorDb) continue;
      min_col = std::min(min_col, col);
      max_col = std::max(max_col, col);
      min_row = std::min(min_row, row);
      max_row = std::max(max_row, row);
    }
  }
  if (max_col < min_col) {  // empty footprint
    col0_ = row0_ = 0;
    window_cols_ = window_rows_ = 0;
    return;
  }
  col0_ = min_col;
  row0_ = min_row;
  window_cols_ = max_col - min_col + 1;
  window_rows_ = max_row - min_row + 1;
  window_.resize(static_cast<std::size_t>(window_cols_) * window_rows_);
  for (std::int32_t row = 0; row < window_rows_; ++row) {
    const auto* src = full_dense.data() +
                      static_cast<std::size_t>(row0_ + row) * grid_cols +
                      col0_;
    std::copy(src, src + window_cols_,
              window_.begin() + static_cast<std::size_t>(row) * window_cols_);
  }
  view_ = window_.data();
  apply_floor_and_count();
}

SectorFootprint::SectorFootprint(std::int32_t grid_cols,
                                 std::int32_t grid_rows, std::int32_t col0,
                                 std::int32_t row0, std::int32_t window_cols,
                                 std::int32_t window_rows,
                                 std::vector<float> window)
    : grid_cols_(grid_cols),
      grid_rows_(grid_rows),
      col0_(col0),
      row0_(row0),
      window_cols_(window_cols),
      window_rows_(window_rows),
      window_(std::move(window)) {
  if (window_.size() != static_cast<std::size_t>(window_cols_) *
                            static_cast<std::size_t>(window_rows_)) {
    throw std::invalid_argument("SectorFootprint: window size mismatch");
  }
  if (col0_ < 0 || row0_ < 0 || col0_ + window_cols_ > grid_cols_ ||
      row0_ + window_rows_ > grid_rows_) {
    throw std::invalid_argument("SectorFootprint: window outside grid");
  }
  view_ = window_.data();
  apply_floor_and_count();
}

SectorFootprint::SectorFootprint(std::int32_t grid_cols,
                                 std::int32_t grid_rows, std::int32_t col0,
                                 std::int32_t row0, std::int32_t window_cols,
                                 std::int32_t window_rows,
                                 const float* borrowed_window)
    : grid_cols_(grid_cols),
      grid_rows_(grid_rows),
      col0_(col0),
      row0_(row0),
      window_cols_(window_cols),
      window_rows_(window_rows),
      borrowed_(true),
      view_(borrowed_window) {
  if (window_cols_ < 0 || window_rows_ < 0) {
    throw std::invalid_argument("SectorFootprint: window size mismatch");
  }
  if (col0_ < 0 || row0_ < 0 || col0_ + window_cols_ > grid_cols_ ||
      row0_ + window_rows_ > grid_rows_) {
    throw std::invalid_argument("SectorFootprint: window outside grid");
  }
  if (view_ == nullptr &&
      static_cast<std::size_t>(window_cols_) * window_rows_ != 0) {
    throw std::invalid_argument("SectorFootprint: null borrowed window");
  }
  count_borrowed_and_build_linear();
}

SectorFootprint::SectorFootprint(const SectorFootprint& other)
    : grid_cols_(other.grid_cols_),
      grid_rows_(other.grid_rows_),
      col0_(other.col0_),
      row0_(other.row0_),
      window_cols_(other.window_cols_),
      window_rows_(other.window_rows_),
      covered_count_(other.covered_count_),
      borrowed_(other.borrowed_),
      window_(other.window_),
      view_(other.borrowed_ ? other.view_ : window_.data()),
      linear_(other.linear_) {
  if (!borrowed_ && window_.empty()) view_ = nullptr;
}

SectorFootprint& SectorFootprint::operator=(const SectorFootprint& other) {
  if (this != &other) *this = SectorFootprint{other};  // copy, then move
  return *this;
}

void SectorFootprint::apply_floor_and_count() {
  namespace vx = util::simd;
  const auto nan = std::numeric_limits<float>::quiet_NaN();
  covered_count_ = 0;
  linear_.assign(window_.size(), 0.0f);
  constexpr std::size_t K = vx::kWidth;
  const vx::vfloat vfloor = vx::set1_f(kFloorDb);
  const vx::vfloat vnan = vx::set1_f(nan);
  std::size_t i = 0;
  for (; i + K <= window_.size(); i += K) {
    // v <= kFloorDb is an ordered compare — false for NaN lanes — so the
    // scalar !isnan(v) guard is already implied by the mask.
    const vx::vfloat v = vx::loadu_f(window_.data() + i);
    const vx::vfloat floored =
        vx::blend_f(vx::cmp_le_f(v, vfloor), vnan, v);
    vx::storeu_f(window_.data() + i, floored);
    unsigned bits = vx::to_bits(vx::m_not(vx::isnan_f(floored)));
    covered_count_ += std::popcount(bits);
    // The dB -> linear pow stays scalar (libm transcendental), one call
    // per covered lane. Same expression as util::dbm_to_mw, hoisted to
    // construction time: one pow here saves one per rebuild/mutation
    // sweep forever after.
    while (bits != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      linear_[i + lane] = static_cast<float>(
          std::pow(10.0, static_cast<double>(window_[i + lane]) / 10.0));
    }
  }
  for (; i < window_.size(); ++i) {
    float& v = window_[i];
    if (!std::isnan(v) && v <= kFloorDb) v = nan;
    if (!std::isnan(v)) {
      ++covered_count_;
      linear_[i] = static_cast<float>(
          std::pow(10.0, static_cast<double>(v) / 10.0));
    }
  }
}

void SectorFootprint::count_borrowed_and_build_linear() {
  namespace vx = util::simd;
  const std::size_t total = static_cast<std::size_t>(window_cols_) *
                            static_cast<std::size_t>(window_rows_);
  covered_count_ = 0;
  linear_.assign(total, 0.0f);
  // Same covered-count + linear-twin pass as apply_floor_and_count, minus
  // the floor store: the borrowed window is read-only (it aliases a
  // PROT_READ mapping). A lane where v <= kFloorDb is an ordered compare —
  // a *finite* sub-floor gain — which the owning constructors would have
  // floored to NaN in place; its presence means the bytes were not written
  // by save(), so reject rather than silently diverge from the eager load.
  constexpr std::size_t K = vx::kWidth;
  const vx::vfloat vfloor = vx::set1_f(kFloorDb);
  std::size_t i = 0;
  for (; i + K <= total; i += K) {
    const vx::vfloat v = vx::loadu_f(view_ + i);
    if (vx::to_bits(vx::cmp_le_f(v, vfloor)) != 0) {
      throw std::invalid_argument(
          "SectorFootprint: non-canonical borrowed window (unfloored gain)");
    }
    unsigned bits = vx::to_bits(vx::m_not(vx::isnan_f(v)));
    covered_count_ += std::popcount(bits);
    while (bits != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      linear_[i + lane] = static_cast<float>(
          std::pow(10.0, static_cast<double>(view_[i + lane]) / 10.0));
    }
  }
  for (; i < total; ++i) {
    const float v = view_[i];
    if (!std::isnan(v) && v <= kFloorDb) {
      throw std::invalid_argument(
          "SectorFootprint: non-canonical borrowed window (unfloored gain)");
    }
    if (!std::isnan(v)) {
      ++covered_count_;
      linear_[i] = static_cast<float>(
          std::pow(10.0, static_cast<double>(v) / 10.0));
    }
  }
}

double SectorFootprint::peak_gain_db() const {
  double peak = -std::numeric_limits<double>::infinity();
  for_each_covered([&](geo::GridIndex, float gain) {
    peak = std::max(peak, static_cast<double>(gain));
  });
  return peak;
}

}  // namespace magus::pathloss
