// Per-sector path-loss matrix over the analysis grid.
//
// This is the in-memory form of one Atoll-style path-loss matrix L_b(T, g)
// (paper §4.2): one value per grid cell, in dB of *gain* (negative; received
// power = transmit power + gain). Cells whose gain falls below a floor are
// treated as uncovered — at the floor the strongest permissible transmit
// power still lands far under the noise floor, so such cells can affect
// neither signal nor interference.
//
// Storage is *windowed dense*: a footprint keeps only the bounding window
// of its covered cells (a sector's reach is bounded by its range cutoff,
// while the analysis grid spans the whole market), with NaN marking
// uncovered cells inside the window. Lookups stay O(1) and memory scales
// with sector reach instead of market size — essential for urban markets
// with >1000 sectors.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geo/grid_map.h"

namespace magus::pathloss {

class SectorFootprint {
 public:
  /// Gains at or below this are treated as "no coverage".
  static constexpr float kFloorDb = -170.0f;

  SectorFootprint() = default;

  /// Builds from a dense gain vector covering the *whole* grid
  /// (grid_cols x grid_rows entries, row-major; NaN or <= kFloorDb =
  /// uncovered). The covered bounding window is extracted automatically.
  SectorFootprint(std::vector<float> full_dense, std::int32_t grid_cols,
                  std::int32_t grid_rows);

  /// Deserialization constructor: an explicit window placed at
  /// (col0, row0) within a grid_cols x grid_rows grid.
  SectorFootprint(std::int32_t grid_cols, std::int32_t grid_rows,
                  std::int32_t col0, std::int32_t row0,
                  std::int32_t window_cols, std::int32_t window_rows,
                  std::vector<float> window);

  /// Total cells of the underlying grid (not the window).
  [[nodiscard]] std::size_t cell_count() const {
    return static_cast<std::size_t>(grid_cols_) *
           static_cast<std::size_t>(grid_rows_);
  }

  [[nodiscard]] bool covers(geo::GridIndex g) const {
    const std::int32_t col = g % grid_cols_ - col0_;
    const std::int32_t row = g / grid_cols_ - row0_;
    if (col < 0 || col >= window_cols_ || row < 0 || row >= window_rows_) {
      return false;
    }
    return !std::isnan(window_[static_cast<std::size_t>(row) * window_cols_ +
                               col]);
  }

  /// Path gain (negative dB). Requires covers(g).
  [[nodiscard]] float gain_db(geo::GridIndex g) const {
    const std::int32_t col = g % grid_cols_ - col0_;
    const std::int32_t row = g / grid_cols_ - row0_;
    return window_[static_cast<std::size_t>(row) * window_cols_ + col];
  }

  /// Gain, or -infinity when uncovered (convenient for max comparisons).
  [[nodiscard]] double gain_or_ninf_db(geo::GridIndex g) const {
    if (!covers(g)) return -std::numeric_limits<double>::infinity();
    return gain_db(g);
  }

  /// Calls f(grid_index, gain_db) for every covered cell. The analysis
  /// model's hot loop.
  template <typename F>
  void for_each_covered(F&& f) const {
    for (std::int32_t row = 0; row < window_rows_; ++row) {
      const geo::GridIndex base = (row0_ + row) * grid_cols_ + col0_;
      const float* line =
          window_.data() + static_cast<std::size_t>(row) * window_cols_;
      for (std::int32_t col = 0; col < window_cols_; ++col) {
        if (!std::isnan(line[col])) f(base + col, line[col]);
      }
    }
  }

  [[nodiscard]] std::size_t covered_count() const { return covered_count_; }

  /// Strongest gain in the footprint, or -infinity if empty.
  [[nodiscard]] double peak_gain_db() const;

  // Window geometry + raw storage, for serialization.
  [[nodiscard]] std::int32_t grid_cols() const { return grid_cols_; }
  [[nodiscard]] std::int32_t grid_rows() const { return grid_rows_; }
  [[nodiscard]] std::int32_t col0() const { return col0_; }
  [[nodiscard]] std::int32_t row0() const { return row0_; }
  [[nodiscard]] std::int32_t window_cols() const { return window_cols_; }
  [[nodiscard]] std::int32_t window_rows() const { return window_rows_; }
  [[nodiscard]] std::span<const float> window() const { return window_; }

 private:
  void apply_floor_and_count();

  std::int32_t grid_cols_ = 0;
  std::int32_t grid_rows_ = 0;
  std::int32_t col0_ = 0;
  std::int32_t row0_ = 0;
  std::int32_t window_cols_ = 0;
  std::int32_t window_rows_ = 0;
  std::size_t covered_count_ = 0;
  std::vector<float> window_;
};

}  // namespace magus::pathloss
