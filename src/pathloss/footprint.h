// Per-sector path-loss matrix over the analysis grid.
//
// This is the in-memory form of one Atoll-style path-loss matrix L_b(T, g)
// (paper §4.2): one value per grid cell, in dB of *gain* (negative; received
// power = transmit power + gain). Cells whose gain falls below a floor are
// treated as uncovered — at the floor the strongest permissible transmit
// power still lands far under the noise floor, so such cells can affect
// neither signal nor interference.
//
// Storage is *windowed dense*: a footprint keeps only the bounding window
// of its covered cells (a sector's reach is bounded by its range cutoff,
// while the analysis grid spans the whole market), with NaN marking
// uncovered cells inside the window. Lookups stay O(1) and memory scales
// with sector reach instead of market size — essential for urban markets
// with >1000 sectors.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geo/grid_map.h"

namespace magus::pathloss {

class SectorFootprint {
 public:
  /// Gains at or below this are treated as "no coverage".
  static constexpr float kFloorDb = -170.0f;

  SectorFootprint() = default;

  /// Builds from a dense gain vector covering the *whole* grid
  /// (grid_cols x grid_rows entries, row-major; NaN or <= kFloorDb =
  /// uncovered). The covered bounding window is extracted automatically.
  SectorFootprint(std::vector<float> full_dense, std::int32_t grid_cols,
                  std::int32_t grid_rows);

  /// Deserialization constructor: an explicit window placed at
  /// (col0, row0) within a grid_cols x grid_rows grid.
  SectorFootprint(std::int32_t grid_cols, std::int32_t grid_rows,
                  std::int32_t col0, std::int32_t row0,
                  std::int32_t window_cols, std::int32_t window_rows,
                  std::vector<float> window);

  /// Zero-copy deserialization constructor: the gain window is *borrowed*
  /// from caller-owned memory (an mmap'd v3 database page) that must
  /// outlive the footprint, and is never written to — only the 10^(g/10)
  /// linear twin is computed into the heap. The borrowed window must be
  /// canonical (uncovered cells already NaN): a finite value at or below
  /// kFloorDb would have been floored in place by the owning constructors,
  /// which a read-only mapping cannot do, so it is rejected with
  /// std::invalid_argument instead.
  SectorFootprint(std::int32_t grid_cols, std::int32_t grid_rows,
                  std::int32_t col0, std::int32_t row0,
                  std::int32_t window_cols, std::int32_t window_rows,
                  const float* borrowed_window);

  // The window view must track the owned storage across copies (a copy
  // gets its own storage; a borrowed copy keeps aliasing the caller's
  // memory). Moves transfer the heap buffer, so the view stays valid.
  SectorFootprint(const SectorFootprint& other);
  SectorFootprint& operator=(const SectorFootprint& other);
  SectorFootprint(SectorFootprint&&) noexcept = default;
  SectorFootprint& operator=(SectorFootprint&&) noexcept = default;
  ~SectorFootprint() = default;

  /// True when the gain window aliases caller-owned (e.g. mapped) memory.
  [[nodiscard]] bool borrowed() const { return borrowed_; }

  /// Total cells of the underlying grid (not the window).
  [[nodiscard]] std::size_t cell_count() const {
    return static_cast<std::size_t>(grid_cols_) *
           static_cast<std::size_t>(grid_rows_);
  }

  [[nodiscard]] bool covers(geo::GridIndex g) const {
    const std::int32_t col = g % grid_cols_ - col0_;
    const std::int32_t row = g / grid_cols_ - row0_;
    if (col < 0 || col >= window_cols_ || row < 0 || row >= window_rows_) {
      return false;
    }
    return !std::isnan(view_[static_cast<std::size_t>(row) * window_cols_ +
                             col]);
  }

  /// Path gain (negative dB). Requires covers(g).
  [[nodiscard]] float gain_db(geo::GridIndex g) const {
    const std::int32_t col = g % grid_cols_ - col0_;
    const std::int32_t row = g / grid_cols_ - row0_;
    return view_[static_cast<std::size_t>(row) * window_cols_ + col];
  }

  /// Gain, or -infinity when uncovered (convenient for max comparisons).
  [[nodiscard]] double gain_or_ninf_db(geo::GridIndex g) const {
    if (!covers(g)) return -std::numeric_limits<double>::infinity();
    return gain_db(g);
  }

  /// Calls f(grid_index, gain_db) for every covered cell. The analysis
  /// model's hot loop.
  template <typename F>
  void for_each_covered(F&& f) const {
    for (std::int32_t row = 0; row < window_rows_; ++row) {
      const geo::GridIndex base = (row0_ + row) * grid_cols_ + col0_;
      const float* line = view_ + static_cast<std::size_t>(row) * window_cols_;
      for (std::int32_t col = 0; col < window_cols_; ++col) {
        if (!std::isnan(line[col])) f(base + col, line[col]);
      }
    }
  }

  /// Calls f(grid_index, gain_db, linear_gain) for every covered cell,
  /// where linear_gain = 10^(gain/10) comes from the precomputed linear
  /// window. Received power in mW is then one multiply
  /// (10^(P/10) * linear_gain) instead of one pow per cell — the hoisted
  /// dBm->mW conversion the model's contribution sweeps run on.
  template <typename F>
  void for_each_covered_linear(F&& f) const {
    for (std::int32_t row = 0; row < window_rows_; ++row) {
      const geo::GridIndex base = (row0_ + row) * grid_cols_ + col0_;
      const std::size_t off = static_cast<std::size_t>(row) * window_cols_;
      const float* line = view_ + off;
      const float* lin = linear_.data() + off;
      for (std::int32_t col = 0; col < window_cols_; ++col) {
        if (!std::isnan(line[col])) f(base + col, line[col], lin[col]);
      }
    }
  }

  /// Linear-domain gain 10^(gain/10) at g. Requires covers(g).
  [[nodiscard]] float linear_gain(geo::GridIndex g) const {
    const std::int32_t col = g % grid_cols_ - col0_;
    const std::int32_t row = g / grid_cols_ - row0_;
    return linear_[static_cast<std::size_t>(row) * window_cols_ + col];
  }
  /// Linear-domain gain, or 0 when uncovered (zero received power).
  [[nodiscard]] double linear_or_zero(geo::GridIndex g) const {
    if (!covers(g)) return 0.0;
    return linear_gain(g);
  }

  [[nodiscard]] std::size_t covered_count() const { return covered_count_; }

  /// Heap bytes held by this footprint — the unit the fleet MarketStore
  /// charges against its byte budget. An owned footprint holds the gain
  /// window plus its linear twin; a borrowed one holds only the linear
  /// twin (the dB window lives in the file mapping, reclaimable by the OS).
  [[nodiscard]] std::size_t resident_bytes() const {
    return (window_.capacity() + linear_.capacity()) * sizeof(float);
  }

  /// One window row as a raw span (NaN = uncovered) plus the grid index of
  /// its first cell: the grid-major export the coverage-index builder
  /// sweeps, equivalent to for_each_covered but without the per-cell
  /// callback. Rows ascend in grid order, so consumers that scan rows
  /// 0..window_rows() visit covered cells in ascending grid index.
  [[nodiscard]] std::span<const float> window_row(std::int32_t row) const {
    return {view_ + static_cast<std::size_t>(row) * window_cols_,
            static_cast<std::size_t>(window_cols_)};
  }
  /// Linear twin of window_row (0 = uncovered), aligned cell-for-cell.
  [[nodiscard]] std::span<const float> linear_row(std::int32_t row) const {
    return {linear_.data() + static_cast<std::size_t>(row) * window_cols_,
            static_cast<std::size_t>(window_cols_)};
  }
  [[nodiscard]] geo::GridIndex row_first_cell(std::int32_t row) const {
    return (row0_ + row) * grid_cols_ + col0_;
  }

  /// Strongest gain in the footprint, or -infinity if empty.
  [[nodiscard]] double peak_gain_db() const;

  // Window geometry + raw storage, for serialization.
  [[nodiscard]] std::int32_t grid_cols() const { return grid_cols_; }
  [[nodiscard]] std::int32_t grid_rows() const { return grid_rows_; }
  [[nodiscard]] std::int32_t col0() const { return col0_; }
  [[nodiscard]] std::int32_t row0() const { return row0_; }
  [[nodiscard]] std::int32_t window_cols() const { return window_cols_; }
  [[nodiscard]] std::int32_t window_rows() const { return window_rows_; }
  [[nodiscard]] std::span<const float> window() const {
    return {view_, static_cast<std::size_t>(window_cols_) *
                       static_cast<std::size_t>(window_rows_)};
  }

 private:
  void apply_floor_and_count();
  void count_borrowed_and_build_linear();

  std::int32_t grid_cols_ = 0;
  std::int32_t grid_rows_ = 0;
  std::int32_t col0_ = 0;
  std::int32_t row0_ = 0;
  std::int32_t window_cols_ = 0;
  std::int32_t window_rows_ = 0;
  std::size_t covered_count_ = 0;
  bool borrowed_ = false;
  /// Owned gain storage; empty in borrowed mode.
  std::vector<float> window_;
  /// The window all accessors read: window_.data() when owned, the
  /// caller's (mapped) memory when borrowed, nullptr when empty.
  const float* view_ = nullptr;
  /// 10^(gain/10) per window cell (0 where uncovered), built once at
  /// construction so every mW sweep replaces pow with a multiply.
  std::vector<float> linear_;
};

}  // namespace magus::pathloss
