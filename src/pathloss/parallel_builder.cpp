#include "pathloss/parallel_builder.h"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magus::pathloss {

ParallelFootprintBuilder::ParallelFootprintBuilder(FootprintBuilder builder,
                                                   std::size_t threads)
    : builder_(std::move(builder)), pool_(threads) {}

PathLossDatabase ParallelFootprintBuilder::build_database(
    const net::Network& network, std::span<const net::SectorId> sectors,
    std::span<const radio::TiltIndex> tilts) {
  MAGUS_TRACE_SPAN("pathloss.parallel_build", "pathloss");
  static auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& rows_counter =
      registry.counter("pathloss.build.rows");
  static obs::Gauge& rows_per_sec =
      registry.gauge("pathloss.build.rows_per_sec");

  const std::uint64_t rows_before = rows_counter.value();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::vector<SectorFootprint>> results(sectors.size());
  std::vector<FootprintBuilder::Scratch> scratch(pool_.size());
  pool_.run(sectors.size(), [&](std::size_t worker, std::size_t i) {
    // Profile-mode per-sector compute span (pairs with the pool's
    // wait.queue/wait.barrier spans for attribution).
    MAGUS_TRACE_SPAN_FINE("pathloss.build_sector", "pathloss");
    results[i] = builder_.build_tilts(network.sector(sectors[i]), tilts,
                                      &scratch[worker]);
  });

  PathLossDatabase db{builder_.grid()};
  for (std::size_t i = 0; i < sectors.size(); ++i) {
    for (std::size_t t = 0; t < tilts.size(); ++t) {
      db.insert(sectors[i], tilts[t], std::move(results[i][t]));
    }
  }

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (elapsed_s > 0.0) {
    rows_per_sec.set(
        static_cast<double>(rows_counter.value() - rows_before) / elapsed_s);
  }
  return db;
}

}  // namespace magus::pathloss
