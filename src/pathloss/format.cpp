#include "pathloss/format.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace magus::pathloss::format {

namespace {

/// Bounded cursor matching the loader's read_pod error contract.
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t off = 0;

  template <typename T>
  void read(T& value, const std::string& context) {
    if (size - off < sizeof(T)) {
      throw std::runtime_error("PathLossDatabase: " + context);
    }
    std::memcpy(&value, data + off, sizeof(T));
    off += sizeof(T);
  }
};

}  // namespace

V3Directory parse_v3(const char* data, std::size_t available,
                     std::uint64_t file_size, const std::string& path) {
  Cursor cursor{data, available};
  V3Directory dir;

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  cursor.read(magic, "truncated header in " + path);
  cursor.read(version, "truncated header in " + path);
  if (magic != kMagic) {
    throw std::runtime_error("PathLossDatabase: bad magic in " + path);
  }
  if (version != kVersionMapped) {
    throw std::runtime_error("PathLossDatabase: unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersionMapped) + ") in " + path);
  }
  cursor.read(dir.min_x, "truncated header in " + path);
  cursor.read(dir.min_y, "truncated header in " + path);
  cursor.read(dir.cell_size_m, "truncated header in " + path);
  cursor.read(dir.cols, "truncated header in " + path);
  cursor.read(dir.rows, "truncated header in " + path);
  if (!(dir.cell_size_m > 0.0) || dir.cols <= 0 || dir.rows <= 0) {
    throw std::runtime_error("PathLossDatabase: invalid grid geometry in " +
                             path);
  }
  std::uint64_t directory_checksum = 0;
  cursor.read(dir.entry_count, "truncated header in " + path);
  cursor.read(directory_checksum, "truncated header in " + path);
  cursor.read(dir.payload_end, "truncated header in " + path);

  // The directory must fit the real file (division first: a corrupted
  // entry count must not overflow the product).
  if (dir.entry_count > (file_size - std::min<std::uint64_t>(
                             file_size, kHeaderBytesV3)) /
                            kDirEntryBytes) {
    throw std::runtime_error("PathLossDatabase: truncated directory (" +
                             std::to_string(dir.entry_count) + " entries) in " +
                             path);
  }
  const std::uint64_t dir_bytes = dir.entry_count * kDirEntryBytes;
  const std::uint64_t dir_end = kHeaderBytesV3 + dir_bytes;
  if (available < dir_end) {
    throw std::runtime_error("PathLossDatabase: truncated directory (" +
                             std::to_string(dir.entry_count) + " entries) in " +
                             path);
  }
  if (util::fnv1a(data + kHeaderBytesV3, dir_bytes) != directory_checksum) {
    throw std::runtime_error("PathLossDatabase: directory checksum mismatch in " +
                             path);
  }
  // payload_end is the file size the directory was written against. A
  // shorter file is a torn tail (the last page(s) never hit the disk); a
  // longer one is trailing garbage. Both fail before any plane is touched.
  if (file_size < dir.payload_end) {
    throw std::runtime_error(
        "PathLossDatabase: torn payload (file " + std::to_string(file_size) +
        " bytes, directory promises " + std::to_string(dir.payload_end) +
        ") in " + path);
  }
  if (file_size > dir.payload_end) {
    throw std::runtime_error("PathLossDatabase: trailing bytes after " +
                             std::to_string(dir.entry_count) + " entries in " +
                             path);
  }

  dir.entries.reserve(static_cast<std::size_t>(dir.entry_count));
  for (std::uint64_t e = 0; e < dir.entry_count; ++e) {
    const std::string entry_context = "entry " + std::to_string(e) + " of " +
                                      std::to_string(dir.entry_count);
    V3Entry entry;
    cursor.read(entry.sector, "truncated " + entry_context + " in " + path);
    cursor.read(entry.tilt, "truncated " + entry_context + " in " + path);
    cursor.read(entry.col0, "truncated " + entry_context + " in " + path);
    cursor.read(entry.row0, "truncated " + entry_context + " in " + path);
    cursor.read(entry.window_cols,
                "truncated " + entry_context + " in " + path);
    cursor.read(entry.window_rows,
                "truncated " + entry_context + " in " + path);
    cursor.read(entry.data_offset,
                "truncated " + entry_context + " in " + path);
    cursor.read(entry.checksum, "truncated " + entry_context + " in " + path);
    if (entry.window_cols < 0 || entry.window_rows < 0 ||
        entry.window_cols > dir.cols || entry.window_rows > dir.rows) {
      throw std::runtime_error("PathLossDatabase: oversized window (" +
                               entry_context + ") in " + path);
    }
    entry.window_bytes = static_cast<std::size_t>(entry.window_cols) *
                         static_cast<std::size_t>(entry.window_rows) *
                         sizeof(float);
    if (entry.window_bytes > 0) {
      if (entry.data_offset % kPageBytes != 0) {
        throw std::runtime_error("PathLossDatabase: misaligned gain plane (" +
                                 entry_context + ") in " + path);
      }
      if (entry.data_offset < dir_end ||
          entry.data_offset + entry.window_bytes > dir.payload_end) {
        throw std::runtime_error("PathLossDatabase: truncated " +
                                 entry_context + " in " + path);
      }
    }
    dir.entries.push_back(entry);
  }
  return dir;
}

}  // namespace magus::pathloss::format
