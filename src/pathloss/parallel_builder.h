// Fans per-sector footprint construction across a thread pool.
//
// One job per sector builds that sector's whole tilt matrix via
// FootprintBuilder::build_tilts (radial profiles and isotropic planes are
// shared across the tilts, so sector granularity amortizes the most work),
// against per-worker reusable scratch. Results land in per-job slots and
// are inserted into the database in deterministic (sector, tilt) order, so
// the output is bitwise identical to a serial build for any thread count —
// the same discipline the parallel evaluator established.
#pragma once

#include <cstddef>
#include <span>

#include "net/network.h"
#include "pathloss/builder.h"
#include "pathloss/database.h"
#include "util/thread_pool.h"

namespace magus::pathloss {

class ParallelFootprintBuilder {
 public:
  /// `builder` is copied; `threads` == 0 resolves to the hardware
  /// concurrency. The pool is built once and reused across build calls.
  ParallelFootprintBuilder(FootprintBuilder builder, std::size_t threads = 0);

  [[nodiscard]] std::size_t thread_count() const { return pool_.size(); }
  [[nodiscard]] const FootprintBuilder& builder() const { return builder_; }

  /// Builds the matrix for every (sector, tilt) pair and returns them as a
  /// database over the builder's grid. Bitwise identical to inserting
  /// serial FootprintBuilder::build results, for any thread count. Updates
  /// the pathloss.build.* metrics, including the rows/sec throughput gauge.
  [[nodiscard]] PathLossDatabase build_database(
      const net::Network& network, std::span<const net::SectorId> sectors,
      std::span<const radio::TiltIndex> tilts);

 private:
  FootprintBuilder builder_;
  util::ThreadPool pool_;
};

}  // namespace magus::pathloss
