// The paper's tilt approximation (§5, "Antenna Tilt Tuning").
//
// Computing one path-loss matrix per (sector, tilt) pair is expensive, so
// the paper assumes "the change to a path loss matrix caused by a specific
// uptilt or downtilt is the same across all sectors" and uses one *change
// matrix* per tilt step, indexed by position relative to the sector. We
// implement that change function analytically from the vertical antenna
// pattern at a reference geometry: the delta depends only on distance from
// the site (which fixes the elevation angle at reference height) and the
// tilt settings, not on the particular sector's terrain.
//
// The faithful alternative (rebuilding the footprint per tilt via
// FootprintBuilder) is also available; bench_ablation compares the two.
#pragma once

#include "radio/antenna.h"

namespace magus::pathloss {

class TiltDeltaModel {
 public:
  /// `reference` describes the antenna pattern and tilt geometry shared by
  /// all sectors; `reference_height_m` is the assumed antenna height above
  /// the UE plane.
  TiltDeltaModel(radio::AntennaParams reference,
                 double reference_height_m = 30.0);

  /// Gain change (dB) at a point `distance_m` from the site when the tilt
  /// moves from `from` to `to`. Positive = stronger signal.
  [[nodiscard]] double delta_db(double distance_m, radio::TiltIndex from,
                                radio::TiltIndex to) const;

 private:
  radio::AntennaPattern pattern_;
  double reference_height_m_;
};

}  // namespace magus::pathloss
