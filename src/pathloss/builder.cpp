#include "pathloss/builder.h"

#include <limits>
#include <stdexcept>

#include "radio/antenna.h"

namespace magus::pathloss {

FootprintBuilder::FootprintBuilder(const radio::PropagationModel* model,
                                   const terrain::TerrainGridCache* cache,
                                   double max_range_m)
    : model_(model), cache_(cache), max_range_m_(max_range_m) {
  if (model_ == nullptr || cache_ == nullptr) {
    throw std::invalid_argument(
        "FootprintBuilder: model and cache must not be null");
  }
  if (max_range_m_ <= 0.0) {
    throw std::invalid_argument("FootprintBuilder: range must be positive");
  }
}

SectorFootprint FootprintBuilder::build(const net::Sector& sector,
                                        radio::TiltIndex tilt) const {
  const geo::GridMap& map = grid();
  const auto nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> gains(static_cast<std::size_t>(map.cell_count()), nan);

  const radio::AntennaPattern pattern{sector.antenna};
  const radio::TransmitterSite site{sector.position, sector.height_m,
                                    sector.azimuth_deg};
  // Only cells within range can be covered; iterate just those.
  for (const geo::GridIndex g :
       map.cells_within(sector.position, max_range_m_)) {
    const double gain =
        model_->path_gain_db_cached(site, pattern, tilt, g, *cache_);
    if (gain > SectorFootprint::kFloorDb) {
      gains[static_cast<std::size_t>(g)] = static_cast<float>(gain);
    }
  }
  return SectorFootprint{std::move(gains), map.cols(), map.rows()};
}

}  // namespace magus::pathloss
